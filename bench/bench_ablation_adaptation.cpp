// Ablation: adaptive concurrency control (paper §2 "Adaptation",
// Porterfield et al.).  A phased workload starts oversubscribed (16 team
// threads on a 7-core allocation); between phases the controller's
// recommendation is applied.  Compared against the uncorrected run and
// the oracle (7 threads from the start):
//   oversubscribed  >  adaptive  ≈  oracle,
// with the adaptive run paying only for the phases before convergence.
#include <iostream>
#include <optional>

#include "common/strings.hpp"
#include "core/adaptation.hpp"
#include "core/monitor.hpp"
#include "procfs/simfs.hpp"
#include "sim/workload.hpp"
#include "topology/presets.hpp"

using namespace zerosum;

namespace {

constexpr int kPhases = 6;
constexpr std::uint64_t kStepsPerPhase = 20;

/// Runs one phase with `threads` team threads on cores 1-7; returns the
/// phase runtime and (optionally) the controller's recommendation.
struct PhaseOutcome {
  double seconds = 0.0;
  std::optional<core::Recommendation> recommendation;
};

PhaseOutcome runPhase(int threads, core::ConcurrencyController* controller) {
  sim::SimNode node(CpuSet::fromList("0-15"), 64ULL << 30);
  sim::MiniQmcConfig qmc;
  qmc.ompThreads = threads;
  qmc.steps = kStepsPerPhase;
  qmc.workPerStep = 12;
  const auto rank = sim::buildMiniQmcRank(node, CpuSet::fromList("1-7"), qmc,
                                          node.hwts());
  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  core::MonitorSession session(cfg, procfs::makeSimProcFs(node, rank.pid));

  PhaseOutcome outcome;
  while (!node.processFinished(rank.pid) && node.nowSeconds() < 300.0) {
    node.advance(sim::kHz);
    session.sampleNow(node.nowSeconds());
    if (controller != nullptr && !outcome.recommendation) {
      outcome.recommendation = controller->observe(
          session.lwps().records(), session.hwts().records(),
          cfg.jiffiesPerPeriod());
    }
  }
  outcome.seconds = node.nowSeconds();
  return outcome;
}

double runCampaign(int startThreads, bool adaptive, std::string* narrative) {
  core::AdaptationParams params;
  params.confirmPeriods = 2;
  params.cooldownPeriods = 1;
  core::ConcurrencyController controller(params);
  int threads = startThreads;
  double total = 0.0;
  for (int phase = 0; phase < kPhases; ++phase) {
    const PhaseOutcome outcome =
        runPhase(threads, adaptive ? &controller : nullptr);
    total += outcome.seconds;
    if (narrative != nullptr) {
      *narrative += "  phase " + std::to_string(phase) + ": " +
                    std::to_string(threads) + " threads, " +
                    strings::fixed(outcome.seconds, 1) + " s";
    }
    if (adaptive && outcome.recommendation) {
      if (narrative != nullptr) {
        *narrative += "  -> recommend " +
                      std::to_string(
                          outcome.recommendation->recommendedThreads) +
                      " (" + outcome.recommendation->reason + ")";
      }
      threads = outcome.recommendation->recommendedThreads;
    }
    if (narrative != nullptr) {
      *narrative += "\n";
    }
  }
  return total;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: adaptive concurrency control ===\n";
  std::cout << "Workload: " << kPhases << " phases x " << kStepsPerPhase
            << " steps, 7-core allocation, starting at 16 team threads\n\n";

  std::string adaptiveStory;
  const double adaptive = runCampaign(16, true, &adaptiveStory);
  const double stuck = runCampaign(16, false, nullptr);
  const double oracle = runCampaign(7, false, nullptr);

  std::cout << "Adaptive run:\n" << adaptiveStory << '\n';
  std::cout << "total runtime, never adapted (16 threads): "
            << strings::fixed(stuck, 1) << " s\n";
  std::cout << "total runtime, adaptive                  : "
            << strings::fixed(adaptive, 1) << " s\n";
  std::cout << "total runtime, oracle (7 threads)        : "
            << strings::fixed(oracle, 1) << " s\n";
  std::cout << "adaptation recovers "
            << strings::fixed(
                   100.0 * (stuck - adaptive) / (stuck - oracle + 1e-9), 1)
            << "% of the oversubscription penalty\n";
  return 0;
}
