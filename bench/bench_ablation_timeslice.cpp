// Ablation: scheduler timeslice vs. the contention signature.
//
// EXPERIMENTS.md documents that the simulator's absolute non-voluntary
// context-switch counts depend on HZ x runtime / timeslice, while the
// cross-configuration *ratios* (Table 1 vs Table 3) do not.  This ablation
// substantiates that claim: the Table 1 workload runs under timeslices of
// 1, 6 (default), and 20 jiffies — nvctx scales inversely with the slice,
// the runtime and per-thread utilization stay put, and the analyzer's
// oversubscription verdict is invariant.
#include <iostream>

#include "common/strings.hpp"
#include "core/monitor.hpp"
#include "procfs/simfs.hpp"
#include "sim/workload.hpp"
#include "topology/presets.hpp"

using namespace zerosum;

namespace {

struct SliceOutcome {
  double seconds = 0.0;
  std::uint64_t teamNvctx = 0;
  double mainBusyPerPeriod = 0.0;
  bool oversubscribedFlagged = false;
};

SliceOutcome runWithTimeslice(sim::Jiffies slice) {
  sim::SchedulerParams params;
  params.timesliceJiffies = slice;
  sim::SimNode node(CpuSet::fromList("0-15"), 64ULL << 30, params);
  sim::MiniQmcConfig qmc;
  qmc.ompThreads = 8;
  qmc.steps = 30;
  qmc.workPerStep = 10;
  const auto rank = sim::buildMiniQmcRank(node, CpuSet::fromList("1"), qmc,
                                          node.hwts());
  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  core::MonitorSession session(cfg, procfs::makeSimProcFs(node, rank.pid));
  while (!node.processFinished(rank.pid) && node.nowSeconds() < 600.0) {
    node.advance(sim::kHz);
    session.sampleNow(node.nowSeconds());
  }

  SliceOutcome outcome;
  outcome.seconds = node.nowSeconds();
  const auto& lwps = session.lwps().records();
  outcome.mainBusyPerPeriod =
      lwps.at(rank.mainTid).avgUtimePerPeriod() +
      lwps.at(rank.mainTid).avgStimePerPeriod();
  outcome.teamNvctx = lwps.at(rank.mainTid).totalNonvoluntaryCtx();
  for (sim::Tid tid : rank.ompTids) {
    outcome.teamNvctx += lwps.at(tid).totalNonvoluntaryCtx();
  }
  for (const auto& finding : session.analyze()) {
    outcome.oversubscribedFlagged =
        outcome.oversubscribedFlagged || finding.code == "oversubscribed-hwt";
  }
  return outcome;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: scheduler timeslice (Table 1 workload, 8 "
               "threads on 1 core) ===\n";
  std::cout << strings::padRight("timeslice", 12)
            << strings::padLeft("runtime", 10)
            << strings::padLeft("team nvctx", 12)
            << strings::padLeft("busy/period", 13)
            << strings::padLeft("flagged", 9) << '\n';
  for (sim::Jiffies slice : {sim::Jiffies{1}, sim::Jiffies{6},
                             sim::Jiffies{20}}) {
    const SliceOutcome o = runWithTimeslice(slice);
    std::cout << strings::padRight(std::to_string(slice) + " jiffies", 12)
              << strings::padLeft(strings::fixed(o.seconds, 1) + " s", 10)
              << strings::padLeft(std::to_string(o.teamNvctx), 12)
              << strings::padLeft(strings::fixed(o.mainBusyPerPeriod, 1), 13)
              << strings::padLeft(o.oversubscribedFlagged ? "yes" : "NO", 9)
              << '\n';
  }
  std::cout << "\nnvctx scales ~1/timeslice; runtime, per-thread "
               "utilization, and the analyzer verdict are invariant —\n"
               "the Table 1-3 comparisons rest on the invariants, not the "
               "absolute counts.\n";
  return 0;
}
