// Aggregation-daemon ingest throughput (§6 cross-process collection).
//
// Measures the two halves of the ingest path separately so regressions
// can be attributed:
//   * store  — RollupStore::ingest alone: samples/s merged into the
//     two-resolution rollup windows, at several series cardinalities
//     (1, 64, and 1024 distinct (rank, metric) series).
//   * wire   — the full daemon path over the in-memory pipe transport:
//     client enqueue -> frame encode -> transport -> decode -> store,
//     with 8 ranks publishing concurrently, records/s through poll().
//
// Emits BENCH_aggregator.json (json::Writer) for regression tracking,
// same spirit as BENCH_overhead.json from bench_figure8_overhead.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/client.hpp"
#include "aggregator/daemon.hpp"
#include "aggregator/store.hpp"
#include "aggregator/transport.hpp"
#include "common/json.hpp"

using namespace zerosum;
using namespace zerosum::aggregator;

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct StoreResult {
  std::size_t series = 0;
  std::uint64_t samples = 0;
  double seconds = 0.0;
  [[nodiscard]] double ratePerSecond() const {
    return seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
  }
};

/// Raw store ingest: `samples` merges spread round-robin over `series`
/// distinct keys, timestamps advancing so windows roll and eviction runs.
StoreResult benchStore(std::size_t series, std::uint64_t samples) {
  RollupStore store;
  std::vector<SeriesKey> keys;
  keys.reserve(series);
  for (std::size_t s = 0; s < series; ++s) {
    keys.push_back({"bench", static_cast<int>(s % 8),
                    "metric." + std::to_string(s)});
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) * 0.001;
    store.ingest(keys[i % series], t, static_cast<double>(i % 100));
  }
  StoreResult result;
  result.series = series;
  result.samples = samples;
  result.seconds = secondsSince(start);
  return result;
}

struct WireResult {
  int ranks = 0;
  std::uint64_t records = 0;
  double seconds = 0.0;
  std::uint64_t drops = 0;
  [[nodiscard]] double ratePerSecond() const {
    return seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  }
};

/// End-to-end: N clients batch-publish through the pipe transport into
/// one Aggregator; measures records/s landing in the store.
WireResult benchWire(int ranks, int periods, std::size_t recordsPerPeriod) {
  auto hub = std::make_shared<PipeHub>();
  Aggregator daemon(hub->makeServer());
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    Hello hello;
    hello.job = "bench";
    hello.rank = rank;
    hello.worldSize = ranks;
    hello.hostname = "node0000";
    hello.pid = 1000 + rank;
    ClientOptions options;
    options.batchRecords = recordsPerPeriod;  // one batch per period
    clients.push_back(std::make_unique<Client>(hub->makeClientTransport(),
                                               hello, options));
  }
  std::vector<WireRecord> batch(recordsPerPeriod);
  const auto start = std::chrono::steady_clock::now();
  for (int period = 0; period < periods; ++period) {
    const double t = static_cast<double>(period);
    for (std::size_t i = 0; i < recordsPerPeriod; ++i) {
      batch[i] = {t, "metric." + std::to_string(i), static_cast<double>(i)};
    }
    for (auto& client : clients) {
      client->enqueue(batch, t);
    }
    daemon.poll(t);
  }
  WireResult result;
  result.ranks = ranks;
  result.seconds = secondsSince(start);
  result.records = daemon.counters().recordsIngested;
  for (const auto& client : clients) {
    result.drops += client->counters().recordsDropped;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_aggregator.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      jsonPath = argv[i + 1];
    }
  }
  std::cout << "=== aggregator ingest throughput ===\n\n";

  std::cout << "-- RollupStore::ingest (store only) --\n";
  std::vector<StoreResult> storeResults;
  for (const std::size_t series : {std::size_t{1}, std::size_t{64},
                                   std::size_t{1024}}) {
    storeResults.push_back(benchStore(series, 400000));
    const auto& r = storeResults.back();
    std::cout << "  " << r.series << " series: " << r.samples
              << " samples in " << r.seconds << " s  ("
              << static_cast<std::uint64_t>(r.ratePerSecond())
              << " samples/s)\n";
  }

  std::cout << "\n-- client -> pipe transport -> daemon (end to end) --\n";
  const WireResult wire = benchWire(8, 400, 250);
  std::cout << "  " << wire.ranks << " ranks x 250 records x 400 periods: "
            << wire.records << " records in " << wire.seconds << " s  ("
            << static_cast<std::uint64_t>(wire.ratePerSecond())
            << " records/s, " << wire.drops << " dropped)\n";
  if (wire.drops != 0 ||
      wire.records != static_cast<std::uint64_t>(wire.ranks) * 400U * 250U) {
    std::cerr << "ERROR: lossless in-memory path dropped records\n";
    return 1;
  }

  std::ofstream jsonOut(jsonPath);
  if (jsonOut) {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "aggregator_ingest");
    w.key("store").beginArray();
    for (const auto& r : storeResults) {
      w.beginObject();
      w.field("series", static_cast<std::uint64_t>(r.series));
      w.field("samples", r.samples);
      w.field("seconds", r.seconds);
      w.field("samples_per_second", r.ratePerSecond());
      w.endObject();
    }
    w.endArray();
    w.key("wire").beginObject();
    w.field("ranks", static_cast<std::int64_t>(wire.ranks));
    w.field("records", wire.records);
    w.field("seconds", wire.seconds);
    w.field("records_per_second", wire.ratePerSecond());
    w.field("records_dropped", wire.drops);
    w.endObject();
    w.endObject();
    jsonOut << '\n';
    std::cout << "\nwrote " << jsonPath << '\n';
  } else {
    std::cerr << "could not write " << jsonPath << '\n';
    return 1;
  }
  return 0;
}
