// The allocation-wide view the paper motivates in §2 ("the htop view …
// but for all nodes in a given allocation"): a 4-node simulated job with
// per-node and job-level summaries, run twice — clean, and with a noisy
// neighbour (Bhatele et al.) squatting on one node's cores.  The
// dashboard localizes the interference to the affected node via the
// context-switch and imbalance columns.
#include <iostream>

#include "cluster/job.hpp"
#include "topology/presets.hpp"

using namespace zerosum;

namespace {

cluster::ClusterJobConfig jobConfig() {
  cluster::ClusterJobConfig cfg;
  cfg.nodes = 4;
  cfg.ranksPerNode = 2;
  cfg.cpusPerTask = 7;
  cfg.workload.ompThreads = 4;
  cfg.workload.steps = 40;
  cfg.workload.workPerStep = 10;
  cfg.workload.workJitter = 0.10;
  return cfg;
}

}  // namespace

int main() {
  const auto topo = topology::presets::frontier();

  std::cout << "=== Allocation dashboard: clean job ===\n";
  cluster::ClusterJob clean(topo, jobConfig());
  clean.run();
  std::cout << clean.dashboard() << '\n';

  std::cout << "=== Allocation dashboard: noisy neighbour on node0002 "
               "===\n";
  cluster::ClusterJob noisy(topo, jobConfig());
  cluster::Interference hog;
  hog.node = 2;
  hog.cpus = CpuSet::fromList("1-7,9-15");
  hog.threads = 14;
  hog.memoryBytes = 64ULL << 30;
  noisy.addInterference(hog);
  noisy.run();
  std::cout << noisy.dashboard();
  std::cout << "\nnode0002's ranks show the preemption storm and the job "
               "imbalance the paper's §2\n'identify cause of failure' "
               "motivation describes; the other nodes are clean.\n";
  return 0;
}
