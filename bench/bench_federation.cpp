// Federation fan-in vs the flat single daemon (DESIGN.md §11): the same
// rank population publishes through one flat daemon and through a
// node → group → root tree, with identical per-daemon admission budgets
// and pressure thresholds.  The daemon never drops an admitted batch,
// so the *totals* always converge once the backlog drains — what the
// flat daemon loses under load is timeliness: past its per-poll budget
// it falls further behind every period and serves ever-staler data.
// The ingest rate compared here is therefore the records ingested
// *during the publishing phase* per virtual second; the tree spreads
// the same load across node daemons that stay inside their budget and
// remain current, while the flat daemon's backlog grows without bound.
//
// Rates are measured in virtual time (records per simulated second), so
// the numbers are machine-independent and the gate can hold them
// tightly; root-query latency is wall-clock and gets the
// catastrophic-only ratio band.
//
// The 1k-rank tree run also kills one group daemon mid-run and never
// restarts it: the catalog entry ages out, node forwarders re-resolve
// and full-resync into the survivors, and the gated invariants assert
// that the root still covers every rank with zero acked-window loss.
//
// The gated invariants (scripts/bench_gate.py):
//   * acked_loss == 0        — every coarse window a node daemon holds
//     is present at the root with the same count after the drain, even
//     across the group kill.
//   * coverage_complete      — the root's store names every rank.
//   * tree_speedup_ge_2      — the tree sustains >= 2x the flat ingest
//     rate at equal pressure.
//
// Emits BENCH_federation.json (json::Writer); --out <path> overrides.
// --smoke runs a small 3-group tree with a kill *and* restart — the
// scripts/check.sh federated failover smoke — and skips the 4k scale.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/client.hpp"
#include "aggregator/daemon.hpp"
#include "aggregator/federation.hpp"
#include "aggregator/query.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "common/interning.hpp"
#include "common/json.hpp"

using namespace zerosum;
using namespace zerosum::aggregator;

namespace {

constexpr int kMetricsPerRank = 4;

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Identical budget for every daemon, flat or tree: the comparison is
/// "same per-daemon capacity, different topology".  One poll models one
/// scheduling quantum of daemon CPU on its host per period, so the
/// per-poll batch budget is the capacity knob; the admission queue is
/// deep enough that the inline backstop (which would let a single
/// quantum do unbounded work) never fires and overflow shows up as the
/// growing backlog it would be on a real node.
DaemonOptions budgetedDaemonOptions() {
  DaemonOptions options;
  options.maxBatchesPerPoll = 300;
  options.maxPendingBatches = 1u << 20;
  return options;
}

std::vector<names::Id> internMetricIds() {
  std::vector<names::Id> ids;
  for (int m = 0; m < kMetricsPerRank; ++m) {
    ids.push_back(names::intern("fed.metric." + std::to_string(m)));
  }
  return ids;
}

std::unique_ptr<Client> makeRankClient(std::unique_ptr<Transport> transport,
                                       int rank, int worldSize) {
  Hello hello;
  hello.job = "fed";
  hello.rank = rank;
  hello.worldSize = worldSize;
  hello.hostname = "node" + std::to_string(rank / 8);
  hello.pid = 1000 + rank;
  ClientOptions options;
  options.batchRecords = kMetricsPerRank;  // one batch per rank per period
  return std::make_unique<Client>(std::move(transport), hello, options);
}

void publishPeriod(std::vector<std::unique_ptr<Client>>& clients,
                   const std::vector<names::Id>& ids, double t) {
  std::vector<IdRecord> batch;
  batch.reserve(ids.size());
  for (auto& client : clients) {
    batch.clear();
    for (std::size_t m = 0; m < ids.size(); ++m) {
      batch.push_back({t, ids[m], t + static_cast<double>(m)});
    }
    client->enqueueIds(batch, t);
  }
}

/// Mean wall-clock latency of a coarse range query per sampled rank.
double queryMeanMicros(const Aggregator& daemon, int ranks) {
  const int samples = std::min(ranks, 32);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < samples; ++i) {
    const int rank = i * (ranks / samples);
    runQuery(daemon, "{\"op\":\"range\",\"metric\":\"fed.metric.0\","
                     "\"job\":\"fed\",\"rank\":" +
                         std::to_string(rank) +
                         ",\"resolution\":\"coarse\"}");
  }
  return secondsSince(start) * 1e6 / samples;
}

struct FlatResult {
  std::uint64_t ingested = 0;  ///< records ingested during the run
  std::uint64_t backlog = 0;   ///< records that only arrived after it
  double periods = 0.0;
  double queryMeanUs = 0.0;
};

FlatResult runFlat(int ranks, int periods) {
  auto hub = std::make_shared<PipeHub>();
  Aggregator daemon(hub->makeServer(), {}, budgetedDaemonOptions());
  std::vector<std::unique_ptr<Client>> clients;
  for (int r = 0; r < ranks; ++r) {
    clients.push_back(makeRankClient(hub->makeClientTransport(), r, ranks));
  }
  const auto ids = internMetricIds();
  double t = 1.0;
  for (int period = 0; period < periods; ++period, t += 1.0) {
    publishPeriod(clients, ids, t);
    daemon.poll(t);
  }
  FlatResult result;
  result.ingested = daemon.counters().recordsIngested;
  daemon.drainBacklog(t);
  result.backlog = daemon.counters().recordsIngested - result.ingested;
  result.periods = static_cast<double>(periods);
  result.queryMeanUs = queryMeanMicros(daemon, ranks);
  return result;
}

struct TreeResult {
  std::uint64_t ingested = 0;  ///< in-run rank-facing records, node tier
  double periods = 0.0;
  double queryMeanUs = 0.0;
  std::uint64_t ackedLoss = 0;       ///< node coarse windows missing at root
  std::uint64_t seriesChecked = 0;
  int rootRankCoverage = 0;
  std::uint64_t membershipChanges = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t generationBumps = 0;
  std::uint64_t catalogExpired = 0;
  bool drained = false;
};

TreeResult runTree(int ranks, int periods, bool killGroup,
                   bool restartGroup, int groups, int nodesPerGroup) {
  FederationTreeOptions treeOptions;
  treeOptions.groups = groups;
  treeOptions.nodesPerGroup = nodesPerGroup;
  treeOptions.daemonOptions = budgetedDaemonOptions();
  FederationTree tree(treeOptions);

  const int daemons = groups * nodesPerGroup;
  std::vector<std::unique_ptr<Client>> clients;
  for (int r = 0; r < ranks; ++r) {
    const int d = r % daemons;
    clients.push_back(makeRankClient(
        tree.makeNodeTransport(d / nodesPerGroup, d % nodesPerGroup), r,
        ranks));
  }
  const auto ids = internMetricIds();

  const int killAt = periods * 2 / 5;
  const int restartAt = killAt + 9;  // past the 6 s catalog TTL
  double t = 1.0;
  for (int period = 0; period < periods; ++period, t += 1.0) {
    if (killGroup && period == killAt) {
      tree.crashGroup(0);
    }
    if (killGroup && restartGroup && period == restartAt) {
      tree.restartGroup(0, t);
    }
    publishPeriod(clients, ids, t);
    tree.step(t);
  }
  TreeResult result;
  for (int g = 0; g < groups; ++g) {
    for (int n = 0; n < nodesPerGroup; ++n) {
      result.ingested += tree.node(g, n).counters().recordsIngested;
    }
  }
  // Drain in small virtual steps until every forwarder has routed,
  // sent, and been acked through to the root.  Small steps matter: a
  // full-second step per round would blow past the staleness sweep and
  // evict the very node series the loss check below compares.  (The
  // dead group's catalog TTL already expired during the run itself.)
  for (int round = 0; round < 400 && !tree.quiesced(); ++round, t += 0.05) {
    for (auto& client : clients) {
      client->pump(t);
    }
    tree.step(t);
  }
  result.drained = tree.quiesced();
  result.periods = static_cast<double>(periods);

  std::vector<bool> rankSeen(static_cast<std::size_t>(ranks), false);
  for (const auto& key : tree.root().store().keys()) {
    if (key.rank >= 0 && key.rank < ranks) {
      rankSeen[static_cast<std::size_t>(key.rank)] = true;
    }
  }
  result.rootRankCoverage = static_cast<int>(
      std::count(rankSeen.begin(), rankSeen.end(), true));

  // Zero acked loss: every coarse window a node daemon retains must be
  // at the root with at least the same count (retransmits are cumulative
  // snapshots, so the root can only be equal or newer).
  for (int g = 0; g < groups; ++g) {
    for (int n = 0; n < nodesPerGroup; ++n) {
      Aggregator& node = tree.node(g, n);
      for (const auto& key : node.store().keys()) {
        const auto mine = node.store().latest(key, Resolution::kCoarse);
        if (!mine) {
          continue;
        }
        ++result.seriesChecked;
        const auto theirs =
            tree.root().store().latest(key, Resolution::kCoarse);
        if (!theirs ||
            theirs->windowStartSeconds < mine->windowStartSeconds ||
            (theirs->windowStartSeconds == mine->windowStartSeconds &&
             theirs->rollup.count < mine->rollup.count)) {
          ++result.ackedLoss;
        }
      }
      result.membershipChanges +=
          tree.nodeForwarder(g, n).counters().membershipChanges;
      result.resyncs += tree.nodeForwarder(g, n).counters().resyncs;
    }
  }
  result.generationBumps = tree.catalog().counters().generationBumps;
  result.catalogExpired = tree.catalog().counters().expired;
  result.queryMeanUs = queryMeanMicros(tree.root(), ranks);
  return result;
}

struct ScaleReport {
  int ranks = 0;
  FlatResult flat;
  TreeResult tree;

  [[nodiscard]] double flatRate() const {
    return static_cast<double>(flat.ingested) / flat.periods;
  }
  [[nodiscard]] double treeRate() const {
    return static_cast<double>(tree.ingested) / tree.periods;
  }
  [[nodiscard]] double speedup() const {
    const double base = std::max(flatRate(), 1.0);
    return treeRate() / base;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_federation.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) {
      jsonPath = argv[i + 1];
    } else if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }

  std::cout << "=== federation fan-in tree vs flat daemon ===\n\n";

  bool ok = true;
  std::vector<ScaleReport> reports;
  if (smoke) {
    // The check.sh failover smoke: a 3-level tree loses one of its three
    // group daemons mid-run and gets it back after the catalog TTL; zero
    // acked-window loss and full rank coverage must survive the trip.
    ScaleReport report;
    report.ranks = 96;
    report.flat = runFlat(report.ranks, 20);
    report.tree = runTree(report.ranks, 20, /*killGroup=*/true,
                          /*restartGroup=*/true, /*groups=*/3,
                          /*nodesPerGroup=*/2);
    if (report.tree.membershipChanges == 0 || report.tree.resyncs == 0) {
      std::cerr << "ERROR: the group kill never reached the node "
                   "forwarders (no membership change / resync)\n";
      ok = false;
    }
    if (report.tree.catalogExpired == 0) {
      std::cerr << "ERROR: the crashed group's catalog entry never "
                   "expired\n";
      ok = false;
    }
    reports.push_back(report);
  } else {
    {
      ScaleReport report;
      report.ranks = 1000;
      report.flat = runFlat(report.ranks, 24);
      report.tree = runTree(report.ranks, 24, /*killGroup=*/true,
                            /*restartGroup=*/false, /*groups=*/4,
                            /*nodesPerGroup=*/4);
      reports.push_back(report);
    }
    {
      ScaleReport report;
      report.ranks = 4000;
      report.flat = runFlat(report.ranks, 12);
      report.tree = runTree(report.ranks, 12, /*killGroup=*/false,
                            /*restartGroup=*/false, /*groups=*/4,
                            /*nodesPerGroup=*/4);
      reports.push_back(report);
    }
  }

  std::uint64_t ackedLoss = 0;
  std::uint64_t seriesChecked = 0;
  bool coverageComplete = true;
  double minSpeedup = 1e18;
  for (const auto& report : reports) {
    ackedLoss += report.tree.ackedLoss;
    seriesChecked += report.tree.seriesChecked;
    coverageComplete =
        coverageComplete && report.tree.rootRankCoverage == report.ranks;
    minSpeedup = std::min(minSpeedup, report.speedup());
    std::cout << "  " << report.ranks << " ranks:\n"
              << "    flat:  " << report.flat.ingested << " records ("
              << report.flatRate() << " records/vs), "
              << report.flat.backlog << " stale in backlog, query "
              << report.flat.queryMeanUs << " us\n"
              << "    tree:  " << report.tree.ingested << " records ("
              << report.treeRate() << " records/vs), query "
              << report.tree.queryMeanUs << " us, speedup "
              << report.speedup() << "x\n"
              << "    root:  " << report.tree.rootRankCoverage << "/"
              << report.ranks << " ranks, acked_loss "
              << report.tree.ackedLoss << "/" << report.tree.seriesChecked
              << " series, " << report.tree.membershipChanges
              << " membership change(s), " << report.tree.resyncs
              << " resync(s)\n";
    if (!report.tree.drained) {
      std::cerr << "ERROR: the tree never quiesced at " << report.ranks
                << " ranks\n";
      ok = false;
    }
  }

  if (ackedLoss != 0) {
    std::cerr << "ERROR: " << ackedLoss
              << " acked coarse window(s) missing at the root\n";
    ok = false;
  }
  if (seriesChecked == 0) {
    std::cerr << "ERROR: the zero-loss check compared no series — the "
                 "node stores were empty, so the invariant is vacuous\n";
    ok = false;
  }
  if (!coverageComplete) {
    std::cerr << "ERROR: the root's store does not cover every rank\n";
    ok = false;
  }
  // The speedup floor only means something when the flat daemon is
  // saturated; the small smoke tree exists for the failover story, not
  // the throughput one.
  if (!smoke && minSpeedup < 2.0) {
    std::cerr << "ERROR: tree ingest speedup " << minSpeedup
              << "x is below the 2x floor\n";
    ok = false;
  }

  std::ofstream jsonOut(jsonPath);
  if (jsonOut) {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "federation");
    w.field("smoke", smoke);
    w.key("scales").beginArray();
    for (const auto& report : reports) {
      w.beginObject();
      w.field("ranks", static_cast<std::uint64_t>(report.ranks));
      w.field("flat_ingest_records_per_vsecond", report.flatRate());
      w.field("flat_backlog_records", report.flat.backlog);
      w.field("tree_ingest_records_per_vsecond", report.treeRate());
      w.field("tree_speedup", report.speedup());
      w.field("flat_query_mean_us", report.flat.queryMeanUs);
      w.field("tree_query_mean_us", report.tree.queryMeanUs);
      w.field("root_rank_coverage",
              static_cast<std::uint64_t>(report.tree.rootRankCoverage));
      w.field("acked_loss", report.tree.ackedLoss);
      w.field("series_checked", report.tree.seriesChecked);
      w.field("membership_changes", report.tree.membershipChanges);
      w.field("resyncs", report.tree.resyncs);
      w.endObject();
    }
    w.endArray();
    w.field("acked_loss", ackedLoss);
    w.field("coverage_complete", coverageComplete);
    w.field("tree_speedup_min", minSpeedup);
    w.field("tree_speedup_ge_2", minSpeedup >= 2.0);
    w.endObject();
    jsonOut << '\n';
    std::cout << "\nwrote " << jsonPath << '\n';
  } else {
    std::cerr << "could not write " << jsonPath << '\n';
    return 1;
  }
  return ok ? 0 : 1;
}
