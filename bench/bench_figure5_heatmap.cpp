// Regenerates paper Figure 5: the MPI point-to-point heatmap of a
// 512-rank gyrokinetic particle-in-cell code, showing the strong
// nearest-neighbour pattern along the central diagonal.  Prints the ASCII
// rendering, writes the PGM image, and reports the diagonal-dominance
// statistic.
#include <iostream>

#include "analysis/heatmap.hpp"
#include "common/strings.hpp"
#include "mpisim/patterns.hpp"

int main() {
  using namespace zerosum;
  std::cout << "=== Reproduction of Figure 5 (512-rank P2P heatmap) ===\n";
  mpisim::patterns::GyrokineticParams params;
  const auto matrix = mpisim::patterns::toMatrix(
      512, [&](const mpisim::patterns::SendFn& send) {
        mpisim::patterns::gyrokineticPic(512, params, send);
      });

  analysis::HeatmapOptions opts;
  opts.bins = 64;
  std::cout << analysis::renderAscii(matrix, opts);

  std::cout << "total bytes: " << matrix.totalBytes() << " ("
            << strings::fixed(static_cast<double>(matrix.totalBytes()) / 1e10,
                              3)
            << "e10; the paper's colorbar tops out at ~1.75e10)\n";
  std::cout << "bytes within +/-1 of the diagonal: "
            << (matrix.diagonalDominance(1, 0.90) ? ">= 90%" : "< 90%")
            << " — the paper's 'strong nearest-neighbor pattern along the "
               "central diagonal'\n";
  const std::string path =
      analysis::writePgmFile(matrix, "figure5_heatmap.pgm", opts);
  std::cout << "wrote " << path << '\n';
  return 0;
}
