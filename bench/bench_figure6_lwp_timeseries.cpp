// Regenerates paper Figure 6: per-LWP utilization over time for the
// Table 3 run, from the same CSV time series ZeroSum logs.  The paper's
// observation — individual-thread series are noisy while the aggregate is
// stable ("/proc data is not accurate enough for detailed performance
// measurement but is accurate in the aggregate") — is printed as a
// computed statistic.
#include <iostream>

#include "analysis/charts.hpp"
#include "common/strings.hpp"
#include "experiment_support.hpp"

#include <fstream>

#include "core/csv_export.hpp"

int main() {
  using namespace zerosum;
  using namespace zerosum::bench;
  std::cout << "=== Reproduction of Figure 6 (LWP utilization over time) "
               "===\n";
  // The figure belongs to the third (bound) configuration; more steps give
  // a longer series.  One extra team member beyond the cores makes the
  // quantization noise of per-thread /proc sampling visible, as on the
  // real system.
  const auto result = runFrontierExperiment(LaunchMode::kCores7,
                                            /*steps=*/120,
                                            /*workPerStep=*/12);
  analysis::ChartOptions opts;
  opts.width = 50;
  opts.jiffiesPerPeriod =
      result.session->config().jiffiesPerPeriod();
  std::cout << analysis::renderLwpUtilization(
      result.session->lwps().records(), opts);

  {
    std::ofstream csv("figure6_lwp_timeseries.csv");
    core::CsvExporter::writeLwpSeries(csv, result.session->lwps().records());
    std::cout << "wrote figure6_lwp_timeseries.csv\n";
  }

  const double excess = analysis::lwpNoiseExcess(
      result.session->lwps().records(), opts.jiffiesPerPeriod);
  std::cout << "\nper-LWP noise excess over the aggregate series: "
            << strings::fixed(excess, 3)
            << " busy-percentage points (positive = individual threads are "
               "noisier, the Figure 6 observation)\n";
  return 0;
}
