// Regenerates paper Figure 7: per-hardware-thread (CPU core) utilization
// over time for the bound configuration, from the HWT time series in the
// ZeroSum log.
#include <iostream>

#include "analysis/charts.hpp"
#include "experiment_support.hpp"

#include <fstream>

#include "core/csv_export.hpp"

int main() {
  using namespace zerosum;
  using namespace zerosum::bench;
  std::cout << "=== Reproduction of Figure 7 (CPU core utilization over "
               "time) ===\n";
  const auto result = runFrontierExperiment(LaunchMode::kBound,
                                            /*steps=*/120,
                                            /*workPerStep=*/12);
  analysis::ChartOptions opts;
  opts.width = 50;
  std::cout << analysis::renderHwtUtilization(
      result.session->hwts().records(), opts);
  {
    std::ofstream csv("figure7_hwt_timeseries.csv");
    core::CsvExporter::writeHwtSeries(csv, result.session->hwts().records());
    std::cout << "wrote figure7_hwt_timeseries.csv\n";
  }
  std::cout << "\nAggregate view (mean per HWT over the run):\n"
            << core::Reporter::renderHwtSection(
                   result.session->hwts().records());
  return 0;
}
