// Regenerates paper Figure 8 (§4.1): the monitoring-overhead evaluation.
//
// Part 1 — live measurement: the real-compute miniQMC proxy runs 10 times
// with and without the real ZeroSum monitor (RealProcFs + async sampling
// thread) in this very process, and the run-time distributions are
// compared with Welch's t-test, exactly as the paper does.  The container
// gives this harness a single CPU, so the monitor always shares a core
// with busy workers — the analogue of the paper's *contended*
// two-threads-per-core scenario (the one where the paper does observe
// overhead, 0.2752 s ≈ 0.5%).
//
// Part 2 — simulated sampling-rate ablation on the Frontier node model.
// The simulator's 10 ms jiffy cannot express the monitor's true ~0.2 ms
// sample cost (it charges a full jiffy per wake, a ~50x overstatement), so
// rather than faking sub-jiffy precision this part measures how the upper
// bound on perturbation scales with the sampling period: at the paper's
// default 1 s period the bound is already ~1%, and it vanishes as the
// period grows — consistent with the paper's "< 0.5% at 1 s" with the
// true per-sample cost.
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/overhead.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "core/monitor.hpp"
#include "procfs/procfs.hpp"
#include "procfs/simfs.hpp"
#include "proxyapps/miniqmc.hpp"
#include "sim/workload.hpp"
#include "topology/presets.hpp"

using namespace zerosum;

namespace {

double timedProxyRun(bool withMonitor, std::uint64_t seed) {
  std::unique_ptr<core::MonitorSession> session;
  if (withMonitor) {
    core::Config cfg;
    cfg.period = std::chrono::milliseconds(100);  // 10x the paper's rate:
    cfg.signalHandler = false;                    // a *harder* test in a
    cfg.csvExport = false;                        // short run
    cfg.jiffyHz = static_cast<std::uint64_t>(::sysconf(_SC_CLK_TCK));
    session = std::make_unique<core::MonitorSession>(
        cfg, procfs::makeRealProcFs());
    session->start();
  }
  proxyapps::MiniQmcParams params;
  params.threads = 2;
  params.steps = 120;
  params.walkersPerThread = 6;
  params.electrons = 96;
  params.tiling = 3;
  params.seed = seed;
  const auto result = proxyapps::runMiniQmc(params);
  if (session) {
    session->stop();
  }
  return result.seconds;
}

/// Simulated run of a bound 7-thread rank; `monitorPeriodJiffies == 0`
/// disables the monitor thread entirely (baseline).
double simulatedRuntime(sim::Jiffies monitorPeriodJiffies,
                        std::uint64_t seed) {
  const auto topo = topology::presets::frontier();
  sim::SimNode node(topo.allPus(), 512ULL << 30, sim::SchedulerParams{},
                    seed);
  sim::MiniQmcConfig qmc;
  qmc.ompThreads = 7;
  qmc.steps = 60;
  qmc.workPerStep = 12;
  qmc.workJitter = 0.15;  // walker-level load imbalance between runs
  qmc.withZeroSumThread = monitorPeriodJiffies > 0;
  qmc.zeroSumPeriodJiffies =
      monitorPeriodJiffies > 0 ? monitorPeriodJiffies : sim::kHz;
  for (int t = 0; t < qmc.ompThreads; ++t) {
    qmc.threadBinding.push_back(
        CpuSet::of({static_cast<std::size_t>(1 + t)}));
  }
  const auto rank = sim::buildMiniQmcRank(node, CpuSet::fromList("1-7"), qmc,
                                          node.hwts());
  while (!node.processFinished(rank.pid) && node.nowSeconds() < 600.0) {
    node.advance(1);
  }
  return node.nowSeconds();
}

void writeSummary(json::Writer& w, const char* key,
                  const stats::Summary& s) {
  w.key(key).beginObject();
  w.field("n", static_cast<std::uint64_t>(s.n));
  w.field("mean", s.mean);
  w.field("stddev", s.stddev);
  w.field("min", s.min);
  w.field("max", s.max);
  w.field("median", s.median);
  w.endObject();
}

void writeComparison(json::Writer& w, const std::string& label,
                     const analysis::OverheadResult& r) {
  w.beginObject();
  w.field("label", label);
  writeSummary(w, "baseline", r.baseline);
  writeSummary(w, "with_tool", r.withTool);
  w.field("t", r.ttest.t);
  w.field("df", r.ttest.df);
  w.field("p_value", r.ttest.pValue);
  w.field("overhead_abs", r.overheadAbs);
  w.field("overhead_fraction", r.overheadFraction);
  w.field("significant", r.significant);
  w.endObject();
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_overhead.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      jsonPath = argv[i + 1];
    }
  }
  std::cout << "=== Reproduction of Figure 8 (ZeroSum overhead) ===\n\n";

  // --- Part 1: live runs on this machine --------------------------------
  constexpr int kRuns = 10;
  std::vector<double> baseline;
  std::vector<double> withTool;
  // Warm-up run to populate caches fairly.
  timedProxyRun(false, 0);
  for (int i = 0; i < kRuns; ++i) {
    baseline.push_back(
        timedProxyRun(false, 1000 + static_cast<std::uint64_t>(i)));
    withTool.push_back(
        timedProxyRun(true, 1000 + static_cast<std::uint64_t>(i)));
  }
  const auto live = analysis::compareOverhead(baseline, withTool);
  const std::string liveLabel =
      "live miniQMC proxy, 10 runs each, 100 ms sampling";
  std::cout << analysis::renderOverhead(live, liveLabel);
  std::cout << "(paper, 1 thread/core, 1 s sampling: p = 0.998, no "
               "measurable overhead;\n paper, 2 threads/core: p = 0.0006, "
               "+0.2752 s = < 0.5%)\n\n";

  // --- Part 2: simulated sampling-rate ablation --------------------------
  std::vector<double> simBaseline;
  for (int i = 0; i < kRuns; ++i) {
    simBaseline.push_back(
        simulatedRuntime(0, static_cast<std::uint64_t>(100 + i)));
  }
  std::vector<std::pair<std::string, analysis::OverheadResult>> simResults;
  for (sim::Jiffies period : {sim::Jiffies{500}, sim::Jiffies{100},
                              sim::Jiffies{10}}) {
    std::vector<double> simTool;
    for (int i = 0; i < kRuns; ++i) {
      simTool.push_back(
          simulatedRuntime(period, static_cast<std::uint64_t>(100 + i)));
    }
    const auto sim = analysis::compareOverhead(simBaseline, simTool);
    const std::string label =
        "simulated Frontier rank, monitor period " +
        strings::fixed(static_cast<double>(period) /
                           static_cast<double>(sim::kHz),
                       1) +
        " s";
    std::cout << analysis::renderOverhead(sim, label);
    simResults.emplace_back(label, sim);
  }
  std::cout << "(The simulator charges a full 10 ms jiffy per monitor "
               "wake — ~50x the tool's\n real ~0.2 ms sample cost — so "
               "these simulated overheads are upper bounds; the\n paper's "
               "1 s period lands under 0.5% with the true cost.)\n";

  // Machine-readable companion to the prose above, for regression
  // tracking across runs (same spirit as the google-benchmark JSON from
  // bench_micro).
  // The paper's acceptance budget (§4.1): monitoring perturbs the proxy
  // app by less than 0.5%.  Only a *statistically significant* overhead
  // counts against the budget — an insignificant t-test means the two
  // distributions are indistinguishable, i.e. no measurable overhead.
  constexpr double kBudgetFraction = 0.005;
  const bool withinBudget =
      !live.significant || live.overheadFraction < kBudgetFraction;

  std::ofstream jsonOut(jsonPath);
  if (jsonOut) {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "figure8_overhead");
    w.field("runs_per_config", static_cast<std::uint64_t>(kRuns));
    w.field("budget_fraction", kBudgetFraction);
    w.field("within_budget", withinBudget);
    w.key("live");
    writeComparison(w, liveLabel, live);
    w.key("simulated").beginArray();
    for (const auto& [label, result] : simResults) {
      writeComparison(w, label, result);
    }
    w.endArray();
    w.endObject();
    jsonOut << '\n';
    std::cout << "wrote " << jsonPath << '\n';
  } else {
    std::cerr << "could not write " << jsonPath << '\n';
  }

  if (!withinBudget) {
    std::cerr << "ERROR: significant monitoring overhead of "
              << live.overheadFraction * 100.0 << "% exceeds the paper's "
              << kBudgetFraction * 100.0 << "% budget\n";
    return 1;
  }
  return 0;
}
