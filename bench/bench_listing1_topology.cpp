// Regenerates paper Listing 1: the hwloc topology print for the 4-core
// i7-1165G7 test system, including the L#/P# hardware-thread index skew
// the listing calls out.
#include <iostream>

#include "topology/presets.hpp"
#include "topology/render.hpp"

int main() {
  using namespace zerosum::topology;
  std::cout << "=== Reproduction of Listing 1 (hwloc output, Intel Core "
               "i7-1165G7) ===\n";
  RenderOptions opts;
  opts.showGpus = false;
  std::cout << renderTree(presets::i7_1165g7(), opts);
  std::cout << "\nNote (as in the paper): the logical index (L#) of each "
               "PU differs from the\noperating system index (P#) — PU L#1 "
               "on Core L#0 is P#4.\n";
  return 0;
}
