// Regenerates paper Listing 2: the full end-of-run report for the GPU
// target-offload miniQMC execution on Frontier — process summary, LWP
// table with the offload signature (~12.5% system time, large voluntary
// context-switch counts from kernel synchronization), the HWT table with
// idle SMT-disabled alternate cores, and the GPU min/avg/max metric table
// with the visible-vs-true GCD index distinction.
#include <iostream>

#include "core/monitor.hpp"
#include "gpu/simulated.hpp"
#include "procfs/simfs.hpp"
#include "sim/workload.hpp"
#include "topology/presets.hpp"

using namespace zerosum;

int main() {
  std::cout << "=== Reproduction of Listing 2 (miniQMC with OpenMP target "
               "offload, srun -n8 --gpus-per-task=1 -c7 "
               "--gpu-bind=closest) ===\n\n";
  const auto topo = topology::presets::frontier();
  sim::slurm::SrunArgs args;
  args.ntasks = 8;
  args.cpusPerTask = 7;
  args.gpusPerTask = 1;
  args.gpuBindClosest = true;
  const auto plan = sim::slurm::planSrun(topo, args);

  sim::SimNode node(topo.allPus(), 512ULL << 30);
  sim::MiniQmcConfig qmc;
  qmc.ompThreads = 4;  // OMP_NUM_THREADS=4 as in the listing
  qmc.steps = 150;
  qmc.workPerStep = 6;
  qmc.gpuOffload = true;
  qmc.offloadSyncJiffies = 10;

  std::vector<sim::BuiltRank> ranks;
  for (const auto& placement : plan) {
    sim::MiniQmcConfig cfg = qmc;
    cfg.threadBinding = sim::slurm::planOmpBinding(
        topo, placement.cpus, qmc.ompThreads, sim::slurm::OmpBind::kSpread,
        sim::slurm::OmpPlaces::kCores);
    ranks.push_back(
        sim::buildMiniQmcRank(node, placement.cpus, cfg, node.hwts()));
  }

  // Rank 0's GPU: visible index 0, true GCD 4 (the listing's footnote).
  const auto& gpuInfo = topo.gpuByVisibleIndex(plan[0].gpuVisibleIndexes[0]);
  auto device = std::make_shared<gpu::SimulatedGpu>(
      gpuInfo.visibleIndex, gpuInfo.physicalIndex, gpuInfo.model);
  device->allocate(4700ULL << 20);  // walker + spline buffers (~4.7 GB)

  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  core::ProcessIdentity identity;
  identity.rank = 0;
  identity.worldSize = 8;
  identity.pid = ranks[0].pid;
  identity.hostname = "frontier09085";
  core::MonitorSession session(cfg,
                               procfs::makeSimProcFs(node, ranks[0].pid),
                               identity, {device});

  // Drive the GPU activity from the workload phase: during offload syncs
  // the device is busy; between them it idles (the listing's 0-52% busy
  // swing).
  while (!node.allWorkFinished() && node.nowSeconds() < 900.0) {
    const double phase =
        node.task(ranks[0].mainTid).state == sim::TaskState::kSleeping
            ? 0.45
            : 0.0;
    device->setActivity(phase);
    device->advance(1.0);
    node.advance(sim::kHz);
    session.sampleNow(node.nowSeconds());
  }

  std::cout << session.report();
  std::cout << "\n(The GPU section reports visible index "
            << gpuInfo.visibleIndex << "; the true GCD index is "
            << gpuInfo.physicalIndex
            << " — the listing's visible-vs-physical distinction.)\n";
  return 0;
}
