// Cost of the live telemetry plane: /metrics scrape latency and the
// ingest slowdown a per-period scraper inflicts on the daemon.
//
// One adaptive client feeds stamped batches into a daemon over the pipe
// transport while an HTTP client scrapes GET /metrics through the
// mounted endpoint set every period — the render walks the full
// MetricsRegistry (counters, gauges, four per-stage latency histograms)
// on the daemon's own poll thread, which is exactly where a slow
// exposition would hurt.
//
// The gated invariants (scripts/bench_gate.py):
//   * all_stages_nonzero        — after the run, every one of the four
//     latency-attribution stages has observations; if this goes false
//     the plane is exporting empty histograms and the latency numbers
//     upstream dashboards show are vacuous.
//   * exposition_has_all_stages — the scraped body itself carries the
//     four histogram families (render-side regression guard).
// plus scrape_p99_us and ingest_records_per_second as catastrophic-only
// throughput ratios.
//
// Emits BENCH_metrics.json (json::Writer); --out <path> overrides.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "aggregator/client.hpp"
#include "aggregator/daemon.hpp"
#include "aggregator/http.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "common/interning.hpp"
#include "common/json.hpp"
#include "trace/metrics.hpp"

using namespace zerosum;
using namespace zerosum::aggregator;

namespace {

constexpr int kPeriods = 400;
constexpr int kMetrics = 32;
constexpr int kSamplesPerMetric = 8;  // 256 records per period -> one flush

const char* const kStageMetrics[] = {
    "zs.agg.daemon.latency.enqueue_to_send_seconds",
    "zs.agg.daemon.latency.send_to_ingest_seconds",
    "zs.agg.daemon.latency.ingest_to_durable_seconds",
    "zs.agg.daemon.latency.roundtrip_seconds",
};

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The prometheus family name a registry entry renders as.
std::string promName(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

struct Pipeline {
  Pipeline()
      : daemon(wireHub.makeServer()),
        http(httpHub.makeServer()),
        scraper(httpHub.makeClientTransport()) {
    Hello hello;
    hello.job = "bench";
    hello.rank = 0;
    hello.worldSize = 1;
    hello.hostname = "node0000";
    hello.pid = 1000;
    client = std::make_unique<Client>(wireHub.makeClientTransport(), hello);
    mountDaemonEndpoints(http, daemon, [this] { return t; },
                         {{"job", "bench"}, {"role", "daemon"}});
    scraper->connect();
  }

  /// One full keep-alive GET /metrics exchange; returns the body.
  std::string scrape() {
    scraper->send("GET /metrics HTTP/1.1\r\n\r\n");
    std::string response;
    for (int i = 0; i < 64; ++i) {
      http.poll();
      scraper->receive(response);
      const auto headerEnd = response.find("\r\n\r\n");
      if (headerEnd == std::string::npos) continue;
      const auto lenAt = response.find("Content-Length: ");
      if (lenAt == std::string::npos) break;
      const std::size_t length =
          std::stoul(response.substr(lenAt + 16, headerEnd - lenAt));
      if (response.size() >= headerEnd + 4 + length) {
        return response.substr(headerEnd + 4, length);
      }
    }
    return "";
  }

  PipeHub wireHub;
  PipeHub httpHub;
  Aggregator daemon;
  HttpServer http;
  std::unique_ptr<Transport> scraper;
  std::unique_ptr<Client> client;
  double t = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_metrics.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      jsonPath = argv[i + 1];
    }
  }

  std::cout << "=== /metrics scrape cost under live ingest ===\n\n";
  trace::MetricsRegistry::instance().reset();

  std::vector<names::Id> ids;
  for (int m = 0; m < kMetrics; ++m) {
    ids.push_back(names::intern("bench.metric." + std::to_string(m)));
  }
  std::vector<IdRecord> batch;
  batch.reserve(kMetrics * kSamplesPerMetric);

  Pipeline pipe;
  std::vector<double> scrapeUs;
  scrapeUs.reserve(kPeriods);
  std::string body;

  const auto start = std::chrono::steady_clock::now();
  for (int period = 0; period < kPeriods; ++period, pipe.t += 1.0) {
    batch.clear();
    for (int m = 0; m < kMetrics; ++m) {
      for (int s = 0; s < kSamplesPerMetric; ++s) {
        batch.push_back({pipe.t, ids[static_cast<std::size_t>(m)],
                         static_cast<double>(period % 100 + s)});
      }
    }
    pipe.client->enqueueIds(batch, pipe.t);
    pipe.daemon.poll(pipe.t);
    pipe.client->pump(pipe.t);  // drain acks -> roundtrip stamps flow

    const auto scrapeStart = std::chrono::steady_clock::now();
    body = pipe.scrape();
    scrapeUs.push_back(secondsSince(scrapeStart) * 1e6);
  }
  const double elapsed = secondsSince(start);

  const std::uint64_t ingested = pipe.daemon.counters().recordsIngested;
  const double ingestRate =
      elapsed > 0.0 ? static_cast<double>(ingested) / elapsed : 0.0;

  std::sort(scrapeUs.begin(), scrapeUs.end());
  const double meanUs =
      scrapeUs.empty()
          ? 0.0
          : std::accumulate(scrapeUs.begin(), scrapeUs.end(), 0.0) /
                static_cast<double>(scrapeUs.size());
  const double p99Us =
      scrapeUs.empty()
          ? 0.0
          : scrapeUs[std::min(scrapeUs.size() - 1,
                              static_cast<std::size_t>(
                                  static_cast<double>(scrapeUs.size()) *
                                  0.99))];

  bool allStagesNonzero = true;
  bool expositionHasAllStages = true;
  auto& registry = trace::MetricsRegistry::instance();
  std::cout << "  per-stage latency observations:\n";
  for (const char* name : kStageMetrics) {
    const auto stats = registry.latency(name).stats();
    std::cout << "    " << name << ": " << stats.count << "\n";
    if (stats.count == 0) allStagesNonzero = false;
    if (body.find(promName(name) + "_count") == std::string::npos) {
      expositionHasAllStages = false;
    }
  }
  std::cout << "  ingested:  " << ingested << " records ("
            << static_cast<std::uint64_t>(ingestRate) << " records/s wall)\n"
            << "  scrapes:   " << scrapeUs.size() << " (mean " << meanUs
            << " us, p99 " << p99Us << " us, last body " << body.size()
            << " bytes)\n";

  bool ok = true;
  if (!allStagesNonzero) {
    std::cerr << "ERROR: a latency stage recorded zero observations; the "
              << "attribution pipeline is dark\n";
    ok = false;
  }
  if (!expositionHasAllStages) {
    std::cerr << "ERROR: the scraped exposition is missing a stage "
              << "histogram family\n";
    ok = false;
  }

  std::ofstream jsonOut(jsonPath);
  if (jsonOut) {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "metrics_endpoint");
    w.field("periods", static_cast<std::uint64_t>(kPeriods));
    w.field("scrapes", static_cast<std::uint64_t>(scrapeUs.size()));
    w.field("scrape_mean_us", meanUs);
    w.field("scrape_p99_us", p99Us);
    w.field("scrape_body_bytes", static_cast<std::uint64_t>(body.size()));
    w.field("records_ingested", ingested);
    w.field("ingest_records_per_second", ingestRate);
    w.field("all_stages_nonzero", allStagesNonzero);
    w.field("exposition_has_all_stages", expositionHasAllStages);
    w.endObject();
    jsonOut << '\n';
    std::cout << "\nwrote " << jsonPath << '\n';
  } else {
    std::cerr << "could not write " << jsonPath << '\n';
    return 1;
  }
  return ok ? 0 : 1;
}
