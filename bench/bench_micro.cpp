// Micro-benchmarks (google-benchmark): the per-operation costs that bound
// ZeroSum's overhead budget — /proc text parsing, a full monitor sample as
// a function of thread count, the MPI interposition per message, CpuSet
// parsing, and the simulator's scheduler tick.
#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cpuset.hpp"
#include "core/monitor.hpp"
#include "export/staging.hpp"
#include "mpisim/patterns.hpp"
#include "topology/presets.hpp"
#include "mpisim/recorder.hpp"
#include "procfs/parse.hpp"
#include "procfs/simfs.hpp"
#include "sim/workload.hpp"

namespace {

using namespace zerosum;

void BM_ParseTaskStat(benchmark::State& state) {
  const std::string line =
      "51334 (miniqmc) R 51300 51334 51300 34816 51334 4194304 "
      "881204 0 12 0 6394 1248 0 0 20 0 9 0 8941321 108000000 220301 "
      "18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0 "
      "0 0 0 0 0 0 0 0\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(procfs::parseTaskStat(line));
  }
}
BENCHMARK(BM_ParseTaskStat);

void BM_ParseStatus(benchmark::State& state) {
  const std::string text =
      "Name:\tminiqmc\nState:\tR (running)\nTgid:\t51334\nPid:\t51334\n"
      "VmHWM:\t904532 kB\nVmRSS:\t881204 kB\nThreads:\t9\n"
      "Cpus_allowed_list:\t1-7\nvoluntary_ctxt_switches:\t365488\n"
      "nonvoluntary_ctxt_switches:\t4\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(procfs::parseStatus(text));
  }
}
BENCHMARK(BM_ParseStatus);

void BM_ParseMeminfo(benchmark::State& state) {
  const std::string text =
      "MemTotal:       527988388 kB\nMemFree:        483178044 kB\n"
      "MemAvailable:   508065400 kB\nBuffers:            4088 kB\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(procfs::parseMeminfo(text));
  }
}
BENCHMARK(BM_ParseMeminfo);

void BM_CpuSetParseFormat(benchmark::State& state) {
  const std::string list =
      "1-7,9-15,17-23,25-31,33-39,41-47,49-55,57-63,65-71,73-79,81-87,"
      "89-95,97-103,105-111,113-119,121-127";
  for (auto _ : state) {
    const CpuSet set = CpuSet::fromList(list);
    benchmark::DoNotOptimize(set.toList());
  }
}
BENCHMARK(BM_CpuSetParseFormat);

/// One full monitor sample against a simulated rank with N team threads:
/// this is the work the async thread does once per period.
void BM_MonitorSample(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  sim::SimNode node(CpuSet::fromList("0-63"), 64ULL << 30);
  sim::MiniQmcConfig qmc;
  qmc.ompThreads = threads;
  qmc.steps = 1000000;  // effectively endless during the benchmark
  qmc.workPerStep = 50;
  const auto rank = sim::buildMiniQmcRank(
      node, CpuSet::range(0, static_cast<std::size_t>(threads)), qmc,
      node.hwts());
  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  core::MonitorSession session(cfg, procfs::makeSimProcFs(node, rank.pid));
  double t = 0.0;
  for (auto _ : state) {
    node.advance(1);
    t += 1.0;
    session.sampleNow(t);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(threads));
}
BENCHMARK(BM_MonitorSample)->Arg(2)->Arg(8)->Arg(32);

void BM_CommRecorderPerMessage(benchmark::State& state) {
  mpisim::Recorder recorder(0);
  int peer = 0;
  for (auto _ : state) {
    recorder.recordSend(peer, 1 << 20);
    peer = (peer + 1) % 64;
  }
  benchmark::DoNotOptimize(recorder.totalBytesSent());
}
BENCHMARK(BM_CommRecorderPerMessage);

void BM_SchedulerTick(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  sim::SimNode node(CpuSet::fromList("0-127"), 512ULL << 30);
  const sim::Pid pid = node.spawnProcess("bench", CpuSet{});
  sim::Behavior busy;
  busy.iterations = 1;
  busy.iterWorkJiffies = 1ULL << 40;  // effectively endless
  for (int t = 0; t < tasks; ++t) {
    node.spawnTask(pid, "worker", LwpType::kOther, busy);
  }
  for (auto _ : state) {
    node.advance(1);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SchedulerTick)->Arg(8)->Arg(72);

void BM_ReportRender(benchmark::State& state) {
  // Rendering the Listing-2 report for a 9-LWP rank (the end-of-run cost).
  std::map<int, core::LwpRecord> lwps;
  for (int tid = 100; tid < 109; ++tid) {
    core::LwpRecord r;
    r.tid = tid;
    r.type = LwpType::kOpenMp;
    for (int i = 0; i < 60; ++i) {
      core::LwpSample sample;
      sample.timeSeconds = i;
      sample.utimeDelta = 90;
      sample.stimeDelta = 2;
      sample.affinity = CpuSet::fromList("1-7");
      r.samples.push_back(sample);
    }
    lwps[tid] = r;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Reporter::renderLwpTable(lwps));
  }
}
BENCHMARK(BM_ReportRender);

void BM_CsvExportPerPeriod(benchmark::State& state) {
  std::map<int, core::LwpRecord> lwps;
  core::LwpRecord r;
  r.tid = 1;
  for (int i = 0; i < 100; ++i) {
    core::LwpSample sample;
    sample.affinity = CpuSet::fromList("1-7");
    r.samples.push_back(sample);
  }
  lwps[1] = r;
  for (auto _ : state) {
    std::ostringstream out;
    core::CsvExporter::writeLwpSeries(out, lwps);
    benchmark::DoNotOptimize(out.str());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CsvExportPerPeriod);

void BM_StagingWriteStep(benchmark::State& state) {
  exporter::StagingWriter writer("/tmp/zs_bench_staging.bin");
  const std::vector<double> row{1.0, 2.0};
  for (auto _ : state) {
    writer.beginStep();
    for (int v = 0; v < 20; ++v) {
      writer.put("metric." + std::to_string(v), row);
    }
    writer.endStep();
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_StagingWriteStep);

void BM_GyrokineticPatternGen(benchmark::State& state) {
  mpisim::patterns::GyrokineticParams params;
  params.steps = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpisim::patterns::toMatrix(
        512, [&](const mpisim::patterns::SendFn& send) {
          mpisim::patterns::gyrokineticPic(512, params, send);
        }));
  }
}
BENCHMARK(BM_GyrokineticPatternGen);

void BM_TopologyBuildFrontier(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::presets::frontier());
  }
}
BENCHMARK(BM_TopologyBuildFrontier);

}  // namespace

// BENCHMARK_MAIN() expanded by hand so the run also leaves a
// machine-readable result file behind by default: unless the caller
// already chose an output, inject --benchmark_out=BENCH_micro.json.
// Explicit --benchmark_out/--benchmark_format flags win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool hasOut = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      hasOut = true;
    }
  }
  std::string outFlag = "--benchmark_out=BENCH_micro.json";
  std::string formatFlag = "--benchmark_out_format=json";
  if (!hasOut) {
    args.push_back(outFlag.data());
    args.push_back(formatFlag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!hasOut) {
    std::cout << "wrote BENCH_micro.json\n";
  }
  return 0;
}
