// Regenerates the node-diagram information content of paper Figures 1-3:
// Summit, Frontier, Perlmutter, and Aurora, each as the NUMA / core-range /
// reserved-core / GPU-association table a user needs for configuration —
// including Frontier's non-intuitive GCD ordering ([[4,5],[2,3],[6,7],[0,1]]
// against NUMA [0,1,2,3]) and Perlmutter/Aurora's missing GPU-affinity
// information (Figure 3 caption).
#include <iostream>

#include "topology/presets.hpp"
#include "topology/render.hpp"

int main() {
  using namespace zerosum::topology;
  std::cout << "=== Reproduction of Figures 1-3 (node diagrams) ===\n\n";
  std::cout << "--- Figure 1: OLCF Summit ---\n"
            << renderNodeDiagram(presets::summit()) << '\n';
  std::cout << "--- Figure 2: OLCF Frontier ---\n"
            << renderNodeDiagram(presets::frontier()) << '\n';
  std::cout << "--- Figure 3 (left): NERSC Perlmutter ---\n"
            << renderNodeDiagram(presets::perlmutter()) << '\n';
  std::cout << "--- Figure 3 (right): ANL Aurora ---\n"
            << renderNodeDiagram(presets::aurora()) << '\n';
  return 0;
}
