// Sustained-overload behavior of the aggregation pipeline: 4 adaptive
// clients push far more records per period than a budget-capped daemon
// can admit, and the pipeline must degrade instead of drop.
//
// The gated invariants (scripts/bench_gate.py):
//   * records_dropped == 0  — the ladder coarsens before it sheds; with
//     a sane queue bound, sustained overload never discards a record.
//   * acked_loss == 0       — no client ever counts a record as acked
//     that the daemon did not ingest (acks mean "durable", always).
//   * coarsened_nonzero     — the overload genuinely engaged the
//     degradation ladder; if this goes false the bench measured an
//     idle pipeline and the other invariants are vacuous.
// plus ingest_records_per_second as a catastrophic-only throughput
// ratio, and coarsening_ratio reported for trend tracking.
//
// Emits BENCH_overload.json (json::Writer); --out <path> overrides.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/client.hpp"
#include "aggregator/daemon.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "common/interning.hpp"
#include "common/json.hpp"

using namespace zerosum;
using namespace zerosum::aggregator;

namespace {

constexpr int kClients = 4;
constexpr int kPeriods = 300;
constexpr int kMetrics = 64;         // distinct series per client
constexpr int kSamplesPerMetric = 8; // 512 records per client per period

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_overload.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      jsonPath = argv[i + 1];
    }
  }

  std::cout << "=== aggregation pipeline under sustained overload ===\n\n";

  auto hub = std::make_shared<PipeHub>();
  DaemonOptions daemonOptions;
  // The overload: the daemon admits at most 2 batches per poll while
  // the 4 clients flush at least 4, so the admission queue climbs until
  // pressure pushes the clients down the ladder.
  daemonOptions.maxBatchesPerPoll = 2;
  daemonOptions.maxPendingBatches = 64;
  Aggregator daemon(hub->makeServer(), {}, daemonOptions);

  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    Hello hello;
    hello.job = "overload";
    hello.rank = c;
    hello.worldSize = kClients;
    hello.hostname = "node0000";
    hello.pid = 1000 + c;
    ClientOptions options;
    options.batchRecords = 256;  // every period's 512 records flush eagerly
    clients.push_back(std::make_unique<Client>(hub->makeClientTransport(),
                                               hello, options));
  }

  std::vector<IdRecord> batch;
  batch.reserve(kMetrics * kSamplesPerMetric);
  std::vector<names::Id> ids;
  for (int m = 0; m < kMetrics; ++m) {
    ids.push_back(names::intern("overload.metric." + std::to_string(m)));
  }

  const auto start = std::chrono::steady_clock::now();
  double t = 1.0;
  for (int period = 0; period < kPeriods; ++period, t += 1.0) {
    for (int c = 0; c < kClients; ++c) {
      batch.clear();
      for (int m = 0; m < kMetrics; ++m) {
        for (int s = 0; s < kSamplesPerMetric; ++s) {
          batch.push_back({t, ids[static_cast<std::size_t>(m)],
                           static_cast<double>(period % 100 + s)});
        }
      }
      clients[static_cast<std::size_t>(c)]->enqueueIds(batch, t);
    }
    daemon.poll(t);
  }
  // Orderly shutdown: the daemon drains its backlog, then the clients
  // pump until their queues and coarse windows are flushed and the
  // final acks have come back.
  daemon.drainBacklog(t);
  for (int i = 0; i < 16; ++i, t += 1.0) {
    for (auto& client : clients) {
      client->pump(t);
    }
    daemon.poll(t);
    daemon.drainBacklog(t);
  }
  const double elapsed = secondsSince(start);

  std::uint64_t enqueued = 0;
  std::uint64_t sent = 0;
  std::uint64_t coarsened = 0;
  std::uint64_t dropped = 0;
  std::uint64_t acked = 0;
  std::uint64_t transitions = 0;
  for (const auto& client : clients) {
    const ClientCounters& c = client->counters();
    enqueued += c.recordsEnqueued;  // counts every offered record,
                                    // including ones then coarsened
    sent += c.recordsSent;
    coarsened += c.recordsCoarsened;
    dropped += c.recordsDropped;
    acked += c.recordsAcked;
    transitions += c.degradeTransitions;
  }
  const DaemonCounters& d = daemon.counters();
  const std::uint64_t ingested = d.recordsIngested;
  const std::uint64_t ackedLoss = acked > ingested ? acked - ingested : 0;
  const double ingestRate =
      elapsed > 0.0 ? static_cast<double>(ingested) / elapsed : 0.0;
  const double coarseningRatio =
      enqueued > 0
          ? static_cast<double>(coarsened) / static_cast<double>(enqueued)
          : 0.0;

  std::cout << "  offered:   " << enqueued << " records over " << kPeriods
            << " periods from " << kClients << " clients\n"
            << "  ingested:  " << ingested << " records ("
            << static_cast<std::uint64_t>(ingestRate) << " records/s wall)\n"
            << "  coarsened: " << coarsened << " (ratio " << coarseningRatio
            << ", " << transitions << " ladder transitions)\n"
            << "  dropped:   " << dropped << "\n"
            << "  acked:     " << acked << " (acked_loss " << ackedLoss
            << ")\n"
            << "  deferred:  " << d.batchesDeferred << " batch-polls, "
            << d.admissionBackstops << " backstops\n";

  bool ok = true;
  if (dropped != 0) {
    std::cerr << "ERROR: sustained overload dropped " << dropped
              << " record(s); the ladder must coarsen, not shed\n";
    ok = false;
  }
  if (ackedLoss != 0) {
    std::cerr << "ERROR: clients counted " << ackedLoss
              << " record(s) as acked that the daemon never ingested\n";
    ok = false;
  }
  if (coarsened == 0) {
    std::cerr << "ERROR: the overload never engaged the ladder; "
              << "the invariants above are vacuous\n";
    ok = false;
  }

  std::ofstream jsonOut(jsonPath);
  if (jsonOut) {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "overload");
    w.field("clients", static_cast<std::uint64_t>(kClients));
    w.field("periods", static_cast<std::uint64_t>(kPeriods));
    w.field("records_enqueued", enqueued);
    w.field("records_ingested", ingested);
    w.field("records_coarsened", coarsened);
    w.field("records_dropped", dropped);
    w.field("records_acked", acked);
    w.field("acked_loss", ackedLoss);
    w.field("coarsened_nonzero", coarsened > 0);
    w.field("degrade_transitions", transitions);
    w.field("batches_deferred", d.batchesDeferred);
    w.field("ingest_records_per_second", ingestRate);
    w.field("coarsening_ratio", coarseningRatio);
    w.endObject();
    jsonOut << '\n';
    std::cout << "\nwrote " << jsonPath << '\n';
  } else {
    std::cerr << "could not write " << jsonPath << '\n';
    return 1;
  }
  return ok ? 0 : 1;
}
