// Query/dashboard service under mixed read/write load: per-query latency
// through the full HTTP plane, sustained QPS, cache effectiveness, and
// the load-shedding contract (DESIGN.md §12).
//
// One adaptive client feeds stamped batches into a daemon over the pipe
// transport while a keep-alive HTTP reader drives GET /api/query through
// the mounted endpoint set — window/snapshot/series dashboard queries
// every period plus a periodic bulk export.  A final overload phase
// fires far more cache-busting queries per poll than the admission
// budget allows, which must shed the excess with 429 while still
// serving within-budget queries (shed, never stalled) and while the
// write path keeps ingesting losslessly.
//
// The gated invariants (scripts/bench_gate.py):
//   * records_dropped == 0  — serving a heavy read load must not cost
//     the lossless in-memory wire a single ingest record.
//   * shed_not_stalled      — under read overload, some queries answer
//     200 and the excess answers 429 with Retry-After; nothing hangs.
// plus live_p99_us / queries_per_second as catastrophic-only ratios and
// cache_hit_ratio as a bounded (deterministic workload) quantity.
//
// Emits BENCH_query.json (json::Writer); --out <path> overrides.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "aggregator/client.hpp"
#include "aggregator/daemon.hpp"
#include "aggregator/http.hpp"
#include "aggregator/queryservice.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "common/interning.hpp"
#include "common/json.hpp"
#include "trace/metrics.hpp"

using namespace zerosum;
using namespace zerosum::aggregator;

namespace {

constexpr int kPeriods = 300;
constexpr int kOverloadPeriods = 30;  // trailing periods with excess reads
constexpr int kMetrics = 16;
constexpr int kSamplesPerMetric = 8;
constexpr int kLiveQueriesPerPeriod = 8;
constexpr int kOverloadQueries = 200;  // > maxQueriesPerPoll (128)

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto at = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(static_cast<double>(sorted.size()) * p));
  return sorted[at];
}

struct Pipeline {
  Pipeline() : daemon(wireHub.makeServer()), http(httpHub.makeServer()) {
    Hello hello;
    hello.job = "bench";
    hello.rank = 0;
    hello.worldSize = 1;
    hello.hostname = "node0000";
    hello.pid = 1000;
    client = std::make_unique<Client>(wireHub.makeClientTransport(), hello);
    query = std::make_unique<QueryService>(daemon);
    daemon.attachQueryService(query.get());
    mountDaemonEndpoints(http, daemon, [this] { return t; },
                         {{"job", "bench"}, {"role", "daemon"}},
                         query.get());
    reader = httpHub.makeClientTransport();
    reader->connect();
  }

  /// One full keep-alive GET exchange; returns the HTTP status (0 when
  /// the response never completed) and leaves the body in `lastBody`.
  int get(const std::string& target) {
    reader->send("GET " + target + " HTTP/1.1\r\n\r\n");
    std::string response;
    for (int i = 0; i < 64; ++i) {
      http.poll();
      reader->receive(response);
      const auto headerEnd = response.find("\r\n\r\n");
      if (headerEnd == std::string::npos) continue;
      const auto lenAt = response.find("Content-Length: ");
      if (lenAt == std::string::npos) break;
      const std::size_t length =
          std::stoul(response.substr(lenAt + 16, headerEnd - lenAt));
      if (response.size() >= headerEnd + 4 + length) {
        lastBody = response.substr(headerEnd + 4, length);
        return std::atoi(response.c_str() + 9);  // after "HTTP/1.1 "
      }
    }
    return 0;
  }

  PipeHub wireHub;
  PipeHub httpHub;
  Aggregator daemon;
  HttpServer http;
  std::unique_ptr<QueryService> query;
  std::unique_ptr<Transport> reader;
  std::unique_ptr<Client> client;
  std::string lastBody;
  double t = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_query.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      jsonPath = argv[i + 1];
    }
  }

  std::cout << "=== query service under mixed read/write load ===\n\n";
  trace::MetricsRegistry::instance().reset();

  std::vector<names::Id> ids;
  std::vector<std::string> names;
  for (int m = 0; m < kMetrics; ++m) {
    names.push_back("bench.metric." + std::to_string(m));
    ids.push_back(names::intern(names.back()));
  }
  std::vector<IdRecord> batch;
  batch.reserve(kMetrics * kSamplesPerMetric);

  Pipeline pipe;
  std::vector<double> liveUs;
  liveUs.reserve(static_cast<std::size_t>(kPeriods * kLiveQueriesPerPeriod));
  std::uint64_t queriesIssued = 0;
  std::uint64_t overload200 = 0;
  std::uint64_t overload429 = 0;
  std::uint64_t overloadIncomplete = 0;

  const auto start = std::chrono::steady_clock::now();
  for (int period = 0; period < kPeriods; ++period, pipe.t += 1.0) {
    batch.clear();
    for (int m = 0; m < kMetrics; ++m) {
      for (int s = 0; s < kSamplesPerMetric; ++s) {
        batch.push_back({pipe.t, ids[static_cast<std::size_t>(m)],
                         static_cast<double>(period % 100 + s)});
      }
    }
    pipe.client->enqueueIds(batch, pipe.t);
    pipe.daemon.poll(pipe.t);
    pipe.client->pump(pipe.t);

    pipe.query->beginPoll(pipe.t);
    // The dashboard working set: a handful of distinct queries repeated
    // every refresh — exactly the shape the result cache exists for.
    for (int q = 0; q < kLiveQueriesPerPeriod; ++q) {
      const std::string& metric =
          names[static_cast<std::size_t>(q % 4)];
      std::string target;
      switch (q % 3) {
        case 0:
          target = "/api/query?op=window&metric=" + metric + "&window_s=60";
          break;
        case 1:
          target = "/api/query?op=snapshot&metric=" + metric;
          break;
        default:
          target = "/api/query?op=series";
          break;
      }
      const auto qStart = std::chrono::steady_clock::now();
      const int status = pipe.get(target);
      liveUs.push_back(secondsSince(qStart) * 1e6);
      ++queriesIssued;
      if (status != 200) {
        std::cerr << "ERROR: live query answered " << status << " ("
                  << target << ")\n";
        return 1;
      }
    }
    if (period % 10 == 9) {
      // Bulk export rides the small bulk budget slice.
      const int status = pipe.get("/api/query?op=export&metric=" + names[0]);
      ++queriesIssued;
      if (status != 200 && status != 429) {
        std::cerr << "ERROR: export answered " << status << "\n";
        return 1;
      }
    }
    if (period >= kPeriods - kOverloadPeriods) {
      // Read overload: far more cache-busting queries than one poll's
      // budget.  The contract is shed-not-stalled — every request gets
      // a prompt 200 or 429, never a hang.
      for (int q = 0; q < kOverloadQueries; ++q) {
        const std::string target =
            "/api/query?op=range&metric=" + names[0] +
            "&job=bench&rank=0&t0=" + std::to_string(period * 1000 + q);
        const int status = pipe.get(target);
        ++queriesIssued;
        if (status == 200) {
          ++overload200;
        } else if (status == 429) {
          ++overload429;
        } else {
          ++overloadIncomplete;
        }
      }
    }
  }
  const double elapsed = secondsSince(start);

  const auto clientCounters = pipe.client->counters();
  const auto daemonCounters = pipe.daemon.counters();
  const QueryServiceCounters qc = pipe.query->counters();

  std::sort(liveUs.begin(), liveUs.end());
  const double p50Us = percentile(liveUs, 0.50);
  const double p99Us = percentile(liveUs, 0.99);
  const double qps =
      elapsed > 0.0 ? static_cast<double>(queriesIssued) / elapsed : 0.0;
  const double hitRatio =
      qc.cacheHits + qc.cacheMisses > 0
          ? static_cast<double>(qc.cacheHits) /
                static_cast<double>(qc.cacheHits + qc.cacheMisses)
          : 0.0;
  const bool shedNotStalled =
      overload200 > 0 && overload429 > 0 && overloadIncomplete == 0;

  std::cout << "  ingested:   " << daemonCounters.recordsIngested
            << " records (dropped " << clientCounters.recordsDropped << ")\n"
            << "  queries:    " << queriesIssued << " (" << qps
            << " q/s wall)\n"
            << "  live lat:   p50 " << p50Us << " us, p99 " << p99Us
            << " us\n"
            << "  cache:      " << qc.cacheHits << " hits / "
            << qc.cacheMisses << " misses (ratio " << hitRatio << ", "
            << qc.cacheEvictions << " evictions)\n"
            << "  snapshot:   " << qc.snapshotRefreshes << " refreshes\n"
            << "  overload:   " << overload200 << " served, " << overload429
            << " shed, " << overloadIncomplete << " incomplete\n"
            << "  shed total: live " << qc.shedLive << ", bulk "
            << qc.shedBulk << "\n";

  bool ok = true;
  if (clientCounters.recordsDropped != 0) {
    std::cerr << "ERROR: the read load cost the wire "
              << clientCounters.recordsDropped << " ingest records\n";
    ok = false;
  }
  if (!shedNotStalled) {
    std::cerr << "ERROR: overload contract broken (served=" << overload200
              << " shed=" << overload429 << " incomplete="
              << overloadIncomplete << ")\n";
    ok = false;
  }

  std::ofstream jsonOut(jsonPath);
  if (jsonOut) {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "query_service");
    w.field("periods", static_cast<std::uint64_t>(kPeriods));
    w.field("queries_issued", queriesIssued);
    w.field("queries_per_second", qps);
    w.field("live_p50_us", p50Us);
    w.field("live_p99_us", p99Us);
    w.field("cache_hits", qc.cacheHits);
    w.field("cache_misses", qc.cacheMisses);
    w.field("cache_hit_ratio", hitRatio);
    w.field("snapshot_refreshes", qc.snapshotRefreshes);
    w.field("records_ingested", daemonCounters.recordsIngested);
    w.field("records_dropped", clientCounters.recordsDropped);
    w.field("overload_served", overload200);
    w.field("overload_shed", overload429);
    w.field("shed_not_stalled", shedNotStalled);
    w.endObject();
    jsonOut << '\n';
    std::cout << "\nwrote " << jsonPath << '\n';
  } else {
    std::cerr << "could not write " << jsonPath << '\n';
    return 1;
  }
  return ok ? 0 : 1;
}
