// Regenerates the paper's §3.1.3 suggestion as a working feature: "This
// data could also be used to guide the logical MPI process ordering on
// the nodes to exploit lower latency communication between ranks
// executing on the same node."  Takes the Figure 5 traffic matrix and
// scores rank->node mappings by inter-node bytes.
#include <iostream>

#include "analysis/reorder.hpp"
#include "mpisim/patterns.hpp"

using namespace zerosum;

int main() {
  std::cout << "=== Rank-placement guidance from the P2P matrix (paper "
               "S3.1.3) ===\n";
  mpisim::patterns::GyrokineticParams params;
  params.steps = 5;  // matrix shape is step-invariant
  const auto matrix = mpisim::patterns::toMatrix(
      128, [&](const mpisim::patterns::SendFn& send) {
        mpisim::patterns::gyrokineticPic(128, params, send);
      });
  std::cout << analysis::renderReorderAdvice(matrix, /*ranksPerNode=*/8);
  return 0;
}
