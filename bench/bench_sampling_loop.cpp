// Hot-path cost of one sampling period, stage by stage: ns/op and
// allocs/op for the /proc readers+parsers, the publish fan-out, the
// aggregation-client enqueue, and the tsdb append.  The zero-allocation
// contract ("do no harm", paper §3.1/§4.1) is enforced here, not just
// reported: the procfs, publish, and client-enqueue stages must measure
// ZERO allocations per op in the steady state or the bench exits
// nonzero.  (tsdb.append is reported but not zero-asserted: rollup
// windows and WAL growth allocate amortized as time advances.)
//
// Emits BENCH_sampling.json (json::Writer); --out <path> overrides the
// output location so CI can collect it from any working directory.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/client.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "common/alloc_hook.hpp"
#include "common/cpuset.hpp"
#include "common/interning.hpp"
#include "common/json.hpp"
#include "core/monitor.hpp"
#include "export/publisher.hpp"
#include "export/stream.hpp"
#include "procfs/parse.hpp"
#include "procfs/procfs.hpp"
#include "procfs/simfs.hpp"
#include "sim/workload.hpp"
#include "tsdb/engine.hpp"

using namespace zerosum;

namespace {

struct StageResult {
  std::string name;
  std::uint64_t iterations = 0;
  double nsPerOp = 0.0;
  double allocsPerOp = 0.0;
  bool mustBeZeroAlloc = false;
};

template <typename Fn>
StageResult measure(const std::string& name, bool mustBeZeroAlloc,
                    std::uint64_t warmup, std::uint64_t iterations, Fn&& fn) {
  for (std::uint64_t i = 0; i < warmup; ++i) {
    fn();
  }
  const std::uint64_t allocsBefore = allochook::allocations();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    fn();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::uint64_t allocs = allochook::allocations() - allocsBefore;

  StageResult r;
  r.name = name;
  r.iterations = iterations;
  r.nsPerOp = static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      elapsed)
                      .count()) /
              static_cast<double>(iterations);
  r.allocsPerOp =
      static_cast<double>(allocs) / static_cast<double>(iterations);
  r.mustBeZeroAlloc = mustBeZeroAlloc;
  std::cout << "  " << r.name << ": " << static_cast<std::uint64_t>(r.nsPerOp)
            << " ns/op, " << r.allocsPerOp << " allocs/op over "
            << r.iterations << " iterations\n";
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_sampling.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      jsonPath = argv[i + 1];
    }
  }

  std::cout << "=== sampling hot path: ns/op and allocs/op ===\n\n";
  std::vector<StageResult> stages;
  constexpr std::uint64_t kWarmup = 200;
  constexpr std::uint64_t kIters = 2000;

  // --- procfs read + parse, against the live /proc -----------------------
  {
    auto fs = procfs::makeRealProcFs();
    const int pid = fs->selfPid();
    std::string buf;
    procfs::ProcStatus status;
    stages.push_back(measure("procfs.status", true, kWarmup, kIters, [&] {
      fs->readProcessStatusInto(pid, buf);
      procfs::parseStatusInto(buf, status);
    }));
    procfs::TaskStat stat;
    stages.push_back(measure("procfs.task_stat", true, kWarmup, kIters, [&] {
      fs->readTaskStatInto(pid, pid, buf);
      procfs::parseTaskStatInto(buf, stat);
    }));
    procfs::MemInfo mem;
    stages.push_back(measure("procfs.meminfo", true, kWarmup, kIters, [&] {
      fs->readMeminfoInto(buf);
      procfs::parseMeminfoInto(buf, mem);
    }));
    procfs::StatSnapshot snap;
    stages.push_back(measure("procfs.stat", true, kWarmup, kIters, [&] {
      fs->readStatInto(buf);
      procfs::parseStatInto(buf, snap);
    }));
    std::vector<int> tids;
    stages.push_back(measure("procfs.list_tasks", true, kWarmup, kIters, [&] {
      fs->listTasksInto(pid, tids);
    }));
  }

  // --- publish: tracker state -> Record batch -> stream fan-out ----------
  {
    sim::SimNode node(CpuSet::fromList("0-3"), 4ULL << 30);
    sim::MiniQmcConfig qmc;
    qmc.ompThreads = 2;
    qmc.steps = 1000;
    qmc.workPerStep = 20;
    const auto rank =
        sim::buildMiniQmcRank(node, CpuSet::fromList("0-1"), qmc, node.hwts());
    core::Config cfg;
    cfg.jiffyHz = sim::kHz;
    cfg.signalHandler = false;
    core::MonitorSession session(cfg, procfs::makeSimProcFs(node, rank.pid));
    node.advance(sim::kHz);
    const double t = node.nowSeconds();
    session.sampleNow(t);

    exporter::MetricStream stream;
    std::uint64_t delivered = 0;
    stream.subscribe([&delivered](const exporter::Batch& batch) {
      delivered += batch.size();
    });
    exporter::SessionPublisher publisher(&stream);
    stages.push_back(measure("publish", true, kWarmup, kIters, [&] {
      publisher.publish(session, t);
    }));
    if (delivered == 0) {
      std::cerr << "ERROR: publish stage delivered no records\n";
      return 1;
    }
  }

  // --- aggregation client: id-record enqueue into the bounded queue ------
  {
    auto hub = std::make_shared<aggregator::PipeHub>();
    aggregator::Hello hello;
    hello.job = "bench";
    hello.rank = 0;
    hello.worldSize = 1;
    hello.hostname = "node0000";
    hello.pid = ::getpid();
    aggregator::ClientOptions options;
    // Keep the flush edge (frame encode, a string build) out of the
    // measured loop: this stage times the queue path the publish
    // callback pays every period.  The queue bound is shrunk so the
    // vector FIFO completes its first full overflow/compaction cycle —
    // and thus reaches its fixed steady-state capacity — inside the
    // warmup iterations.
    options.batchRecords = 1U << 20;
    options.maxQueueRecords = 1000;
    // Measure the plain bounded-queue path; a pinned-full queue would
    // otherwise escalate the degradation ladder mid-measure.
    options.adaptive = false;
    aggregator::Client client(hub->makeClientTransport(), hello, options);
    std::vector<aggregator::IdRecord> batch;
    for (int i = 0; i < 50; ++i) {
      batch.push_back(
          {1.0, names::intern("bench.metric." + std::to_string(i)),
           static_cast<double>(i)});
    }
    stages.push_back(
        measure("aggregate_client.enqueue", true, kWarmup, kIters, [&] {
          client.enqueueIds(batch, 1.0);
        }));
  }

  // --- tsdb append: WAL frame + hot-window merge --------------------------
  {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("zs_bench_sampling." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    tsdb::EngineOptions options;
    options.fsync = tsdb::FsyncPolicy::kOff;
    options.walRotateBytes = 1ULL << 40;  // never rotate mid-measure
    tsdb::Engine engine(dir.string(), options);
    std::vector<tsdb::Sample> samples;
    for (int i = 0; i < 50; ++i) {
      samples.push_back(
          {1.0, "bench.metric." + std::to_string(i), static_cast<double>(i)});
    }
    stages.push_back(measure("tsdb.append", false, kWarmup, kIters, [&] {
      engine.append("bench", 0, samples);
    }));
    std::filesystem::remove_all(dir);
  }

  // --- the contract -------------------------------------------------------
  bool ok = true;
  for (const StageResult& r : stages) {
    if (r.mustBeZeroAlloc && r.allocsPerOp != 0.0) {
      std::cerr << "ERROR: stage " << r.name << " allocated ("
                << r.allocsPerOp << " allocs/op); the steady-state "
                << "sampling path must not touch the heap\n";
      ok = false;
    }
  }

  std::ofstream jsonOut(jsonPath);
  if (jsonOut) {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "sampling_loop");
    w.key("stages").beginArray();
    for (const StageResult& r : stages) {
      w.beginObject();
      w.field("name", r.name);
      w.field("iterations", r.iterations);
      w.field("ns_per_op", r.nsPerOp);
      w.field("allocs_per_op", r.allocsPerOp);
      w.field("must_be_zero_alloc", r.mustBeZeroAlloc);
      w.endObject();
    }
    w.endArray();
    w.endObject();
    jsonOut << '\n';
    std::cout << "\nwrote " << jsonPath << '\n';
  } else {
    std::cerr << "could not write " << jsonPath << '\n';
    return 1;
  }
  return ok ? 0 : 1;
}
