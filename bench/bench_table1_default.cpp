// Regenerates paper Table 1: miniQMC under `srun -n8` defaults on Frontier.
// All 8 team threads share one core; the table shows low per-thread utime
// (~13% of a period) and an explosion of non-voluntary context switches,
// and the run takes several times longer than the corrected configurations
// (paper: 63.67 s vs 27.33 s).
#include "experiment_support.hpp"

int main() {
  using namespace zerosum::bench;
  const auto result = runFrontierExperiment(LaunchMode::kDefault);
  printTableExperiment("Table 1 (default configuration)",
                       LaunchMode::kDefault, result);
  return 0;
}
