// Regenerates paper Table 2: `srun -n8 -c7`.  Threads roam 7 cores —
// utilization jumps to ~90% per thread, non-voluntary context switches
// collapse to single digits, and occasional migrations remain (threads are
// scheduled, not bound).
#include "experiment_support.hpp"

int main() {
  using namespace zerosum::bench;
  const auto result = runFrontierExperiment(LaunchMode::kCores7);
  printTableExperiment("Table 2 (-c7, threads unbound)", LaunchMode::kCores7,
                       result);

  // The migration observation the paper makes for this configuration.
  std::uint64_t migrations = 0;
  for (const auto& [tid, record] : result.session->lwps().records()) {
    migrations += record.observedMigrations();
  }
  std::cout << "Observed thread migrations (unbound threads may move): "
            << migrations << '\n';
  return 0;
}
