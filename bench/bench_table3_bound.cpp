// Regenerates paper Table 3: `-c7` plus OMP_PROC_BIND=spread and
// OMP_PLACES=cores.  Each thread is pinned to its own core: migrations and
// non-voluntary context switches vanish — except for the one OpenMP thread
// sharing core 7 with the ZeroSum monitor thread, which shows the paper's
// characteristic residual nvctx (208 in the paper's run).
#include "experiment_support.hpp"

int main() {
  using namespace zerosum::bench;
  const auto result = runFrontierExperiment(LaunchMode::kBound);
  printTableExperiment("Table 3 (-c7, threads bound)", LaunchMode::kBound,
                       result);

  std::uint64_t migrations = 0;
  for (const auto& [tid, record] : result.session->lwps().records()) {
    migrations += record.observedMigrations();
  }
  std::cout << "Observed thread migrations (bound threads never move): "
            << migrations << '\n';
  return 0;
}
