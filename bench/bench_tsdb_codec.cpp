// tsdb codec throughput + compression ratio (persistence tentpole).
//
// Measures the three column codecs (delta-of-delta timestamps, Gorilla
// XOR doubles, varint counts) over a realistic monitoring shape: many
// series of slowly-varying utilization values sampled on a regular
// cadence with jitter.  Reports
//   * encode / decode throughput in MB/s of raw column bytes, and
//   * compressed size as a fraction of the equivalent CSV text — the
//     format zerosum-post would otherwise persist.
//
// Emits BENCH_tsdb.json for regression tracking and exits nonzero when
// the acceptance floors are missed (encode >= 100 MB/s, compressed
// < 35% of CSV bytes), so scripts/check.sh fails loudly on a codec
// regression.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "tsdb/codec.hpp"

using namespace zerosum;
using namespace zerosum::tsdb;

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Series {
  std::vector<std::int64_t> timestamps;  // window indices, mostly regular
  std::vector<double> values;            // slowly-varying utilization
  std::vector<std::uint64_t> counts;     // samples per window
};

/// One series per (rank, metric): regular 1 s windows with occasional
/// gaps, values random-walking in the quantized steps /proc counters
/// actually produce (jiffy-derived percentages) and holding steady
/// about a third of the time, the way an idle-ish core reads.
std::vector<Series> makeWorkload(std::size_t series, std::size_t windows) {
  std::mt19937_64 rng(8990);
  std::vector<Series> out(series);
  for (auto& s : out) {
    std::int64_t t = static_cast<std::int64_t>(rng() % 1000);
    double v = static_cast<double>(rng() % 100);
    s.timestamps.reserve(windows);
    s.values.reserve(windows);
    s.counts.reserve(windows);
    for (std::size_t i = 0; i < windows; ++i) {
      t += 1 + (rng() % 50 == 0 ? static_cast<std::int64_t>(rng() % 5) : 0);
      if (rng() % 3 != 0) {
        v += (static_cast<double>(rng() % 9) - 4.0) * 0.25;
      }
      s.timestamps.push_back(t);
      s.values.push_back(v);
      s.counts.push_back(1 + rng() % 10);
    }
  }
  return out;
}

/// The text a CSV export of the same windows would occupy (the
/// compression baseline): "t,value,count\n" per window.
std::uint64_t csvBytes(const std::vector<Series>& workload) {
  std::uint64_t bytes = 0;
  char buf[96];
  for (const auto& s : workload) {
    for (std::size_t i = 0; i < s.timestamps.size(); ++i) {
      bytes += static_cast<std::uint64_t>(std::snprintf(
          buf, sizeof(buf), "%lld,%.17g,%llu\n",
          static_cast<long long>(s.timestamps[i]), s.values[i],
          static_cast<unsigned long long>(s.counts[i])));
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_tsdb.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      jsonPath = argv[i + 1];
    }
  }
  std::cout << "=== tsdb codec throughput ===\n\n";

  constexpr std::size_t kSeries = 256;
  constexpr std::size_t kWindows = 4096;
  const auto workload = makeWorkload(kSeries, kWindows);

  // Raw column payload: 8 bytes per timestamp + 8 per value + 8 per
  // count (the in-memory representation the codec consumes).
  const std::uint64_t rawBytes =
      static_cast<std::uint64_t>(kSeries) * kWindows * (8 + 8 + 8);

  std::vector<std::string> encoded(workload.size());
  const auto encodeStart = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < workload.size(); ++i) {
    encodeTimestamps(workload[i].timestamps, encoded[i]);
    encodeValues(workload[i].values, encoded[i]);
    encodeCounts(workload[i].counts, encoded[i]);
  }
  const double encodeSeconds = secondsSince(encodeStart);

  std::uint64_t compressedBytes = 0;
  for (const auto& bytes : encoded) {
    compressedBytes += bytes.size();
  }

  const auto decodeStart = std::chrono::steady_clock::now();
  std::uint64_t decodedWindows = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    std::size_t pos = 0;
    const auto ts = decodeTimestamps(encoded[i], pos);
    const auto values = decodeValues(encoded[i], pos);
    const auto counts = decodeCounts(encoded[i], pos);
    decodedWindows += ts.size();
    if (ts != workload[i].timestamps || counts != workload[i].counts ||
        values.size() != workload[i].values.size()) {
      std::cerr << "ERROR: decode mismatch in series " << i << '\n';
      return 1;
    }
  }
  const double decodeSeconds = secondsSince(decodeStart);

  const double mb = 1024.0 * 1024.0;
  const double encodeMbps =
      static_cast<double>(rawBytes) / mb / encodeSeconds;
  const double decodeMbps =
      static_cast<double>(rawBytes) / mb / decodeSeconds;
  const std::uint64_t csv = csvBytes(workload);
  const double csvFraction =
      static_cast<double>(compressedBytes) / static_cast<double>(csv);
  const double bytesPerWindow = static_cast<double>(compressedBytes) /
                                static_cast<double>(kSeries * kWindows);

  std::cout << "  " << kSeries << " series x " << kWindows << " windows ("
            << rawBytes / (1 << 20) << " MiB raw columns)\n";
  std::cout << "  encode: " << encodeSeconds << " s  ("
            << static_cast<std::uint64_t>(encodeMbps) << " MB/s)\n";
  std::cout << "  decode: " << decodeSeconds << " s  ("
            << static_cast<std::uint64_t>(decodeMbps) << " MB/s, "
            << decodedWindows << " windows verified)\n";
  std::cout << "  compressed: " << compressedBytes << " bytes  ("
            << bytesPerWindow << " bytes/window, "
            << static_cast<int>(csvFraction * 100.0) << "% of " << csv
            << " CSV bytes)\n";

  std::ofstream jsonOut(jsonPath);
  if (!jsonOut) {
    std::cerr << "could not write " << jsonPath << '\n';
    return 1;
  }
  {
    json::Writer w(jsonOut);
    w.beginObject();
    w.field("benchmark", "tsdb_codec");
    w.field("series", static_cast<std::uint64_t>(kSeries));
    w.field("windows_per_series", static_cast<std::uint64_t>(kWindows));
    w.field("raw_bytes", rawBytes);
    w.field("compressed_bytes", compressedBytes);
    w.field("csv_bytes", csv);
    w.field("csv_fraction", csvFraction);
    w.field("bytes_per_window", bytesPerWindow);
    w.field("encode_seconds", encodeSeconds);
    w.field("decode_seconds", decodeSeconds);
    w.field("encode_mb_per_second", encodeMbps);
    w.field("decode_mb_per_second", decodeMbps);
    w.endObject();
    jsonOut << '\n';
  }
  std::cout << "\nwrote " << jsonPath << '\n';

  if (encodeMbps < 100.0) {
    std::cerr << "ERROR: encode throughput below 100 MB/s floor\n";
    return 1;
  }
  if (csvFraction >= 0.35) {
    std::cerr << "ERROR: compressed size not under 35% of CSV\n";
    return 1;
  }
  return 0;
}
