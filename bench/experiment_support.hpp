// Shared harness for the Tables 1-3 / Figures 6-7 reproductions: builds a
// miniQMC job on a simulated Frontier node under one of the paper's launch
// configurations, monitors rank 0, and returns everything the bench
// binaries print.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "core/monitor.hpp"
#include "procfs/simfs.hpp"
#include "sim/workload.hpp"
#include "topology/presets.hpp"

namespace zerosum::bench {

enum class LaunchMode {
  kDefault,  ///< srun -n8               (Table 1)
  kCores7,   ///< srun -n8 -c7           (Table 2)
  kBound,    ///< -c7 + OMP spread/cores (Table 3)
};

inline const char* launchModeName(LaunchMode mode) {
  switch (mode) {
    case LaunchMode::kDefault: return "srun -n8 (default: 1 core/rank)";
    case LaunchMode::kCores7: return "srun -n8 -c7 (7 cores/rank, unbound)";
    case LaunchMode::kBound:
      return "srun -n8 -c7 + OMP_PROC_BIND=spread OMP_PLACES=cores";
  }
  return "?";
}

struct ExperimentResult {
  std::unique_ptr<sim::SimNode> node;
  std::unique_ptr<core::MonitorSession> session;
  sim::BuiltRank rank0;
  double runtimeSeconds = 0.0;
};

/// Runs the full 8-rank job to completion in virtual time, sampling rank 0
/// once per simulated second (the tool's default period).
inline ExperimentResult runFrontierExperiment(LaunchMode mode,
                                              std::uint64_t steps = 60,
                                              sim::Jiffies workPerStep = 12) {
  const auto topo = topology::presets::frontier();
  sim::slurm::SrunArgs args;
  args.ntasks = 8;
  args.cpusPerTask = mode == LaunchMode::kDefault ? 1 : 7;
  const auto plan = sim::slurm::planSrun(topo, args);

  ExperimentResult result;
  result.node =
      std::make_unique<sim::SimNode>(topo.allPus(), 512ULL << 30);

  sim::MiniQmcConfig qmc;
  qmc.ompThreads = mode == LaunchMode::kDefault ? 8 : 7;
  qmc.steps = steps;
  qmc.workPerStep = workPerStep;
  // Walker-level load imbalance: per-step work varies per thread, as on
  // the real system (Tables 2-3 show utime spreads of several percent).
  qmc.workJitter = 0.12;

  bool first = true;
  for (const auto& placement : plan) {
    sim::MiniQmcConfig cfg = qmc;
    if (mode == LaunchMode::kBound) {
      cfg.threadBinding = sim::slurm::planOmpBinding(
          topo, placement.cpus, qmc.ompThreads, sim::slurm::OmpBind::kSpread,
          sim::slurm::OmpPlaces::kCores);
    }
    auto rank = sim::buildMiniQmcRank(*result.node, placement.cpus, cfg,
                                      result.node->hwts());
    if (first) {
      result.rank0 = rank;
      first = false;
    }
  }

  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  core::ProcessIdentity identity;
  identity.rank = 0;
  identity.worldSize = static_cast<int>(plan.size());
  identity.pid = result.rank0.pid;
  identity.hostname = "frontier-sim";
  result.session = std::make_unique<core::MonitorSession>(
      cfg, procfs::makeSimProcFs(*result.node, result.rank0.pid), identity);

  while (!result.node->allWorkFinished() &&
         result.node->nowSeconds() < 900.0) {
    result.node->advance(sim::kHz);
    result.session->sampleNow(result.node->nowSeconds());
  }
  result.runtimeSeconds = result.node->nowSeconds();
  return result;
}

/// Standard preamble + LWP table + findings print for the table benches.
inline void printTableExperiment(const std::string& paperArtifact,
                                 LaunchMode mode,
                                 const ExperimentResult& result) {
  std::cout << "=== Reproduction of " << paperArtifact << " ===\n";
  std::cout << "Launch: " << launchModeName(mode) << '\n';
  std::cout << "Application reported execution time: "
            << result.runtimeSeconds << " s\n\n";
  std::cout << core::Reporter::renderLwpTable(
                   result.session->lwps().records())
            << '\n';
  std::cout << core::Reporter::renderHwtSection(
                   result.session->hwts().records())
            << '\n';
  std::cout << "Findings:\n"
            << core::renderFindings(result.session->analyze()) << '\n';
}

}  // namespace zerosum::bench
