file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timeslice.dir/bench_ablation_timeslice.cpp.o"
  "CMakeFiles/bench_ablation_timeslice.dir/bench_ablation_timeslice.cpp.o.d"
  "bench_ablation_timeslice"
  "bench_ablation_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
