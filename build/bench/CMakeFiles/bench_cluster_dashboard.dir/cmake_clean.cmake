file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_dashboard.dir/bench_cluster_dashboard.cpp.o"
  "CMakeFiles/bench_cluster_dashboard.dir/bench_cluster_dashboard.cpp.o.d"
  "bench_cluster_dashboard"
  "bench_cluster_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
