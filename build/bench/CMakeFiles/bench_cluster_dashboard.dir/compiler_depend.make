# Empty compiler generated dependencies file for bench_cluster_dashboard.
# This may be replaced when dependencies are built.
