file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_heatmap.dir/bench_figure5_heatmap.cpp.o"
  "CMakeFiles/bench_figure5_heatmap.dir/bench_figure5_heatmap.cpp.o.d"
  "bench_figure5_heatmap"
  "bench_figure5_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
