# Empty dependencies file for bench_figure5_heatmap.
# This may be replaced when dependencies are built.
