file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_lwp_timeseries.dir/bench_figure6_lwp_timeseries.cpp.o"
  "CMakeFiles/bench_figure6_lwp_timeseries.dir/bench_figure6_lwp_timeseries.cpp.o.d"
  "bench_figure6_lwp_timeseries"
  "bench_figure6_lwp_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_lwp_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
