# Empty compiler generated dependencies file for bench_figure6_lwp_timeseries.
# This may be replaced when dependencies are built.
