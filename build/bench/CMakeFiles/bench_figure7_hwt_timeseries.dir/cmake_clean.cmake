file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7_hwt_timeseries.dir/bench_figure7_hwt_timeseries.cpp.o"
  "CMakeFiles/bench_figure7_hwt_timeseries.dir/bench_figure7_hwt_timeseries.cpp.o.d"
  "bench_figure7_hwt_timeseries"
  "bench_figure7_hwt_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_hwt_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
