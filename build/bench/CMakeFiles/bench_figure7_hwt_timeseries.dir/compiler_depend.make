# Empty compiler generated dependencies file for bench_figure7_hwt_timeseries.
# This may be replaced when dependencies are built.
