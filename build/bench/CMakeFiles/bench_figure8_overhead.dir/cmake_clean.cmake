file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8_overhead.dir/bench_figure8_overhead.cpp.o"
  "CMakeFiles/bench_figure8_overhead.dir/bench_figure8_overhead.cpp.o.d"
  "bench_figure8_overhead"
  "bench_figure8_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
