# Empty compiler generated dependencies file for bench_listing1_topology.
# This may be replaced when dependencies are built.
