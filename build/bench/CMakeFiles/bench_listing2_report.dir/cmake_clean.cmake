file(REMOVE_RECURSE
  "CMakeFiles/bench_listing2_report.dir/bench_listing2_report.cpp.o"
  "CMakeFiles/bench_listing2_report.dir/bench_listing2_report.cpp.o.d"
  "bench_listing2_report"
  "bench_listing2_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing2_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
