# Empty dependencies file for bench_listing2_report.
# This may be replaced when dependencies are built.
