file(REMOVE_RECURSE
  "CMakeFiles/bench_node_diagrams.dir/bench_node_diagrams.cpp.o"
  "CMakeFiles/bench_node_diagrams.dir/bench_node_diagrams.cpp.o.d"
  "bench_node_diagrams"
  "bench_node_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
