# Empty dependencies file for bench_node_diagrams.
# This may be replaced when dependencies are built.
