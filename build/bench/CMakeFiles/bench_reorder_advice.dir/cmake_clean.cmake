file(REMOVE_RECURSE
  "CMakeFiles/bench_reorder_advice.dir/bench_reorder_advice.cpp.o"
  "CMakeFiles/bench_reorder_advice.dir/bench_reorder_advice.cpp.o.d"
  "bench_reorder_advice"
  "bench_reorder_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorder_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
