# Empty dependencies file for bench_reorder_advice.
# This may be replaced when dependencies are built.
