file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_default.dir/bench_table1_default.cpp.o"
  "CMakeFiles/bench_table1_default.dir/bench_table1_default.cpp.o.d"
  "bench_table1_default"
  "bench_table1_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
