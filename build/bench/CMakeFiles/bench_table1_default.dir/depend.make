# Empty dependencies file for bench_table1_default.
# This may be replaced when dependencies are built.
