# Empty compiler generated dependencies file for bench_table2_cores7.
# This may be replaced when dependencies are built.
