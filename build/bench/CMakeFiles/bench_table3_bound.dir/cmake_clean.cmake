file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_bound.dir/bench_table3_bound.cpp.o"
  "CMakeFiles/bench_table3_bound.dir/bench_table3_bound.cpp.o.d"
  "bench_table3_bound"
  "bench_table3_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
