file(REMOVE_RECURSE
  "CMakeFiles/comm_heatmap.dir/comm_heatmap.cpp.o"
  "CMakeFiles/comm_heatmap.dir/comm_heatmap.cpp.o.d"
  "comm_heatmap"
  "comm_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
