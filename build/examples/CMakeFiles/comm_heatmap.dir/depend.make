# Empty dependencies file for comm_heatmap.
# This may be replaced when dependencies are built.
