file(REMOVE_RECURSE
  "CMakeFiles/live_export.dir/live_export.cpp.o"
  "CMakeFiles/live_export.dir/live_export.cpp.o.d"
  "live_export"
  "live_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
