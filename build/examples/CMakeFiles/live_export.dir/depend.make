# Empty dependencies file for live_export.
# This may be replaced when dependencies are built.
