file(REMOVE_RECURSE
  "CMakeFiles/miniqmc_frontier.dir/miniqmc_frontier.cpp.o"
  "CMakeFiles/miniqmc_frontier.dir/miniqmc_frontier.cpp.o.d"
  "miniqmc_frontier"
  "miniqmc_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniqmc_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
