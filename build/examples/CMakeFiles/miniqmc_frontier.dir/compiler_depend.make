# Empty compiler generated dependencies file for miniqmc_frontier.
# This may be replaced when dependencies are built.
