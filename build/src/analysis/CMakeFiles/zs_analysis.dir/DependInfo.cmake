
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aggregate.cpp" "src/analysis/CMakeFiles/zs_analysis.dir/aggregate.cpp.o" "gcc" "src/analysis/CMakeFiles/zs_analysis.dir/aggregate.cpp.o.d"
  "/root/repo/src/analysis/charts.cpp" "src/analysis/CMakeFiles/zs_analysis.dir/charts.cpp.o" "gcc" "src/analysis/CMakeFiles/zs_analysis.dir/charts.cpp.o.d"
  "/root/repo/src/analysis/heatmap.cpp" "src/analysis/CMakeFiles/zs_analysis.dir/heatmap.cpp.o" "gcc" "src/analysis/CMakeFiles/zs_analysis.dir/heatmap.cpp.o.d"
  "/root/repo/src/analysis/logparse.cpp" "src/analysis/CMakeFiles/zs_analysis.dir/logparse.cpp.o" "gcc" "src/analysis/CMakeFiles/zs_analysis.dir/logparse.cpp.o.d"
  "/root/repo/src/analysis/overhead.cpp" "src/analysis/CMakeFiles/zs_analysis.dir/overhead.cpp.o" "gcc" "src/analysis/CMakeFiles/zs_analysis.dir/overhead.cpp.o.d"
  "/root/repo/src/analysis/reorder.cpp" "src/analysis/CMakeFiles/zs_analysis.dir/reorder.cpp.o" "gcc" "src/analysis/CMakeFiles/zs_analysis.dir/reorder.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/zs_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/zs_analysis.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/zs_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/procfs/CMakeFiles/zs_procfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/zs_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/openmp/CMakeFiles/zs_openmp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
