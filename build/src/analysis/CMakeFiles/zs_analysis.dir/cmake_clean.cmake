file(REMOVE_RECURSE
  "CMakeFiles/zs_analysis.dir/aggregate.cpp.o"
  "CMakeFiles/zs_analysis.dir/aggregate.cpp.o.d"
  "CMakeFiles/zs_analysis.dir/charts.cpp.o"
  "CMakeFiles/zs_analysis.dir/charts.cpp.o.d"
  "CMakeFiles/zs_analysis.dir/heatmap.cpp.o"
  "CMakeFiles/zs_analysis.dir/heatmap.cpp.o.d"
  "CMakeFiles/zs_analysis.dir/logparse.cpp.o"
  "CMakeFiles/zs_analysis.dir/logparse.cpp.o.d"
  "CMakeFiles/zs_analysis.dir/overhead.cpp.o"
  "CMakeFiles/zs_analysis.dir/overhead.cpp.o.d"
  "CMakeFiles/zs_analysis.dir/reorder.cpp.o"
  "CMakeFiles/zs_analysis.dir/reorder.cpp.o.d"
  "CMakeFiles/zs_analysis.dir/table.cpp.o"
  "CMakeFiles/zs_analysis.dir/table.cpp.o.d"
  "libzs_analysis.a"
  "libzs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
