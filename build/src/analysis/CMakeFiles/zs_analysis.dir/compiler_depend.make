# Empty compiler generated dependencies file for zs_analysis.
# This may be replaced when dependencies are built.
