
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/job.cpp" "src/cluster/CMakeFiles/zs_cluster.dir/job.cpp.o" "gcc" "src/cluster/CMakeFiles/zs_cluster.dir/job.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/zs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/procfs/CMakeFiles/zs_procfs.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/zs_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/openmp/CMakeFiles/zs_openmp.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/zs_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
