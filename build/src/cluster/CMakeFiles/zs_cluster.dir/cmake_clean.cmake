file(REMOVE_RECURSE
  "CMakeFiles/zs_cluster.dir/job.cpp.o"
  "CMakeFiles/zs_cluster.dir/job.cpp.o.d"
  "libzs_cluster.a"
  "libzs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
