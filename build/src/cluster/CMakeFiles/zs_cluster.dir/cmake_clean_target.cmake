file(REMOVE_RECURSE
  "libzs_cluster.a"
)
