# Empty dependencies file for zs_cluster.
# This may be replaced when dependencies are built.
