
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/zs_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/zs_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/cpuset.cpp" "src/common/CMakeFiles/zs_common.dir/cpuset.cpp.o" "gcc" "src/common/CMakeFiles/zs_common.dir/cpuset.cpp.o.d"
  "/root/repo/src/common/env.cpp" "src/common/CMakeFiles/zs_common.dir/env.cpp.o" "gcc" "src/common/CMakeFiles/zs_common.dir/env.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/zs_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/zs_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/lwp_type.cpp" "src/common/CMakeFiles/zs_common.dir/lwp_type.cpp.o" "gcc" "src/common/CMakeFiles/zs_common.dir/lwp_type.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/zs_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/zs_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/zs_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/zs_common.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
