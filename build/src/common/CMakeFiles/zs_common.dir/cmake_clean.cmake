file(REMOVE_RECURSE
  "CMakeFiles/zs_common.dir/clock.cpp.o"
  "CMakeFiles/zs_common.dir/clock.cpp.o.d"
  "CMakeFiles/zs_common.dir/cpuset.cpp.o"
  "CMakeFiles/zs_common.dir/cpuset.cpp.o.d"
  "CMakeFiles/zs_common.dir/env.cpp.o"
  "CMakeFiles/zs_common.dir/env.cpp.o.d"
  "CMakeFiles/zs_common.dir/logging.cpp.o"
  "CMakeFiles/zs_common.dir/logging.cpp.o.d"
  "CMakeFiles/zs_common.dir/lwp_type.cpp.o"
  "CMakeFiles/zs_common.dir/lwp_type.cpp.o.d"
  "CMakeFiles/zs_common.dir/stats.cpp.o"
  "CMakeFiles/zs_common.dir/stats.cpp.o.d"
  "CMakeFiles/zs_common.dir/strings.cpp.o"
  "CMakeFiles/zs_common.dir/strings.cpp.o.d"
  "libzs_common.a"
  "libzs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
