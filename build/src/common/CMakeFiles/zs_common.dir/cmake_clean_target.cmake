file(REMOVE_RECURSE
  "libzs_common.a"
)
