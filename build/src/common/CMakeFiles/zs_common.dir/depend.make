# Empty dependencies file for zs_common.
# This may be replaced when dependencies are built.
