
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptation.cpp" "src/core/CMakeFiles/zs_core.dir/adaptation.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/adaptation.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/zs_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/config.cpp.o.d"
  "/root/repo/src/core/contention.cpp" "src/core/CMakeFiles/zs_core.dir/contention.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/contention.cpp.o.d"
  "/root/repo/src/core/csv_export.cpp" "src/core/CMakeFiles/zs_core.dir/csv_export.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/csv_export.cpp.o.d"
  "/root/repo/src/core/gpu_tracker.cpp" "src/core/CMakeFiles/zs_core.dir/gpu_tracker.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/gpu_tracker.cpp.o.d"
  "/root/repo/src/core/hwt_tracker.cpp" "src/core/CMakeFiles/zs_core.dir/hwt_tracker.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/hwt_tracker.cpp.o.d"
  "/root/repo/src/core/lwp_tracker.cpp" "src/core/CMakeFiles/zs_core.dir/lwp_tracker.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/lwp_tracker.cpp.o.d"
  "/root/repo/src/core/memory_tracker.cpp" "src/core/CMakeFiles/zs_core.dir/memory_tracker.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/memory_tracker.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/zs_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/progress.cpp" "src/core/CMakeFiles/zs_core.dir/progress.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/progress.cpp.o.d"
  "/root/repo/src/core/records.cpp" "src/core/CMakeFiles/zs_core.dir/records.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/records.cpp.o.d"
  "/root/repo/src/core/reporter.cpp" "src/core/CMakeFiles/zs_core.dir/reporter.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/reporter.cpp.o.d"
  "/root/repo/src/core/signal_handler.cpp" "src/core/CMakeFiles/zs_core.dir/signal_handler.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/signal_handler.cpp.o.d"
  "/root/repo/src/core/zerosum.cpp" "src/core/CMakeFiles/zs_core.dir/zerosum.cpp.o" "gcc" "src/core/CMakeFiles/zs_core.dir/zerosum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/procfs/CMakeFiles/zs_procfs.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/zs_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/zs_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/openmp/CMakeFiles/zs_openmp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
