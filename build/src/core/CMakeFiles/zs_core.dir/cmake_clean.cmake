file(REMOVE_RECURSE
  "CMakeFiles/zs_core.dir/adaptation.cpp.o"
  "CMakeFiles/zs_core.dir/adaptation.cpp.o.d"
  "CMakeFiles/zs_core.dir/config.cpp.o"
  "CMakeFiles/zs_core.dir/config.cpp.o.d"
  "CMakeFiles/zs_core.dir/contention.cpp.o"
  "CMakeFiles/zs_core.dir/contention.cpp.o.d"
  "CMakeFiles/zs_core.dir/csv_export.cpp.o"
  "CMakeFiles/zs_core.dir/csv_export.cpp.o.d"
  "CMakeFiles/zs_core.dir/gpu_tracker.cpp.o"
  "CMakeFiles/zs_core.dir/gpu_tracker.cpp.o.d"
  "CMakeFiles/zs_core.dir/hwt_tracker.cpp.o"
  "CMakeFiles/zs_core.dir/hwt_tracker.cpp.o.d"
  "CMakeFiles/zs_core.dir/lwp_tracker.cpp.o"
  "CMakeFiles/zs_core.dir/lwp_tracker.cpp.o.d"
  "CMakeFiles/zs_core.dir/memory_tracker.cpp.o"
  "CMakeFiles/zs_core.dir/memory_tracker.cpp.o.d"
  "CMakeFiles/zs_core.dir/monitor.cpp.o"
  "CMakeFiles/zs_core.dir/monitor.cpp.o.d"
  "CMakeFiles/zs_core.dir/progress.cpp.o"
  "CMakeFiles/zs_core.dir/progress.cpp.o.d"
  "CMakeFiles/zs_core.dir/records.cpp.o"
  "CMakeFiles/zs_core.dir/records.cpp.o.d"
  "CMakeFiles/zs_core.dir/reporter.cpp.o"
  "CMakeFiles/zs_core.dir/reporter.cpp.o.d"
  "CMakeFiles/zs_core.dir/signal_handler.cpp.o"
  "CMakeFiles/zs_core.dir/signal_handler.cpp.o.d"
  "CMakeFiles/zs_core.dir/zerosum.cpp.o"
  "CMakeFiles/zs_core.dir/zerosum.cpp.o.d"
  "libzs_core.a"
  "libzs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
