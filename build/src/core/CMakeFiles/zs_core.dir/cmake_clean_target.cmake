file(REMOVE_RECURSE
  "libzs_core.a"
)
