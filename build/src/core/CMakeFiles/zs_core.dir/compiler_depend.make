# Empty compiler generated dependencies file for zs_core.
# This may be replaced when dependencies are built.
