file(REMOVE_RECURSE
  "CMakeFiles/zs_export.dir/perfstubs.cpp.o"
  "CMakeFiles/zs_export.dir/perfstubs.cpp.o.d"
  "CMakeFiles/zs_export.dir/publisher.cpp.o"
  "CMakeFiles/zs_export.dir/publisher.cpp.o.d"
  "CMakeFiles/zs_export.dir/staging.cpp.o"
  "CMakeFiles/zs_export.dir/staging.cpp.o.d"
  "CMakeFiles/zs_export.dir/stream.cpp.o"
  "CMakeFiles/zs_export.dir/stream.cpp.o.d"
  "libzs_export.a"
  "libzs_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
