file(REMOVE_RECURSE
  "libzs_export.a"
)
