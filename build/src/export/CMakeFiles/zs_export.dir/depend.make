# Empty dependencies file for zs_export.
# This may be replaced when dependencies are built.
