file(REMOVE_RECURSE
  "CMakeFiles/zs_gpu.dir/simulated.cpp.o"
  "CMakeFiles/zs_gpu.dir/simulated.cpp.o.d"
  "libzs_gpu.a"
  "libzs_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
