file(REMOVE_RECURSE
  "libzs_gpu.a"
)
