# Empty dependencies file for zs_gpu.
# This may be replaced when dependencies are built.
