
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/comm.cpp" "src/mpisim/CMakeFiles/zs_mpisim.dir/comm.cpp.o" "gcc" "src/mpisim/CMakeFiles/zs_mpisim.dir/comm.cpp.o.d"
  "/root/repo/src/mpisim/patterns.cpp" "src/mpisim/CMakeFiles/zs_mpisim.dir/patterns.cpp.o" "gcc" "src/mpisim/CMakeFiles/zs_mpisim.dir/patterns.cpp.o.d"
  "/root/repo/src/mpisim/recorder.cpp" "src/mpisim/CMakeFiles/zs_mpisim.dir/recorder.cpp.o" "gcc" "src/mpisim/CMakeFiles/zs_mpisim.dir/recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
