file(REMOVE_RECURSE
  "CMakeFiles/zs_mpisim.dir/comm.cpp.o"
  "CMakeFiles/zs_mpisim.dir/comm.cpp.o.d"
  "CMakeFiles/zs_mpisim.dir/patterns.cpp.o"
  "CMakeFiles/zs_mpisim.dir/patterns.cpp.o.d"
  "CMakeFiles/zs_mpisim.dir/recorder.cpp.o"
  "CMakeFiles/zs_mpisim.dir/recorder.cpp.o.d"
  "libzs_mpisim.a"
  "libzs_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
