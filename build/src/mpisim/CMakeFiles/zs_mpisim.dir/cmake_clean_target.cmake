file(REMOVE_RECURSE
  "libzs_mpisim.a"
)
