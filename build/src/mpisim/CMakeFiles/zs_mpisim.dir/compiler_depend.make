# Empty compiler generated dependencies file for zs_mpisim.
# This may be replaced when dependencies are built.
