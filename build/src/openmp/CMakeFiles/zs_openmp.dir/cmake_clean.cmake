file(REMOVE_RECURSE
  "CMakeFiles/zs_openmp.dir/ompt.cpp.o"
  "CMakeFiles/zs_openmp.dir/ompt.cpp.o.d"
  "CMakeFiles/zs_openmp.dir/team.cpp.o"
  "CMakeFiles/zs_openmp.dir/team.cpp.o.d"
  "libzs_openmp.a"
  "libzs_openmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_openmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
