file(REMOVE_RECURSE
  "libzs_openmp.a"
)
