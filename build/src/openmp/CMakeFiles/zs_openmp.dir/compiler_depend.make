# Empty compiler generated dependencies file for zs_openmp.
# This may be replaced when dependencies are built.
