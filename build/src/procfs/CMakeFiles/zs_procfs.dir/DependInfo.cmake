
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/procfs/parse.cpp" "src/procfs/CMakeFiles/zs_procfs.dir/parse.cpp.o" "gcc" "src/procfs/CMakeFiles/zs_procfs.dir/parse.cpp.o.d"
  "/root/repo/src/procfs/real.cpp" "src/procfs/CMakeFiles/zs_procfs.dir/real.cpp.o" "gcc" "src/procfs/CMakeFiles/zs_procfs.dir/real.cpp.o.d"
  "/root/repo/src/procfs/simfs.cpp" "src/procfs/CMakeFiles/zs_procfs.dir/simfs.cpp.o" "gcc" "src/procfs/CMakeFiles/zs_procfs.dir/simfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
