file(REMOVE_RECURSE
  "CMakeFiles/zs_procfs.dir/parse.cpp.o"
  "CMakeFiles/zs_procfs.dir/parse.cpp.o.d"
  "CMakeFiles/zs_procfs.dir/real.cpp.o"
  "CMakeFiles/zs_procfs.dir/real.cpp.o.d"
  "CMakeFiles/zs_procfs.dir/simfs.cpp.o"
  "CMakeFiles/zs_procfs.dir/simfs.cpp.o.d"
  "libzs_procfs.a"
  "libzs_procfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_procfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
