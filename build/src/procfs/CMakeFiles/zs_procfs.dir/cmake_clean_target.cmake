file(REMOVE_RECURSE
  "libzs_procfs.a"
)
