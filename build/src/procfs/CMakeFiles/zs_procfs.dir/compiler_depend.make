# Empty compiler generated dependencies file for zs_procfs.
# This may be replaced when dependencies are built.
