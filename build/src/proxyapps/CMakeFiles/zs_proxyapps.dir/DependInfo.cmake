
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxyapps/miniqmc.cpp" "src/proxyapps/CMakeFiles/zs_proxyapps.dir/miniqmc.cpp.o" "gcc" "src/proxyapps/CMakeFiles/zs_proxyapps.dir/miniqmc.cpp.o.d"
  "/root/repo/src/proxyapps/picfusion.cpp" "src/proxyapps/CMakeFiles/zs_proxyapps.dir/picfusion.cpp.o" "gcc" "src/proxyapps/CMakeFiles/zs_proxyapps.dir/picfusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/openmp/CMakeFiles/zs_openmp.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/zs_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
