file(REMOVE_RECURSE
  "CMakeFiles/zs_proxyapps.dir/miniqmc.cpp.o"
  "CMakeFiles/zs_proxyapps.dir/miniqmc.cpp.o.d"
  "CMakeFiles/zs_proxyapps.dir/picfusion.cpp.o"
  "CMakeFiles/zs_proxyapps.dir/picfusion.cpp.o.d"
  "libzs_proxyapps.a"
  "libzs_proxyapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_proxyapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
