file(REMOVE_RECURSE
  "libzs_proxyapps.a"
)
