# Empty compiler generated dependencies file for zs_proxyapps.
# This may be replaced when dependencies are built.
