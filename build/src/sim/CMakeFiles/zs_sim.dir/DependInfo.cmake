
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/zs_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/zs_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/slurm.cpp" "src/sim/CMakeFiles/zs_sim.dir/slurm.cpp.o" "gcc" "src/sim/CMakeFiles/zs_sim.dir/slurm.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/zs_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/zs_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/zs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
