file(REMOVE_RECURSE
  "CMakeFiles/zs_sim.dir/node.cpp.o"
  "CMakeFiles/zs_sim.dir/node.cpp.o.d"
  "CMakeFiles/zs_sim.dir/slurm.cpp.o"
  "CMakeFiles/zs_sim.dir/slurm.cpp.o.d"
  "CMakeFiles/zs_sim.dir/workload.cpp.o"
  "CMakeFiles/zs_sim.dir/workload.cpp.o.d"
  "libzs_sim.a"
  "libzs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
