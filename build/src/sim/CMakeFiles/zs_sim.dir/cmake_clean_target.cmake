file(REMOVE_RECURSE
  "libzs_sim.a"
)
