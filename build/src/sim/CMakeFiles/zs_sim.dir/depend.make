# Empty dependencies file for zs_sim.
# This may be replaced when dependencies are built.
