
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/builder.cpp" "src/topology/CMakeFiles/zs_topology.dir/builder.cpp.o" "gcc" "src/topology/CMakeFiles/zs_topology.dir/builder.cpp.o.d"
  "/root/repo/src/topology/discover.cpp" "src/topology/CMakeFiles/zs_topology.dir/discover.cpp.o" "gcc" "src/topology/CMakeFiles/zs_topology.dir/discover.cpp.o.d"
  "/root/repo/src/topology/hardware.cpp" "src/topology/CMakeFiles/zs_topology.dir/hardware.cpp.o" "gcc" "src/topology/CMakeFiles/zs_topology.dir/hardware.cpp.o.d"
  "/root/repo/src/topology/presets.cpp" "src/topology/CMakeFiles/zs_topology.dir/presets.cpp.o" "gcc" "src/topology/CMakeFiles/zs_topology.dir/presets.cpp.o.d"
  "/root/repo/src/topology/render.cpp" "src/topology/CMakeFiles/zs_topology.dir/render.cpp.o" "gcc" "src/topology/CMakeFiles/zs_topology.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
