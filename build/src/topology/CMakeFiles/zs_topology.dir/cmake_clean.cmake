file(REMOVE_RECURSE
  "CMakeFiles/zs_topology.dir/builder.cpp.o"
  "CMakeFiles/zs_topology.dir/builder.cpp.o.d"
  "CMakeFiles/zs_topology.dir/discover.cpp.o"
  "CMakeFiles/zs_topology.dir/discover.cpp.o.d"
  "CMakeFiles/zs_topology.dir/hardware.cpp.o"
  "CMakeFiles/zs_topology.dir/hardware.cpp.o.d"
  "CMakeFiles/zs_topology.dir/presets.cpp.o"
  "CMakeFiles/zs_topology.dir/presets.cpp.o.d"
  "CMakeFiles/zs_topology.dir/render.cpp.o"
  "CMakeFiles/zs_topology.dir/render.cpp.o.d"
  "libzs_topology.a"
  "libzs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
