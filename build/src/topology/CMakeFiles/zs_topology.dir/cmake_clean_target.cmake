file(REMOVE_RECURSE
  "libzs_topology.a"
)
