file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/test_clock.cpp.o"
  "CMakeFiles/test_common.dir/test_clock.cpp.o.d"
  "CMakeFiles/test_common.dir/test_cpuset.cpp.o"
  "CMakeFiles/test_common.dir/test_cpuset.cpp.o.d"
  "CMakeFiles/test_common.dir/test_env.cpp.o"
  "CMakeFiles/test_common.dir/test_env.cpp.o.d"
  "CMakeFiles/test_common.dir/test_logging.cpp.o"
  "CMakeFiles/test_common.dir/test_logging.cpp.o.d"
  "CMakeFiles/test_common.dir/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/test_strings.cpp.o"
  "CMakeFiles/test_common.dir/test_strings.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
