file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_core_config.cpp.o"
  "CMakeFiles/test_core.dir/test_core_config.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_contention.cpp.o"
  "CMakeFiles/test_core.dir/test_core_contention.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_misc.cpp.o"
  "CMakeFiles/test_core.dir/test_core_misc.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_monitor.cpp.o"
  "CMakeFiles/test_core.dir/test_core_monitor.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_progress.cpp.o"
  "CMakeFiles/test_core.dir/test_core_progress.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_reporter.cpp.o"
  "CMakeFiles/test_core.dir/test_core_reporter.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_trackers.cpp.o"
  "CMakeFiles/test_core.dir/test_core_trackers.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
