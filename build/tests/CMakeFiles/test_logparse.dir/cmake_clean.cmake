file(REMOVE_RECURSE
  "CMakeFiles/test_logparse.dir/test_logparse.cpp.o"
  "CMakeFiles/test_logparse.dir/test_logparse.cpp.o.d"
  "test_logparse"
  "test_logparse.pdb"
  "test_logparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
