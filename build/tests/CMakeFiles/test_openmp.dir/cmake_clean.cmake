file(REMOVE_RECURSE
  "CMakeFiles/test_openmp.dir/test_openmp.cpp.o"
  "CMakeFiles/test_openmp.dir/test_openmp.cpp.o.d"
  "test_openmp"
  "test_openmp.pdb"
  "test_openmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
