# Empty dependencies file for test_openmp.
# This may be replaced when dependencies are built.
