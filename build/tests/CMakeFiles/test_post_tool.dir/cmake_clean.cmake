file(REMOVE_RECURSE
  "CMakeFiles/test_post_tool.dir/test_post_tool.cpp.o"
  "CMakeFiles/test_post_tool.dir/test_post_tool.cpp.o.d"
  "test_post_tool"
  "test_post_tool.pdb"
  "test_post_tool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_post_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
