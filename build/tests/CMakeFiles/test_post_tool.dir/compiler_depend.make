# Empty compiler generated dependencies file for test_post_tool.
# This may be replaced when dependencies are built.
