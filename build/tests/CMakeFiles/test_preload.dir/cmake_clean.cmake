file(REMOVE_RECURSE
  "CMakeFiles/test_preload.dir/test_preload.cpp.o"
  "CMakeFiles/test_preload.dir/test_preload.cpp.o.d"
  "test_preload"
  "test_preload.pdb"
  "test_preload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
