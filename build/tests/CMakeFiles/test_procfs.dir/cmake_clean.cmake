file(REMOVE_RECURSE
  "CMakeFiles/test_procfs.dir/test_procfs_parse.cpp.o"
  "CMakeFiles/test_procfs.dir/test_procfs_parse.cpp.o.d"
  "CMakeFiles/test_procfs.dir/test_procfs_real.cpp.o"
  "CMakeFiles/test_procfs.dir/test_procfs_real.cpp.o.d"
  "CMakeFiles/test_procfs.dir/test_procfs_sim.cpp.o"
  "CMakeFiles/test_procfs.dir/test_procfs_sim.cpp.o.d"
  "test_procfs"
  "test_procfs.pdb"
  "test_procfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
