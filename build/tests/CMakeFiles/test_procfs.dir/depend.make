# Empty dependencies file for test_procfs.
# This may be replaced when dependencies are built.
