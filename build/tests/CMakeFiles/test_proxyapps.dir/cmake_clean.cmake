file(REMOVE_RECURSE
  "CMakeFiles/test_proxyapps.dir/test_picfusion.cpp.o"
  "CMakeFiles/test_proxyapps.dir/test_picfusion.cpp.o.d"
  "CMakeFiles/test_proxyapps.dir/test_proxyapps.cpp.o"
  "CMakeFiles/test_proxyapps.dir/test_proxyapps.cpp.o.d"
  "test_proxyapps"
  "test_proxyapps.pdb"
  "test_proxyapps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxyapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
