# Empty compiler generated dependencies file for test_proxyapps.
# This may be replaced when dependencies are built.
