# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_procfs[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_openmp[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_preload[1]_include.cmake")
include("/root/repo/build/tests/test_reorder[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_adaptation[1]_include.cmake")
include("/root/repo/build/tests/test_logparse[1]_include.cmake")
include("/root/repo/build/tests/test_proxyapps[1]_include.cmake")
include("/root/repo/build/tests/test_post_tool[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
