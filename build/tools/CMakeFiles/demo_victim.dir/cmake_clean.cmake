file(REMOVE_RECURSE
  "CMakeFiles/demo_victim.dir/demo_victim.cpp.o"
  "CMakeFiles/demo_victim.dir/demo_victim.cpp.o.d"
  "demo_victim"
  "demo_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demo_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
