# Empty compiler generated dependencies file for demo_victim.
# This may be replaced when dependencies are built.
