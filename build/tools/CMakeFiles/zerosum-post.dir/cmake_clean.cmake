file(REMOVE_RECURSE
  "CMakeFiles/zerosum-post.dir/zerosum_post.cpp.o"
  "CMakeFiles/zerosum-post.dir/zerosum_post.cpp.o.d"
  "zerosum-post"
  "zerosum-post.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerosum-post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
