# Empty compiler generated dependencies file for zerosum-post.
# This may be replaced when dependencies are built.
