file(REMOVE_RECURSE
  "CMakeFiles/zerosum-run.dir/zerosum_run.cpp.o"
  "CMakeFiles/zerosum-run.dir/zerosum_run.cpp.o.d"
  "zerosum-run"
  "zerosum-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerosum-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
