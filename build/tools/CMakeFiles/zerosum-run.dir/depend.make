# Empty dependencies file for zerosum-run.
# This may be replaced when dependencies are built.
