file(REMOVE_RECURSE
  "CMakeFiles/zerosum_preload.dir/preload.cpp.o"
  "CMakeFiles/zerosum_preload.dir/preload.cpp.o.d"
  "libzerosum_preload.pdb"
  "libzerosum_preload.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zerosum_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
