# Empty dependencies file for zerosum_preload.
# This may be replaced when dependencies are built.
