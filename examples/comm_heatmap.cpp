// Communication heatmap (paper Figure 5): run a small multi-rank proxy with
// real point-to-point traffic through the recorder, then render the byte
// matrix — and regenerate the 512-rank gyrokinetic pattern of the figure.
//
//   $ ./comm_heatmap [ranks] [out.pgm]
#include <cstdlib>
#include <iostream>

#include "analysis/heatmap.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/patterns.hpp"
#include "proxyapps/picfusion.hpp"

using namespace zerosum;

int main(int argc, char** argv) {
  const int liveRanks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string pgmPath = argc > 2 ? argv[2] : "figure5_heatmap.pgm";

  // Part 1: a live gyrokinetic-PIC proxy run — the actual Figure 5
  // workload class — with real particle/field payloads flowing through
  // ZeroSum's interposition recorders.
  mpisim::World world(liveRanks);
  std::vector<mpisim::Recorder> recorders;
  for (int r = 0; r < liveRanks; ++r) {
    recorders.emplace_back(r);
  }
  world.attachRecorders(&recorders);
  world.run([liveRanks](mpisim::Comm& comm) {
    proxyapps::PicParams params;
    params.steps = 8;
    params.particlesPerRank = 2000;
    params.cellsPerRank = 8;
    params.ranksPerPlane = std::max(2, liveRanks / 4);
    proxyapps::runPicFusion(params, comm);
  });

  mpisim::CommMatrix live(liveRanks);
  for (const auto& recorder : recorders) {
    live.merge(recorder);
  }
  std::cout << "Live " << liveRanks
            << "-rank gyrokinetic PIC proxy traffic (real payloads):\n"
            << analysis::renderAscii(live, {.bins = liveRanks, .logScale = true})
            << '\n';

  // Part 2: the paper's 512-rank gyrokinetic particle-in-cell pattern.
  mpisim::patterns::GyrokineticParams params;
  const auto matrix = mpisim::patterns::toMatrix(
      512, [&](const mpisim::patterns::SendFn& send) {
        mpisim::patterns::gyrokineticPic(512, params, send);
      });
  std::cout << "512-rank gyrokinetic PIC pattern (Figure 5):\n"
            << analysis::renderAscii(matrix, {.bins = 64, .logScale = true});
  std::cout << "diagonal dominance (band 1, >=90% of bytes): "
            << (matrix.diagonalDominance(1, 0.90) ? "yes" : "no") << '\n';
  const std::string path = analysis::writePgmFile(matrix, pgmPath);
  std::cout << "wrote " << path << " (render with any PGM viewer)\n";
  return 0;
}
