// Deadlock / stuck-progress detection (paper §3.3): the paper sketches
// using the per-LWP counters to "detect a deadlock condition and possibly
// terminate the application to prevent wasting of allocation resources".
// This example shows the implemented heuristic on a simulated job whose
// team deadlocks mid-run: one member exits early, leaving the rest parked
// at a barrier forever.
//
//   $ ./deadlock_demo
#include <iostream>

#include "core/monitor.hpp"
#include "procfs/simfs.hpp"
#include "sim/node.hpp"

using namespace zerosum;

int main() {
  sim::SimNode node(CpuSet::fromList("0-3"), 8ULL << 30);
  const sim::Pid pid = node.spawnProcess("wedged-app", CpuSet::fromList("0-3"));

  // A 4-member team where one thread does fewer iterations: after its
  // last step it exits instead of re-entering the barrier, so the other
  // three wait forever — a classic mismatched-collective hang.
  const sim::TeamId team = node.createTeam(4);
  for (int t = 0; t < 4; ++t) {
    sim::Behavior b;
    b.iterations = t == 3 ? 5 : 50;
    b.iterWorkJiffies = 20;
    b.teamId = team;
    node.spawnTask(pid, t == 0 ? "wedged-app" : "omp-worker",
                   t == 0 ? LwpType::kMain : LwpType::kOpenMp, b,
                   CpuSet::fromList(std::to_string(t)));
  }

  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  cfg.deadlockDetect = true;
  cfg.deadlockPeriods = 5;
  core::MonitorSession session(cfg, procfs::makeSimProcFs(node));
  session.setProgressSink(
      [](const std::string& line) { std::cout << line << '\n'; });

  for (int second = 1; second <= 30; ++second) {
    node.advance(sim::kHz);
    session.sampleNow(second);
    if (session.progress().stuck()) {
      break;
    }
  }

  if (session.progress().stuck()) {
    const auto& report = session.progress().reports().front();
    std::cout << "\nDetected: " << report.description << '\n';
    std::cout << "Idle LWPs:";
    for (int tid : report.tids) {
      std::cout << ' ' << tid;
    }
    std::cout << "\n\nFinal state of each thread:\n";
    for (const auto& [tid, record] : session.lwps().records()) {
      const char state =
          record.samples.empty() ? '?' : record.samples.back().state;
      std::cout << "  LWP " << tid << " (" << lwpTypeName(record.type)
                << "): state " << state << ", cpu time "
                << record.totalUtime() + record.totalStime()
                << " jiffies\n";
    }
    // The §3.3 endgame: stop burning the allocation.
    node.terminateProcess(pid);
    node.advance(sim::kHz);
    std::cout << "\nTerminated the wedged process; node idle again "
              << "(allocation saved instead of burned).\n";
    return 0;
  }
  std::cout << "no deadlock detected (unexpected for this demo)\n";
  return 1;
}
