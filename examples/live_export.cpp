// Data-export pipeline (paper §3.3 / §6): monitor a real run of the
// miniQMC proxy while streaming every period's metrics to
//   * a MetricStream subscriber (an LDMS-style live consumer printing a
//     one-line ticker),
//   * the PerfStubs ToolApi (a TAU-style tool, here the bundled recording
//     backend), and
//   * an ADIOS2-style staging file — then read the staging file back and
//     summarize a series from it.
//
//   $ ./live_export [threads] [steps] [staging-file]
#include <unistd.h>

#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "core/monitor.hpp"
#include "export/perfstubs.hpp"
#include "export/publisher.hpp"
#include "export/staging.hpp"
#include "procfs/procfs.hpp"
#include "proxyapps/miniqmc.hpp"

using namespace zerosum;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 2;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 3000;
  const std::string stagingPath =
      argc > 3 ? argv[3] : "zerosum_metrics.zstg";

  // The TAU-style tool attaches through the PerfStubs interface.
  auto tauLike = std::make_shared<exporter::RecordingBackend>();
  exporter::ToolApi::instance().registerBackend(tauLike);

  // The LDMS-style service subscribes to the live stream.
  exporter::MetricStream stream;
  stream.subscribe([](const exporter::Batch& batch) {
    double busiest = 0.0;
    for (const auto& record : batch) {
      if (record.nameView().rfind("hwt.", 0) == 0 &&
          record.nameView().find("user_pct") != std::string_view::npos) {
        busiest = std::max(busiest, record.value);
      }
    }
    std::cout << "[stream] t=" << strings::fixed(batch.front().timeSeconds, 1)
              << "s  " << batch.size() << " records, busiest HWT "
              << strings::fixed(busiest, 1) << "% user\n";
  });

  exporter::SessionPublisher::Options options;
  options.perfstubs = true;
  exporter::SessionPublisher publisher(&stream, options);
  publisher.openStaging(stagingPath);

  core::Config cfg;
  cfg.period = std::chrono::milliseconds(100);
  cfg.signalHandler = false;
  cfg.jiffyHz = static_cast<std::uint64_t>(::sysconf(_SC_CLK_TCK));
  core::MonitorSession session(cfg, procfs::makeRealProcFs());
  session.setSampleCallback(
      [&publisher](const core::MonitorSession& s, double t) {
        publisher.publish(s, t);
      });
  session.start();

  proxyapps::MiniQmcParams params;
  params.threads = threads;
  params.steps = steps;
  params.walkersPerThread = 4;
  params.electrons = 64;
  const auto result = proxyapps::runMiniQmc(params);
  session.stop();
  publisher.closeStaging();
  exporter::ToolApi::instance().deregisterBackend();

  std::cout << "\nminiQMC proxy: " << result.moves << " moves in "
            << strings::fixed(result.seconds, 3) << " s\n";
  std::cout << "published " << publisher.periodsPublished()
            << " periods; stream carried " << stream.recordsPublished()
            << " records\n";
  std::cout << "PerfStubs backend captured " << tauLike->counters().size()
            << " distinct counters\n";

  // Post-run: read the staging file back like an analysis tool would.
  exporter::StagingReader reader(stagingPath);
  std::cout << "staging file '" << stagingPath << "' holds "
            << reader.stepCount() << " steps; variables in step 0:\n";
  int shown = 0;
  for (const auto& name : reader.variables(0)) {
    if (++shown > 8) {
      std::cout << "  ...\n";
      break;
    }
    std::cout << "  " << name << '\n';
  }
  return 0;
}
