// miniQMC on a simulated Frontier node, under the paper's three launch
// configurations (§4, Tables 1-3):
//
//   $ ./miniqmc_frontier default     # srun -n8            (Table 1)
//   $ ./miniqmc_frontier cores7      # srun -n8 -c7        (Table 2)
//   $ ./miniqmc_frontier bound       # -c7 + OMP spread    (Table 3)
//
// Each run prints the rank-0 LWP table in the paper's column format, the
// ZeroSum report, and the contention findings.  This example demonstrates
// the monitor + node-simulator substrate that regenerates the paper's
// evaluation on a laptop.
#include <iostream>
#include <string>

#include "core/monitor.hpp"
#include "procfs/simfs.hpp"
#include "sim/workload.hpp"
#include "topology/presets.hpp"

using namespace zerosum;

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "default";
  const bool cores7 = mode == "cores7" || mode == "bound";
  const bool bound = mode == "bound";
  if (mode != "default" && !cores7) {
    std::cerr << "usage: " << argv[0] << " [default|cores7|bound]\n";
    return 2;
  }

  const auto topo = topology::presets::frontier();
  sim::slurm::SrunArgs args;
  args.ntasks = 8;
  args.cpusPerTask = cores7 ? 7 : 1;
  const auto plan = sim::slurm::planSrun(topo, args);
  std::cout << "Launch plan (" << mode << "):\n"
            << sim::slurm::renderPlan(plan) << '\n';

  sim::SimNode node(topo.allPus(), 512ULL << 30);
  sim::MiniQmcConfig qmc;
  qmc.ompThreads = cores7 ? 7 : 8;
  qmc.steps = 60;
  qmc.workPerStep = 12;

  std::vector<sim::BuiltRank> ranks;
  for (const auto& placement : plan) {
    sim::MiniQmcConfig cfg = qmc;
    if (bound) {
      cfg.threadBinding = sim::slurm::planOmpBinding(
          topo, placement.cpus, qmc.ompThreads, sim::slurm::OmpBind::kSpread,
          sim::slurm::OmpPlaces::kCores);
    }
    ranks.push_back(
        sim::buildMiniQmcRank(node, placement.cpus, cfg, node.hwts()));
  }

  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  core::ProcessIdentity identity;
  identity.rank = 0;
  identity.worldSize = static_cast<int>(plan.size());
  identity.pid = ranks[0].pid;
  identity.hostname = "frontier-sim";
  core::MonitorSession session(cfg, procfs::makeSimProcFs(node, ranks[0].pid),
                               identity);

  while (!node.allWorkFinished() && node.nowSeconds() < 900.0) {
    node.advance(sim::kHz);
    session.sampleNow(node.nowSeconds());
  }

  std::cout << "Application reported execution time: " << node.nowSeconds()
            << " s\n\n";
  std::cout << "Rank 0 LWP table (paper Tables 1-3 format):\n"
            << core::Reporter::renderLwpTable(session.lwps().records())
            << '\n';
  std::cout << session.report();
  return 0;
}
