// Node explorer: the "check for misconfiguration" workflow from paper §2.
// Prints the hwloc-style topology of a modelled system (Listing 1 /
// Figures 1-3), plans a launch, and evaluates it against the configuration
// rules — before burning any allocation hours.
//
//   $ ./node_explorer frontier -n 8 -c 7 --threads 7 --bind --gpus 1
//   $ ./node_explorer i7-1165g7
//   $ ./node_explorer host          # discover the current machine
#include <cstring>
#include <iostream>
#include <string>

#include "core/contention.hpp"
#include "sim/slurm.hpp"
#include "topology/discover.hpp"
#include "topology/presets.hpp"
#include "topology/render.hpp"

using namespace zerosum;

int main(int argc, char** argv) {
  const std::string machine = argc > 1 ? argv[1] : "frontier";
  sim::slurm::SrunArgs args;
  core::ConfigEvaluator::JobShape shape;
  shape.threadsPerRank = 1;
  args.ntasks = 0;  // 0 = topology print only
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() { return i + 1 < argc ? std::atoi(argv[++i]) : 0; };
    if (flag == "-n") {
      args.ntasks = next();
    } else if (flag == "-c") {
      args.cpusPerTask = next();
    } else if (flag == "--threads") {
      shape.threadsPerRank = next();
    } else if (flag == "--threads-per-core") {
      args.threadsPerCore = next();
    } else if (flag == "--gpus") {
      args.gpusPerTask = next();
      shape.gpusPerRank = args.gpusPerTask;
      args.gpuBindClosest = true;
    } else if (flag == "--bind") {
      shape.threadsBound = true;
    } else {
      std::cerr << "unknown flag " << flag << '\n';
      return 2;
    }
  }

  const topology::Topology topo = machine == "host"
                                      ? topology::discoverHost()
                                      : topology::presets::byName(machine);
  std::cout << topology::renderTree(topo) << '\n';
  std::cout << topology::renderNodeDiagram(topo) << '\n';

  if (args.ntasks <= 0) {
    return 0;
  }
  const auto plan = sim::slurm::planSrun(topo, args);
  std::cout << "Placement plan:\n" << sim::slurm::renderPlan(plan) << '\n';

  const auto findings = core::ConfigEvaluator().evaluate(topo, plan, shape);
  std::cout << "Configuration evaluation:\n"
            << core::renderFindings(findings);
  return 0;
}
