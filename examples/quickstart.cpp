// Quickstart: monitor the current process with ZeroSum while it does some
// threaded work, then print the utilization report.
//
//   $ ./quickstart [threads] [steps]
//
// This is the "always-on monitoring library" usage from the paper: call
// zerosum::initialize() at startup (or export ZS_AUTO_INIT=1 and link the
// library), run the application, print zerosum::finalize() at exit.  The
// monitor discovers the worker threads by scanning /proc/self/task — no
// instrumentation of the workload is needed.
#include <cstdlib>
#include <iostream>

#include "core/zerosum.hpp"
#include "proxyapps/miniqmc.hpp"

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 30;

  zerosum::core::Config config;
  config.period = std::chrono::milliseconds(100);
  config.heartbeat = true;
  config.heartbeatPeriods = 5;
  config.logPrefix = "quickstart";
  config.jiffyHz =
      static_cast<std::uint64_t>(::sysconf(_SC_CLK_TCK));
  zerosum::initialize(config, {});

  zerosum::proxyapps::MiniQmcParams params;
  params.threads = threads;
  params.steps = steps;
  const auto result = zerosum::proxyapps::runMiniQmc(params);

  std::cout << "miniQMC proxy finished: " << result.moves << " moves in "
            << result.seconds << " s (acceptance "
            << result.acceptanceRatio << ")\n\n";
  std::cout << zerosum::finalize();
  return 0;
}
