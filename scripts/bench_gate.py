#!/usr/bin/env python3
"""Performance-regression gate over the BENCH_*.json artifacts.

Compares freshly generated benchmark JSON against the checked-in
baselines under bench/baselines/ and fails (exit 1) on regression.

Two classes of metric, with different tolerance bands:

* invariant -- machine-independent contracts that must hold exactly
  anywhere: zero allocations per op on the sampling hot path, zero
  dropped records on the lossless in-memory wire, the monitoring
  overhead staying inside the paper's < 0.5% budget.  These gate
  strictly: any violation fails, no band.

* ratio -- machine-dependent throughput/latency numbers (ns/op, MB/s,
  samples/s).  Checked-in baselines were recorded on one machine and CI
  runs on another, so these use a wide catastrophic-only band: the gate
  fails only when the fresh value is worse than baseline by more than
  --ratio-tolerance (default 4x).  That still catches accidental
  O(n) -> O(n^2) slips and "debug build leaked into the bench" while
  staying quiet across hardware generations.

* bounded -- machine-independent quantities that may drift a little
  (compression ratio): fail when worse than baseline by more than 10%.

Re-baselining (after an intentional perf change, on a quiet machine):

    cmake --build build -j && (cd build/bench && for b in ./bench_*; do $b; done)
    scripts/bench_gate.py --fresh build/bench --rebaseline
    git add bench/baselines && git commit

Usage:
    scripts/bench_gate.py [--fresh DIR] [--baselines DIR]
                          [--ratio-tolerance X] [--rebaseline]
"""

import argparse
import json
import pathlib
import shutil
import sys

# Metric kinds: how a (baseline, fresh) pair is judged.
INVARIANT = "invariant"  # fresh must equal the expected constant
RATIO = "ratio"          # fresh may be worse by at most ratio_tolerance x
BOUNDED = "bounded"      # fresh may be worse by at most 10%


class Check:
    def __init__(self, name, kind, baseline, fresh, *, expect=None,
                 higher_is_better=False):
        self.name = name
        self.kind = kind
        self.baseline = baseline
        self.fresh = fresh
        self.expect = expect  # invariant metrics only
        self.higher_is_better = higher_is_better

    def verdict(self, ratio_tolerance):
        if self.fresh is None:
            return False, "metric missing from fresh run"
        if self.kind == INVARIANT:
            if self.fresh == self.expect:
                return True, "holds"
            return False, f"expected {self.expect!r}, got {self.fresh!r}"
        if self.baseline is None:
            # New metric with no baseline yet: report, never fail.
            return True, "no baseline (informational)"
        band = ratio_tolerance if self.kind == RATIO else 1.10
        if self.higher_is_better:
            limit = self.baseline / band
            ok = self.fresh >= limit
            rel = self.fresh / self.baseline if self.baseline else 1.0
        else:
            limit = self.baseline * band
            ok = self.fresh <= limit
            rel = self.fresh / self.baseline if self.baseline else 1.0
        return ok, f"{rel:.2f}x of baseline (band {band:.2f}x)"


def get(doc, *path):
    """Walks dicts by key; returns None when any hop is missing."""
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def stage_map(doc):
    return {s.get("name"): s for s in doc.get("stages", [])
            if isinstance(s, dict)}


def checks_sampling(base, fresh):
    out = []
    fresh_stages = stage_map(fresh)
    base_stages = stage_map(base) if base else {}
    for name, stage in sorted(fresh_stages.items()):
        bstage = base_stages.get(name, {})
        if stage.get("must_be_zero_alloc"):
            out.append(Check(f"sampling.{name}.allocs_per_op", INVARIANT,
                             bstage.get("allocs_per_op"),
                             stage.get("allocs_per_op"), expect=0))
        out.append(Check(f"sampling.{name}.ns_per_op", RATIO,
                         bstage.get("ns_per_op"), stage.get("ns_per_op")))
    return out


def checks_overhead(base, fresh):
    return [
        Check("overhead.within_budget", INVARIANT,
              get(base, "within_budget") if base else None,
              get(fresh, "within_budget"), expect=True),
    ]


def checks_aggregator(base, fresh):
    out = [
        Check("aggregator.wire.records_dropped", INVARIANT,
              get(base, "wire", "records_dropped") if base else None,
              get(fresh, "wire", "records_dropped"), expect=0),
        Check("aggregator.wire.records_per_second", RATIO,
              get(base, "wire", "records_per_second") if base else None,
              get(fresh, "wire", "records_per_second"),
              higher_is_better=True),
    ]
    base_store = {s.get("series"): s for s in (base or {}).get("store", [])}
    for entry in fresh.get("store", []):
        series = entry.get("series")
        out.append(Check(f"aggregator.store.{series}.samples_per_second",
                         RATIO,
                         base_store.get(series, {}).get("samples_per_second"),
                         entry.get("samples_per_second"),
                         higher_is_better=True))
    return out


def checks_overload(base, fresh):
    return [
        # Degrade, never drop: sustained overload must coarsen records
        # (ladder engaged) while shedding none, and a client must never
        # count a record as acked that the daemon did not ingest.
        Check("overload.records_dropped", INVARIANT,
              get(base, "records_dropped") if base else None,
              get(fresh, "records_dropped"), expect=0),
        Check("overload.acked_loss", INVARIANT,
              get(base, "acked_loss") if base else None,
              get(fresh, "acked_loss"), expect=0),
        Check("overload.coarsened_nonzero", INVARIANT,
              get(base, "coarsened_nonzero") if base else None,
              get(fresh, "coarsened_nonzero"), expect=True),
        Check("overload.ingest_records_per_second", RATIO,
              get(base, "ingest_records_per_second") if base else None,
              get(fresh, "ingest_records_per_second"),
              higher_is_better=True),
    ]


def checks_metrics(base, fresh):
    return [
        # The telemetry plane must never go dark: every per-stage latency
        # histogram records observations during a live run, and the
        # scraped exposition carries all four families.
        Check("metrics.all_stages_nonzero", INVARIANT,
              get(base, "all_stages_nonzero") if base else None,
              get(fresh, "all_stages_nonzero"), expect=True),
        Check("metrics.exposition_has_all_stages", INVARIANT,
              get(base, "exposition_has_all_stages") if base else None,
              get(fresh, "exposition_has_all_stages"), expect=True),
        Check("metrics.scrape_p99_us", RATIO,
              get(base, "scrape_p99_us") if base else None,
              get(fresh, "scrape_p99_us")),
        Check("metrics.ingest_records_per_second", RATIO,
              get(base, "ingest_records_per_second") if base else None,
              get(fresh, "ingest_records_per_second"),
              higher_is_better=True),
    ]


def checks_query(base, fresh):
    return [
        # Read-plane contracts (DESIGN.md §12): a heavy dashboard load
        # must not cost the lossless wire a single ingest record, and
        # read overload sheds (429 + Retry-After) instead of stalling —
        # some queries answer 200, the excess 429, none hang.
        Check("query.records_dropped", INVARIANT,
              get(base, "records_dropped") if base else None,
              get(fresh, "records_dropped"), expect=0),
        Check("query.shed_not_stalled", INVARIANT,
              get(base, "shed_not_stalled") if base else None,
              get(fresh, "shed_not_stalled"), expect=True),
        # The workload is deterministic (virtual time), so the hit ratio
        # holds to the tight bounded band across machines.
        Check("query.cache_hit_ratio", BOUNDED,
              get(base, "cache_hit_ratio") if base else None,
              get(fresh, "cache_hit_ratio"), higher_is_better=True),
        Check("query.live_p99_us", RATIO,
              get(base, "live_p99_us") if base else None,
              get(fresh, "live_p99_us")),
        Check("query.queries_per_second", RATIO,
              get(base, "queries_per_second") if base else None,
              get(fresh, "queries_per_second"), higher_is_better=True),
    ]


def checks_tsdb(base, fresh):
    return [
        Check("tsdb.csv_fraction", BOUNDED,
              get(base, "csv_fraction") if base else None,
              get(fresh, "csv_fraction")),
        Check("tsdb.encode_mb_per_second", RATIO,
              get(base, "encode_mb_per_second") if base else None,
              get(fresh, "encode_mb_per_second"), higher_is_better=True),
        Check("tsdb.decode_mb_per_second", RATIO,
              get(base, "decode_mb_per_second") if base else None,
              get(fresh, "decode_mb_per_second"), higher_is_better=True),
    ]


def checks_federation(base, fresh):
    out = [
        # Fan-in contracts (DESIGN.md §11): every coarse window a node
        # daemon acked is present at the root (even across the group
        # kill), the comparison actually checked series (non-vacuous),
        # the root names every rank, and the tree sustains >= 2x the
        # flat daemon's in-run ingest rate at equal per-daemon budget.
        Check("federation.acked_loss", INVARIANT,
              get(base, "acked_loss") if base else None,
              get(fresh, "acked_loss"), expect=0),
        Check("federation.coverage_complete", INVARIANT,
              get(base, "coverage_complete") if base else None,
              get(fresh, "coverage_complete"), expect=True),
        Check("federation.tree_speedup_ge_2", INVARIANT,
              get(base, "tree_speedup_ge_2") if base else None,
              get(fresh, "tree_speedup_ge_2"), expect=True),
    ]
    base_scales = {s.get("ranks"): s for s in (base or {}).get("scales", [])
                   if isinstance(s, dict)}
    for entry in fresh.get("scales", []):
        ranks = entry.get("ranks")
        bscale = base_scales.get(ranks, {})
        # Virtual-time rates are deterministic record counts, so the
        # 10% bounded band holds them tightly across machines.
        out.append(Check(f"federation.{ranks}.tree_ingest_per_vsecond",
                         BOUNDED, bscale.get("tree_ingest_records_per_vsecond"),
                         entry.get("tree_ingest_records_per_vsecond"),
                         higher_is_better=True))
        out.append(Check(f"federation.{ranks}.root_query_mean_us", RATIO,
                         bscale.get("tree_query_mean_us"),
                         entry.get("tree_query_mean_us")))
    return out


# file name -> check builder; files not listed here are not gated.
GATED = {
    "BENCH_sampling.json": checks_sampling,
    "BENCH_overhead.json": checks_overhead,
    "BENCH_aggregator.json": checks_aggregator,
    "BENCH_overload.json": checks_overload,
    "BENCH_metrics.json": checks_metrics,
    "BENCH_query.json": checks_query,
    "BENCH_tsdb.json": checks_tsdb,
    "BENCH_federation.json": checks_federation,
}


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def main():
    repo = pathlib.Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", default=str(repo / "build" / "bench"),
                    help="directory holding freshly generated BENCH_*.json")
    ap.add_argument("--baselines", default=str(repo / "bench" / "baselines"),
                    help="directory holding checked-in baseline JSON")
    ap.add_argument("--ratio-tolerance", type=float, default=4.0,
                    help="catastrophic-only band for throughput metrics")
    ap.add_argument("--rebaseline", action="store_true",
                    help="copy fresh results over the baselines and exit")
    args = ap.parse_args()

    fresh_dir = pathlib.Path(args.fresh)
    base_dir = pathlib.Path(args.baselines)

    if args.rebaseline:
        base_dir.mkdir(parents=True, exist_ok=True)
        copied = []
        for name in GATED:
            src = fresh_dir / name
            if src.is_file():
                shutil.copyfile(src, base_dir / name)
                copied.append(name)
        if not copied:
            print(f"bench_gate: no BENCH_*.json found in {fresh_dir}",
                  file=sys.stderr)
            return 1
        print(f"bench_gate: rebaselined {', '.join(copied)} -> {base_dir}")
        return 0

    failures = 0
    missing = []
    for name, builder in sorted(GATED.items()):
        fresh = load(fresh_dir / name)
        if fresh is None:
            missing.append(name)
            continue
        base = load(base_dir / name)
        if base is None:
            print(f"-- {name}: no baseline checked in; informational only")
        for check in builder(base, fresh):
            ok, detail = check.verdict(args.ratio_tolerance)
            status = "ok  " if ok else "FAIL"
            print(f"  [{status}] {check.name}: {detail}")
            if not ok:
                failures += 1

    if missing:
        print(f"bench_gate: missing fresh results for {', '.join(missing)} "
              f"in {fresh_dir}", file=sys.stderr)
        return 1
    if failures:
        print(f"bench_gate: {failures} metric(s) regressed "
              f"(re-baseline intentional changes with --rebaseline)",
              file=sys.stderr)
        return 1
    print("bench_gate: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
