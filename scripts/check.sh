#!/usr/bin/env bash
# Full verification: the tier-1 build + test pass, then a sanitizer pass
# (address + undefined) over the fault-tolerance-critical suites, then
# the JSON-emitting benchmarks and the performance-regression gate
# (scripts/bench_gate.py against bench/baselines/), then a live
# telemetry smoke test: a real zerosum-aggd --http-port scraped over
# loopback HTTP, the exposition validated with scripts/promlint.py.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  SANITIZE=0
fi

echo "=== tier-1: build + full ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$SANITIZE" == 1 ]]; then
  echo "=== sanitizer pass (address,undefined) ==="
  cmake -B build-asan -S . -DZEROSUM_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$(nproc)"
  # The suites that exercise the /proc parsers, fault injection, the
  # monitor thread, and the concurrent publish/subscribe + aggregation
  # paths — where memory bugs under fault load would hide.
  # (Run the binaries directly: ctest registers individual gtest case
  # names, so filtering by executable name matches nothing.)
  for t in test_procfs test_fault_injection test_core test_export \
           test_aggregator test_tsdb test_chaos; do
    ./build-asan/tests/"$t"
  done
fi

# Every JSON-emitting bench takes an explicit --out path, so the
# artifacts land in build/bench/ regardless of the caller's cwd.
BENCH_OUT="$PWD/build/bench"

echo "=== sampling hot-path benchmark (zero-alloc contract) ==="
./build/bench/bench_sampling_loop --out "$BENCH_OUT/BENCH_sampling.json"

echo "=== aggregator ingest benchmark ==="
./build/bench/bench_aggregator_ingest --out "$BENCH_OUT/BENCH_aggregator.json"

echo "=== overload degradation benchmark (degrade, never drop) ==="
./build/bench/bench_overload --out "$BENCH_OUT/BENCH_overload.json"

echo "=== tsdb codec benchmark ==="
./build/bench/bench_tsdb_codec --out "$BENCH_OUT/BENCH_tsdb.json"

echo "=== monitoring overhead benchmark (< 0.5% budget) ==="
./build/bench/bench_figure8_overhead --out "$BENCH_OUT/BENCH_overhead.json"

echo "=== metrics endpoint benchmark (telemetry plane cost) ==="
./build/bench/bench_metrics_endpoint --out "$BENCH_OUT/BENCH_metrics.json"

echo "=== performance-regression gate ==="
python3 scripts/bench_gate.py --fresh "$BENCH_OUT"

echo "=== live telemetry smoke test (/metrics scrape + promlint) ==="
REPO="$PWD"
SMOKE_DIR="$(mktemp -d)"
./build/tools/zerosum-aggd --port 0 --http-port 0 > "$SMOKE_DIR/aggd.log" 2>&1 &
AGGD_PID=$!
trap 'kill "$AGGD_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  grep -q "http on" "$SMOKE_DIR/aggd.log" 2>/dev/null && break
  sleep 0.1
done
WIRE_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/aggd.log")"
HTTP_PORT="$(sed -n 's/.*http on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/aggd.log")"
# A short monitored run feeds stamped batches through the live wire so
# the per-stage latency histograms have something to show.
(cd "$SMOKE_DIR" &&
 ZS_AGG_PORT="$WIRE_PORT" "$REPO/build/tools/zerosum-run" \
   "$REPO/build/tools/demo_victim" 2 2500 > run.log 2>&1)
# curl may be absent in minimal images; python3 urllib always works.
python3 - "$HTTP_PORT" "$SMOKE_DIR" <<'PY'
import sys, urllib.request
port, outdir = sys.argv[1], sys.argv[2]
text = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
open(f"{outdir}/metrics.txt", "w").write(text)
health = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/healthz", timeout=10).read().decode()
assert '"ready":true' in health, health
for stage in ("enqueue_to_send", "send_to_ingest",
              "ingest_to_durable", "roundtrip"):
    needle = f"zs_agg_daemon_latency_{stage}_seconds_count"
    line = next((l for l in text.splitlines() if l.startswith(needle)), None)
    assert line is not None, f"missing {needle}"
    assert float(line.rsplit(" ", 1)[1]) > 0, f"{needle} is zero: {line}"
print("smoke: /healthz ready; all four latency stages populated")
PY
python3 scripts/promlint.py "$SMOKE_DIR/metrics.txt"
kill "$AGGD_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$SMOKE_DIR"

echo "=== check.sh: all passes complete ==="
