#!/usr/bin/env bash
# Full verification: the tier-1 build + test pass, then a sanitizer pass
# (address + undefined) over the fault-tolerance-critical suites, then
# the JSON-emitting benchmarks and the performance-regression gate
# (scripts/bench_gate.py against bench/baselines/).
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  SANITIZE=0
fi

echo "=== tier-1: build + full ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$SANITIZE" == 1 ]]; then
  echo "=== sanitizer pass (address,undefined) ==="
  cmake -B build-asan -S . -DZEROSUM_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$(nproc)"
  # The suites that exercise the /proc parsers, fault injection, the
  # monitor thread, and the concurrent publish/subscribe + aggregation
  # paths — where memory bugs under fault load would hide.
  # (Run the binaries directly: ctest registers individual gtest case
  # names, so filtering by executable name matches nothing.)
  for t in test_procfs test_fault_injection test_core test_export \
           test_aggregator test_tsdb test_chaos; do
    ./build-asan/tests/"$t"
  done
fi

# Every JSON-emitting bench takes an explicit --out path, so the
# artifacts land in build/bench/ regardless of the caller's cwd.
BENCH_OUT="$PWD/build/bench"

echo "=== sampling hot-path benchmark (zero-alloc contract) ==="
./build/bench/bench_sampling_loop --out "$BENCH_OUT/BENCH_sampling.json"

echo "=== aggregator ingest benchmark ==="
./build/bench/bench_aggregator_ingest --out "$BENCH_OUT/BENCH_aggregator.json"

echo "=== overload degradation benchmark (degrade, never drop) ==="
./build/bench/bench_overload --out "$BENCH_OUT/BENCH_overload.json"

echo "=== tsdb codec benchmark ==="
./build/bench/bench_tsdb_codec --out "$BENCH_OUT/BENCH_tsdb.json"

echo "=== monitoring overhead benchmark (< 0.5% budget) ==="
./build/bench/bench_figure8_overhead --out "$BENCH_OUT/BENCH_overhead.json"

echo "=== performance-regression gate ==="
python3 scripts/bench_gate.py --fresh "$BENCH_OUT"

echo "=== check.sh: all passes complete ==="
