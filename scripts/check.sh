#!/usr/bin/env bash
# Full verification: the tier-1 build + test pass, then a sanitizer pass
# (address + undefined) over the fault-tolerance-critical suites.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  SANITIZE=0
fi

echo "=== tier-1: build + full ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$SANITIZE" == 1 ]]; then
  echo "=== sanitizer pass (address,undefined) ==="
  cmake -B build-asan -S . -DZEROSUM_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$(nproc)"
  # The suites that exercise the /proc parsers, fault injection, the
  # monitor thread, and the concurrent publish/subscribe + aggregation
  # paths — where memory bugs under fault load would hide.
  # (Run the binaries directly: ctest registers individual gtest case
  # names, so filtering by executable name matches nothing.)
  for t in test_procfs test_fault_injection test_core test_export \
           test_aggregator test_tsdb; do
    ./build-asan/tests/"$t"
  done
fi

echo "=== aggregator ingest benchmark ==="
(cd build/bench && ./bench_aggregator_ingest)

echo "=== tsdb codec benchmark ==="
(cd build/bench && ./bench_tsdb_codec)

echo "=== check.sh: all passes complete ==="
