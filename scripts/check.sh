#!/usr/bin/env bash
# Full verification: the tier-1 build + test pass, then a sanitizer pass
# (address + undefined) over the fault-tolerance-critical suites, then
# the JSON-emitting benchmarks and the performance-regression gate
# (scripts/bench_gate.py against bench/baselines/), then a live
# telemetry smoke test: a real zerosum-aggd --http-port scraped over
# loopback HTTP, the exposition validated with scripts/promlint.py and
# the query/dashboard plane (GET /api/query, /api/stats, the
# zerosum-post --http-query client) answered end to end.
# Finally a live federation smoke: three zerosum-aggd processes form a
# node -> group -> root tree via the root's catalog and a monitored run
# discovered through ZS_AGG_CATALOG must surface at the root.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  SANITIZE=0
fi

echo "=== tier-1: build + full ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure --timeout 120 -j "$(nproc)"

if [[ "$SANITIZE" == 1 ]]; then
  echo "=== sanitizer pass (address,undefined) ==="
  cmake -B build-asan -S . -DZEROSUM_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$(nproc)"
  # The suites that exercise the /proc parsers, fault injection, the
  # monitor thread, and the concurrent publish/subscribe + aggregation
  # paths — where memory bugs under fault load would hide.
  # (Run the binaries directly: ctest registers individual gtest case
  # names, so filtering by executable name matches nothing.)
  for t in test_procfs test_fault_injection test_core test_export \
           test_aggregator test_tsdb test_chaos; do
    ./build-asan/tests/"$t"
  done
fi

# Every JSON-emitting bench takes an explicit --out path, so the
# artifacts land in build/bench/ regardless of the caller's cwd.
BENCH_OUT="$PWD/build/bench"

echo "=== sampling hot-path benchmark (zero-alloc contract) ==="
./build/bench/bench_sampling_loop --out "$BENCH_OUT/BENCH_sampling.json"

echo "=== aggregator ingest benchmark ==="
./build/bench/bench_aggregator_ingest --out "$BENCH_OUT/BENCH_aggregator.json"

echo "=== overload degradation benchmark (degrade, never drop) ==="
./build/bench/bench_overload --out "$BENCH_OUT/BENCH_overload.json"

echo "=== tsdb codec benchmark ==="
./build/bench/bench_tsdb_codec --out "$BENCH_OUT/BENCH_tsdb.json"

echo "=== monitoring overhead benchmark (< 0.5% budget) ==="
./build/bench/bench_figure8_overhead --out "$BENCH_OUT/BENCH_overhead.json"

echo "=== metrics endpoint benchmark (telemetry plane cost) ==="
./build/bench/bench_metrics_endpoint --out "$BENCH_OUT/BENCH_metrics.json"

echo "=== federated failover smoke (3-level tree, group kill mid-run) ==="
# --smoke kills one of three group daemons mid-run and restarts it after
# the catalog TTL; the binary exits nonzero unless the root covers every
# rank with zero acked-window loss and the catalog failover fired.
./build/bench/bench_federation --smoke \
  --out "$BENCH_OUT/BENCH_federation_smoke.json"

echo "=== federation fan-in benchmark (tree vs flat) ==="
./build/bench/bench_federation --out "$BENCH_OUT/BENCH_federation.json"

echo "=== query service benchmark (shed, never stall) ==="
./build/bench/bench_query_service --out "$BENCH_OUT/BENCH_query.json"

echo "=== performance-regression gate ==="
python3 scripts/bench_gate.py --fresh "$BENCH_OUT"

echo "=== live telemetry smoke test (/metrics scrape + promlint) ==="
REPO="$PWD"
SMOKE_DIR="$(mktemp -d)"
./build/tools/zerosum-aggd --port 0 --http-port 0 > "$SMOKE_DIR/aggd.log" 2>&1 &
AGGD_PID=$!
trap 'kill "$AGGD_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  grep -q "http on" "$SMOKE_DIR/aggd.log" 2>/dev/null && break
  sleep 0.1
done
WIRE_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/aggd.log")"
HTTP_PORT="$(sed -n 's/.*http on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/aggd.log")"
# A short monitored run feeds stamped batches through the live wire so
# the per-stage latency histograms have something to show.
(cd "$SMOKE_DIR" &&
 ZS_AGG_PORT="$WIRE_PORT" "$REPO/build/tools/zerosum-run" \
   "$REPO/build/tools/demo_victim" 2 2500 > run.log 2>&1)
# curl may be absent in minimal images; python3 urllib always works.
python3 - "$HTTP_PORT" "$SMOKE_DIR" <<'PY'
import sys, urllib.request
port, outdir = sys.argv[1], sys.argv[2]
text = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
open(f"{outdir}/metrics.txt", "w").write(text)
health = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/healthz", timeout=10).read().decode()
assert '"ready":true' in health, health
for stage in ("enqueue_to_send", "send_to_ingest",
              "ingest_to_durable", "roundtrip"):
    needle = f"zs_agg_daemon_latency_{stage}_seconds_count"
    line = next((l for l in text.splitlines() if l.startswith(needle)), None)
    assert line is not None, f"missing {needle}"
    assert float(line.rsplit(" ", 1)[1]) > 0, f"{needle} is zero: {line}"
print("smoke: /healthz ready; all four latency stages populated")
PY
python3 scripts/promlint.py "$SMOKE_DIR/metrics.txt"
# The query/dashboard plane over the same live daemon: a GET-form query
# and the service's stats surface, plus the zerosum-post client path.
python3 - "$HTTP_PORT" <<'PY'
import json, sys, urllib.request
port = sys.argv[1]
snap = json.load(urllib.request.urlopen(
    f"http://127.0.0.1:{port}/api/query?op=snapshot", timeout=10))
assert len(snap["series"]) > 0, snap
stats = json.load(urllib.request.urlopen(
    f"http://127.0.0.1:{port}/api/stats", timeout=10))
assert stats["queries"]["served"] >= 1, stats
print(f"smoke: query plane serving ({len(snap['series'])} series, "
      f"generation {snap['generation']})")
PY
./build/tools/zerosum-post --agg-port "$HTTP_PORT" --http-query stats \
  | python3 -c 'import json,sys; json.load(sys.stdin)'
kill "$AGGD_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$SMOKE_DIR"

echo "=== live federation smoke (node -> group -> root over TCP) ==="
# Three real zerosum-aggd processes form a tree through the root's
# catalog; a monitored run discovers the node daemon via ZS_AGG_CATALOG
# and its records must surface at the root as hop-2 forwarded sources.
FED_DIR="$(mktemp -d)"
GROUP_PID=""
NODE_PID=""
./build/tools/zerosum-aggd --role root --port 0 --http-port 0 \
  > "$FED_DIR/root.log" 2>&1 &
ROOT_PID=$!
trap 'kill "$ROOT_PID" "$GROUP_PID" "$NODE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  grep -q "http on" "$FED_DIR/root.log" 2>/dev/null && break
  sleep 0.1
done
ROOT_WIRE="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$FED_DIR/root.log")"
ROOT_HTTP="$(sed -n 's/.*http on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$FED_DIR/root.log")"
CATALOG="127.0.0.1:$ROOT_WIRE"
./build/tools/zerosum-aggd --role group --port 0 --catalog "$CATALOG" \
  > "$FED_DIR/group.log" 2>&1 &
GROUP_PID=$!
./build/tools/zerosum-aggd --role node --port 0 --catalog "$CATALOG" \
  > "$FED_DIR/node.log" 2>&1 &
NODE_PID=$!
# Wait for both tiers to register with the catalog before the run
# starts, so client-side discovery cannot race the announcements.
python3 - "$ROOT_HTTP" <<'PY'
import json, sys, time, urllib.request
port = sys.argv[1]
deadline = time.time() + 15
while True:
    h = json.load(urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=10))
    if h["fanin"]["catalog_announces"] >= 2:
        break
    if time.time() > deadline:
        raise SystemExit(f"daemons never announced to the catalog: {h}")
    time.sleep(0.2)
PY
(cd "$FED_DIR" &&
 ZS_AGG_CATALOG="$CATALOG" "$REPO/build/tools/zerosum-run" \
   "$REPO/build/tools/demo_victim" 2 2500 > run.log 2>&1)
python3 - "$ROOT_HTTP" <<'PY'
import json, sys, time, urllib.request
port = sys.argv[1]
deadline = time.time() + 15
while True:
    h = json.load(urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=10))
    by_hop = h["sources"]["by_hop"]
    if any(int(hops) >= 2 and count > 0 for hops, count in by_hop.items()):
        print(f"smoke: root sees federated sources {by_hop} "
              f"({h['fanin']['forward_windows']} windows forwarded)")
        break
    if time.time() > deadline:
        raise SystemExit(f"no hop-2 source reached the root: {h}")
    time.sleep(0.3)
PY
kill "$ROOT_PID" "$GROUP_PID" "$NODE_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$FED_DIR"

echo "=== check.sh: all passes complete ==="
