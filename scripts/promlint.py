#!/usr/bin/env python3
"""Validator for the Prometheus text exposition format (version 0.0.4).

Reads an exposition from a file argument, a URL (http://...), or stdin
and checks the subset of the format the telemetry plane emits:

* metric and label names match the Prometheus charset
  ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*);
* sample lines parse: name, optional {label="value",...} block with
  proper escaping, a float value, optional timestamp;
* every sample family is introduced by # HELP and # TYPE lines whose
  name matches the samples that follow;
* histograms are complete and coherent: _bucket series are cumulative
  (counts never decrease as le rises), end in le="+Inf", and the +Inf
  bucket equals _count; _sum and _count are present;
* no duplicate sample (same name + label set).

Exit 0 when the exposition is valid, 1 with one message per violation
otherwise.  Used by scripts/check.sh against a live zerosum-aggd
/metrics endpoint and usable standalone:

    scripts/promlint.py http://127.0.0.1:9464/metrics
    zerosum-post --prom-dump run/metrics.json | scripts/promlint.py
"""

import re
import sys
import urllib.request

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$")
LABEL_PAIR = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def split_labels(block):
    """Splits a label block on commas outside quoted values."""
    out, depth, current = [], False, ""
    i = 0
    while i < len(block):
        ch = block[i]
        if ch == "\\" and depth and i + 1 < len(block):
            current += block[i:i + 2]
            i += 2
            continue
        if ch == '"':
            depth = not depth
        if ch == "," and not depth:
            out.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if current:
        out.append(current)
    return out


def base_family(name):
    """The family a histogram/summary child series belongs to."""
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def parse_le(labels):
    for pair in labels:
        match = LABEL_PAIR.match(pair)
        if match and match.group("name") == "le":
            value = match.group("value")
            return float("inf") if value == "+Inf" else float(value)
    return None


def lint(text):
    errors = []
    helped, typed = {}, {}
    seen_samples = set()
    # family -> list of (le, count) in order of appearance, and sums.
    buckets, counts = {}, {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        def err(message):
            errors.append(f"line {lineno}: {message}")

        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_NAME.match(parts[2]):
                err(f"malformed HELP line: {line!r}")
            else:
                helped[parts[2]] = lineno
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_NAME.match(parts[2]):
                err(f"malformed TYPE line: {line!r}")
            elif parts[3].strip() not in VALID_TYPES:
                err(f"unknown metric type {parts[3].strip()!r}")
            else:
                typed[parts[2]] = parts[3].strip()
            continue
        if line.startswith("#"):
            continue  # plain comment

        match = SAMPLE.match(line)
        if not match:
            err(f"unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        label_block = match.group("labels")
        labels = split_labels(label_block) if label_block else []
        for pair in labels:
            if not LABEL_PAIR.match(pair):
                err(f"malformed label pair {pair!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            err(f"non-numeric sample value {match.group('value')!r}")
            continue

        family = base_family(name)
        if family not in helped and name not in helped:
            err(f"sample {name!r} has no # HELP line")
        if family not in typed and name not in typed:
            err(f"sample {name!r} has no # TYPE line")

        key = (name, tuple(sorted(labels)))
        if key in seen_samples:
            err(f"duplicate sample {name!r} with identical labels")
        seen_samples.add(key)

        family_type = typed.get(family)
        if family_type == "histogram":
            if name.endswith("_bucket"):
                le = parse_le(labels)
                if le is None:
                    err(f"histogram bucket {name!r} lacks an le label")
                else:
                    buckets.setdefault(family, []).append((lineno, le, value))
            elif name.endswith("_count"):
                counts[family] = (lineno, value)

    for family, series in buckets.items():
        prev = None
        for lineno, le, value in series:
            if prev is not None and (le <= prev[0] or value < prev[1]):
                errors.append(
                    f"line {lineno}: histogram {family!r} buckets are not "
                    f"cumulative/ascending (le={le} count={value} after "
                    f"le={prev[0]} count={prev[1]})")
            prev = (le, value)
        if not series or series[-1][1] != float("inf"):
            errors.append(f"histogram {family!r} does not end in le=\"+Inf\"")
        elif family in counts and series[-1][2] != counts[family][1]:
            errors.append(
                f"histogram {family!r}: +Inf bucket ({series[-1][2]}) != "
                f"_count ({counts[family][1]})")
        if family not in counts:
            errors.append(f"histogram {family!r} has no _count sample")

    return errors


def main():
    source = sys.argv[1] if len(sys.argv) > 1 else "-"
    if source == "-":
        text = sys.stdin.read()
    elif source.startswith("http://") or source.startswith("https://"):
        with urllib.request.urlopen(source, timeout=10) as response:
            text = response.read().decode("utf-8")
    else:
        with open(source, encoding="utf-8") as f:
            text = f.read()

    errors = lint(text)
    for message in errors:
        print(f"promlint: {message}", file=sys.stderr)
    samples = sum(1 for line in text.splitlines()
                  if line.strip() and not line.startswith("#"))
    if errors:
        print(f"promlint: {len(errors)} problem(s) in {samples} sample(s)",
              file=sys.stderr)
        return 1
    print(f"promlint: ok ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
