#!/usr/bin/env bash
# Regenerates every paper artifact and the test/bench logs from scratch.
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja || exit 1
cmake --build build || exit 1

ctest --test-dir build 2>&1 | tee test_output.txt

# Every bench binary prints one paper table/figure/listing (or ablation);
# the CMake metadata entries in build/bench are skipped.
: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "Artifacts: test_output.txt bench_output.txt figure5_heatmap.pgm"
echo "           figure6_lwp_timeseries.csv figure7_hwt_timeseries.csv"
