#!/usr/bin/env bash
# Nightly soak (the CI `soak` job; also runnable by hand): the failure
# modes that need iterations to surface, not one quick pass —
#
#   1. the chaos suite (random fault injection over the full client ->
#      daemon -> tsdb pipeline) repeated SOAK_ITERS times,
#   2. the federated group-kill-and-recover smoke (bench_federation
#      --smoke) repeated SOAK_ITERS times,
#   3. a live 3-process node -> group -> root tree over loopback TCP,
#      formed and torn down SOAK_TREE_ITERS times, each run's records
#      required to surface at the root,
#   4. the query-service bench under sustained mixed read/write load,
#      its shed-never-stall and zero-drop invariants checked each run.
#
# Bench JSON from the loops lands in build/bench/SOAK_*.json (uploaded
# as CI artifacts for trend analysis).
#
# Usage: scripts/soak.sh [iters]   (default SOAK_ITERS=10)
set -euo pipefail

cd "$(dirname "$0")/.."

SOAK_ITERS="${1:-${SOAK_ITERS:-10}}"
SOAK_TREE_ITERS="${SOAK_TREE_ITERS:-3}"

echo "=== soak: build (${SOAK_ITERS} iterations per loop) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

BENCH_OUT="$PWD/build/bench"
REPO="$PWD"

echo "=== soak 1/4: chaos suite x${SOAK_ITERS} ==="
# gtest reshuffles per repetition, so iterations explore different
# interleavings of the fault schedule rather than replaying one.
./build/tests/test_chaos --gtest_repeat="$SOAK_ITERS" --gtest_shuffle \
  --gtest_brief=1

echo "=== soak 2/4: federated group-kill smoke x${SOAK_ITERS} ==="
for i in $(seq 1 "$SOAK_ITERS"); do
  echo "--- iteration $i/$SOAK_ITERS"
  ./build/bench/bench_federation --smoke \
    --out "$BENCH_OUT/SOAK_federation_smoke_$i.json"
done

echo "=== soak 3/4: live 3-process tree x${SOAK_TREE_ITERS} ==="
run_tree_smoke() {
  local FED_DIR GROUP_PID NODE_PID ROOT_PID ROOT_WIRE ROOT_HTTP CATALOG
  FED_DIR="$(mktemp -d)"
  GROUP_PID=""
  NODE_PID=""
  ./build/tools/zerosum-aggd --role root --port 0 --http-port 0 \
    > "$FED_DIR/root.log" 2>&1 &
  ROOT_PID=$!
  trap 'kill "$ROOT_PID" "$GROUP_PID" "$NODE_PID" 2>/dev/null || true' RETURN
  for _ in $(seq 1 50); do
    grep -q "http on" "$FED_DIR/root.log" 2>/dev/null && break
    sleep 0.1
  done
  ROOT_WIRE="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$FED_DIR/root.log")"
  ROOT_HTTP="$(sed -n 's/.*http on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$FED_DIR/root.log")"
  CATALOG="127.0.0.1:$ROOT_WIRE"
  ./build/tools/zerosum-aggd --role group --port 0 --catalog "$CATALOG" \
    > "$FED_DIR/group.log" 2>&1 &
  GROUP_PID=$!
  ./build/tools/zerosum-aggd --role node --port 0 --catalog "$CATALOG" \
    > "$FED_DIR/node.log" 2>&1 &
  NODE_PID=$!
  python3 - "$ROOT_HTTP" <<'PY'
import json, sys, time, urllib.request
port = sys.argv[1]
deadline = time.time() + 15
while True:
    h = json.load(urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=10))
    if h["fanin"]["catalog_announces"] >= 2:
        break
    if time.time() > deadline:
        raise SystemExit(f"daemons never announced to the catalog: {h}")
    time.sleep(0.2)
PY
  (cd "$FED_DIR" &&
   ZS_AGG_CATALOG="$CATALOG" "$REPO/build/tools/zerosum-run" \
     "$REPO/build/tools/demo_victim" 2 2500 > run.log 2>&1)
  python3 - "$ROOT_HTTP" <<'PY'
import json, sys, time, urllib.request
port = sys.argv[1]
deadline = time.time() + 15
while True:
    h = json.load(urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=10))
    by_hop = h["sources"]["by_hop"]
    if any(int(hops) >= 2 and count > 0 for hops, count in by_hop.items()):
        print(f"soak tree: root sees {by_hop} "
              f"({h['fanin']['forward_windows']} windows forwarded)")
        break
    if time.time() > deadline:
        raise SystemExit(f"no hop-2 source reached the root: {h}")
    time.sleep(0.3)
PY
  # The root's query plane answers through the soak too.
  "$REPO/build/tools/zerosum-post" --agg-port "$ROOT_HTTP" \
    --http-query stats > /dev/null
  kill "$ROOT_PID" "$GROUP_PID" "$NODE_PID" 2>/dev/null || true
  wait "$ROOT_PID" "$GROUP_PID" "$NODE_PID" 2>/dev/null || true
  trap - RETURN
  rm -rf "$FED_DIR"
}
for i in $(seq 1 "$SOAK_TREE_ITERS"); do
  echo "--- tree iteration $i/$SOAK_TREE_ITERS"
  run_tree_smoke
done

echo "=== soak 4/4: query service under sustained load x${SOAK_ITERS} ==="
for i in $(seq 1 "$SOAK_ITERS"); do
  echo "--- iteration $i/$SOAK_ITERS"
  ./build/bench/bench_query_service --out "$BENCH_OUT/SOAK_query_$i.json"
done

echo "=== soak: all loops complete ==="
