#include "aggregator/catalog.hpp"

#include <algorithm>
#include <sstream>

#include "aggregator/query.hpp"
#include "common/json.hpp"

namespace zerosum::aggregator {

Catalog::Catalog(CatalogOptions options) : options_(options) {}

AnnounceResult Catalog::announce(const CatalogEntry& entry,
                                 double nowSeconds) {
  AnnounceResult result;
  result.ttlSeconds = options_.ttlSeconds;
  if (entry.name.empty()) {
    return result;  // unnamed daemons cannot be resolved; reject
  }
  auto it = records_.find(entry.name);
  if (it != records_.end() && nowSeconds <= it->second.deadline) {
    const std::uint64_t stored = it->second.entry.generation;
    if (entry.generation != 0 && entry.generation < stored) {
      ++counters_.staleRejected;
      result.generation = stored;
      return result;
    }
    Record& record = it->second;
    const std::uint64_t granted =
        entry.generation == 0 ? stored : entry.generation;
    if (granted > stored) {
      ++counters_.generationBumps;
    }
    record.entry = entry;
    record.entry.generation = granted;
    record.deadline = nowSeconds + options_.ttlSeconds;
    ++counters_.announces;
    result.accepted = true;
    result.generation = granted;
    return result;
  }
  // New name, or the previous record already expired: (re)register.  A
  // generation-0 announce after expiry restarts at the old generation + 1
  // when the stale record is still around, else at 1 — so "expired then
  // rebooted" still reads as a later incarnation.
  std::uint64_t granted = entry.generation;
  if (granted == 0) {
    granted = it != records_.end() ? it->second.entry.generation + 1 : 1;
  }
  Record record;
  record.entry = entry;
  record.entry.generation = granted;
  record.deadline = nowSeconds + options_.ttlSeconds;
  records_[entry.name] = record;
  ++counters_.announces;
  ++counters_.registrations;
  result.accepted = true;
  result.generation = granted;
  return result;
}

std::size_t Catalog::expire(double nowSeconds) {
  std::size_t dropped = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (nowSeconds > it->second.deadline) {
      it = records_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  counters_.expired += dropped;
  return dropped;
}

std::vector<CatalogEntry> Catalog::entries(double nowSeconds) const {
  std::vector<CatalogEntry> out;
  out.reserve(records_.size());
  for (const auto& [name, record] : records_) {
    if (nowSeconds <= record.deadline) {
      out.push_back(record.entry);
    }
  }
  return out;
}

std::vector<CatalogEntry> Catalog::entriesByRole(DaemonRole role,
                                                 double nowSeconds) const {
  std::vector<CatalogEntry> out;
  for (const auto& [name, record] : records_) {
    if (record.entry.role == role && nowSeconds <= record.deadline) {
      out.push_back(record.entry);
    }
  }
  return out;
}

std::optional<CatalogEntry> Catalog::find(const std::string& name,
                                          double nowSeconds) const {
  const auto it = records_.find(name);
  if (it == records_.end() || nowSeconds > it->second.deadline) {
    return std::nullopt;
  }
  return it->second.entry;
}

std::string Catalog::toJson(double nowSeconds) const {
  std::ostringstream out;
  json::Writer writer(out);
  writer.beginObject();
  writer.key("entries").beginArray();
  for (const auto& [name, record] : records_) {
    if (nowSeconds > record.deadline) {
      continue;
    }
    const CatalogEntry& e = record.entry;
    writer.beginObject()
        .field("role", daemonRoleName(e.role))
        .field("name", e.name)
        .field("host", e.host)
        .field("port", static_cast<std::int64_t>(e.port))
        .field("shard_lo", static_cast<std::uint64_t>(e.shardLo))
        .field("shard_hi", static_cast<std::uint64_t>(e.shardHi))
        .field("generation", e.generation)
        .field("ttl_remaining_seconds", record.deadline - nowSeconds)
        .endObject();
  }
  writer.endArray();
  writer.endObject();
  return out.str();
}

std::optional<std::vector<CatalogEntry>> Catalog::parseJson(
    const std::string& text) {
  try {
    const json::Value doc = json::parse(text);
    const json::Value* list = doc.find("entries");
    if (list == nullptr || !list->isArray()) {
      return std::nullopt;
    }
    std::vector<CatalogEntry> out;
    for (const json::Value& item : list->asArray()) {
      if (!item.isObject()) {
        return std::nullopt;
      }
      CatalogEntry e;
      e.role = daemonRoleFromString(item.stringOr("role", "node"));
      e.name = item.stringOr("name", "");
      e.host = item.stringOr("host", "");
      e.port = static_cast<std::int32_t>(item.numberOr("port", 0.0));
      e.shardLo = static_cast<std::uint32_t>(item.numberOr("shard_lo", 0.0));
      e.shardHi = static_cast<std::uint32_t>(
          item.numberOr("shard_hi", kShardSpace - 1));
      e.generation =
          static_cast<std::uint64_t>(item.numberOr("generation", 0.0));
      if (e.name.empty() || e.shardLo > e.shardHi ||
          e.shardHi >= kShardSpace) {
        return std::nullopt;
      }
      out.push_back(std::move(e));
    }
    return out;
  } catch (...) {
    return std::nullopt;  // malformed document = catalog unreachable
  }
}

std::optional<std::vector<CatalogEntry>> resolveCatalog(
    Transport& transport, const std::function<void()>& idle, int maxIdles) {
  const auto response =
      requestOverTransport(transport, "{\"op\":\"catalog\"}", idle, maxIdles);
  if (!response) {
    return std::nullopt;
  }
  return Catalog::parseJson(*response);
}

}  // namespace zerosum::aggregator
