// Catalog: the fan-in tree's discovery service (DESIGN.md §11).
//
// Modeled on the cctools catalog server: membership is announce-with-TTL,
// not configuration.  Every daemon in a federation periodically sends a
// kCatalogAnnounce {role, name, host, port, shard-range, generation}; the
// catalog stores it with an expiry deadline and answers kQuery
// {"op":"catalog"} with the live entries.  A daemon that stops announcing
// simply ages out — there is no unregister path to get wrong — and a
// daemon that restarts announces with a higher generation, which wins
// over any still-unexpired record of its previous life.
//
// Clocks: all deadlines live on the caller's clock, which must be
// monotonic in real deployments (common/monotime.hpp) so a wall-clock
// step can neither mass-expire the membership nor pin entries alive
// forever.  Tests drive a virtual clock through the same arguments.
//
// The catalog is plain state — no transport, no threads.  The daemon
// hosting it (conventionally the root) wires announce frames and query
// responses to it; see Aggregator::attachCatalog.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aggregator/wire.hpp"

namespace zerosum::aggregator {

struct CatalogOptions {
  /// Lifetime granted per announce; re-announce sooner than this to stay
  /// listed.  Echoed to announcers in every kCatalogAck.
  double ttlSeconds = 15.0;
};

struct CatalogCounters {
  std::uint64_t announces = 0;     ///< accepted (new or refresh)
  std::uint64_t registrations = 0; ///< accepted announces for a new name
  std::uint64_t generationBumps = 0;  ///< restart detected (gen increased)
  std::uint64_t staleRejected = 0; ///< announce with an older generation
  std::uint64_t expired = 0;       ///< entries aged out by expire()
};

/// Result of one announce: whether it was accepted, and the generation
/// now on record (the announcer adopts this when it had none).
struct AnnounceResult {
  bool accepted = false;
  std::uint64_t generation = 0;
  double ttlSeconds = 0.0;
};

class Catalog {
 public:
  explicit Catalog(CatalogOptions options = {});

  /// Registers or refreshes `entry` under its name.  An announce with a
  /// generation older than the stored one is a ghost of a previous
  /// incarnation (e.g. a delayed frame from before a restart) and is
  /// rejected; same generation refreshes the deadline; a higher one
  /// replaces the record and counts a restart.  An announce with
  /// generation 0 asks the catalog to assign one (stored + 1, or 1).
  AnnounceResult announce(const CatalogEntry& entry, double nowSeconds);

  /// Ages out entries whose deadline passed.  Returns how many expired.
  std::size_t expire(double nowSeconds);

  /// Live entries, sorted by name.  Runs expire() semantics read-only:
  /// entries past their deadline at `nowSeconds` are omitted (but not
  /// removed; call expire() from the owner's poll loop for that).
  [[nodiscard]] std::vector<CatalogEntry> entries(double nowSeconds) const;

  /// Live entries with the given role, sorted by name.
  [[nodiscard]] std::vector<CatalogEntry> entriesByRole(
      DaemonRole role, double nowSeconds) const;

  /// One entry by name, if live.
  [[nodiscard]] std::optional<CatalogEntry> find(const std::string& name,
                                                 double nowSeconds) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const CatalogCounters& counters() const { return counters_; }
  [[nodiscard]] const CatalogOptions& options() const { return options_; }

  /// The {"op":"catalog"} response body: {"entries":[{role,name,host,
  /// port,shard_lo,shard_hi,generation,ttl_remaining_seconds},...]}.
  [[nodiscard]] std::string toJson(double nowSeconds) const;

  /// Parses a toJson() document back into entries — the client half of
  /// catalog resolution.  Returns nullopt on malformed input (resolution
  /// treats it as "catalog unreachable", never throws).
  [[nodiscard]] static std::optional<std::vector<CatalogEntry>> parseJson(
      const std::string& json);

 private:
  struct Record {
    CatalogEntry entry;
    double deadline = 0.0;
  };

  CatalogOptions options_;
  CatalogCounters counters_;
  std::map<std::string, Record> records_;
};

class Transport;

/// Client-side resolution: sends {"op":"catalog"} over `transport` and
/// parses the reply.  `idle()` runs between receive attempts (sleep for
/// TCP, a daemon poll for the in-memory pipe).  nullopt when the catalog
/// is unreachable or replies with garbage.
std::optional<std::vector<CatalogEntry>> resolveCatalog(
    Transport& transport, const std::function<void()>& idle,
    int maxIdles = 200);

}  // namespace zerosum::aggregator
