#include "aggregator/client.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/interning.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace zerosum::aggregator {

namespace {

trace::Counter& counterEnqueued() {
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("zs.agg.client.enqueued");
  return c;
}
trace::Counter& counterDropped() {
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("zs.agg.client.dropped");
  return c;
}
trace::Counter& counterReconnects() {
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("zs.agg.client.reconnects");
  return c;
}

}  // namespace

Client::Client(std::unique_ptr<Transport> transport, Hello identity,
               ClientOptions options)
    : transport_(std::move(transport)),
      identity_(std::move(identity)),
      options_(options) {
  if (!transport_) {
    throw ConfigError("aggregator::Client requires a transport");
  }
  if (options_.maxQueueRecords == 0 || options_.batchRecords == 0) {
    throw ConfigError("aggregator::Client queue/batch bounds must be >= 1");
  }
}

Client::~Client() = default;

bool Client::ensureConnected(double nowSeconds) {
  if (transport_->connected()) {
    return true;
  }
  if (nowSeconds < nextConnectAt_) {
    return false;  // backing off
  }
  ZS_TRACE_SCOPE("zs.agg.client.connect");
  if (!transport_->connect()) {
    // Exponential backoff: an absent daemon costs one failed connect per
    // backoff interval, not one per record.
    currentBackoff_ =
        currentBackoff_ <= 0.0
            ? options_.reconnectBackoffSeconds
            : std::min(currentBackoff_ * 2.0,
                       options_.reconnectBackoffCapSeconds);
    nextConnectAt_ = nowSeconds + currentBackoff_;
    return false;
  }
  currentBackoff_ = 0.0;
  nextConnectAt_ = 0.0;
  if (everConnected_) {
    ++counters_.reconnects;
    counterReconnects().add();
  }
  everConnected_ = true;
  // Re-announce identity on every new connection: the daemon binds the
  // connection to a source via the Hello.
  Frame hello;
  hello.kind = FrameKind::kHello;
  hello.hello = identity_;
  if (!transport_->send(encodeFrame(hello))) {
    ++counters_.sendFailures;
    transport_->close();
    return false;
  }
  return true;
}

void Client::popFront(std::size_t n) {
  head_ += n;
  if (head_ >= queue_.size()) {
    queue_.clear();
    head_ = 0;
  } else if (head_ >= queue_.size() - head_) {
    // The dead prefix outweighs the live tail: slide the tail down (a
    // move, no allocation) so the existing capacity is reused instead of
    // the vector growing without bound.
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void Client::dropOverflow() {
  if (queueSize() > options_.maxQueueRecords) {
    const std::size_t excess = queueSize() - options_.maxQueueRecords;
    counters_.recordsDropped += excess;
    counterDropped().add(excess);
    popFront(excess);
  }
}

void Client::enqueue(const std::vector<WireRecord>& records,
                     double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.client.enqueue");
  for (const auto& record : records) {
    queue_.push_back(
        {{record.timeSeconds, names::intern(record.name), record.value},
         nowSeconds});
  }
  counters_.recordsEnqueued += records.size();
  counterEnqueued().add(records.size());
  dropOverflow();
  pump(nowSeconds);
}

void Client::enqueueIds(const std::vector<IdRecord>& records,
                        double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.client.enqueue");
  for (const auto& record : records) {
    queue_.push_back({record, nowSeconds});
  }
  counters_.recordsEnqueued += records.size();
  counterEnqueued().add(records.size());
  dropOverflow();
  pump(nowSeconds);
}

void Client::flush(double nowSeconds, bool force) {
  while (queueSize() > 0) {
    const bool countDue = queueSize() >= options_.batchRecords;
    const bool ageDue =
        nowSeconds - queue_[head_].enqueuedAt >= options_.batchAgeSeconds;
    if (!force && !countDue && !ageDue) {
      return;
    }
    if (!ensureConnected(nowSeconds)) {
      if (force) {
        // Final flush with no daemon: the records are lost; count them.
        counters_.recordsDropped += queueSize();
        counterDropped().add(queueSize());
        queue_.clear();
        head_ = 0;
      }
      return;
    }
    Frame batch;
    batch.kind = FrameKind::kBatch;
    batch.timeSeconds = nowSeconds;
    const std::size_t n = std::min(queueSize(), options_.batchRecords);
    batch.records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const IdRecord& r = queue_[head_ + i].record;
      // The wire edge: the interned id becomes name text here, and only
      // here — queued records never hold strings.
      batch.records.push_back(
          {r.timeSeconds, std::string(names::lookup(r.name)), r.value});
    }
    if (!transport_->send(encodeFrame(batch))) {
      // Keep the batch queued for the next connection: the queue bound
      // (dropOverflow) caps memory against a daemon that never comes
      // back, so retaining these records costs nothing unbounded — and a
      // daemon restart then loses no records the client still holds.
      ++counters_.sendFailures;
      transport_->close();
      currentBackoff_ = currentBackoff_ <= 0.0
                            ? options_.reconnectBackoffSeconds
                            : currentBackoff_;
      nextConnectAt_ = nowSeconds + currentBackoff_;
      return;
    }
    popFront(n);
    ++counters_.batchesSent;
    counters_.recordsSent += n;
  }
}

void Client::pump(double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.client.pump");
  flush(nowSeconds, /*force=*/false);
}

void Client::sendHealth(const HealthUpdate& health, double nowSeconds) {
  if (!ensureConnected(nowSeconds)) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kHealth;
  frame.health = health;
  if (!transport_->send(encodeFrame(frame))) {
    ++counters_.sendFailures;
    transport_->close();
  }
}

void Client::goodbye(double nowSeconds) {
  flush(nowSeconds, /*force=*/true);
  if (!transport_->connected()) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kGoodbye;
  frame.timeSeconds = nowSeconds;
  if (!transport_->send(encodeFrame(frame))) {
    ++counters_.sendFailures;
  }
  transport_->close();
}

}  // namespace zerosum::aggregator
