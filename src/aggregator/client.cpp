#include "aggregator/client.hpp"

#include "common/error.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace zerosum::aggregator {

namespace {

trace::Counter& counterEnqueued() {
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("zs.agg.client.enqueued");
  return c;
}
trace::Counter& counterDropped() {
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("zs.agg.client.dropped");
  return c;
}
trace::Counter& counterReconnects() {
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("zs.agg.client.reconnects");
  return c;
}

}  // namespace

Client::Client(std::unique_ptr<Transport> transport, Hello identity,
               ClientOptions options)
    : transport_(std::move(transport)),
      identity_(std::move(identity)),
      options_(options) {
  if (!transport_) {
    throw ConfigError("aggregator::Client requires a transport");
  }
  if (options_.maxQueueRecords == 0 || options_.batchRecords == 0) {
    throw ConfigError("aggregator::Client queue/batch bounds must be >= 1");
  }
}

Client::~Client() = default;

bool Client::ensureConnected(double nowSeconds) {
  if (transport_->connected()) {
    return true;
  }
  if (nowSeconds < nextConnectAt_) {
    return false;  // backing off
  }
  ZS_TRACE_SCOPE("zs.agg.client.connect");
  if (!transport_->connect()) {
    // Exponential backoff: an absent daemon costs one failed connect per
    // backoff interval, not one per record.
    currentBackoff_ =
        currentBackoff_ <= 0.0
            ? options_.reconnectBackoffSeconds
            : std::min(currentBackoff_ * 2.0,
                       options_.reconnectBackoffCapSeconds);
    nextConnectAt_ = nowSeconds + currentBackoff_;
    return false;
  }
  currentBackoff_ = 0.0;
  nextConnectAt_ = 0.0;
  if (everConnected_) {
    ++counters_.reconnects;
    counterReconnects().add();
  }
  everConnected_ = true;
  // Re-announce identity on every new connection: the daemon binds the
  // connection to a source via the Hello.
  Frame hello;
  hello.kind = FrameKind::kHello;
  hello.hello = identity_;
  if (!transport_->send(encodeFrame(hello))) {
    ++counters_.sendFailures;
    transport_->close();
    return false;
  }
  return true;
}

void Client::dropOverflow() {
  while (queue_.size() > options_.maxQueueRecords) {
    queue_.pop_front();
    ++counters_.recordsDropped;
    counterDropped().add();
  }
}

void Client::enqueue(const std::vector<WireRecord>& records,
                     double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.client.enqueue");
  for (const auto& record : records) {
    queue_.push_back({record, nowSeconds});
  }
  counters_.recordsEnqueued += records.size();
  counterEnqueued().add(records.size());
  dropOverflow();
  pump(nowSeconds);
}

void Client::flush(double nowSeconds, bool force) {
  while (!queue_.empty()) {
    const bool countDue = queue_.size() >= options_.batchRecords;
    const bool ageDue =
        nowSeconds - queue_.front().enqueuedAt >= options_.batchAgeSeconds;
    if (!force && !countDue && !ageDue) {
      return;
    }
    if (!ensureConnected(nowSeconds)) {
      if (force) {
        // Final flush with no daemon: the records are lost; count them.
        counters_.recordsDropped += queue_.size();
        counterDropped().add(queue_.size());
        queue_.clear();
      }
      return;
    }
    Frame batch;
    batch.kind = FrameKind::kBatch;
    batch.timeSeconds = nowSeconds;
    const std::size_t n = std::min(queue_.size(), options_.batchRecords);
    batch.records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.records.push_back(queue_[i].record);
    }
    if (!transport_->send(encodeFrame(batch))) {
      // Keep the batch queued for the next connection: the queue bound
      // (dropOverflow) caps memory against a daemon that never comes
      // back, so retaining these records costs nothing unbounded — and a
      // daemon restart then loses no records the client still holds.
      ++counters_.sendFailures;
      transport_->close();
      currentBackoff_ = currentBackoff_ <= 0.0
                            ? options_.reconnectBackoffSeconds
                            : currentBackoff_;
      nextConnectAt_ = nowSeconds + currentBackoff_;
      return;
    }
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(n));
    ++counters_.batchesSent;
    counters_.recordsSent += n;
  }
}

void Client::pump(double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.client.pump");
  flush(nowSeconds, /*force=*/false);
}

void Client::sendHealth(const HealthUpdate& health, double nowSeconds) {
  if (!ensureConnected(nowSeconds)) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kHealth;
  frame.health = health;
  if (!transport_->send(encodeFrame(frame))) {
    ++counters_.sendFailures;
    transport_->close();
  }
}

void Client::goodbye(double nowSeconds) {
  flush(nowSeconds, /*force=*/true);
  if (!transport_->connected()) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kGoodbye;
  frame.timeSeconds = nowSeconds;
  if (!transport_->send(encodeFrame(frame))) {
    ++counters_.sendFailures;
  }
  transport_->close();
}

}  // namespace zerosum::aggregator
