#include "aggregator/client.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"
#include "common/interning.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace zerosum::aggregator {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27U)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31U);
}

}  // namespace

const char* degradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kFull: return "full";
    case DegradeLevel::kCoarse: return "coarse";
    case DegradeLevel::kEssential: return "essential";
  }
  return "?";
}

Client::Client(std::unique_ptr<Transport> transport, Hello identity,
               ClientOptions options)
    : transport_(std::move(transport)),
      identity_(std::move(identity)),
      options_(options) {
  if (!transport_) {
    throw ConfigError("aggregator::Client requires a transport");
  }
  if (options_.maxQueueRecords == 0 || options_.batchRecords == 0) {
    throw ConfigError("aggregator::Client queue/batch bounds must be >= 1");
  }
  if (options_.coarsenWindowSeconds <= 0.0) {
    throw ConfigError("aggregator::Client coarsenWindowSeconds must be > 0");
  }
  auto& registry = trace::MetricsRegistry::instance();
  ctrEnqueued_ = &registry.counter("zs.agg.client.enqueued");
  ctrDropped_ = &registry.counter("zs.agg.client.dropped");
  ctrReconnects_ = &registry.counter("zs.agg.client.reconnects");
  ctrCoarsened_ = &registry.counter("zs.agg.client.coarsened");
  ctrDegradeTransitions_ =
      &registry.counter("zs.agg.client.degrade_transitions");
  latEnqueueToSend_ =
      &registry.latency("zs.agg.client.latency.enqueue_to_send_seconds");
  latRoundtrip_ = &registry.latency("zs.agg.client.latency.roundtrip_seconds");
  gaugeDegradeStage_ = &registry.gauge("zs.agg.client.degrade_stage");
  gaugeAckedPressure_ = &registry.gauge("zs.agg.client.acked_pressure");
  gaugeDegradeStage_->set(0.0);
  gaugeAckedPressure_->set(0.0);
  jitterState_ = options_.jitterSeed;
  if (jitterState_ == 0) {
    // Derive a per-rank seed so a fleet of default-configured clients
    // never shares a jitter stream.
    jitterState_ = std::hash<std::string>{}(identity_.job);
    jitterState_ ^= static_cast<std::uint64_t>(identity_.rank + 1) *
                    0x9E3779B97F4A7C15ULL;
    jitterState_ ^= static_cast<std::uint64_t>(identity_.pid) << 17U;
    jitterState_ |= 1ULL;  // splitmix64 is fine with 0, but keep it distinct
  }
}

Client::~Client() = default;

double Client::nextJitterUnit() {
  return static_cast<double>(splitmix64(jitterState_) >> 11U) *
         (1.0 / 9007199254740992.0);  // 2^53
}

bool Client::ensureConnected(double nowSeconds) {
  if (transport_->connected()) {
    return true;
  }
  if (nowSeconds < nextConnectAt_) {
    return false;  // backing off
  }
  ZS_TRACE_SCOPE("zs.agg.client.connect");
  if (!transport_->connect()) {
    ++counters_.connectFailures;
    // Exponential backoff: an absent daemon costs one failed connect per
    // backoff interval, not one per record.  The unjittered schedule
    // drives the doubling; the actual delay is smeared by +/- the jitter
    // fraction so ranks desynchronize after a daemon restart.
    currentBackoff_ =
        currentBackoff_ <= 0.0
            ? options_.reconnectBackoffSeconds
            : std::min(currentBackoff_ * 2.0,
                       options_.reconnectBackoffCapSeconds);
    double delay = currentBackoff_;
    if (options_.reconnectJitterFraction > 0.0) {
      delay *= 1.0 + options_.reconnectJitterFraction *
                         (2.0 * nextJitterUnit() - 1.0);
    }
    nextConnectAt_ = nowSeconds + delay;
    return false;
  }
  currentBackoff_ = 0.0;
  nextConnectAt_ = 0.0;
  if (everConnected_) {
    ++counters_.reconnects;
    ctrReconnects_->add();
  }
  everConnected_ = true;
  // The new byte stream starts fresh on both sides.
  ackReader_ = FrameReader{};
  inflight_.clear();
  // Re-announce identity on every new connection: the daemon binds the
  // connection to a source via the Hello.
  Frame hello;
  hello.kind = FrameKind::kHello;
  hello.hello = identity_;
  if (!transport_->send(encodeFrame(hello))) {
    ++counters_.sendFailures;
    transport_->close();
    return false;
  }
  lastSendAt_ = nowSeconds;
  return true;
}

void Client::popFront(std::size_t n) {
  head_ += n;
  if (head_ >= queue_.size()) {
    queue_.clear();
    head_ = 0;
  } else if (head_ >= queue_.size() - head_) {
    // The dead prefix outweighs the live tail: slide the tail down (a
    // move, no allocation) so the existing capacity is reused instead of
    // the vector growing without bound.
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void Client::dropOverflow() {
  if (queueSize() > options_.maxQueueRecords) {
    const std::size_t excess = queueSize() - options_.maxQueueRecords;
    counters_.recordsDropped += excess;
    ctrDropped_->add(excess);
    popFront(excess);
  }
}

void Client::pushQueued(const IdRecord& record, double nowSeconds) {
  queue_.push_back({record, nowSeconds});
}

void Client::processIncoming(double nowSeconds) {
  if (!transport_->connected()) {
    return;
  }
  recvScratch_.clear();
  if (transport_->receive(recvScratch_) && !recvScratch_.empty()) {
    ackReader_.feed(recvScratch_);
  }
  try {
    Frame frame;
    while (ackReader_.next(frame)) {
      if (frame.kind != FrameKind::kBatchAck) {
        continue;  // future daemon->client traffic; pressure is in acks
      }
      ++counters_.acksReceived;
      pressure_ = frame.pressure;
      pressureAt_ = nowSeconds;
      gaugeAckedPressure_->set(double(static_cast<std::uint8_t>(pressure_)));
      if (frame.batchSeq != 0) {
        // Acks are cumulative: everything up to the acked seq landed.
        std::size_t acked = 0;
        for (const Inflight& f : inflight_) {
          if (f.seq > frame.batchSeq) {
            break;
          }
          counters_.recordsAcked += f.records;
          const double roundtrip = nowSeconds - f.sentAt;
          lastRoundtripSeconds_ = roundtrip;
          latRoundtrip_->observe(roundtrip);
          ++acked;
        }
        inflight_.erase(inflight_.begin(),
                        inflight_.begin() + static_cast<std::ptrdiff_t>(acked));
      }
    }
  } catch (const ParseError&) {
    // A daemon speaking garbage is treated like a dead daemon: drop the
    // connection and let the reconnect path start a clean stream.
    transport_->close();
    ackReader_ = FrameReader{};
    inflight_.clear();
  }
}

void Client::setLevel(DegradeLevel next, double nowSeconds) {
  if (next == level_) {
    return;
  }
  // A level change invalidates the open coarsening window either way:
  // leaving kCoarse must not strand folded records, and entering it
  // starts a fresh window.
  closeCoarseWindow(nowSeconds);
  level_ = next;
  gaugeDegradeStage_->set(double(static_cast<std::uint8_t>(next)));
  ++counters_.degradeTransitions;
  ctrDegradeTransitions_->add();
  pumpsSinceTransition_ = 0;
  calmPumps_ = 0;
}

void Client::updateLadder(double nowSeconds) {
  ++pumpsSinceTransition_;
  const double occupancy =
      static_cast<double>(queueSize()) /
      static_cast<double>(options_.maxQueueRecords);
  PressureLevel pressure = pressure_;
  if (pressureAt_ < 0.0 ||
      nowSeconds - pressureAt_ > options_.pressureStaleSeconds) {
    // Stale pressure must not pin the ladder: a daemon that died while
    // overloaded should leave its clients free to climb back.
    pressure = PressureLevel::kOk;
  }

  // Escalation.  Local occupancy climbs the full ladder (with a dwell of
  // two pumps between steps so one burst doesn't jump straight to
  // kEssential); acked pressure alone forces at most kCoarse — remote
  // overload coarsens the signal but never sheds it.
  if (occupancy >= options_.escalateOccupancy &&
      level_ != DegradeLevel::kEssential && pumpsSinceTransition_ >= 2) {
    setLevel(static_cast<DegradeLevel>(static_cast<std::uint8_t>(level_) + 1),
             nowSeconds);
    return;
  }
  if (pressure >= PressureLevel::kElevated && level_ == DegradeLevel::kFull) {
    setLevel(DegradeLevel::kCoarse, nowSeconds);
    return;
  }

  // De-escalation: a run of calm pumps steps back one level at a time.
  if (occupancy < options_.clearOccupancy && pressure == PressureLevel::kOk) {
    ++calmPumps_;
    if (calmPumps_ >= options_.deescalateAfterPumps &&
        level_ != DegradeLevel::kFull) {
      setLevel(
          static_cast<DegradeLevel>(static_cast<std::uint8_t>(level_) - 1),
          nowSeconds);
    }
  } else {
    calmPumps_ = 0;
  }
}

void Client::coarsen(const IdRecord& record, double nowSeconds) {
  if (!coarseOpen_) {
    coarseOpen_ = true;
    coarseWindowStart_ = nowSeconds;
  }
  coarse_[record.name].merge(record.value);
  ++counters_.recordsCoarsened;
  ctrCoarsened_->add();
}

void Client::closeCoarseWindow(double nowSeconds) {
  if (!coarseOpen_) {
    return;
  }
  for (const auto& [id, rollup] : coarse_) {
    auto it = coarseIds_.find(id);
    if (it == coarseIds_.end()) {
      const std::string base(names::lookup(id));
      CoarseIds derived;
      derived.minId = names::intern(base + ".min");
      derived.maxId = names::intern(base + ".max");
      it = coarseIds_.emplace(id, derived).first;
    }
    // The window collapses to three records: the average under the
    // original name (dashboards keep working, just coarser) plus the
    // extremes under derived names.
    pushQueued({nowSeconds, id, rollup.avg()}, nowSeconds);
    pushQueued({nowSeconds, it->second.minId, rollup.min}, nowSeconds);
    pushQueued({nowSeconds, it->second.maxId, rollup.max}, nowSeconds);
    counters_.coarseRecordsEmitted += 3;
  }
  coarse_.clear();
  coarseOpen_ = false;
  dropOverflow();
}

void Client::enqueue(const std::vector<WireRecord>& records,
                     double nowSeconds) {
  idScratch_.clear();
  idScratch_.reserve(records.size());
  for (const auto& record : records) {
    idScratch_.push_back(
        {record.timeSeconds, names::intern(record.name), record.value});
  }
  enqueueIds(idScratch_, nowSeconds);
}

void Client::enqueueIds(const std::vector<IdRecord>& records,
                        double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.client.enqueue");
  counters_.recordsEnqueued += records.size();
  ctrEnqueued_->add(records.size());
  switch (options_.adaptive ? level_ : DegradeLevel::kFull) {
    case DegradeLevel::kFull:
      for (const auto& record : records) {
        pushQueued(record, nowSeconds);
      }
      break;
    case DegradeLevel::kCoarse:
      for (const auto& record : records) {
        coarsen(record, nowSeconds);
      }
      break;
    case DegradeLevel::kEssential:
      // Ladder exhausted: bulk records are shed.  These are the only
      // drops an overloaded-but-reachable daemon ever causes.
      counters_.recordsDropped += records.size();
      ctrDropped_->add(records.size());
      break;
  }
  dropOverflow();
  pump(nowSeconds);
}

void Client::maybeHeartbeat(double nowSeconds) {
  if (options_.heartbeatSeconds <= 0.0 || !transport_->connected()) {
    return;
  }
  if (nowSeconds - lastSendAt_ < options_.heartbeatSeconds) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kHeartbeat;
  frame.timeSeconds = nowSeconds;
  if (transport_->send(encodeFrame(frame))) {
    ++counters_.heartbeatsSent;
    lastSendAt_ = nowSeconds;
  } else {
    ++counters_.sendFailures;
    transport_->close();
  }
}

void Client::flush(double nowSeconds, bool force) {
  while (queueSize() > 0) {
    const bool countDue = queueSize() >= options_.batchRecords;
    const bool ageDue =
        nowSeconds - queue_[head_].enqueuedAt >= options_.batchAgeSeconds;
    if (!force && !countDue && !ageDue) {
      return;
    }
    if (!ensureConnected(nowSeconds)) {
      if (force) {
        // Final flush with no daemon: the records are lost; count them.
        counters_.recordsDropped += queueSize();
        ctrDropped_->add(queueSize());
        queue_.clear();
        head_ = 0;
      }
      return;
    }
    Frame batch;
    batch.kind = FrameKind::kBatch;
    batch.timeSeconds = nowSeconds;
    batch.batchSeq = nextBatchSeq_;
    // v3 latency attribution: the batch carries when its oldest record
    // was queued and when the frame was encoded (both client clock), plus
    // the last completed round-trip so the daemon can expose all four
    // stages without a reverse channel.
    batch.enqueueSeconds = queue_[head_].enqueuedAt;
    batch.encodeSeconds = nowSeconds;
    batch.prevRoundtripSeconds = lastRoundtripSeconds_;
    const std::size_t n = std::min(queueSize(), options_.batchRecords);
    batch.records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const IdRecord& r = queue_[head_ + i].record;
      // The wire edge: the interned id becomes name text here, and only
      // here — queued records never hold strings.
      batch.records.push_back(
          {r.timeSeconds, std::string(names::lookup(r.name)), r.value});
    }
    if (!transport_->send(encodeFrame(batch))) {
      // Keep the batch queued for the next connection: the queue bound
      // (dropOverflow) caps memory against a daemon that never comes
      // back, so retaining these records costs nothing unbounded — and a
      // daemon restart then loses no records the client still holds.
      ++counters_.sendFailures;
      transport_->close();
      currentBackoff_ = currentBackoff_ <= 0.0
                            ? options_.reconnectBackoffSeconds
                            : currentBackoff_;
      nextConnectAt_ = nowSeconds + currentBackoff_;
      return;
    }
    ++nextBatchSeq_;
    lastSendAt_ = nowSeconds;
    latEnqueueToSend_->observe(nowSeconds - batch.enqueueSeconds);
    popFront(n);
    ++counters_.batchesSent;
    counters_.recordsSent += n;
    inflight_.push_back(
        {batch.batchSeq, static_cast<std::uint64_t>(n), nowSeconds});
    if (inflight_.size() > options_.maxInflightAcks) {
      // The bookkeeping is bounded; the oldest entries simply stop being
      // attributable when the daemon is this far behind on acks.
      inflight_.erase(inflight_.begin());
    }
  }
}

void Client::pump(double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.client.pump");
  if (options_.adaptive) {
    processIncoming(nowSeconds);
    updateLadder(nowSeconds);
    if (coarseOpen_ &&
        nowSeconds - coarseWindowStart_ >= options_.coarsenWindowSeconds) {
      closeCoarseWindow(nowSeconds);
    }
  }
  maybeHeartbeat(nowSeconds);
  flush(nowSeconds, /*force=*/false);
}

void Client::sendHealth(const HealthUpdate& health, double nowSeconds) {
  if (!ensureConnected(nowSeconds)) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kHealth;
  frame.health = health;
  if (!transport_->send(encodeFrame(frame))) {
    ++counters_.sendFailures;
    transport_->close();
    return;
  }
  lastSendAt_ = nowSeconds;
}

void Client::goodbye(double nowSeconds) {
  closeCoarseWindow(nowSeconds);
  flush(nowSeconds, /*force=*/true);
  if (!transport_->connected()) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kGoodbye;
  frame.timeSeconds = nowSeconds;
  if (!transport_->send(encodeFrame(frame))) {
    ++counters_.sendFailures;
  }
  transport_->close();
}

}  // namespace zerosum::aggregator
