// Aggregation client embedded in the monitored process ("do no harm",
// paper §3.1): a bounded send queue drained synchronously from the
// publish path.  Nothing here can stall or crash the application —
//
//   * enqueue() is O(records) copies into a bounded deque; when the
//     queue is full the oldest records are dropped and counted;
//   * pump() flushes batches by count/age through the Transport; a
//     failed send marks the connection dead, keeps the batch queued for
//     the next connection (the queue bound still caps memory — overflow
//     drops oldest), and schedules a reconnect with exponential backoff
//     (jittered, so thousands of ranks don't stampede a restarted
//     daemon in lockstep) — an absent daemon costs one cheap failed
//     connect() every backoff interval, not one per period.  A daemon
//     restart therefore loses no records the client still holds.
//
// Overload is handled by a degradation ladder, not by dropping (the
// ROADMAP's "degrades to coarser resolution instead of dropping"):
//
//   kFull      every record queued at full resolution.
//   kCoarse    records fold into per-metric min/avg/max rollups over a
//              coarsening window (RollupStore math); each window emits
//              three records per metric instead of hundreds.
//   kEssential bulk records are shed (counted as drops — the ladder is
//              exhausted); health updates and heartbeats still flow.
//
// The ladder escalates on local queue occupancy and on the daemon's
// acked PressureLevel (wire v2 kBatchAck), and climbs back down after a
// run of calm pumps.  See DESIGN.md §9 for the exact transition rules.
//
// The client is not a thread: the owner (SessionPublisher) calls
// enqueue()+pump() per sampling period on whatever thread publishes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/store.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "trace/metrics.hpp"

namespace zerosum::aggregator {

struct ClientOptions {
  /// Queue bound, in records; overflow drops the oldest.
  std::size_t maxQueueRecords = 8192;
  /// Flush when this many records are queued...
  std::size_t batchRecords = 256;
  /// ...or when the oldest queued record is this old.
  double batchAgeSeconds = 1.0;
  /// First reconnect delay; doubles per failure up to the cap.
  double reconnectBackoffSeconds = 1.0;
  double reconnectBackoffCapSeconds = 30.0;
  /// Each reconnect delay is multiplied by a factor drawn uniformly from
  /// [1 - f, 1 + f] (the unjittered schedule still drives the doubling).
  /// 0 disables jitter (exact schedules for tests).
  double reconnectJitterFraction = 0.1;
  /// Seed for the jitter PRNG; 0 derives one from the client identity so
  /// every rank jitters differently by default.
  std::uint64_t jitterSeed = 0;

  /// Master switch for the degradation ladder (escalation, coarsening,
  /// ack processing).  Off, the client behaves as the plain bounded
  /// queue — the zero-allocation benchmarks measure that path.
  bool adaptive = true;
  /// Escalate one ladder level when queue occupancy reaches this.
  double escalateOccupancy = 0.8;
  /// A pump is "calm" when occupancy is below this and acked pressure
  /// is ok.
  double clearOccupancy = 0.5;
  /// De-escalate one level after this many consecutive calm pumps.
  int deescalateAfterPumps = 5;
  /// Width of the client-side pre-aggregation window at kCoarse.
  double coarsenWindowSeconds = 5.0;
  /// An acked pressure level older than this no longer pins the ladder
  /// (a daemon that died overloaded must not freeze its clients coarse).
  double pressureStaleSeconds = 10.0;
  /// Send a liveness heartbeat when connected and nothing else went out
  /// for this long.  0 disables (the default: callers that want
  /// heartbeats — the cluster sim, live wiring — opt in).
  double heartbeatSeconds = 0.0;
  /// Bound on the unacked-batch bookkeeping.
  std::size_t maxInflightAcks = 256;
};

/// Degradation ladder state (kFull is the normal path).
enum class DegradeLevel : std::uint8_t {
  kFull = 0,
  kCoarse = 1,
  kEssential = 2,
};

[[nodiscard]] const char* degradeLevelName(DegradeLevel level);

struct ClientCounters {
  std::uint64_t recordsEnqueued = 0;
  std::uint64_t recordsSent = 0;
  std::uint64_t recordsDropped = 0;  ///< overflow + unflushable goodbye +
                                     ///< ladder exhausted (kEssential)
  std::uint64_t batchesSent = 0;
  std::uint64_t sendFailures = 0;
  std::uint64_t connectFailures = 0;  ///< failed connect() attempts
  std::uint64_t reconnects = 0;  ///< successful (re)connects after the first
  std::uint64_t recordsCoarsened = 0;   ///< inputs folded at kCoarse
  std::uint64_t coarseRecordsEmitted = 0;  ///< min/avg/max outputs emitted
  std::uint64_t degradeTransitions = 0;    ///< ladder moves, either way
  std::uint64_t acksReceived = 0;
  std::uint64_t recordsAcked = 0;  ///< records covered by daemon acks
  std::uint64_t heartbeatsSent = 0;
};

class Client {
 public:
  /// The client owns the transport; `identity` is announced on every
  /// (re)connect.
  Client(std::unique_ptr<Transport> transport, Hello identity,
         ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Queues records for delivery (bounded; drops oldest on overflow) and
  /// pumps.  `nowSeconds` is the caller's clock — virtual time in the
  /// simulator, wall time live — and drives batch age and backoff.
  void enqueue(const std::vector<WireRecord>& records, double nowSeconds);

  /// Same contract as enqueue(), but names arrive as interned ids and
  /// stay ids until flush materializes the outgoing frame — the
  /// steady-state publish path queues without touching a string.
  void enqueueIds(const std::vector<IdRecord>& records, double nowSeconds);

  /// Flushes due batches, drains daemon acks, advances the degradation
  /// ladder, and handles reconnect scheduling.  Safe to call every
  /// period regardless of connection state.
  void pump(double nowSeconds);

  /// Sends a health update (best-effort, never queued).
  void sendHealth(const HealthUpdate& health, double nowSeconds);

  /// Flushes everything still queued and sends kGoodbye.
  void goodbye(double nowSeconds);

  [[nodiscard]] bool connected() const { return transport_->connected(); }
  [[nodiscard]] const ClientCounters& counters() const { return counters_; }

  /// Current degradation ladder level.
  [[nodiscard]] DegradeLevel level() const { return level_; }
  /// Last daemon pressure seen in an ack (kOk before any ack arrives).
  [[nodiscard]] PressureLevel pressure() const { return pressure_; }

 private:
  /// True when connected (connecting if due).  Sends Hello on a fresh
  /// connection.
  bool ensureConnected(double nowSeconds);
  void flush(double nowSeconds, bool force);
  void dropOverflow();
  void pushQueued(const IdRecord& record, double nowSeconds);

  /// Drains daemon->client bytes (kBatchAck frames) into the ladder
  /// inputs.  A malformed frame closes the connection.
  void processIncoming(double nowSeconds);
  /// Applies the escalation/de-escalation rules for one pump.
  void updateLadder(double nowSeconds);
  void setLevel(DegradeLevel next, double nowSeconds);
  /// Folds one record into the open coarsening window.
  void coarsen(const IdRecord& record, double nowSeconds);
  /// Emits the open window's min/avg/max records into the queue.
  void closeCoarseWindow(double nowSeconds);
  void maybeHeartbeat(double nowSeconds);
  /// splitmix64 step for backoff jitter; uniform in [0, 1).
  double nextJitterUnit();

  std::unique_ptr<Transport> transport_;
  Hello identity_;
  ClientOptions options_;
  ClientCounters counters_;

  struct Queued {
    IdRecord record;
    double enqueuedAt = 0.0;
  };
  /// FIFO spelled as vector + head index: pops advance head_ and
  /// popFront() recycles the dead prefix with a move once it outweighs
  /// the live tail, so the buffer reaches a fixed capacity and then the
  /// steady state allocates nothing (a deque allocates and frees blocks
  /// every period).
  std::vector<Queued> queue_;
  std::size_t head_ = 0;

  [[nodiscard]] std::size_t queueSize() const {
    return queue_.size() - head_;
  }
  void popFront(std::size_t n);

  bool everConnected_ = false;
  double nextConnectAt_ = 0.0;   ///< earliest next connect attempt
  double currentBackoff_ = 0.0;  ///< 0 = connect immediately (unjittered)
  std::uint64_t jitterState_ = 0;

  // --- ladder state --------------------------------------------------------
  DegradeLevel level_ = DegradeLevel::kFull;
  PressureLevel pressure_ = PressureLevel::kOk;
  double pressureAt_ = -1.0;  ///< when the last ack arrived; <0 = never
  int pumpsSinceTransition_ = 1000;  ///< large: first escalation is free
  int calmPumps_ = 0;

  // --- coarsening window ---------------------------------------------------
  bool coarseOpen_ = false;
  double coarseWindowStart_ = 0.0;
  std::map<names::Id, Rollup> coarse_;
  /// Derived ".min"/".max" metric ids, interned once per base metric.
  struct CoarseIds {
    names::Id minId = names::kInvalidId;
    names::Id maxId = names::kInvalidId;
  };
  std::map<names::Id, CoarseIds> coarseIds_;

  // --- ack tracking --------------------------------------------------------
  struct Inflight {
    std::uint64_t seq = 0;
    std::uint64_t records = 0;
    double sentAt = 0.0;  ///< client clock at send; drives round-trip stats
  };
  std::vector<Inflight> inflight_;  ///< FIFO, bounded by maxInflightAcks
  std::uint64_t nextBatchSeq_ = 1;
  FrameReader ackReader_;
  std::string recvScratch_;
  std::vector<IdRecord> idScratch_;  ///< enqueue(WireRecord) conversion

  double lastSendAt_ = 0.0;  ///< drives the idle-heartbeat timer

  // --- latency attribution + live gauges -----------------------------------
  // Handles resolved once at construction (per instance, not static:
  // tests reset the registry between cases, and a static handle would
  // dangle).  observe()/set() on them are lock-free and allocation-free,
  // so stamping stays inside the zero-allocation hot-path contract.
  trace::Counter* ctrEnqueued_ = nullptr;
  trace::Counter* ctrDropped_ = nullptr;
  trace::Counter* ctrReconnects_ = nullptr;
  trace::Counter* ctrCoarsened_ = nullptr;
  trace::Counter* ctrDegradeTransitions_ = nullptr;
  trace::LatencyHistogram* latEnqueueToSend_ = nullptr;
  trace::LatencyHistogram* latRoundtrip_ = nullptr;
  trace::Gauge* gaugeDegradeStage_ = nullptr;
  trace::Gauge* gaugeAckedPressure_ = nullptr;
  /// Most recently completed batch round-trip; <0 until the first ack.
  double lastRoundtripSeconds_ = -1.0;
};

}  // namespace zerosum::aggregator
