// Aggregation client embedded in the monitored process ("do no harm",
// paper §3.1): a bounded send queue drained synchronously from the
// publish path.  Nothing here can stall or crash the application —
//
//   * enqueue() is O(records) copies into a bounded deque; when the
//     queue is full the oldest records are dropped and counted;
//   * pump() flushes batches by count/age through the Transport; a
//     failed send marks the connection dead, keeps the batch queued for
//     the next connection (the queue bound still caps memory — overflow
//     drops oldest), and schedules a reconnect with exponential backoff
//     so an absent daemon costs one cheap failed connect() every backoff
//     interval, not one per period.  A daemon restart therefore loses no
//     records the client still holds.
//
// The client is not a thread: the owner (SessionPublisher) calls
// enqueue()+pump() per sampling period on whatever thread publishes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"

namespace zerosum::aggregator {

struct ClientOptions {
  /// Queue bound, in records; overflow drops the oldest.
  std::size_t maxQueueRecords = 8192;
  /// Flush when this many records are queued...
  std::size_t batchRecords = 256;
  /// ...or when the oldest queued record is this old.
  double batchAgeSeconds = 1.0;
  /// First reconnect delay; doubles per failure up to the cap.
  double reconnectBackoffSeconds = 1.0;
  double reconnectBackoffCapSeconds = 30.0;
};

struct ClientCounters {
  std::uint64_t recordsEnqueued = 0;
  std::uint64_t recordsSent = 0;
  std::uint64_t recordsDropped = 0;  ///< queue overflow + unflushable goodbye
  std::uint64_t batchesSent = 0;
  std::uint64_t sendFailures = 0;
  std::uint64_t reconnects = 0;  ///< successful (re)connects after the first
};

class Client {
 public:
  /// The client owns the transport; `identity` is announced on every
  /// (re)connect.
  Client(std::unique_ptr<Transport> transport, Hello identity,
         ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Queues records for delivery (bounded; drops oldest on overflow) and
  /// pumps.  `nowSeconds` is the caller's clock — virtual time in the
  /// simulator, wall time live — and drives batch age and backoff.
  void enqueue(const std::vector<WireRecord>& records, double nowSeconds);

  /// Same contract as enqueue(), but names arrive as interned ids and
  /// stay ids until flush materializes the outgoing frame — the
  /// steady-state publish path queues without touching a string.
  void enqueueIds(const std::vector<IdRecord>& records, double nowSeconds);

  /// Flushes due batches and handles reconnect scheduling.  Safe to call
  /// every period regardless of connection state.
  void pump(double nowSeconds);

  /// Sends a health update (best-effort, never queued).
  void sendHealth(const HealthUpdate& health, double nowSeconds);

  /// Flushes everything still queued and sends kGoodbye.
  void goodbye(double nowSeconds);

  [[nodiscard]] bool connected() const { return transport_->connected(); }
  [[nodiscard]] const ClientCounters& counters() const { return counters_; }

 private:
  /// True when connected (connecting if due).  Sends Hello on a fresh
  /// connection.
  bool ensureConnected(double nowSeconds);
  void flush(double nowSeconds, bool force);
  void dropOverflow();

  std::unique_ptr<Transport> transport_;
  Hello identity_;
  ClientOptions options_;
  ClientCounters counters_;

  struct Queued {
    IdRecord record;
    double enqueuedAt = 0.0;
  };
  /// FIFO spelled as vector + head index: pops advance head_ and
  /// popFront() recycles the dead prefix with a move once it outweighs
  /// the live tail, so the buffer reaches a fixed capacity and then the
  /// steady state allocates nothing (a deque allocates and frees blocks
  /// every period).
  std::vector<Queued> queue_;
  std::size_t head_ = 0;

  [[nodiscard]] std::size_t queueSize() const {
    return queue_.size() - head_;
  }
  void popFront(std::size_t n);

  bool everConnected_ = false;
  double nextConnectAt_ = 0.0;   ///< earliest next connect attempt
  double currentBackoff_ = 0.0;  ///< 0 = connect immediately
};

}  // namespace zerosum::aggregator
