#include "aggregator/daemon.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "aggregator/query.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "tsdb/engine.hpp"

namespace zerosum::aggregator {

const char* sourceStateName(SourceState state) {
  switch (state) {
    case SourceState::kActive: return "active";
    case SourceState::kStale: return "STALE";
    case SourceState::kDeparted: return "departed";
  }
  return "?";
}

Aggregator::Aggregator(std::unique_ptr<TransportServer> server,
                       StoreOptions storeOptions)
    : server_(std::move(server)), store_(storeOptions) {
  if (!server_) {
    throw ConfigError("Aggregator requires a transport server");
  }
}

SourceInfo* Aggregator::sourceOf(const std::string& job, int rank) {
  const auto it = sources_.find({job, rank});
  return it == sources_.end() ? nullptr : &it->second;
}

void Aggregator::attachEngine(tsdb::Engine* engine) {
  engine_ = engine;
  if (engine_ == nullptr) {
    return;
  }
  for (const tsdb::SourceRecord& record : engine_->sources()) {
    SourceInfo& info = sources_[{record.job, record.rank}];
    if (info.batches != 0 || info.lastSeenSeconds != 0.0) {
      continue;  // live connection already outranks the recovered entry
    }
    info.hello.job = record.job;
    info.hello.rank = record.rank;
    info.hello.worldSize = record.worldSize;
    info.hello.hostname = record.hostname;
    info.hello.pid = record.pid;
    info.state = SourceState::kStale;
    info.firstSeenSeconds = record.firstSeenSeconds;
    info.lastSeenSeconds = record.lastSeenSeconds;
    info.batches = record.batches;
    info.records = record.records;
    int& expected = expectedRanks_[record.job];
    expected = std::max(expected, record.worldSize);
  }
}

void Aggregator::persistSource(const std::pair<std::string, int>& key,
                               const SourceInfo& info) {
  if (engine_ == nullptr) {
    return;
  }
  tsdb::SourceRecord record;
  record.job = key.first;
  record.rank = key.second;
  record.worldSize = info.hello.worldSize;
  record.hostname = info.hello.hostname;
  record.pid = info.hello.pid;
  record.firstSeenSeconds = info.firstSeenSeconds;
  record.lastSeenSeconds = info.lastSeenSeconds;
  record.batches = info.batches;
  record.records = info.records;
  engine_->noteSource(record);
}

void Aggregator::handleFrame(std::uint64_t connection, ConnState& conn,
                             const Frame& frame, double nowSeconds) {
  ++counters_.framesIngested;
  if (frame.kind == FrameKind::kQuery) {
    ++counters_.queriesServed;
    Frame response;
    response.kind = FrameKind::kResponse;
    response.text = query(frame.text);
    server_->send(connection, encodeFrame(response));
    return;
  }
  if (frame.kind == FrameKind::kHello) {
    conn.helloSeen = true;
    conn.job = frame.hello.job;
    conn.rank = frame.hello.rank;
    SourceInfo& info = sources_[{conn.job, conn.rank}];
    const bool fresh = info.lastSeenSeconds == 0.0 && info.batches == 0;
    info.hello = frame.hello;
    info.state = SourceState::kActive;
    if (fresh) {
      info.firstSeenSeconds = nowSeconds;
    }
    info.lastSeenSeconds = nowSeconds;
    int& expected = expectedRanks_[conn.job];
    expected = std::max(expected, frame.hello.worldSize);
    persistSource({conn.job, conn.rank}, info);
    return;
  }
  if (!conn.helloSeen) {
    // Data frames before the Hello have no source to bind to.
    ++counters_.orphanFrames;
    return;
  }
  SourceInfo* info = sourceOf(conn.job, conn.rank);
  if (info == nullptr) {
    ++counters_.orphanFrames;
    return;
  }
  info->lastSeenSeconds = nowSeconds;
  if (info->state == SourceState::kStale) {
    info->state = SourceState::kActive;  // the rank came back
  }
  switch (frame.kind) {
    case FrameKind::kBatch: {
      ZS_TRACE_SCOPE("zs.agg.daemon.ingest");
      ++counters_.batchesIngested;
      counters_.recordsIngested += frame.records.size();
      static trace::Counter& ingested =
          trace::MetricsRegistry::instance().counter(
              "zs.agg.daemon.records_ingested");
      ingested.add(frame.records.size());
      keyScratch_.job.assign(conn.job);
      keyScratch_.rank = conn.rank;
      for (const auto& record : frame.records) {
        // One intern per record resolves the per-connection series ref;
        // the ref then skips the store's key hash and string compares.
        RollupStore::SeriesRef& ref =
            conn.seriesRefs[names::intern(record.name)];
        keyScratch_.metric.assign(record.name);
        store_.ingest(keyScratch_, ref, record.timeSeconds, record.value);
      }
      if (engine_ != nullptr) {
        // Durable before the batch is acknowledged as ingested: the WAL
        // append happens in the same poll() that merges the records, so
        // anything a client saw accepted survives a crash.  The scratch
        // vector (and each sample's metric string) keeps its capacity
        // across batches.
        samplesScratch_.resize(frame.records.size());
        for (std::size_t i = 0; i < frame.records.size(); ++i) {
          tsdb::Sample& s = samplesScratch_[i];
          s.timeSeconds = frame.records[i].timeSeconds;
          s.metric.assign(frame.records[i].name);
          s.value = frame.records[i].value;
        }
        engine_->append(conn.job, conn.rank, samplesScratch_);
      }
      break;
    }
    case FrameKind::kHealth:
      info->health = frame.health;
      break;
    case FrameKind::kHeartbeat:
      ++counters_.heartbeats;
      break;
    case FrameKind::kGoodbye:
      info->state = SourceState::kDeparted;
      break;
    default:
      break;
  }
  if (frame.kind == FrameKind::kBatch) {
    ++info->batches;
    info->records += frame.records.size();
  }
  if (frame.kind == FrameKind::kBatch || frame.kind == FrameKind::kGoodbye) {
    persistSource({conn.job, conn.rank}, *info);
  }
}

void Aggregator::poll(double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.daemon.poll");
  for (auto& delivery : server_->poll()) {
    auto& conn = connections_[delivery.connection];
    if (!delivery.bytes.empty()) {
      conn.reader.feed(delivery.bytes);
      try {
        Frame frame;
        while (conn.reader.next(frame)) {
          handleFrame(delivery.connection, conn, frame, nowSeconds);
        }
      } catch (const Error& e) {
        // Malformed bytes poison the whole connection (framing is lost);
        // count it and cut the source off rather than guessing.
        ++counters_.decodeErrors;
        log::warn() << "aggregator: dropping connection "
                    << delivery.connection << ": " << e.what();
        server_->disconnect(delivery.connection);
        connections_.erase(delivery.connection);
        continue;
      }
    }
    if (delivery.closed) {
      connections_.erase(delivery.connection);
    }
  }

  // Staleness sweep: a silent source is flagged and its series evicted —
  // the store serves live dashboards, not archaeology.
  for (auto& [key, info] : sources_) {
    if (info.state != SourceState::kActive) {
      continue;
    }
    if (nowSeconds - info.lastSeenSeconds > store_.options().staleSeconds) {
      ZS_TRACE_INSTANT("zs.agg.daemon.evict_stale");
      info.state = SourceState::kStale;
      ++counters_.sourcesEvicted;
      static trace::Counter& evictions =
          trace::MetricsRegistry::instance().counter(
              "zs.agg.daemon.sources_evicted");
      evictions.add();
      store_.evictSource(key.first, key.second);
    }
  }

  if (engine_ != nullptr) {
    engine_->maybeCompact();
  }
}

std::vector<SourceInfo> Aggregator::sources() const {
  std::vector<SourceInfo> out;
  out.reserve(sources_.size());
  for (const auto& [key, info] : sources_) {
    out.push_back(info);
  }
  return out;
}

bool Aggregator::allDeparted() const {
  if (sources_.empty()) {
    return false;
  }
  return std::all_of(sources_.begin(), sources_.end(), [](const auto& kv) {
    return kv.second.state == SourceState::kDeparted;
  });
}

std::vector<int> Aggregator::missingRanks(const std::string& job) const {
  std::vector<int> missing;
  const auto it = expectedRanks_.find(job);
  if (it == expectedRanks_.end()) {
    return missing;
  }
  std::set<int> seen;
  for (const auto& [key, info] : sources_) {
    if (key.first == job) {
      seen.insert(key.second);
    }
  }
  for (int rank = 0; rank < it->second; ++rank) {
    if (seen.count(rank) == 0) {
      missing.push_back(rank);
    }
  }
  return missing;
}

std::string Aggregator::dashboard(double nowSeconds) const {
  std::ostringstream out;
  out << "Aggregator dashboard: " << sources_.size() << " source(s), "
      << store_.seriesCount() << " series, "
      << counters_.recordsIngested << " records ingested, t="
      << strings::fixed(nowSeconds, 1) << "s\n";
  std::string lastJob;
  for (const auto& [key, info] : sources_) {
    if (key.first != lastJob) {
      lastJob = key.first;
      out << "=== job " << (lastJob.empty() ? "(default)" : lastJob)
          << " ===\n";
      out << strings::padRight("rank", 6) << strings::padRight("node", 14)
          << strings::padRight("state", 10)
          << strings::padLeft("last seen", 11)
          << strings::padLeft("records", 10)
          << strings::padLeft("cpu avg%", 10)
          << strings::padLeft("degraded", 10)
          << strings::padLeft("quarant.", 10) << '\n';
    }
    // Per-rank utilization: mean of the newest coarse windows of every
    // hwt.*.user_pct series this rank reports (the Figure-7 view rolled
    // up to one number).
    double cpuSum = 0.0;
    int cpuCount = 0;
    for (const auto& seriesKey : store_.keysOf(key.first, key.second)) {
      if (seriesKey.metric.rfind("hwt.", 0) == 0 &&
          seriesKey.metric.size() > 9 &&
          seriesKey.metric.compare(seriesKey.metric.size() - 9, 9,
                                   ".user_pct") == 0) {
        const auto latest = store_.latest(seriesKey, Resolution::kCoarse);
        if (latest) {
          cpuSum += latest->rollup.avg();
          ++cpuCount;
        }
      }
    }
    out << strings::padRight(std::to_string(key.second), 6)
        << strings::padRight(info.hello.hostname, 14)
        << strings::padRight(sourceStateName(info.state), 10)
        << strings::padLeft(strings::fixed(info.lastSeenSeconds, 1), 11)
        << strings::padLeft(std::to_string(info.records), 10)
        << strings::padLeft(
               cpuCount > 0 ? strings::fixed(cpuSum / cpuCount, 1) : "-", 10)
        << strings::padLeft(std::to_string(info.health.samplesDegraded), 10)
        << strings::padLeft(std::to_string(info.health.quarantined), 10)
        << '\n';
  }
  // Pathology findings across ranks (stale and missing).
  bool findings = false;
  for (const auto& [key, info] : sources_) {
    if (info.state == SourceState::kStale) {
      out << "finding: rank " << key.second << " of job '" << key.first
          << "' is stale (last seen t="
          << strings::fixed(info.lastSeenSeconds, 1) << "s)\n";
      findings = true;
    }
  }
  for (const auto& [job, expected] : expectedRanks_) {
    const auto missing = missingRanks(job);
    if (!missing.empty()) {
      out << "finding: job '" << job << "' expected " << expected
          << " rank(s); never heard from:";
      for (const int rank : missing) {
        out << ' ' << rank;
      }
      out << '\n';
      findings = true;
    }
  }
  if (!findings) {
    out << "no cross-rank pathologies detected\n";
  }
  return out.str();
}

std::string Aggregator::query(const std::string& requestJson) const {
  return runQuery(*this, requestJson);
}

}  // namespace zerosum::aggregator
