#include "aggregator/daemon.hpp"

#include <algorithm>
#include <mutex>
#include <set>
#include <sstream>

#include "aggregator/catalog.hpp"
#include "aggregator/query.hpp"
#include "aggregator/queryservice.hpp"
#include "aggregator/writer.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "tsdb/engine.hpp"

namespace zerosum::aggregator {

const char* sourceStateName(SourceState state) {
  switch (state) {
    case SourceState::kActive: return "active";
    case SourceState::kStale: return "STALE";
    case SourceState::kDeparted: return "departed";
  }
  return "?";
}

Aggregator::Aggregator(std::unique_ptr<TransportServer> server,
                       StoreOptions storeOptions, DaemonOptions options)
    : server_(std::move(server)), store_(storeOptions), options_(options) {
  if (!server_) {
    throw ConfigError("Aggregator requires a transport server");
  }
  if (options_.maxPendingBatches == 0) {
    throw ConfigError("Aggregator maxPendingBatches must be >= 1");
  }
  if (options_.elevatedQueueFraction <= 0.0 ||
      options_.overloadedQueueFraction < options_.elevatedQueueFraction) {
    throw ConfigError("Aggregator pressure thresholds must satisfy "
                      "0 < elevated <= overloaded");
  }
  auto& registry = trace::MetricsRegistry::instance();
  latEnqueueToSend_ =
      &registry.latency("zs.agg.daemon.latency.enqueue_to_send_seconds");
  latSendToIngest_ =
      &registry.latency("zs.agg.daemon.latency.send_to_ingest_seconds");
  latIngestToDurable_ =
      &registry.latency("zs.agg.daemon.latency.ingest_to_durable_seconds");
  latRoundtrip_ = &registry.latency("zs.agg.daemon.latency.roundtrip_seconds");
  gaugePressure_ = &registry.gauge("zs.agg.daemon.pressure");
  gaugeBacklog_ = &registry.gauge("zs.agg.daemon.ingest_backlog");
  ctrRecordsIngested_ = &registry.counter("zs.agg.daemon.records_ingested");
  ctrSourcesEvicted_ = &registry.counter("zs.agg.daemon.sources_evicted");
  ctrFaninFrames_ = &registry.counter("zs.aggd.fanin.forward_frames");
  ctrFaninWindows_ = &registry.counter("zs.aggd.fanin.forward_windows");
  ctrFaninConflicts_ = &registry.counter("zs.aggd.fanin.merge_conflicts");
  gaugeFaninMaxHops_ = &registry.gauge("zs.aggd.fanin.max_hops");
  gaugePressure_->set(0.0);
  gaugeBacklog_->set(0.0);
}

SourceInfo* Aggregator::sourceOf(const std::string& job, int rank) {
  const auto it = sources_.find({job, rank});
  return it == sources_.end() ? nullptr : &it->second;
}

void Aggregator::attachEngine(tsdb::Engine* engine) {
  engine_ = engine;
  if (engine_ == nullptr) {
    return;
  }
  for (const tsdb::SourceRecord& record : engine_->sources()) {
    SourceInfo& info = sources_[{record.job, record.rank}];
    if (info.batches != 0 || info.lastSeenSeconds != 0.0) {
      continue;  // live connection already outranks the recovered entry
    }
    info.hello.job = record.job;
    info.hello.rank = record.rank;
    info.hello.worldSize = record.worldSize;
    info.hello.hostname = record.hostname;
    info.hello.pid = record.pid;
    info.state = SourceState::kStale;
    info.firstSeenSeconds = record.firstSeenSeconds;
    info.lastSeenSeconds = record.lastSeenSeconds;
    info.batches = record.batches;
    info.records = record.records;
    int& expected = expectedRanks_[record.job];
    expected = std::max(expected, record.worldSize);
  }
}

void Aggregator::attachWriter(TsdbWriter* writer) {
  writer_ = writer;
  if (writer_ != nullptr) {
    attachEngine(writer_->engine());
  }
}

PressureLevel Aggregator::pressure() const {
  double occupancy = static_cast<double>(pending_.size()) /
                     static_cast<double>(options_.maxPendingBatches);
  if (writer_ != nullptr) {
    occupancy = std::max(occupancy, writer_->occupancy());
  }
  if (occupancy >= options_.overloadedQueueFraction) {
    return PressureLevel::kOverloaded;
  }
  if (occupancy >= options_.elevatedQueueFraction) {
    return PressureLevel::kElevated;
  }
  return PressureLevel::kOk;
}

std::size_t Aggregator::ingestBacklog() const {
  return pending_.size() + (writer_ != nullptr ? writer_->pending() : 0);
}

void Aggregator::persistSource(const std::pair<std::string, int>& key,
                               const SourceInfo& info) {
  if (engine_ == nullptr) {
    return;
  }
  tsdb::SourceRecord record;
  record.job = key.first;
  record.rank = key.second;
  record.worldSize = info.hello.worldSize;
  record.hostname = info.hello.hostname;
  record.pid = info.hello.pid;
  record.firstSeenSeconds = info.firstSeenSeconds;
  record.lastSeenSeconds = info.lastSeenSeconds;
  record.batches = info.batches;
  record.records = info.records;
  if (writer_ != nullptr && writer_->threaded()) {
    std::lock_guard<std::mutex> lock(writer_->engineMutex());
    engine_->noteSource(record);
    return;
  }
  engine_->noteSource(record);
}

void Aggregator::sendAck(std::uint64_t connection, std::uint64_t batchSeq) {
  Frame ack;
  ack.kind = FrameKind::kBatchAck;
  ack.batchSeq = batchSeq;
  ack.pressure = pressure();
  if (server_->send(connection, encodeFrame(ack))) {
    ++counters_.acksSent;
  }
}

void Aggregator::flushAcks(double nowSeconds) {
  const std::uint64_t durable =
      writer_ != nullptr ? writer_->writtenTicket() : 0;
  while (!pendingAcks_.empty()) {
    const PendingAck& ack = pendingAcks_.front();
    if (ack.ticket != 0 && ack.ticket > durable) {
      break;  // FIFO matches per-connection seq order; acks are cumulative
    }
    latIngestToDurable_->observe(std::max(0.0, nowSeconds - ack.ingestAt));
    sendAck(ack.connection, ack.batchSeq);
    pendingAcks_.pop_front();
  }
}

void Aggregator::handleFrame(std::uint64_t connection, ConnState& conn,
                             Frame& frame, double nowSeconds) {
  ++counters_.framesIngested;
  conn.version = std::max(conn.version, frame.version);
  if (frame.kind == FrameKind::kQuery) {
    ++counters_.queriesServed;
    Frame response;
    response.kind = FrameKind::kResponse;
    response.text = query(frame.text);
    server_->send(connection, encodeFrame(response));
    return;
  }
  if (frame.kind == FrameKind::kForward) {
    // Self-describing (origin and per-source identities ride the frame),
    // so no Hello gate; bulk data like kBatch, so it goes through the
    // admission queue and the same pressure/ack loop.
    admitBatch(connection, conn, std::move(frame), nowSeconds);
    return;
  }
  if (frame.kind == FrameKind::kCatalogAnnounce) {
    handleCatalogAnnounce(connection, frame, nowSeconds);
    return;
  }
  if (frame.kind == FrameKind::kHello) {
    conn.helloSeen = true;
    conn.job = frame.hello.job;
    conn.rank = frame.hello.rank;
    SourceInfo& info = sources_[{conn.job, conn.rank}];
    const bool fresh = info.lastSeenSeconds == 0.0 && info.batches == 0;
    info.hello = frame.hello;
    info.state = SourceState::kActive;
    if (fresh) {
      info.firstSeenSeconds = nowSeconds;
    }
    info.lastSeenSeconds = nowSeconds;
    int& expected = expectedRanks_[conn.job];
    expected = std::max(expected, frame.hello.worldSize);
    persistSource({conn.job, conn.rank}, info);
    return;
  }
  if (!conn.helloSeen) {
    // Data frames before the Hello have no source to bind to.
    ++counters_.orphanFrames;
    return;
  }
  SourceInfo* info = sourceOf(conn.job, conn.rank);
  if (info == nullptr) {
    ++counters_.orphanFrames;
    return;
  }
  info->lastSeenSeconds = nowSeconds;
  if (info->state == SourceState::kStale) {
    info->state = SourceState::kActive;  // the rank came back
  }
  switch (frame.kind) {
    case FrameKind::kBatch:
      // Bulk data goes through admission; everything else on this
      // connection was already handled the moment it decoded.
      admitBatch(connection, conn, std::move(frame), nowSeconds);
      break;
    case FrameKind::kHealth:
      info->health = frame.health;
      break;
    case FrameKind::kHeartbeat:
      ++counters_.heartbeats;
      if (conn.version >= 2) {
        // Heartbeats are answered immediately with a seq-0 ack so idle
        // (or fully degraded) clients still see the pressure signal.
        sendAck(connection, 0);
      }
      break;
    case FrameKind::kGoodbye:
      info->state = SourceState::kDeparted;
      persistSource({conn.job, conn.rank}, *info);
      break;
    default:
      break;
  }
}

void Aggregator::admitBatch(std::uint64_t connection, ConnState& conn,
                            Frame&& frame, double nowSeconds) {
  if (pending_.size() >= options_.maxPendingBatches) {
    // Backstop: the queue never drops an admitted batch.  Process the
    // oldest inline (order preserved) to make room; pressure() is
    // already reading overloaded at this depth.
    ++counters_.admissionBackstops;
    PendingBatch oldest = std::move(pending_.front());
    pending_.pop_front();
    processBatch(oldest, nowSeconds);
  }
  PendingBatch batch;
  batch.connection = connection;
  batch.version = conn.version;
  batch.job = conn.job;
  batch.rank = conn.rank;
  batch.admittedAt = nowSeconds;
  if (frame.version >= 3 && frame.kind == FrameKind::kBatch) {
    // Refine the connection's clock-offset estimate at decode time: the
    // minimum over batches of (daemon now - client encode stamp) bounds
    // the epoch delta from above by the fastest observed transit.
    const double offset = nowSeconds - frame.encodeSeconds;
    if (!conn.offsetKnown || offset < conn.minClockOffset) {
      conn.minClockOffset = offset;
      conn.offsetKnown = true;
    }
    batch.clockOffset = conn.minClockOffset;
    batch.hasStamps = true;
  }
  batch.frame = std::move(frame);
  pending_.push_back(std::move(batch));
}

void Aggregator::processBatch(PendingBatch& batch, double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.daemon.ingest");
  if (batch.frame.kind == FrameKind::kForward) {
    processForward(batch, nowSeconds);
    return;
  }
  const Frame& frame = batch.frame;
  if (batch.hasStamps) {
    // Per-stage latency attribution (DESIGN.md §10).  The first stage is
    // a pure client-clock difference; the second maps the client encode
    // stamp into the daemon clock via the connection's min-offset
    // estimate; the third (the client's view of the previous full
    // round-trip) rides the batch so the daemon exposes all four stages.
    const double queued = frame.encodeSeconds - frame.enqueueSeconds;
    if (queued >= 0.0) latEnqueueToSend_->observe(queued);
    latSendToIngest_->observe(
        std::max(0.0, (nowSeconds - batch.clockOffset) - frame.encodeSeconds));
    if (frame.prevRoundtripSeconds >= 0.0) {
      latRoundtrip_->observe(frame.prevRoundtripSeconds);
    }
  }
  ++counters_.batchesIngested;
  counters_.recordsIngested += frame.records.size();
  ctrRecordsIngested_->add(frame.records.size());
  auto& seriesRefs = seriesRefs_[{batch.job, batch.rank}];
  keyScratch_.job.assign(batch.job);
  keyScratch_.rank = batch.rank;
  for (const auto& record : frame.records) {
    // One intern per record resolves the per-source series ref; the ref
    // then skips the store's key hash and string compares.
    const names::Id metricId = names::intern(record.name);
    RollupStore::SeriesRef& ref = seriesRefs[metricId];
    keyScratch_.metric.assign(record.name);
    store_.ingest(keyScratch_, ref, record.timeSeconds, record.value);
    if (queryService_ != nullptr) {
      queryService_->onRecord(batch.job, batch.rank, metricId,
                              record.timeSeconds, record.value);
    }
  }
  std::uint64_t ackTicket = 0;
  if (engine_ != nullptr) {
    // Durable before the batch is acknowledged: either the WAL append
    // happens right here, or the ack is parked until the TsdbWriter's
    // durable frontier passes the batch's ticket.  Either way anything
    // a client saw acked survives a crash.  The scratch vector (and
    // each sample's metric string) keeps its capacity across batches.
    samplesScratch_.resize(frame.records.size());
    for (std::size_t i = 0; i < frame.records.size(); ++i) {
      tsdb::Sample& s = samplesScratch_[i];
      s.timeSeconds = frame.records[i].timeSeconds;
      s.metric.assign(frame.records[i].name);
      s.value = frame.records[i].value;
    }
    if (writer_ != nullptr) {
      const auto ticket =
          writer_->submit(batch.job, batch.rank, samplesScratch_);
      if (ticket) {
        ackTicket = *ticket;
      } else {
        // Writer full: append inline rather than stall or drop.  The
        // records are durable immediately, so the ack needs no ticket.
        ++counters_.writerBypasses;
        std::lock_guard<std::mutex> lock(writer_->engineMutex());
        engine_->append(batch.job, batch.rank, samplesScratch_);
      }
    } else {
      engine_->append(batch.job, batch.rank, samplesScratch_);
    }
  }
  SourceInfo* info = sourceOf(batch.job, batch.rank);
  if (info != nullptr) {
    info->lastSeenSeconds = std::max(info->lastSeenSeconds, batch.admittedAt);
    ++info->batches;
    info->records += frame.records.size();
    persistSource({batch.job, batch.rank}, *info);
  }
  // v2 batches carry a sequence number and expect an ack; v1 batches
  // (and the admission path for them) stay fire-and-forget.
  if (batch.version >= 2 && frame.batchSeq != 0) {
    pendingAcks_.push_back(
        {batch.connection, frame.batchSeq, ackTicket, nowSeconds});
  }
}

void Aggregator::processForward(PendingBatch& batch, double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.daemon.forward_ingest");
  const Frame& frame = batch.frame;
  ++counters_.forwardFrames;
  ctrFaninFrames_->add();
  // Source-registry propagation.  Ages ride the frame (epoch-safe across
  // daemons); lastSeen reconstructs on this daemon's clock.  A source we
  // also hear from directly (hops == 0 with data) outranks the forwarded
  // view of itself.
  for (const ForwardSource& src : frame.forwardSources) {
    if (src.state > static_cast<std::uint8_t>(SourceState::kDeparted)) {
      continue;  // decode validated this, but stay defensive
    }
    SourceInfo& info = sources_[{src.job, src.rank}];
    const bool fresh = info.lastSeenSeconds == 0.0 && info.batches == 0;
    if (!fresh && info.hops == 0) {
      continue;
    }
    info.hello.job = src.job;
    info.hello.rank = src.rank;
    info.hello.worldSize = src.worldSize;
    info.hello.hostname = src.hostname;
    info.state = static_cast<SourceState>(src.state);
    info.hops = frame.hopCount;
    const double seen = std::max(0.0, nowSeconds - src.lastSeenAgeSeconds);
    if (fresh || seen < info.firstSeenSeconds || info.firstSeenSeconds == 0.0) {
      info.firstSeenSeconds = seen;
    }
    info.lastSeenSeconds = std::max(info.lastSeenSeconds, seen);
    int& expected = expectedRanks_[src.job];
    expected = std::max(expected, src.worldSize);
  }
  if (frame.hopCount > maxHopsSeen_) {
    maxHopsSeen_ = frame.hopCount;
    gaugeFaninMaxHops_->set(static_cast<double>(maxHopsSeen_));
  }
  // Window application: cumulative snapshots replace when newer; a
  // not-newer snapshot is a merge conflict (retransmit after a resync,
  // or a duplicate route during a membership change) — counted, kept.
  std::uint64_t applied = 0;
  std::uint64_t conflicts = 0;
  for (const ForwardWindow& w : frame.forwardWindows) {
    keyScratch_.job.assign(w.job);
    keyScratch_.rank = w.rank;
    keyScratch_.metric.assign(w.metric);
    Rollup rollup;
    rollup.min = w.min;
    rollup.max = w.max;
    rollup.sum = w.sum;
    rollup.count = w.count;
    const Resolution resolution =
        w.resolution == 0 ? Resolution::kFine : Resolution::kCoarse;
    if (store_.ingestWindow(keyScratch_, resolution, w.windowIndex, rollup)) {
      ++applied;
    } else {
      ++conflicts;
    }
  }
  counters_.forwardWindows += applied;
  counters_.forwardConflicts += conflicts;
  ctrFaninWindows_->add(applied);
  if (conflicts > 0) {
    ctrFaninConflicts_->add(conflicts);
  }
  // Forwarded windows live in the rollup plane only (recovery is resync,
  // not WAL replay), so the ack needs no writer ticket: "acked" means
  // "applied upstream".
  if (batch.version >= 2 && frame.batchSeq != 0) {
    pendingAcks_.push_back({batch.connection, frame.batchSeq, 0, nowSeconds});
  }
}

void Aggregator::handleCatalogAnnounce(std::uint64_t connection,
                                       const Frame& frame,
                                       double nowSeconds) {
  if (catalog_ == nullptr) {
    // Not a catalog host; an announce here is a misdirected frame.
    ++counters_.orphanFrames;
    return;
  }
  ++counters_.catalogAnnounces;
  const AnnounceResult result =
      catalog_->announce(frame.catalogEntry, nowSeconds);
  Frame ack;
  ack.kind = FrameKind::kCatalogAck;
  ack.catalogEntry.generation = result.generation;
  ack.catalogTtlSeconds = result.accepted ? result.ttlSeconds : 0.0;
  server_->send(connection, encodeFrame(ack));
}

void Aggregator::poll(double nowSeconds) {
  ZS_TRACE_SCOPE("zs.agg.daemon.poll");
  // Liveness deadlines (staleness sweep, catalog expiry) only compare
  // against a non-decreasing clock: an owner whose wall clock steps
  // backwards (NTP) is clamped and counted instead of mass-flagging
  // every source stale later (or resurrecting expired state).
  if (nowSeconds < lastPollSeconds_) {
    ++counters_.clockRegressions;
    nowSeconds = lastPollSeconds_;
  }
  lastPollSeconds_ = nowSeconds;
  for (auto& delivery : server_->poll()) {
    auto& conn = connections_[delivery.connection];
    if (!delivery.bytes.empty()) {
      conn.reader.feed(delivery.bytes);
      try {
        Frame frame;
        while (conn.reader.next(frame)) {
          handleFrame(delivery.connection, conn, frame, nowSeconds);
        }
      } catch (const Error& e) {
        // Malformed bytes poison the whole connection (framing is lost);
        // count it and cut the source off rather than guessing.
        ++counters_.decodeErrors;
        log::warn() << "aggregator: dropping connection "
                    << delivery.connection << ": " << e.what();
        server_->disconnect(delivery.connection);
        connections_.erase(delivery.connection);
        continue;
      }
    }
    if (delivery.closed) {
      connections_.erase(delivery.connection);
    }
  }

  // Drain admitted batches within this poll's budget — and stop early
  // when the writer is full, so a slow disk converts into admission
  // depth (pressure) instead of inline stalls.
  std::size_t processed = 0;
  while (!pending_.empty()) {
    if (options_.maxBatchesPerPoll > 0 &&
        processed >= options_.maxBatchesPerPoll) {
      break;
    }
    if (writer_ != nullptr && !writer_->hasSpace()) {
      break;
    }
    PendingBatch batch = std::move(pending_.front());
    pending_.pop_front();
    processBatch(batch, nowSeconds);
    ++processed;
  }
  counters_.batchesDeferred += pending_.size();
  if (writer_ != nullptr) {
    writer_->pump();  // sync mode; no-op when threaded
  }
  flushAcks(nowSeconds);
  gaugePressure_->set(double(static_cast<std::uint8_t>(pressure())));
  gaugeBacklog_->set(double(ingestBacklog()));

  // Staleness sweep: a silent source is flagged and its series evicted —
  // the store serves live dashboards, not archaeology.
  for (auto& [key, info] : sources_) {
    if (info.state != SourceState::kActive) {
      continue;
    }
    if (nowSeconds - info.lastSeenSeconds > store_.options().staleSeconds) {
      ZS_TRACE_INSTANT("zs.agg.daemon.evict_stale");
      info.state = SourceState::kStale;
      ++counters_.sourcesEvicted;
      ctrSourcesEvicted_->add();
      store_.evictSource(key.first, key.second);
    }
  }

  if (catalog_ != nullptr) {
    catalog_->expire(nowSeconds);
  }

  if (engine_ != nullptr && writer_ == nullptr) {
    engine_->maybeCompact();
  }
}

void Aggregator::drainBacklog(double nowSeconds) {
  while (!pending_.empty()) {
    if (writer_ != nullptr && !writer_->hasSpace()) {
      writer_->flush();
    }
    PendingBatch batch = std::move(pending_.front());
    pending_.pop_front();
    processBatch(batch, nowSeconds);
  }
  if (writer_ != nullptr) {
    writer_->flush();
  }
  flushAcks(nowSeconds);
}

std::vector<SourceInfo> Aggregator::sources() const {
  std::vector<SourceInfo> out;
  out.reserve(sources_.size());
  for (const auto& [key, info] : sources_) {
    out.push_back(info);
  }
  return out;
}

std::map<int, std::size_t> Aggregator::sourcesByHop() const {
  std::map<int, std::size_t> out;
  for (const auto& [key, info] : sources_) {
    ++out[info.hops];
  }
  return out;
}

bool Aggregator::allDeparted() const {
  if (sources_.empty()) {
    return false;
  }
  return std::all_of(sources_.begin(), sources_.end(), [](const auto& kv) {
    return kv.second.state == SourceState::kDeparted;
  });
}

std::vector<int> Aggregator::missingRanks(const std::string& job) const {
  std::vector<int> missing;
  const auto it = expectedRanks_.find(job);
  if (it == expectedRanks_.end()) {
    return missing;
  }
  std::set<int> seen;
  for (const auto& [key, info] : sources_) {
    if (key.first == job) {
      seen.insert(key.second);
    }
  }
  for (int rank = 0; rank < it->second; ++rank) {
    if (seen.count(rank) == 0) {
      missing.push_back(rank);
    }
  }
  return missing;
}

std::string Aggregator::dashboard(double nowSeconds) const {
  std::ostringstream out;
  out << "Aggregator dashboard: " << sources_.size() << " source(s), "
      << store_.seriesCount() << " series, "
      << counters_.recordsIngested << " records ingested, t="
      << strings::fixed(nowSeconds, 1) << "s"
      << " pressure=" << pressureLevelName(pressure()) << "\n";
  const auto byHop = sourcesByHop();
  if (byHop.size() > 1 || (!byHop.empty() && byHop.begin()->first > 0)) {
    out << "fan-in:";
    bool firstHop = true;
    for (const auto& [hops, count] : byHop) {
      out << (firstHop ? " " : ", ") << count;
      if (hops == 0) {
        out << " direct";
      } else {
        out << " via " << hops << " hop" << (hops == 1 ? "" : "s");
      }
      firstHop = false;
    }
    out << '\n';
  }
  // Per-stage batch latency attribution (DESIGN.md §10), mean/p99 in ms.
  const std::pair<const char*, trace::LatencyHistogram*> stages[] = {
      {"enqueue->send", latEnqueueToSend_},
      {"send->ingest", latSendToIngest_},
      {"ingest->durable", latIngestToDurable_},
      {"roundtrip", latRoundtrip_},
  };
  bool anyLatency = false;
  std::ostringstream latencyLine;
  for (const auto& [label, hist] : stages) {
    const trace::LatencyStats stats = hist->stats();
    if (stats.count == 0) continue;
    if (anyLatency) latencyLine << "  ";
    latencyLine << label << " mean=" << strings::fixed(stats.mean() * 1e3, 3)
                << "ms p99=" << strings::fixed(stats.quantile(0.99) * 1e3, 3)
                << "ms";
    anyLatency = true;
  }
  if (anyLatency) {
    out << "batch latency: " << latencyLine.str() << "\n";
  }
  std::string lastJob;
  for (const auto& [key, info] : sources_) {
    if (key.first != lastJob) {
      lastJob = key.first;
      out << "=== job " << (lastJob.empty() ? "(default)" : lastJob)
          << " ===\n";
      out << strings::padRight("rank", 6) << strings::padRight("node", 14)
          << strings::padRight("state", 10)
          << strings::padLeft("last seen", 11)
          << strings::padLeft("records", 10)
          << strings::padLeft("cpu avg%", 10)
          << strings::padLeft("degraded", 10)
          << strings::padLeft("quarant.", 10) << '\n';
    }
    // Per-rank utilization: mean of the newest coarse windows of every
    // hwt.*.user_pct series this rank reports (the Figure-7 view rolled
    // up to one number).
    double cpuSum = 0.0;
    int cpuCount = 0;
    for (const auto& seriesKey : store_.keysOf(key.first, key.second)) {
      if (seriesKey.metric.rfind("hwt.", 0) == 0 &&
          seriesKey.metric.size() > 9 &&
          seriesKey.metric.compare(seriesKey.metric.size() - 9, 9,
                                   ".user_pct") == 0) {
        const auto latest = store_.latest(seriesKey, Resolution::kCoarse);
        if (latest) {
          cpuSum += latest->rollup.avg();
          ++cpuCount;
        }
      }
    }
    out << strings::padRight(std::to_string(key.second), 6)
        << strings::padRight(info.hello.hostname, 14)
        << strings::padRight(sourceStateName(info.state), 10)
        << strings::padLeft(strings::fixed(info.lastSeenSeconds, 1), 11)
        << strings::padLeft(std::to_string(info.records), 10)
        << strings::padLeft(
               cpuCount > 0 ? strings::fixed(cpuSum / cpuCount, 1) : "-", 10)
        << strings::padLeft(std::to_string(info.health.samplesDegraded), 10)
        << strings::padLeft(std::to_string(info.health.quarantined), 10)
        << '\n';
  }
  // Pathology findings across ranks (stale and missing).
  bool findings = false;
  for (const auto& [key, info] : sources_) {
    if (info.state == SourceState::kStale) {
      out << "finding: rank " << key.second << " of job '" << key.first
          << "' is stale (last seen t="
          << strings::fixed(info.lastSeenSeconds, 1) << "s)\n";
      findings = true;
    }
  }
  for (const auto& [job, expected] : expectedRanks_) {
    const auto missing = missingRanks(job);
    if (!missing.empty()) {
      out << "finding: job '" << job << "' expected " << expected
          << " rank(s); never heard from:";
      for (const int rank : missing) {
        out << ' ' << rank;
      }
      out << '\n';
      findings = true;
    }
  }
  if (!findings) {
    out << "no cross-rank pathologies detected\n";
  }
  return out.str();
}

std::string Aggregator::query(const std::string& requestJson) const {
  if (writer_ != nullptr && writer_->threaded()) {
    // The worker thread appends to the engine; serialize query-path
    // reads against it (the engine is single-owner by contract).
    std::lock_guard<std::mutex> lock(writer_->engineMutex());
    return runQuery(*this, requestJson);
  }
  return runQuery(*this, requestJson);
}

}  // namespace zerosum::aggregator
