// Aggregator: the daemon core behind `zerosum-aggd` (cctools
// catalog-server style).  Owns a TransportServer and a RollupStore;
// poll() drains the transport, decodes frames, binds connections to
// sources via their Hello, merges batches into the store, answers
// queries, and evicts sources that stop reporting.  Single-threaded by
// design: the owner drives poll() from its event loop (the tool's main
// loop, a test, or the lockstep cluster simulation).
//
// Overload handling (wire v2): control frames — Hello, Health,
// Heartbeat, Goodbye, Query — are processed the moment they decode, so
// liveness and findings always win over bulk data.  kBatch frames pass
// through a bounded admission queue drained by a per-poll budget; when
// the queue (or the tsdb writer behind it) fills, batches wait and the
// daemon's PressureLevel rises — clients see it in every kBatchAck and
// coarsen instead of flooding.  Admission overflow processes the oldest
// batch inline (a backstop, counted) — the daemon itself never drops an
// admitted batch.  Acks are sent only after a batch's records are
// durable (inline engine append, or past the TsdbWriter's written
// frontier), so "acked" always means "survives a crash".
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/store.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "trace/metrics.hpp"
#include "tsdb/wal.hpp"

namespace zerosum::tsdb {
class Engine;
}

namespace zerosum::aggregator {

class TsdbWriter;
class Catalog;
class QueryService;

enum class SourceState : std::uint8_t {
  kActive,    ///< reporting normally
  kStale,     ///< silent past the staleness horizon (Table-1 pathology
              ///< visible across ranks: a wedged or dead rank)
  kDeparted,  ///< said goodbye (orderly exit)
};

const char* sourceStateName(SourceState state);

/// Registry entry for one (job, rank) source.
struct SourceInfo {
  Hello hello;
  SourceState state = SourceState::kActive;
  double firstSeenSeconds = 0.0;
  double lastSeenSeconds = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t records = 0;
  HealthUpdate health;
  /// Hops between the source and this daemon: 0 = connected directly,
  /// 1+ = learned from a kForward frame that far down the tree.
  std::uint8_t hops = 0;
};

struct DaemonOptions {
  /// Admission queue bound, in batches.  Overflow processes the oldest
  /// inline (never drops).
  std::size_t maxPendingBatches = 1024;
  /// Batches processed per poll; 0 = unlimited (drain everything).
  std::size_t maxBatchesPerPoll = 0;
  /// Pressure thresholds over max(admission, writer) queue occupancy.
  double elevatedQueueFraction = 0.5;
  double overloadedQueueFraction = 0.9;
};

struct DaemonCounters {
  std::uint64_t framesIngested = 0;
  std::uint64_t batchesIngested = 0;
  std::uint64_t recordsIngested = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t decodeErrors = 0;   ///< connections dropped for bad bytes
  std::uint64_t orphanFrames = 0;   ///< data frames before any Hello
  std::uint64_t sourcesEvicted = 0; ///< stale sources purged from the store
  std::uint64_t queriesServed = 0;
  std::uint64_t acksSent = 0;           ///< kBatchAck frames (v2 clients)
  std::uint64_t batchesDeferred = 0;    ///< batch-polls spent waiting in
                                        ///< the admission queue
  std::uint64_t admissionBackstops = 0; ///< overflow: oldest forced inline
  std::uint64_t writerBypasses = 0;     ///< writer full: inline append
  std::uint64_t forwardFrames = 0;      ///< kForward frames ingested
  std::uint64_t forwardWindows = 0;     ///< windows applied from kForward
  std::uint64_t forwardConflicts = 0;   ///< forwarded snapshots not newer
                                        ///< than the stored window
  std::uint64_t catalogAnnounces = 0;   ///< kCatalogAnnounce handled
  std::uint64_t clockRegressions = 0;   ///< poll() clock moved backwards
};

class Aggregator {
 public:
  Aggregator(std::unique_ptr<TransportServer> server,
             StoreOptions storeOptions = {}, DaemonOptions options = {});

  /// Drains the transport and advances staleness bookkeeping to
  /// `nowSeconds` (the owner's clock: virtual or wall).
  void poll(double nowSeconds);

  /// Attaches a persistence engine (non-owning; the caller keeps it
  /// alive past the daemon).  Every ingested batch is then WAL-logged
  /// before it becomes queryable, poll() drives incremental compaction,
  /// range/snapshot queries are answered from the engine (disk + hot
  /// windows — deeper history than the store's bounded retention), and
  /// the engine's recovered source registry seeds sources().  Recovered
  /// sources start kStale: they were alive once, but this daemon hasn't
  /// heard from them yet.
  void attachEngine(tsdb::Engine* engine);

  /// Routes engine appends through a bounded TsdbWriter instead of
  /// appending inline: a slow disk then raises pressure() instead of
  /// stalling poll().  Implies attachEngine(writer->engine()) for the
  /// query path; batch acks are gated on the writer's durable frontier.
  void attachWriter(TsdbWriter* writer);

  /// Hosts a catalog (non-owning): kCatalogAnnounce frames register with
  /// it (answered by kCatalogAck) and {"op":"catalog"} queries list it.
  /// Conventionally only the federation root attaches one.
  void attachCatalog(Catalog* catalog) { catalog_ = catalog; }
  [[nodiscard]] const Catalog* catalog() const { return catalog_; }

  /// Attaches the read plane (non-owning): every directly ingested
  /// record is then folded into the service's downsample ladders as it
  /// lands (DESIGN.md §12).  Forwarded windows (kForward) bypass the
  /// hook — the service falls back to its snapshot for those series.
  void attachQueryService(QueryService* service) { queryService_ = service; }
  [[nodiscard]] QueryService* queryService() const { return queryService_; }

  [[nodiscard]] const tsdb::Engine* engine() const { return engine_; }

  [[nodiscard]] const RollupStore& store() const { return store_; }
  /// Mutable store access for a co-located Forwarder (dirty-window
  /// drain, resync marking).  Not for general use.
  [[nodiscard]] RollupStore& mutableStore() { return store_; }
  [[nodiscard]] const DaemonCounters& counters() const { return counters_; }

  /// Current backpressure signal, echoed to v2 clients in every ack.
  [[nodiscard]] PressureLevel pressure() const;

  /// Batches admitted but not yet durably processed (admission queue +
  /// writer queue).  The orderly-shutdown loop drains this to zero.
  [[nodiscard]] std::size_t ingestBacklog() const;

  /// Processes the whole backlog and flushes the writer — every admitted
  /// batch is durable and acked afterwards.  Orderly-shutdown path.
  void drainBacklog(double nowSeconds);

  /// All known sources, ordered by (job, rank).
  [[nodiscard]] std::vector<SourceInfo> sources() const;

  /// Source counts keyed by hop distance (0 = direct connections) — the
  /// /healthz and health-CSV fan-in view.
  [[nodiscard]] std::map<int, std::size_t> sourcesByHop() const;

  /// The clock poll() last ran at (after regression clamping).
  [[nodiscard]] double lastPollSeconds() const { return lastPollSeconds_; }

  /// True once at least one source was seen and every known source has
  /// departed — the `zerosum-aggd --exit-on-goodbye` condition.
  [[nodiscard]] bool allDeparted() const;

  /// Ranks expected (max worldSize announced) but never seen; the
  /// missing-rank half of the dashboard's pathology detection.
  [[nodiscard]] std::vector<int> missingRanks(const std::string& job) const;

  /// The live allocation dashboard: per-rank utilization, health, and
  /// stale/missing-rank findings.
  [[nodiscard]] std::string dashboard(double nowSeconds) const;

  /// Executes one JSON query against the store (see query.hpp) — also
  /// reachable over the wire via kQuery frames.
  [[nodiscard]] std::string query(const std::string& requestJson) const;

 private:
  struct ConnState {
    FrameReader reader;
    bool helloSeen = false;
    std::string job;
    int rank = 0;
    /// Highest wire version seen on this connection; acks only go to
    /// connections that have spoken v2.
    std::uint8_t version = kMinWireVersion;
    /// Client-to-daemon clock offset estimate: the running minimum of
    /// (daemon now at decode - batch encodeSeconds).  The minimum over
    /// many batches converges on (clock epoch delta + fastest transit),
    /// so one-way send->ingest latency is computable even though the two
    /// processes count seconds from different origins.  Starts unset.
    double minClockOffset = 0.0;
    bool offsetKnown = false;
  };

  /// A kBatch admitted for deferred processing.  Captures the source
  /// binding at decode time so the batch still lands if the connection
  /// closes before it is processed (lossless).
  struct PendingBatch {
    std::uint64_t connection = 0;
    std::uint8_t version = kMinWireVersion;
    std::string job;
    int rank = 0;
    double admittedAt = 0.0;
    /// Connection clock-offset estimate captured at admission (the
    /// connection may be gone by the time the batch is processed).
    double clockOffset = 0.0;
    bool hasStamps = false;  ///< v3 batch with latency stamps
    Frame frame;
  };

  /// A batch ack waiting for its records to become durable.
  struct PendingAck {
    std::uint64_t connection = 0;
    std::uint64_t batchSeq = 0;
    std::uint64_t ticket = 0;   ///< writer ticket; 0 = already durable
    double ingestAt = 0.0;      ///< when processBatch ran (daemon clock)
  };

  void handleFrame(std::uint64_t connection, ConnState& conn, Frame& frame,
                   double nowSeconds);
  void admitBatch(std::uint64_t connection, ConnState& conn, Frame&& frame,
                  double nowSeconds);
  void processBatch(PendingBatch& batch, double nowSeconds);
  /// Applies one admitted kForward frame: source registry upserts, then
  /// ingestWindow() per carried window (conflicts counted, never fatal).
  void processForward(PendingBatch& batch, double nowSeconds);
  void handleCatalogAnnounce(std::uint64_t connection, const Frame& frame,
                             double nowSeconds);
  void sendAck(std::uint64_t connection, std::uint64_t batchSeq);
  /// Sends every pending ack whose records are past the durable frontier.
  void flushAcks(double nowSeconds);
  SourceInfo* sourceOf(const std::string& job, int rank);
  void persistSource(const std::pair<std::string, int>& key,
                     const SourceInfo& info);

  std::unique_ptr<TransportServer> server_;
  tsdb::Engine* engine_ = nullptr;
  TsdbWriter* writer_ = nullptr;
  Catalog* catalog_ = nullptr;
  QueryService* queryService_ = nullptr;
  /// Deepest hop count seen on any kForward frame (drives the fan-in
  /// depth gauge).
  std::uint8_t maxHopsSeen_ = 0;
  /// poll()'s clamped clock: liveness deadlines only ever compare
  /// against a non-decreasing time base, so an owner whose wall clock
  /// steps backwards (NTP) cannot mass-expire sources.
  double lastPollSeconds_ = 0.0;
  RollupStore store_;
  DaemonOptions options_;
  DaemonCounters counters_;
  std::map<std::uint64_t, ConnState> connections_;
  std::deque<PendingBatch> pending_;
  std::deque<PendingAck> pendingAcks_;
  /// Per-source ingest cache: interned metric name -> resolved store
  /// series.  Keyed by (job, rank) — not per connection — so deferred
  /// batches and reconnecting clients reuse the resolved refs; one
  /// intern lookup per record instead of hashing and comparing the
  /// (job, rank, metric) strings.
  std::map<std::pair<std::string, int>, std::map<names::Id, RollupStore::SeriesRef>>
      seriesRefs_;
  /// Ingest scratch, reused every batch (strings keep their capacity).
  SeriesKey keyScratch_;
  std::vector<tsdb::Sample> samplesScratch_;
  /// (job, rank) -> registry entry.
  std::map<std::pair<std::string, int>, SourceInfo> sources_;
  /// Highest worldSize announced per job (missing-rank detection).
  std::map<std::string, int> expectedRanks_;

  // --- latency attribution + live gauges (per instance: tests reset the
  // registry between cases, so no static handles) ---------------------------
  trace::LatencyHistogram* latEnqueueToSend_ = nullptr;
  trace::LatencyHistogram* latSendToIngest_ = nullptr;
  trace::LatencyHistogram* latIngestToDurable_ = nullptr;
  trace::LatencyHistogram* latRoundtrip_ = nullptr;
  trace::Gauge* gaugePressure_ = nullptr;
  trace::Gauge* gaugeBacklog_ = nullptr;
  trace::Counter* ctrRecordsIngested_ = nullptr;
  trace::Counter* ctrSourcesEvicted_ = nullptr;
  // Federation health (zs.aggd.fanin.*): receiver-side counters; the
  // sender-side twins live on the Forwarder.
  trace::Counter* ctrFaninFrames_ = nullptr;
  trace::Counter* ctrFaninWindows_ = nullptr;
  trace::Counter* ctrFaninConflicts_ = nullptr;
  trace::Gauge* gaugeFaninMaxHops_ = nullptr;
};

}  // namespace zerosum::aggregator
