// Aggregator: the daemon core behind `zerosum-aggd` (cctools
// catalog-server style).  Owns a TransportServer and a RollupStore;
// poll() drains the transport, decodes frames, binds connections to
// sources via their Hello, merges batches into the store, answers
// queries, and evicts sources that stop reporting.  Single-threaded by
// design: the owner drives poll() from its event loop (the tool's main
// loop, a test, or the lockstep cluster simulation).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/store.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "tsdb/wal.hpp"

namespace zerosum::tsdb {
class Engine;
}

namespace zerosum::aggregator {

enum class SourceState : std::uint8_t {
  kActive,    ///< reporting normally
  kStale,     ///< silent past the staleness horizon (Table-1 pathology
              ///< visible across ranks: a wedged or dead rank)
  kDeparted,  ///< said goodbye (orderly exit)
};

const char* sourceStateName(SourceState state);

/// Registry entry for one (job, rank) source.
struct SourceInfo {
  Hello hello;
  SourceState state = SourceState::kActive;
  double firstSeenSeconds = 0.0;
  double lastSeenSeconds = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t records = 0;
  HealthUpdate health;
};

struct DaemonCounters {
  std::uint64_t framesIngested = 0;
  std::uint64_t batchesIngested = 0;
  std::uint64_t recordsIngested = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t decodeErrors = 0;   ///< connections dropped for bad bytes
  std::uint64_t orphanFrames = 0;   ///< data frames before any Hello
  std::uint64_t sourcesEvicted = 0; ///< stale sources purged from the store
  std::uint64_t queriesServed = 0;
};

class Aggregator {
 public:
  Aggregator(std::unique_ptr<TransportServer> server,
             StoreOptions storeOptions = {});

  /// Drains the transport and advances staleness bookkeeping to
  /// `nowSeconds` (the owner's clock: virtual or wall).
  void poll(double nowSeconds);

  /// Attaches a persistence engine (non-owning; the caller keeps it
  /// alive past the daemon).  Every ingested batch is then WAL-logged
  /// before it becomes queryable, poll() drives incremental compaction,
  /// range/snapshot queries are answered from the engine (disk + hot
  /// windows — deeper history than the store's bounded retention), and
  /// the engine's recovered source registry seeds sources().  Recovered
  /// sources start kStale: they were alive once, but this daemon hasn't
  /// heard from them yet.
  void attachEngine(tsdb::Engine* engine);
  [[nodiscard]] const tsdb::Engine* engine() const { return engine_; }

  [[nodiscard]] const RollupStore& store() const { return store_; }
  [[nodiscard]] const DaemonCounters& counters() const { return counters_; }

  /// All known sources, ordered by (job, rank).
  [[nodiscard]] std::vector<SourceInfo> sources() const;

  /// True once at least one source was seen and every known source has
  /// departed — the `zerosum-aggd --exit-on-goodbye` condition.
  [[nodiscard]] bool allDeparted() const;

  /// Ranks expected (max worldSize announced) but never seen; the
  /// missing-rank half of the dashboard's pathology detection.
  [[nodiscard]] std::vector<int> missingRanks(const std::string& job) const;

  /// The live allocation dashboard: per-rank utilization, health, and
  /// stale/missing-rank findings.
  [[nodiscard]] std::string dashboard(double nowSeconds) const;

  /// Executes one JSON query against the store (see query.hpp) — also
  /// reachable over the wire via kQuery frames.
  [[nodiscard]] std::string query(const std::string& requestJson) const;

 private:
  struct ConnState {
    FrameReader reader;
    bool helloSeen = false;
    std::string job;
    int rank = 0;
    /// Per-connection ingest cache: interned metric name -> resolved
    /// store series.  A connection is bound to one (job, rank), so the
    /// metric id alone identifies the series; steady-state ingest does
    /// one intern lookup per record instead of hashing and comparing
    /// the (job, rank, metric) strings.
    std::map<names::Id, RollupStore::SeriesRef> seriesRefs;
  };

  void handleFrame(std::uint64_t connection, ConnState& conn,
                   const Frame& frame, double nowSeconds);
  SourceInfo* sourceOf(const std::string& job, int rank);
  void persistSource(const std::pair<std::string, int>& key,
                     const SourceInfo& info);

  std::unique_ptr<TransportServer> server_;
  tsdb::Engine* engine_ = nullptr;
  RollupStore store_;
  DaemonCounters counters_;
  std::map<std::uint64_t, ConnState> connections_;
  /// Ingest scratch, reused every batch (strings keep their capacity).
  SeriesKey keyScratch_;
  std::vector<tsdb::Sample> samplesScratch_;
  /// (job, rank) -> registry entry.
  std::map<std::pair<std::string, int>, SourceInfo> sources_;
  /// Highest worldSize announced per job (missing-rank detection).
  std::map<std::string, int> expectedRanks_;
};

}  // namespace zerosum::aggregator
