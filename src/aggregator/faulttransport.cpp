#include "aggregator/faulttransport.hpp"

#include <algorithm>
#include <cctype>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::aggregator {

namespace {

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<TransportFaultSite> siteFromName(const std::string& name) {
  for (const TransportFaultSite site : kAllTransportFaultSites) {
    if (name == transportFaultSiteName(site)) {
      return site;
    }
  }
  return std::nullopt;
}

std::optional<TransportFaultKind> kindFromName(const std::string& name) {
  if (name == "fail") {
    return TransportFaultKind::kFail;
  }
  if (name == "disconnect") {
    return TransportFaultKind::kDisconnect;
  }
  if (name == "timeout") {
    return TransportFaultKind::kTimeout;
  }
  if (name == "partial") {
    return TransportFaultKind::kPartial;
  }
  if (name == "short") {
    return TransportFaultKind::kShort;
  }
  if (name == "delay") {
    return TransportFaultKind::kDelay;
  }
  return std::nullopt;
}

std::size_t siteIndex(TransportFaultSite site) {
  return static_cast<std::size_t>(site);
}

}  // namespace

std::string transportFaultSiteName(TransportFaultSite site) {
  switch (site) {
    case TransportFaultSite::kConnect:
      return "connect";
    case TransportFaultSite::kSend:
      return "send";
    case TransportFaultSite::kReceive:
      return "recv";
  }
  return "unknown";
}

std::string transportFaultKindName(TransportFaultKind kind) {
  switch (kind) {
    case TransportFaultKind::kFail:
      return "fail";
    case TransportFaultKind::kDisconnect:
      return "disconnect";
    case TransportFaultKind::kTimeout:
      return "timeout";
    case TransportFaultKind::kPartial:
      return "partial";
    case TransportFaultKind::kShort:
      return "short";
    case TransportFaultKind::kDelay:
      return "delay";
  }
  return "unknown";
}

std::vector<TransportFaultRule> parseTransportFaultSpec(
    const std::string& spec) {
  std::vector<TransportFaultRule> rules;
  for (const auto& rawElement : strings::split(spec, ',')) {
    const std::string element = strings::trim(rawElement);
    if (element.empty()) {
      continue;
    }
    const auto colon = element.find(':');
    const auto at = element.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      throw ConfigError("transport fault spec element '" + element +
                        "' is not site:kind@schedule");
    }
    TransportFaultRule rule;
    const std::string siteName = toLower(element.substr(0, colon));
    const auto site = siteFromName(siteName);
    if (!site) {
      throw ConfigError("unknown transport fault site '" + siteName +
                        "' in '" + element + "'");
    }
    rule.site = *site;
    const std::string kindName =
        toLower(element.substr(colon + 1, at - colon - 1));
    const auto kind = kindFromName(kindName);
    if (!kind) {
      throw ConfigError("unknown transport fault kind '" + kindName +
                        "' in '" + element + "'");
    }
    rule.kind = *kind;

    const std::string schedule = element.substr(at + 1);
    const auto dots = schedule.find("..");
    if (dots == std::string::npos) {
      const auto call = strings::toU64(schedule);
      if (!call || *call == 0) {
        throw ConfigError("bad transport fault call index '" + schedule +
                          "' in '" + element + "'");
      }
      rule.firstCall = *call;
      rule.lastCall = *call;
    } else {
      const auto first = strings::toU64(schedule.substr(0, dots));
      if (!first || *first == 0) {
        throw ConfigError("bad transport fault window start in '" + element +
                          "'");
      }
      rule.firstCall = *first;
      const std::string rest = schedule.substr(dots + 2);
      if (rest.empty()) {
        rule.lastCall = std::nullopt;  // sticky
      } else {
        const auto last = strings::toU64(rest);
        if (!last || *last < rule.firstCall) {
          throw ConfigError("bad transport fault window end in '" + element +
                            "'");
        }
        rule.lastCall = *last;
      }
    }
    // Kind/site compatibility: a nonsense combination in a chaos
    // schedule should fail loudly, not silently no-op.
    const bool sendOnly = rule.kind == TransportFaultKind::kPartial ||
                          rule.kind == TransportFaultKind::kDelay;
    if (sendOnly && rule.site != TransportFaultSite::kSend) {
      throw ConfigError("transport fault kind '" +
                        transportFaultKindName(rule.kind) +
                        "' applies only to send in '" + element + "'");
    }
    if (rule.kind == TransportFaultKind::kShort &&
        rule.site != TransportFaultSite::kReceive) {
      throw ConfigError("transport fault kind 'short' applies only to recv "
                        "in '" + element + "'");
    }
    rules.push_back(rule);
  }
  return rules;
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, std::vector<TransportFaultRule> rules,
    std::uint64_t seed)
    : inner_(std::move(inner)), rules_(std::move(rules)), seed_(seed) {
  if (!inner_) {
    throw ConfigError("FaultInjectingTransport requires an inner transport");
  }
}

void FaultInjectingTransport::addRule(TransportFaultRule rule) {
  rules_.push_back(rule);
}

std::uint64_t FaultInjectingTransport::callCount(
    TransportFaultSite site) const {
  return calls_[siteIndex(site)];
}

std::uint64_t FaultInjectingTransport::injectedCount(
    TransportFaultSite site) const {
  return injected_[siteIndex(site)];
}

std::uint64_t FaultInjectingTransport::totalInjected() const {
  std::uint64_t total = 0;
  for (const TransportFaultSite site : kAllTransportFaultSites) {
    total += injected_[siteIndex(site)];
  }
  return total;
}

std::optional<TransportFaultKind> FaultInjectingTransport::nextFault(
    TransportFaultSite site) {
  const std::uint64_t call = ++calls_[siteIndex(site)];
  for (const TransportFaultRule& rule : rules_) {
    if (rule.site == site && rule.covers(call)) {
      ++injected_[siteIndex(site)];
      return rule.kind;
    }
  }
  return std::nullopt;
}

bool FaultInjectingTransport::connect() {
  const auto fault = nextFault(TransportFaultSite::kConnect);
  if (fault) {
    // All connect faults observable to the client are the same: the
    // connection does not come up (kTimeout models the hung variant —
    // same outcome, after the client's configured timeout budget).
    return false;
  }
  return inner_->connect();
}

bool FaultInjectingTransport::connected() const { return inner_->connected(); }

bool FaultInjectingTransport::send(const std::string& bytes) {
  const auto fault = nextFault(TransportFaultSite::kSend);
  if (!fault) {
    if (!delayed_.empty()) {
      // A previously delayed payload finally reaches the wire, in order,
      // ahead of this send's bytes.
      const bool ok = inner_->send(delayed_ + bytes);
      delayed_.clear();
      return ok;
    }
    return inner_->send(bytes);
  }
  switch (*fault) {
    case TransportFaultKind::kFail:
    case TransportFaultKind::kTimeout:
      return false;
    case TransportFaultKind::kDisconnect:
      inner_->close();
      return false;
    case TransportFaultKind::kPartial: {
      // The daemon sees a torn frame: half the bytes arrive, then the
      // connection dies.  Its FrameReader must hold the prefix without
      // decoding garbage, and the close must drop the partial state.
      inner_->send(bytes.substr(0, bytes.size() / 2));
      inner_->close();
      return false;
    }
    case TransportFaultKind::kDelay:
      // The bytes are not lost, just late: the send "succeeds" from the
      // caller's view and the payload rides in front of the next send.
      delayed_ += bytes;
      return true;
    case TransportFaultKind::kShort:
      return false;  // parse guards against short@send; defensive
  }
  return false;
}

bool FaultInjectingTransport::receive(std::string& out) {
  const auto fault = nextFault(TransportFaultSite::kReceive);
  if (!fault) {
    if (!holdback_.empty()) {
      out += holdback_;
      holdback_.clear();
    }
    return inner_->receive(out);
  }
  switch (*fault) {
    case TransportFaultKind::kShort: {
      // Deliver half of what is available; the remainder waits for the
      // next receive — a fragmented read the FrameReader must reassemble.
      std::string chunk;
      const bool ok = inner_->receive(chunk);
      chunk = holdback_ + chunk;
      holdback_.clear();
      const std::size_t half = chunk.size() / 2;
      out += chunk.substr(0, half);
      holdback_ = chunk.substr(half);
      return ok;
    }
    case TransportFaultKind::kFail:
    case TransportFaultKind::kTimeout:
      return true;  // nothing arrives this call; connection stays up
    case TransportFaultKind::kDisconnect:
      inner_->close();
      return false;
    case TransportFaultKind::kPartial:
    case TransportFaultKind::kDelay:
      return true;  // parse guards against these at recv; defensive
  }
  return true;
}

void FaultInjectingTransport::close() {
  delayed_.clear();
  holdback_.clear();
  inner_->close();
}

std::unique_ptr<Transport> wrapTransportFaultsFromEnv(
    std::unique_ptr<Transport> inner) {
  const std::string spec = env::getString("ZS_AGG_FAULT_SPEC", "");
  if (spec.empty()) {
    return inner;
  }
  const auto seed =
      static_cast<std::uint64_t>(env::getInt("ZS_AGG_FAULT_SEED", 1));
  return std::make_unique<FaultInjectingTransport>(
      std::move(inner), parseTransportFaultSpec(spec), seed);
}

}  // namespace zerosum::aggregator
