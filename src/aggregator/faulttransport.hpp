// FaultInjectingTransport: a Transport decorator that injects
// deterministic, seeded faults at the client->daemon byte-pipe edge —
// the transport-layer sibling of procfs::FaultInjectingProcFs.
//
// The aggregation client must survive everything a network can do to
// it: a daemon that dies mid-stream, a link that flaps, a send that
// delivers half a frame before the peer vanishes, a connect that hangs
// until a timeout.  This decorator manufactures those failures on a
// reproducible schedule so the degradation/backpressure machinery can
// be chaos-tested end to end (and exercised in live runs via
// ZS_AGG_FAULT_SPEC — a separate variable from ZS_FAULT_SPEC, whose
// site names belong to procfs).
//
// A schedule is a list of rules; each names a call site, a fault kind,
// and a window of 1-based call indices at that site:
//   send:disconnect@5        one-shot: the 5th send fails and closes
//   connect:fail@1..3        windowed: the first three connects fail
//   recv:short@4..           sticky: every receive from the 4th on is split
// Grammar and window semantics mirror procfs::parseFaultSpec exactly.
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aggregator/transport.hpp"

namespace zerosum::aggregator {

/// The observable call sites of a Transport.
enum class TransportFaultSite {
  kConnect,  // connect()   "connect"
  kSend,     // send()      "send"
  kReceive,  // receive()   "recv"
};

inline constexpr TransportFaultSite kAllTransportFaultSites[] = {
    TransportFaultSite::kConnect,
    TransportFaultSite::kSend,
    TransportFaultSite::kReceive,
};

enum class TransportFaultKind {
  kFail,        // "fail": the call reports failure; connection unchanged
  kDisconnect,  // "disconnect": the call fails and the connection closes
  kTimeout,     // "timeout": connect/send behaves like a hung peer that
                //            timed out (fails without closing the inner
                //            transport's listener-side state)
  kPartial,     // "partial": send delivers the first half of the bytes,
                //            then the connection closes (a torn frame on
                //            the daemon's side)
  kShort,       // "short": receive returns only half the available bytes
                //          now; the rest arrives on the next call
  kDelay,       // "delay": send buffers the bytes; they are delivered in
                //          front of a later send's bytes
};

[[nodiscard]] std::string transportFaultSiteName(TransportFaultSite site);
[[nodiscard]] std::string transportFaultKindName(TransportFaultKind kind);

struct TransportFaultRule {
  TransportFaultSite site = TransportFaultSite::kSend;
  TransportFaultKind kind = TransportFaultKind::kDisconnect;
  /// 1-based call index at `site` where the fault first fires.
  std::uint64_t firstCall = 1;
  /// Last call covered; nullopt = sticky.  Defaults to firstCall
  /// (one-shot).
  std::optional<std::uint64_t> lastCall = 1;

  [[nodiscard]] bool covers(std::uint64_t call) const {
    return call >= firstCall && (!lastCall || call <= *lastCall);
  }
};

/// Parses a ZS_AGG_FAULT_SPEC-style string ("site:kind@N",
/// "site:kind@N..M", "site:kind@N.." joined by commas).  Names are
/// case-insensitive.  Throws ConfigError on any malformed element.
[[nodiscard]] std::vector<TransportFaultRule> parseTransportFaultSpec(
    const std::string& spec);

class FaultInjectingTransport final : public Transport {
 public:
  /// Wraps `inner`; `seed` keeps any randomized behavior reproducible.
  explicit FaultInjectingTransport(std::unique_ptr<Transport> inner,
                                   std::vector<TransportFaultRule> rules = {},
                                   std::uint64_t seed = 1);

  void addRule(TransportFaultRule rule);

  /// Calls observed at `site` so far (faulted or not).
  [[nodiscard]] std::uint64_t callCount(TransportFaultSite site) const;
  /// Faults actually injected at `site` so far.
  [[nodiscard]] std::uint64_t injectedCount(TransportFaultSite site) const;
  [[nodiscard]] std::uint64_t totalInjected() const;

  // --- Transport -----------------------------------------------------------
  bool connect() override;
  [[nodiscard]] bool connected() const override;
  bool send(const std::string& bytes) override;
  bool receive(std::string& out) override;
  void close() override;

 private:
  [[nodiscard]] std::optional<TransportFaultKind> nextFault(
      TransportFaultSite site);

  std::unique_ptr<Transport> inner_;
  std::vector<TransportFaultRule> rules_;
  std::uint64_t seed_;
  std::uint64_t calls_[std::size(kAllTransportFaultSites)] = {};
  std::uint64_t injected_[std::size(kAllTransportFaultSites)] = {};
  /// kDelay: bytes withheld from the wire until the next clean send.
  std::string delayed_;
  /// kShort: bytes withheld from the caller until the next receive.
  std::string holdback_;
};

/// Wraps `inner` with faults from ZS_AGG_FAULT_SPEC / ZS_AGG_FAULT_SEED;
/// returns `inner` unchanged when the spec is unset or empty.  Throws
/// ConfigError on a malformed spec.
[[nodiscard]] std::unique_ptr<Transport> wrapTransportFaultsFromEnv(
    std::unique_ptr<Transport> inner);

}  // namespace zerosum::aggregator
