#include "aggregator/federation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace zerosum::aggregator {

namespace {

/// FNV-1a 64-bit over a byte span.
std::uint64_t fnv1a(const char* data, std::size_t size,
                    std::uint64_t seed = 1469598103934665603ULL) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t seed) {
  return fnv1a(s.data(), s.size(), seed);
}

std::uint32_t fold(std::uint64_t h) {
  return static_cast<std::uint32_t>((h ^ (h >> 32)) % kShardSpace);
}

}  // namespace

std::uint32_t shardOfSeries(const SeriesKey& key) {
  std::uint64_t h = fnv1a(key.job, 1469598103934665603ULL);
  h = fnv1a("\0", 1, h);
  const std::int32_t rank = key.rank;
  h = fnv1a(reinterpret_cast<const char*>(&rank), sizeof(rank), h);
  h = fnv1a("\0", 1, h);
  h = fnv1a(key.metric, h);
  return fold(h);
}

HashRing::HashRing(std::vector<CatalogEntry> entries, int pointsPerEntry)
    : entries_(std::move(entries)) {
  points_.reserve(entries_.size() *
                  static_cast<std::size_t>(std::max(1, pointsPerEntry)));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (int p = 0; p < std::max(1, pointsPerEntry); ++p) {
      std::uint64_t h = fnv1a(entries_[i].name, 1469598103934665603ULL);
      h = fnv1a(reinterpret_cast<const char*>(&p), sizeof(p), h);
      points_.emplace_back(fold(h), i);
    }
  }
  std::sort(points_.begin(), points_.end());
}

const CatalogEntry* HashRing::route(std::uint32_t shard) const {
  if (points_.empty()) {
    return nullptr;
  }
  // First point clockwise from the shard whose entry covers the shard's
  // range; scan wraps at most once around the ring.
  auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(shard, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t scanned = 0; scanned < points_.size(); ++scanned, ++it) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    const CatalogEntry& entry = entries_[it->second];
    if (shard >= entry.shardLo && shard <= entry.shardHi) {
      return &entry;
    }
  }
  return nullptr;
}

bool HashRing::sameMembership(
    const std::vector<CatalogEntry>& entries) const {
  if (entries.size() != entries_.size()) {
    return false;
  }
  // Both sides are small (the upstream set); compare as sorted-by-name.
  auto sortedByName = [](std::vector<CatalogEntry> v) {
    std::sort(v.begin(), v.end(),
              [](const CatalogEntry& a, const CatalogEntry& b) {
                return a.name < b.name;
              });
    return v;
  };
  return sortedByName(entries) == sortedByName(entries_);
}

// --- Forwarder --------------------------------------------------------------

Forwarder::Forwarder(Aggregator& local, TransportFactory factory,
                     ForwarderOptions options)
    : local_(local), factory_(std::move(factory)), options_(options) {
  if (!factory_) {
    throw ConfigError("Forwarder requires a transport factory");
  }
  local_.mutableStore().enableDirtyTracking();
  auto& registry = trace::MetricsRegistry::instance();
  ctrForwardedBatches_ = &registry.counter("zs.aggd.fanin.forwarded_batches");
  ctrForwardedWindows_ = &registry.counter("zs.aggd.fanin.forwarded_windows");
  ctrResyncs_ = &registry.counter("zs.aggd.fanin.resyncs");
  ctrSuppressed_ = &registry.counter("zs.aggd.fanin.windows_suppressed");
  gaugeUpstreamPressure_ = &registry.gauge("zs.aggd.fanin.upstream_pressure");
}

void Forwarder::setUpstreams(const std::vector<CatalogEntry>& entries,
                             double nowSeconds) {
  if (ring_.sameMembership(entries)) {
    return;
  }
  ++counters_.membershipChanges;
  ring_ = HashRing(entries);
  // Keep links whose (name, generation) survived — their connection and
  // ack FIFO stay valid; everything else is torn down.
  std::vector<std::unique_ptr<Link>> kept;
  for (const CatalogEntry& entry : entries) {
    auto it = std::find_if(links_.begin(), links_.end(), [&](const auto& l) {
      return l && l->entry.name == entry.name &&
             l->entry.generation == entry.generation;
    });
    if (it != links_.end()) {
      (*it)->entry = entry;
      kept.push_back(std::move(*it));
    } else {
      auto link = std::make_unique<Link>();
      link->entry = entry;
      link->nextConnectAt = nowSeconds;
      kept.push_back(std::move(link));
    }
  }
  links_ = std::move(kept);
  // Membership moved series between upstreams: replay everything so the
  // new owners see every retained window (idempotent upstream — this is
  // the documented rebalancing rule).
  resync();
}

void Forwarder::resync() {
  ++counters_.resyncs;
  ctrResyncs_->add();
  local_.mutableStore().markAllDirty();
  for (auto& link : links_) {
    link->pending.clear();
  }
}

bool Forwarder::ensureConnected(Link& link, double nowSeconds) {
  if (link.transport != nullptr && link.transport->connected()) {
    return true;
  }
  if (nowSeconds < link.nextConnectAt) {
    return false;
  }
  if (link.transport == nullptr) {
    link.transport = factory_(link.entry);
    if (link.transport == nullptr) {
      link.nextConnectAt = nowSeconds + options_.reconnectBackoffCapSeconds;
      return false;
    }
  }
  if (!link.transport->connect()) {
    ++counters_.connectFailures;
    link.currentBackoff =
        link.currentBackoff == 0.0
            ? options_.reconnectBackoffSeconds
            : std::min(link.currentBackoff * 2.0,
                       options_.reconnectBackoffCapSeconds);
    link.nextConnectAt = nowSeconds + link.currentBackoff;
    return false;
  }
  link.currentBackoff = 0.0;
  link.reader = FrameReader();
  link.inflight.clear();
  link.lastSourceRefresh = -1.0;
  if (link.everConnected) {
    // The upstream may have restarted with an empty store: replay every
    // retained window (cumulative snapshots make this idempotent).
    ++counters_.reconnects;
    resync();
  }
  link.everConnected = true;
  return true;
}

void Forwarder::closeLink(Link& link, double nowSeconds) {
  if (link.transport != nullptr) {
    link.transport->close();
  }
  link.inflight.clear();
  link.currentBackoff = link.currentBackoff == 0.0
                            ? options_.reconnectBackoffSeconds
                            : std::min(link.currentBackoff * 2.0,
                                       options_.reconnectBackoffCapSeconds);
  link.nextConnectAt = nowSeconds + link.currentBackoff;
}

void Forwarder::processIncoming(Link& link, double nowSeconds) {
  if (link.transport == nullptr || !link.transport->connected()) {
    return;
  }
  link.recvScratch.clear();
  const bool open = link.transport->receive(link.recvScratch);
  if (!link.recvScratch.empty()) {
    link.reader.feed(link.recvScratch);
    try {
      Frame frame;
      while (link.reader.next(frame)) {
        if (frame.kind != FrameKind::kBatchAck) {
          continue;
        }
        ++counters_.acksReceived;
        link.pressure = frame.pressure;
        link.pressureAt = nowSeconds;
        if (frame.batchSeq != 0) {
          // Acks are cumulative in per-connection FIFO order.
          auto it = link.inflight.begin();
          while (it != link.inflight.end() && it->seq <= frame.batchSeq) {
            ++it;
          }
          link.inflight.erase(link.inflight.begin(), it);
        }
      }
    } catch (const Error& e) {
      log::warn() << "forwarder: dropping upstream '" << link.entry.name
                  << "': " << e.what();
      closeLink(link, nowSeconds);
      return;
    }
  }
  if (!open) {
    closeLink(link, nowSeconds);
  }
}

PressureLevel Forwarder::effectivePressure(const Link& link,
                                           double nowSeconds) const {
  if (link.pressureAt < 0.0 ||
      nowSeconds - link.pressureAt > options_.pressureStaleSeconds) {
    return PressureLevel::kOk;
  }
  return link.pressure;
}

void Forwarder::drainStore(double nowSeconds) {
  (void)nowSeconds;
  if (links_.empty() || ring_.empty()) {
    return;  // nowhere to route; leave the windows dirty in the store
  }
  for (;;) {
    drainScratch_.clear();
    const std::size_t got =
        local_.mutableStore().drainDirty(drainScratch_, 1024);
    if (got == 0) {
      break;
    }
    for (DirtyWindow& w : drainScratch_) {
      const CatalogEntry* entry = ring_.route(shardOfSeries(w.key));
      if (entry == nullptr) {
        ++counters_.windowsUnroutable;
        continue;
      }
      auto it = std::find_if(
          links_.begin(), links_.end(),
          [&](const auto& l) { return l->entry.name == entry->name; });
      if (it == links_.end()) {
        ++counters_.windowsUnroutable;
        continue;
      }
      PendingKey key;
      key.key = std::move(w.key);
      key.resolution = w.resolution;
      key.windowIndex = w.windowIndex;
      (*it)->pending[std::move(key)] = w.rollup;  // newer snapshot wins
    }
  }
}

void Forwarder::fillSources(Frame& frame, double nowSeconds) const {
  const auto sources = local_.sources();
  frame.forwardSources.reserve(sources.size());
  std::int32_t lo = 0;
  std::int32_t hi = -1;
  for (const SourceInfo& info : sources) {
    ForwardSource src;
    src.job = info.hello.job;
    src.rank = info.hello.rank;
    src.worldSize = info.hello.worldSize;
    src.hostname = info.hello.hostname;
    src.state = static_cast<std::uint8_t>(info.state);
    src.lastSeenAgeSeconds = std::max(0.0, nowSeconds - info.lastSeenSeconds);
    if (hi < lo) {
      lo = hi = src.rank;
    } else {
      lo = std::min(lo, src.rank);
      hi = std::max(hi, src.rank);
    }
    frame.forwardSources.push_back(std::move(src));
    if (frame.forwardSources.size() >= 0xFFFF) {
      break;  // u16 count on the wire; a node daemon never nears this
    }
  }
  frame.rankLo = lo;
  frame.rankHi = hi;
}

void Forwarder::sendPending(Link& link, double nowSeconds) {
  const bool coarseOnly =
      effectivePressure(link, nowSeconds) != PressureLevel::kOk;
  bool sourcesDue =
      link.lastSourceRefresh < 0.0 ||
      nowSeconds - link.lastSourceRefresh >= options_.sourceRefreshSeconds;
  while ((!link.pending.empty() || sourcesDue) &&
         link.inflight.size() < options_.maxInflight) {
    Frame frame;
    frame.kind = FrameKind::kForward;
    frame.timeSeconds = nowSeconds;
    frame.batchSeq = link.nextSeq;
    frame.hopCount = options_.hopCount;
    frame.origin = options_.origin;
    if (sourcesDue) {
      fillSources(frame, nowSeconds);
    }
    auto it = link.pending.begin();
    while (it != link.pending.end() &&
           frame.forwardWindows.size() < options_.maxWindowsPerFrame) {
      if (coarseOnly && it->first.resolution == Resolution::kFine) {
        // Degradation hop: under acked upstream pressure, fine windows
        // are withheld (their records still arrive through the coarse
        // plane) instead of the frame being dropped wholesale.
        ++counters_.windowsSuppressed;
        ctrSuppressed_->add();
        it = link.pending.erase(it);
        continue;
      }
      ForwardWindow w;
      w.job = it->first.key.job;
      w.rank = it->first.key.rank;
      w.metric = it->first.key.metric;
      w.resolution =
          it->first.resolution == Resolution::kFine ? 0 : 1;
      w.windowIndex = it->first.windowIndex;
      w.min = it->second.min;
      w.max = it->second.max;
      w.sum = it->second.sum;
      w.count = it->second.count;
      frame.forwardWindows.push_back(std::move(w));
      it = link.pending.erase(it);
    }
    if (frame.forwardWindows.empty() && !sourcesDue) {
      break;  // pressure suppression consumed everything sendable
    }
    if (!link.transport->send(encodeFrame(frame))) {
      // The frame (and its windows) evaporates with the connection; the
      // reconnect path resyncs, so nothing is lost — just re-sent.
      ++counters_.sendFailures;
      closeLink(link, nowSeconds);
      return;
    }
    if (sourcesDue) {
      link.lastSourceRefresh = nowSeconds;
      sourcesDue = false;
    }
    link.inflight.push_back(
        {link.nextSeq, static_cast<std::uint64_t>(frame.forwardWindows.size())});
    ++link.nextSeq;
    ++counters_.framesForwarded;
    counters_.windowsForwarded += frame.forwardWindows.size();
    ctrForwardedBatches_->add();
    ctrForwardedWindows_->add(frame.forwardWindows.size());
    if (coarseOnly) {
      ++counters_.coarseOnlyFrames;
    }
  }
}

void Forwarder::pump(double nowSeconds) {
  drainStore(nowSeconds);
  PressureLevel worst = PressureLevel::kOk;
  for (auto& linkPtr : links_) {
    Link& link = *linkPtr;
    if (!ensureConnected(link, nowSeconds)) {
      continue;
    }
    processIncoming(link, nowSeconds);
    if (link.transport == nullptr || !link.transport->connected()) {
      continue;  // processIncoming closed it
    }
    sendPending(link, nowSeconds);
    worst = std::max(worst, effectivePressure(link, nowSeconds));
  }
  gaugeUpstreamPressure_->set(
      static_cast<double>(static_cast<std::uint8_t>(worst)));
}

PressureLevel Forwarder::upstreamPressure(double nowSeconds) const {
  PressureLevel worst = PressureLevel::kOk;
  for (const auto& link : links_) {
    worst = std::max(worst, effectivePressure(*link, nowSeconds));
  }
  return worst;
}

bool Forwarder::quiesced() const {
  if (local_.store().dirtyCount() != 0) {
    return false;
  }
  for (const auto& link : links_) {
    if (!link->pending.empty()) {
      return false;
    }
    for (const auto& frame : link->inflight) {
      // Window-less frames are source-refresh keepalives; losing one
      // loses no data, so they do not hold up an orderly shutdown.
      if (frame.windows != 0) {
        return false;
      }
    }
  }
  return true;
}

std::size_t Forwarder::pendingWindows() const {
  std::size_t total = 0;
  for (const auto& link : links_) {
    total += link->pending.size();
  }
  return total;
}

std::size_t Forwarder::inflightFrames() const {
  std::size_t total = 0;
  for (const auto& link : links_) {
    total += link->inflight.size();
  }
  return total;
}

// --- CatalogAnnouncer -------------------------------------------------------

CatalogAnnouncer::CatalogAnnouncer(std::unique_ptr<Transport> transport,
                                   CatalogEntry self, AnnouncerOptions options)
    : transport_(std::move(transport)), self_(std::move(self)),
      options_(options) {
  if (!transport_) {
    throw ConfigError("CatalogAnnouncer requires a transport");
  }
}

void CatalogAnnouncer::pump(double nowSeconds) {
  if (!transport_->connected()) {
    if (nowSeconds < nextConnectAt_) {
      return;
    }
    if (!transport_->connect()) {
      currentBackoff_ = currentBackoff_ == 0.0
                            ? options_.reconnectBackoffSeconds
                            : std::min(currentBackoff_ * 2.0,
                                       options_.reconnectBackoffCapSeconds);
      nextConnectAt_ = nowSeconds + currentBackoff_;
      return;
    }
    currentBackoff_ = 0.0;
    reader_ = FrameReader();
    lastAnnounceAt_ = -1.0;  // announce immediately on a new connection
  }
  // Drain acks first: adopt the catalog-assigned generation so the next
  // announce (and any peer resolving us) sees this incarnation.
  recvScratch_.clear();
  const bool open = transport_->receive(recvScratch_);
  if (!recvScratch_.empty()) {
    reader_.feed(recvScratch_);
    try {
      Frame frame;
      while (reader_.next(frame)) {
        if (frame.kind != FrameKind::kCatalogAck) {
          continue;
        }
        ++counters_.acksReceived;
        if (frame.catalogEntry.generation >= self_.generation) {
          self_.generation = frame.catalogEntry.generation;
        } else {
          ++counters_.staleAcks;
        }
      }
    } catch (const Error&) {
      transport_->close();
      nextConnectAt_ = nowSeconds + options_.reconnectBackoffSeconds;
      return;
    }
  }
  if (!open) {
    transport_->close();
    nextConnectAt_ = nowSeconds + options_.reconnectBackoffSeconds;
    return;
  }
  if (lastAnnounceAt_ >= 0.0 &&
      nowSeconds - lastAnnounceAt_ < options_.intervalSeconds) {
    return;
  }
  Frame frame;
  frame.kind = FrameKind::kCatalogAnnounce;
  frame.catalogEntry = self_;
  if (!transport_->send(encodeFrame(frame))) {
    ++counters_.sendFailures;
    transport_->close();
    nextConnectAt_ = nowSeconds + options_.reconnectBackoffSeconds;
    return;
  }
  ++counters_.announcesSent;
  lastAnnounceAt_ = nowSeconds;
}

// --- FederationTree ---------------------------------------------------------

FederationTree::FederationTree(FederationTreeOptions options)
    : options_(options), catalog_({options.catalogTtlSeconds}) {
  if (options_.groups < 1 || options_.nodesPerGroup < 1) {
    throw ConfigError("FederationTree needs >= 1 group and node per group");
  }
  rootHub_ = std::make_unique<PipeHub>();
  root_ = std::make_unique<Aggregator>(rootHub_->makeServer(),
                                       options_.storeOptions,
                                       options_.daemonOptions);
  root_->attachCatalog(&catalog_);
  groups_.resize(static_cast<std::size_t>(options_.groups));
  for (int g = 0; g < options_.groups; ++g) {
    groups_[g] = std::make_unique<GroupRuntime>();
    groups_[g]->hub = std::make_unique<PipeHub>();
    buildGroup(g, 0.0);
    for (int n = 0; n < options_.nodesPerGroup; ++n) {
      auto node = std::make_unique<NodeRuntime>();
      node->hub = std::make_unique<PipeHub>();
      node->daemon = std::make_unique<Aggregator>(node->hub->makeServer(),
                                                  options_.storeOptions,
                                                  options_.daemonOptions);
      ForwarderOptions fwd = options_.forwarderOptions;
      fwd.origin = "node-" + std::to_string(g) + "-" + std::to_string(n);
      fwd.hopCount = 1;
      node->forwarder = std::make_unique<Forwarder>(
          *node->daemon,
          [this](const CatalogEntry& entry) -> std::unique_ptr<Transport> {
            // Entry names encode the hub: "group-<g>".
            for (auto& group : groups_) {
              if (group->announcer != nullptr &&
                  group->announcer->self().name == entry.name) {
                return group->hub->makeClientTransport();
              }
            }
            return nullptr;
          },
          fwd);
      CatalogEntry self;
      self.role = DaemonRole::kNode;
      self.name = fwd.origin;
      self.host = "pipe";
      self.port = indexOf(g, n);
      AnnouncerOptions ann;
      ann.intervalSeconds = options_.announceIntervalSeconds;
      node->announcer = std::make_unique<CatalogAnnouncer>(
          rootHub_->makeClientTransport(), self, ann);
      nodes_.push_back(std::move(node));
    }
  }
}

FederationTree::~FederationTree() = default;

void FederationTree::buildGroup(int g, double nowSeconds) {
  GroupRuntime& group = *groups_.at(g);
  group.daemon = std::make_unique<Aggregator>(group.hub->makeServer(),
                                              options_.storeOptions,
                                              options_.daemonOptions);
  ForwarderOptions fwd = options_.forwarderOptions;
  fwd.origin = "group-" + std::to_string(g);
  fwd.hopCount = 2;
  group.forwarder = std::make_unique<Forwarder>(
      *group.daemon,
      [this](const CatalogEntry&) { return rootHub_->makeClientTransport(); },
      fwd);
  CatalogEntry rootEntry;
  rootEntry.role = DaemonRole::kRoot;
  rootEntry.name = "root";
  group.forwarder->setUpstreams({rootEntry}, nowSeconds);
  CatalogEntry self;
  self.role = DaemonRole::kGroup;
  self.name = fwd.origin;
  self.host = "pipe";
  self.port = g;
  AnnouncerOptions ann;
  ann.intervalSeconds = options_.announceIntervalSeconds;
  group.announcer = std::make_unique<CatalogAnnouncer>(
      rootHub_->makeClientTransport(), self, ann);
  group.alive = true;
}

std::unique_ptr<Transport> FederationTree::makeNodeTransport(int g, int n) {
  return nodes_.at(indexOf(g, n))->hub->makeClientTransport();
}

std::unique_ptr<Transport> FederationTree::makeRootTransport() {
  return rootHub_->makeClientTransport();
}

void FederationTree::step(double nowSeconds) {
  // Leaf tier: ingest rank batches, then push rollups toward the groups.
  const auto groupEntries =
      catalog_.entriesByRole(DaemonRole::kGroup, nowSeconds);
  for (auto& node : nodes_) {
    node->daemon->poll(nowSeconds);
    node->forwarder->setUpstreams(groupEntries, nowSeconds);
    node->forwarder->pump(nowSeconds);
    node->announcer->pump(nowSeconds);
  }
  // Mid tier: ingest node forwards, push merged rollups to the root.
  for (auto& group : groups_) {
    if (!group->alive) {
      continue;
    }
    group->daemon->poll(nowSeconds);
    group->forwarder->pump(nowSeconds);
    group->announcer->pump(nowSeconds);
  }
  // Apex: ingest group forwards, serve announces/queries, expire the
  // catalog (root poll drives catalog_.expire()).
  root_->poll(nowSeconds);
}

double FederationTree::settle(double nowSeconds, double dt, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    nowSeconds += dt;
    step(nowSeconds);
  }
  return nowSeconds;
}

void FederationTree::crashGroup(int g) {
  GroupRuntime& group = *groups_.at(g);
  group.hub->setDown(true);
  group.alive = false;
}

void FederationTree::restartGroup(int g, double nowSeconds) {
  GroupRuntime& group = *groups_.at(g);
  group.hub->setDown(false);
  buildGroup(g, nowSeconds);
}

bool FederationTree::quiesced() const {
  for (const auto& node : nodes_) {
    if (!node->forwarder->quiesced()) {
      return false;
    }
  }
  for (const auto& group : groups_) {
    if (group->alive && !group->forwarder->quiesced()) {
      return false;
    }
  }
  return true;
}

}  // namespace zerosum::aggregator
