// Federation: the hierarchical fan-in tree (DESIGN.md §11).
//
// A flat daemon stops scaling when thousands of ranks hit one poll loop;
// the paper's answer (§6 "across the application processes") is the
// classic monitoring tree: every node daemon aggregates its local ranks,
// forwards pre-aggregated rollup windows to a group daemon, and the
// groups forward to a root that answers queries over the union.  Three
// pieces live here:
//
//   * HashRing — consistent-hash routing of (job, rank, metric) series
//     across the upstream set.  Series hash into a fixed shard space
//     (wire.hpp kShardSpace); each upstream covers a shard range and
//     owns virtual points on the ring, so membership changes move only
//     the series that hashed near the departed daemon.
//   * Forwarder — the child half of the hop-by-hop protocol.  Drains the
//     local RollupStore's dirty windows, routes each series through the
//     ring, and re-batches them upstream as wire-v4 kForward frames,
//     reusing the kBatchAck pressure/ack loop.  Windows are *cumulative
//     snapshots*, so the loss story needs no persistent send queue: any
//     reconnect or membership change marks the whole store dirty again
//     (a full resync) and replaying is idempotent upstream.  Under acked
//     upstream pressure the forwarder coarsens — it keeps shipping
//     coarse windows and withholds fine ones — instead of dropping.
//   * CatalogAnnouncer — the membership half: periodically re-announces
//     this daemon's {role, host, port, shard-range, generation} to the
//     catalog daemon (kCatalogAnnounce/kCatalogAck) so peers can resolve
//     it; adopts the catalog-assigned generation on the first ack.
//
// FederationTree wires a full node -> group -> root tree over in-memory
// PipeHubs — the deterministic harness behind the cluster simulation's
// tree mode, the federation tests, and bench_federation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/catalog.hpp"
#include "aggregator/daemon.hpp"
#include "aggregator/store.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/wire.hpp"
#include "trace/metrics.hpp"

namespace zerosum::aggregator {

/// Stable shard of a series: FNV-1a over (job, rank, metric), folded
/// into [0, kShardSpace).  Every daemon in a federation must agree on
/// this function, so it is a free function, not policy.
[[nodiscard]] std::uint32_t shardOfSeries(const SeriesKey& key);

/// Consistent-hash ring over a set of catalog entries.  Each entry
/// contributes `pointsPerEntry` virtual points (hashed from its name);
/// a shard routes to the first point clockwise whose entry covers the
/// shard's range.  Rebalancing rule (DESIGN.md §11): when the entry set
/// changes, only series whose owning point vanished (or whose arc a new
/// point split) move — but forwarders still full-resync on any change,
/// because moved series must reach their new owner from scratch.
class HashRing {
 public:
  HashRing() = default;
  explicit HashRing(std::vector<CatalogEntry> entries, int pointsPerEntry = 32);

  /// The entry owning `shard`; nullptr when the ring is empty or no
  /// entry's [shardLo, shardHi] covers the shard.
  [[nodiscard]] const CatalogEntry* route(std::uint32_t shard) const;

  [[nodiscard]] const std::vector<CatalogEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// True when `entries` names the same membership (name, generation,
  /// shard range, address) as this ring — the "nothing changed, keep
  /// forwarding" fast path.
  [[nodiscard]] bool sameMembership(
      const std::vector<CatalogEntry>& entries) const;

 private:
  std::vector<CatalogEntry> entries_;
  /// (ring position, index into entries_), sorted by position.
  std::vector<std::pair<std::uint32_t, std::size_t>> points_;
};

struct ForwarderOptions {
  /// Identity stamped into every kForward frame's origin field.
  std::string origin = "forwarder";
  /// Hop count stamped on forwarded data (leaf daemon = 1: the data has
  /// taken one hop by the time the parent sees it).
  std::uint8_t hopCount = 1;
  /// Windows per kForward frame; more amortizes framing, less bounds
  /// per-frame latency.
  std::size_t maxWindowsPerFrame = 512;
  /// Unacked kForward frames per upstream before sending pauses.
  std::size_t maxInflight = 64;
  /// Reconnect backoff (same shape as ClientOptions).
  double reconnectBackoffSeconds = 0.25;
  double reconnectBackoffCapSeconds = 5.0;
  /// Acked pressure older than this decays to ok.
  double pressureStaleSeconds = 10.0;
  /// Re-send the source registry (liveness propagation) at least this
  /// often even when no windows are dirty.
  double sourceRefreshSeconds = 1.0;
};

struct ForwarderCounters {
  std::uint64_t framesForwarded = 0;
  std::uint64_t windowsForwarded = 0;
  std::uint64_t sendFailures = 0;
  std::uint64_t connectFailures = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t resyncs = 0;            ///< full markAllDirty replays
  std::uint64_t membershipChanges = 0;  ///< upstream set rebuilds
  std::uint64_t acksReceived = 0;
  std::uint64_t coarseOnlyFrames = 0;   ///< frames built under pressure
  std::uint64_t windowsSuppressed = 0;  ///< fine windows withheld
  std::uint64_t windowsUnroutable = 0;  ///< no upstream covered the shard
};

/// The child half of one federation hop: local daemon's store -> one or
/// more upstream daemons.  Not a thread; the owner calls pump() from the
/// same loop that polls the local daemon.
class Forwarder {
 public:
  /// Opens a transport to one upstream (called per catalog entry when
  /// the membership changes).
  using TransportFactory =
      std::function<std::unique_ptr<Transport>(const CatalogEntry&)>;

  Forwarder(Aggregator& local, TransportFactory factory,
            ForwarderOptions options = {});

  /// Replaces the upstream set (normally the catalog's current view).
  /// A membership change rebuilds the ring and triggers a full resync;
  /// an identical set is a cheap no-op.
  void setUpstreams(const std::vector<CatalogEntry>& entries,
                    double nowSeconds);

  /// One forwarding round: drain acks, drain the store's dirty windows,
  /// route, batch, send.  Safe to call every period regardless of
  /// connection state.
  void pump(double nowSeconds);

  /// Worst effective acked pressure across upstream links.
  [[nodiscard]] PressureLevel upstreamPressure(double nowSeconds) const;

  /// True when nothing is waiting: no dirty windows, no pending routed
  /// windows, no unacked frames.  The quiesce condition for tests and
  /// orderly shutdown.
  [[nodiscard]] bool quiesced() const;

  /// Windows drained from the store but not yet sent (all links).
  [[nodiscard]] std::size_t pendingWindows() const;
  /// Unacked kForward frames across links.
  [[nodiscard]] std::size_t inflightFrames() const;

  [[nodiscard]] const ForwarderCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] const HashRing& ring() const { return ring_; }

 private:
  struct PendingKey {
    SeriesKey key;
    Resolution resolution = Resolution::kFine;
    std::int64_t windowIndex = 0;

    friend auto operator<=>(const PendingKey&, const PendingKey&) = default;
  };

  struct Inflight {
    std::uint64_t seq = 0;
    std::uint64_t windows = 0;
  };

  struct Link {
    CatalogEntry entry;
    std::unique_ptr<Transport> transport;
    FrameReader reader;
    std::string recvScratch;
    /// Routed windows awaiting send; keyed so a newer snapshot of the
    /// same window replaces the queued one in place (bounded by the
    /// store's retained-window count, never by time).
    std::map<PendingKey, Rollup> pending;
    std::vector<Inflight> inflight;  ///< FIFO; acks are cumulative
    std::uint64_t nextSeq = 1;
    PressureLevel pressure = PressureLevel::kOk;
    double pressureAt = -1.0;  ///< <0 = no ack yet
    double nextConnectAt = 0.0;
    double currentBackoff = 0.0;
    double lastSourceRefresh = -1.0;
    bool everConnected = false;
  };

  bool ensureConnected(Link& link, double nowSeconds);
  void closeLink(Link& link, double nowSeconds);
  void processIncoming(Link& link, double nowSeconds);
  void drainStore(double nowSeconds);
  void sendPending(Link& link, double nowSeconds);
  void resync();
  [[nodiscard]] PressureLevel effectivePressure(const Link& link,
                                                double nowSeconds) const;
  void fillSources(Frame& frame, double nowSeconds) const;

  Aggregator& local_;
  TransportFactory factory_;
  ForwarderOptions options_;
  ForwarderCounters counters_;
  HashRing ring_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<DirtyWindow> drainScratch_;

  trace::Counter* ctrForwardedBatches_ = nullptr;
  trace::Counter* ctrForwardedWindows_ = nullptr;
  trace::Counter* ctrResyncs_ = nullptr;
  trace::Counter* ctrSuppressed_ = nullptr;
  trace::Gauge* gaugeUpstreamPressure_ = nullptr;
};

struct AnnouncerOptions {
  /// Re-announce at least this often; must comfortably undercut the
  /// catalog's TTL or the entry flaps.
  double intervalSeconds = 5.0;
  double reconnectBackoffSeconds = 0.25;
  double reconnectBackoffCapSeconds = 5.0;
};

struct AnnouncerCounters {
  std::uint64_t announcesSent = 0;
  std::uint64_t acksReceived = 0;
  std::uint64_t sendFailures = 0;
  std::uint64_t staleAcks = 0;  ///< ack carried an older generation
};

/// Periodically registers one daemon with the catalog.  Announces with
/// generation 0 first (the catalog assigns the next incarnation number)
/// and adopts the granted generation from the kCatalogAck.
class CatalogAnnouncer {
 public:
  CatalogAnnouncer(std::unique_ptr<Transport> transport, CatalogEntry self,
                   AnnouncerOptions options = {});

  void pump(double nowSeconds);

  [[nodiscard]] const CatalogEntry& self() const { return self_; }
  [[nodiscard]] std::uint64_t generation() const { return self_.generation; }
  [[nodiscard]] const AnnouncerCounters& counters() const {
    return counters_;
  }

 private:
  std::unique_ptr<Transport> transport_;
  CatalogEntry self_;
  AnnouncerOptions options_;
  AnnouncerCounters counters_;
  FrameReader reader_;
  std::string recvScratch_;
  double lastAnnounceAt_ = -1.0;
  double nextConnectAt_ = 0.0;
  double currentBackoff_ = 0.0;
};

struct FederationTreeOptions {
  int groups = 2;
  int nodesPerGroup = 2;
  StoreOptions storeOptions;
  DaemonOptions daemonOptions;
  double catalogTtlSeconds = 6.0;
  double announceIntervalSeconds = 1.0;
  ForwarderOptions forwarderOptions;  ///< origin/hopCount set per daemon
};

/// A complete in-process fan-in tree over PipeHubs: `nodesPerGroup *
/// groups` node daemons forward through `groups` group daemons into one
/// root that hosts the catalog.  Deterministic — step(now) advances
/// every daemon, forwarder, and announcer exactly once on the caller's
/// clock.  crashGroup()/restartGroup() model a mid-tier daemon dying:
/// its hub goes down, its catalog entry ages out, and the node
/// forwarders re-resolve and re-route around it.
class FederationTree {
 public:
  explicit FederationTree(FederationTreeOptions options = {});
  ~FederationTree();

  FederationTree(const FederationTree&) = delete;
  FederationTree& operator=(const FederationTree&) = delete;

  [[nodiscard]] int groups() const { return options_.groups; }
  [[nodiscard]] int nodesPerGroup() const { return options_.nodesPerGroup; }

  [[nodiscard]] Aggregator& root() { return *root_; }
  [[nodiscard]] Aggregator& group(int g) { return *groups_.at(g)->daemon; }
  [[nodiscard]] Aggregator& node(int g, int n) {
    return *nodes_.at(indexOf(g, n))->daemon;
  }
  [[nodiscard]] Catalog& catalog() { return catalog_; }
  [[nodiscard]] const Forwarder& nodeForwarder(int g, int n) const {
    return *nodes_.at(indexOf(g, n))->forwarder;
  }
  [[nodiscard]] const Forwarder& groupForwarder(int g) const {
    return *groups_.at(g)->forwarder;
  }

  /// Client endpoint into one node daemon (what rank Clients connect
  /// through).
  [[nodiscard]] std::unique_ptr<Transport> makeNodeTransport(int g, int n);
  /// Client endpoint into the root (queries, catalog resolution).
  [[nodiscard]] std::unique_ptr<Transport> makeRootTransport();

  /// One lockstep round: node daemons ingest, node forwarders push to
  /// groups, groups ingest and push to the root, the root ingests,
  /// announcers refresh the catalog, and expired entries age out.
  void step(double nowSeconds);

  /// Convenience: step() `rounds` times, advancing `nowSeconds` by `dt`
  /// per round.  Returns the final clock.
  double settle(double nowSeconds, double dt, int rounds);

  /// Kills group g: its hub drops every connection and stops accepting
  /// new ones; its daemon, forwarder, and announcer stop running.
  void crashGroup(int g);
  [[nodiscard]] bool groupAlive(int g) const {
    return groups_.at(g)->alive;
  }
  /// Restarts group g with a fresh (empty) store.  Node forwarders
  /// resync into it once the catalog lists the new incarnation.
  void restartGroup(int g, double nowSeconds);

  /// True when every forwarder at both tiers has quiesced — all dirty
  /// windows delivered and acked all the way to the root.
  [[nodiscard]] bool quiesced() const;

 private:
  struct NodeRuntime {
    std::unique_ptr<PipeHub> hub;  ///< rank clients connect here
    std::unique_ptr<Aggregator> daemon;
    std::unique_ptr<Forwarder> forwarder;
    std::unique_ptr<CatalogAnnouncer> announcer;
  };

  struct GroupRuntime {
    std::unique_ptr<PipeHub> hub;  ///< node forwarders connect here
    std::unique_ptr<Aggregator> daemon;
    std::unique_ptr<Forwarder> forwarder;
    std::unique_ptr<CatalogAnnouncer> announcer;
    bool alive = true;
  };

  [[nodiscard]] int indexOf(int g, int n) const {
    return g * options_.nodesPerGroup + n;
  }
  void buildGroup(int g, double nowSeconds);

  FederationTreeOptions options_;
  Catalog catalog_;
  std::unique_ptr<PipeHub> rootHub_;
  std::unique_ptr<Aggregator> root_;
  std::vector<std::unique_ptr<GroupRuntime>> groups_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
};

}  // namespace zerosum::aggregator
