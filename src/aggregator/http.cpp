#include "aggregator/http.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "aggregator/daemon.hpp"
#include "aggregator/queryservice.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/monotime.hpp"

namespace zerosum::aggregator {

namespace {

/// End of the header block: two consecutive line terminators, where a
/// terminator is "\r\n" or a bare "\n" (lenient parse, strict emit).
std::size_t findHeaderEnd(const std::string& buffer) {
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    if (buffer[i] != '\n') continue;
    std::size_t j = i + 1;
    if (j < buffer.size() && buffer[j] == '\r') ++j;
    if (j < buffer.size() && buffer[j] == '\n') return j + 1;
  }
  return std::string::npos;
}

std::string stripCr(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string urlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size() &&
               hexNibble(in[i + 1]) >= 0 && hexNibble(in[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hexNibble(in[i + 1]) * 16 +
                                      hexNibble(in[i + 2])));
      i += 2;
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

}  // namespace

std::map<std::string, std::string> parseQueryString(
    const std::string& target) {
  std::map<std::string, std::string> out;
  const std::size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    return out;
  }
  std::size_t pos = qmark + 1;
  while (pos <= target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    if (amp > pos) {
      const std::string pair = target.substr(pos, amp - pos);
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out[urlDecode(pair)] = "";
      } else {
        out[urlDecode(pair.substr(0, eq))] = urlDecode(pair.substr(eq + 1));
      }
    }
    pos = amp + 1;
  }
  return out;
}

const char* httpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

HttpServer::HttpServer(std::unique_ptr<TransportServer> server,
                       HttpLimits limits)
    : server_(std::move(server)), limits_(limits) {
  if (!server_) {
    throw ConfigError("HttpServer requires a transport server");
  }
  auto& registry = trace::MetricsRegistry::instance();
  metricRequests_ = &registry.counter("zs.http.requests");
  metricErrors_ = &registry.counter("zs.http.errors");
}

void HttpServer::handle(const std::string& method, const std::string& path,
                        HttpHandler handler) {
  handlers_[{method, path}] = std::move(handler);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  const auto it = handlers_.find({request.method, request.path});
  if (it != handlers_.end()) {
    try {
      return it->second(request);
    } catch (const std::exception& e) {
      log::warn() << "http: handler for " << request.method << " "
                  << request.path << " threw: " << e.what();
      return {500, "text/plain; charset=utf-8", "internal error\n"};
    }
  }
  // Path known under another method -> 405, otherwise 404.
  const bool pathKnown = std::any_of(
      handlers_.begin(), handlers_.end(),
      [&](const auto& kv) { return kv.first.second == request.path; });
  if (pathKnown) {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

void HttpServer::respond(std::uint64_t connection, const HttpRequest* request,
                         const HttpResponse& response, bool keepAlive) {
  (void)request;
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " "
      << httpStatusReason(response.status) << "\r\n"
      << "Content-Type: " << response.contentType << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: " << (keepAlive ? "keep-alive" : "close") << "\r\n";
  for (const auto& [name, value] : response.headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "\r\n" << response.body;
  server_->send(connection, out.str());
  if (response.status >= 400) {
    ++counters_.errors;
    metricErrors_->add();
  }
}

bool HttpServer::serveBuffered(std::uint64_t connection, Conn& conn) {
  for (;;) {
    const std::size_t headerEnd = findHeaderEnd(conn.buffer);
    if (headerEnd == std::string::npos) {
      // Incomplete: wait for more bytes, unless the partial block already
      // exceeds what a legal request could occupy.
      const std::size_t firstLine = conn.buffer.find('\n');
      if (firstLine == std::string::npos &&
          conn.buffer.size() > limits_.maxRequestLineBytes) {
        ++counters_.parseErrors;
        respond(connection, nullptr,
                {414, "text/plain; charset=utf-8", "request line too long\n"},
                false);
        return false;
      }
      if (conn.buffer.size() > limits_.maxRequestLineBytes +
                                   limits_.maxHeaderBytes) {
        ++counters_.parseErrors;
        respond(connection, nullptr,
                {431, "text/plain; charset=utf-8", "header block too large\n"},
                false);
        return false;
      }
      return true;
    }

    // --- request line ------------------------------------------------------
    std::size_t lineEnd = conn.buffer.find('\n');
    std::string requestLine = stripCr(conn.buffer.substr(0, lineEnd));
    if (requestLine.size() > limits_.maxRequestLineBytes) {
      ++counters_.parseErrors;
      respond(connection, nullptr,
              {414, "text/plain; charset=utf-8", "request line too long\n"},
              false);
      return false;
    }
    if (headerEnd - lineEnd > limits_.maxHeaderBytes) {
      ++counters_.parseErrors;
      respond(connection, nullptr,
              {431, "text/plain; charset=utf-8", "header block too large\n"},
              false);
      return false;
    }
    HttpRequest request;
    std::string version;
    {
      const std::size_t sp1 = requestLine.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : requestLine.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos ||
          sp1 == 0 || sp2 == sp1 + 1 ||
          requestLine.find(' ', sp2 + 1) != std::string::npos) {
        ++counters_.parseErrors;
        respond(connection, nullptr,
                {400, "text/plain; charset=utf-8", "malformed request line\n"},
                false);
        return false;
      }
      request.method = requestLine.substr(0, sp1);
      request.target = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
      version = requestLine.substr(sp2 + 1);
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      ++counters_.parseErrors;
      respond(connection, nullptr,
              {400, "text/plain; charset=utf-8", "unsupported version\n"},
              false);
      return false;
    }
    if (request.target.empty() || request.target[0] != '/') {
      ++counters_.parseErrors;
      respond(connection, nullptr,
              {400, "text/plain; charset=utf-8", "malformed target\n"}, false);
      return false;
    }
    request.path = request.target.substr(0, request.target.find('?'));

    // --- headers -----------------------------------------------------------
    std::size_t pos = lineEnd + 1;
    while (pos < headerEnd) {
      std::size_t eol = conn.buffer.find('\n', pos);
      std::string line = stripCr(conn.buffer.substr(pos, eol - pos));
      pos = eol + 1;
      if (line.empty()) break;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos || colon == 0) {
        ++counters_.parseErrors;
        respond(connection, nullptr,
                {400, "text/plain; charset=utf-8", "malformed header\n"},
                false);
        return false;
      }
      request.headers[toLower(line.substr(0, colon))] =
          trim(line.substr(colon + 1));
    }

    // --- body --------------------------------------------------------------
    if (request.headers.count("transfer-encoding") != 0) {
      ++counters_.parseErrors;
      respond(connection, nullptr,
              {501, "text/plain; charset=utf-8",
               "chunked transfer not supported\n"},
              false);
      return false;
    }
    std::size_t contentLength = 0;
    if (const auto it = request.headers.find("content-length");
        it != request.headers.end()) {
      try {
        const long long parsed = std::stoll(it->second);
        if (parsed < 0) throw std::invalid_argument("negative");
        contentLength = static_cast<std::size_t>(parsed);
      } catch (const std::exception&) {
        ++counters_.parseErrors;
        respond(connection, nullptr,
                {400, "text/plain; charset=utf-8", "bad content-length\n"},
                false);
        return false;
      }
      if (contentLength > limits_.maxBodyBytes) {
        ++counters_.parseErrors;
        respond(connection, nullptr,
                {413, "text/plain; charset=utf-8", "body too large\n"}, false);
        return false;
      }
    }
    if (conn.buffer.size() - headerEnd < contentLength) {
      return true;  // body still in flight
    }
    request.body = conn.buffer.substr(headerEnd, contentLength);
    conn.buffer.erase(0, headerEnd + contentLength);

    // --- dispatch ----------------------------------------------------------
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // Connection header overrides either way.
    bool keepAlive = version == "HTTP/1.1";
    if (const auto it = request.headers.find("connection");
        it != request.headers.end()) {
      const std::string value = toLower(it->second);
      if (value == "close") keepAlive = false;
      if (value == "keep-alive") keepAlive = true;
    }
    ++counters_.requests;
    metricRequests_->add();
    respond(connection, &request, dispatch(request), keepAlive);
    if (!keepAlive) {
      return false;
    }
    // Loop: pipelined requests may already be buffered.
  }
}

void HttpServer::poll() { poll(monotonicSeconds()); }

void HttpServer::poll(double nowSeconds) {
  for (auto& delivery : server_->poll()) {
    if (delivery.opened) {
      if (limits_.maxConnections > 0 &&
          connections_.size() >= limits_.maxConnections) {
        // Full house: answer with a graceful 503 and close instead of
        // silently holding (or dropping) the connection.  A load
        // balancer or dashboard retries against a less loaded replica.
        ++counters_.connectionsRejected;
        respond(delivery.connection, nullptr,
                {503, "text/plain; charset=utf-8",
                 "server connection limit reached\n"},
                false);
        server_->disconnect(delivery.connection);
        continue;
      }
      ++counters_.connectionsOpened;
    } else if (connections_.find(delivery.connection) == connections_.end()) {
      // Notice for a connection we already tore down — typically the
      // peer's close racing our own disconnect.  Counting it again would
      // double-book connectionsClosed.
      continue;
    }
    auto& conn = connections_[delivery.connection];
    conn.lastActivitySeconds = nowSeconds;
    bool keep = true;
    if (!delivery.bytes.empty()) {
      conn.buffer.append(delivery.bytes);
      keep = serveBuffered(delivery.connection, conn);
    }
    if (!keep) {
      server_->disconnect(delivery.connection);
      connections_.erase(delivery.connection);
      ++counters_.connectionsClosed;
      continue;
    }
    if (delivery.closed) {
      connections_.erase(delivery.connection);
      ++counters_.connectionsClosed;
    }
  }
  if (limits_.idleTimeoutSeconds > 0.0) {
    // Reap connections with no traffic inside the idle horizon — an
    // abandoned keep-alive tab must not pin a slot against the cap.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (nowSeconds - it->second.lastActivitySeconds >
          limits_.idleTimeoutSeconds) {
        server_->disconnect(it->first);
        it = connections_.erase(it);
        ++counters_.idleClosed;
        ++counters_.connectionsClosed;
      } else {
        ++it;
      }
    }
  }
}

namespace {

/// Maps a finished QueryResult onto the HTTP surface: status passes
/// through, shed queries gain a Retry-After header (integer seconds,
/// rounded up, per RFC 9110).
HttpResponse toHttpResponse(const QueryResult& result) {
  HttpResponse response{result.status, "application/json", result.body, {}};
  if (result.status == 429 && result.retryAfterSeconds > 0.0) {
    response.headers["Retry-After"] = std::to_string(
        static_cast<long long>(std::ceil(result.retryAfterSeconds)));
  }
  return response;
}

/// Priority class of one request: `class=bulk` (GET param) or an
/// `X-Query-Class: bulk` header selects bulk; everything else is live.
QueryClass classOf(const HttpRequest& request,
                   const std::map<std::string, std::string>& params) {
  if (const auto it = params.find("class");
      it != params.end() && it->second == "bulk") {
    return QueryClass::kBulk;
  }
  if (const auto it = request.headers.find("x-query-class");
      it != request.headers.end() && it->second == "bulk") {
    return QueryClass::kBulk;
  }
  return QueryClass::kLive;
}

}  // namespace

void mountDaemonEndpoints(HttpServer& http, Aggregator& daemon,
                          std::function<double()> now,
                          trace::PromLabels labels,
                          QueryService* queryService) {
  http.handle("GET", "/metrics", [labels](const HttpRequest&) {
    HttpResponse response;
    response.contentType = "text/plain; version=0.0.4; charset=utf-8";
    response.body = trace::renderPrometheus(
        trace::MetricsRegistry::instance().snapshot(), labels);
    return response;
  });

  auto healthJson = [&daemon, now](bool ready) {
    std::size_t active = 0, stale = 0, departed = 0;
    for (const SourceInfo& info : daemon.sources()) {
      switch (info.state) {
        case SourceState::kActive: ++active; break;
        case SourceState::kStale: ++stale; break;
        case SourceState::kDeparted: ++departed; break;
      }
    }
    std::ostringstream body;
    json::Writer w(body);
    w.beginObject()
        .field("ready", ready)
        .field("pressure", pressureLevelName(daemon.pressure()))
        .field("ingest_backlog", std::uint64_t{daemon.ingestBacklog()})
        .field("time_seconds", now())
        .key("sources")
        .beginObject()
        .field("active", std::uint64_t{active})
        .field("stale", std::uint64_t{stale})
        .field("departed", std::uint64_t{departed})
        .key("by_hop")
        .beginObject();
    // Fan-in view: how many sources arrived direct (hop 0) vs through
    // each tier of the federation tree.
    for (const auto& [hops, count] : daemon.sourcesByHop()) {
      w.field(std::to_string(hops), std::uint64_t{count});
    }
    w.endObject()
        .endObject()
        .key("fanin")
        .beginObject()
        .field("forward_frames", daemon.counters().forwardFrames)
        .field("forward_windows", daemon.counters().forwardWindows)
        .field("merge_conflicts", daemon.counters().forwardConflicts)
        .field("catalog_announces", daemon.counters().catalogAnnounces)
        .field("clock_regressions", daemon.counters().clockRegressions)
        .endObject()
        .endObject();
    body << "\n";
    return body.str();
  };

  http.handle("GET", "/healthz", [healthJson](const HttpRequest&) {
    // Liveness: answering at all is the signal, so always 200.
    return HttpResponse{200, "application/json", healthJson(true)};
  });

  http.handle("GET", "/readyz", [&daemon, healthJson](const HttpRequest&) {
    // Readiness: an overloaded daemon asks scrapers/load balancers to
    // back off until the backlog drains.
    const bool ready = daemon.pressure() != PressureLevel::kOverloaded;
    return HttpResponse{ready ? 200 : 503, "application/json",
                        healthJson(ready)};
  });

  http.handle("GET", "/dashboard", [&daemon, now](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        daemon.dashboard(now())};
  });

  if (queryService == nullptr) {
    http.handle("POST", "/query", [&daemon](const HttpRequest& request) {
      // runQuery never throws; errors come back as JSON error documents.
      return HttpResponse{200, "application/json",
                          daemon.query(request.body) + "\n"};
    });
    return;
  }

  // --- read plane (DESIGN.md §12): snapshot-isolated, cached, shed ---------
  http.handle("POST", "/query",
              [queryService, now](const HttpRequest& request) {
                const QueryClass cls = classOf(request, {});
                return toHttpResponse(
                    queryService->execute(request.body, cls, now()));
              });

  http.handle("GET", "/api/query",
              [queryService, now](const HttpRequest& request) {
                auto params = parseQueryString(request.target);
                const QueryClass cls = classOf(request, params);
                std::string op;
                if (const auto it = params.find("op"); it != params.end()) {
                  op = it->second;
                  params.erase(it);
                }
                params.erase("class");
                return toHttpResponse(
                    queryService->executeParams(op, params, cls, now()));
              });

  http.handle("GET", "/api/stats",
              [queryService, now](const HttpRequest&) {
                return HttpResponse{200, "application/json",
                                    queryService->statsJson(now()), {}};
              });
}

}  // namespace zerosum::aggregator
