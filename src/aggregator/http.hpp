// Minimal persistent HTTP/1.1 server layered over TransportServer — the
// aggregation daemon's live telemetry plane (and the building block the
// ROADMAP's high-traffic query/dashboard service grows from).
//
// Scope is deliberately small: request-line + headers + Content-Length
// bodies, keep-alive and pipelining, bounded request sizes, no chunked
// transfer, no TLS.  Because it speaks through the same TransportServer
// interface as the wire protocol, the full parser runs identically over
// loopback TCP (zerosum-aggd --http-port) and the deterministic
// in-memory PipeHub (tests drive byte-split and concurrency edge cases
// without sockets).
//
// Responses are written in one send(); a request that violates a bound
// (oversized request line / header block / body) or the grammar gets a
// 4xx and the connection is closed — framing can no longer be trusted.
//
// mountDaemonEndpoints() wires the standard endpoint set:
//   GET  /metrics    Prometheus text exposition of the MetricsRegistry
//   GET  /healthz    liveness + pressure/backlog/source counts (JSON)
//   GET  /readyz     readiness: 503 while the daemon is overloaded
//   GET  /dashboard  the existing text dashboard
//   POST /query      the existing JSON query service
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "aggregator/transport.hpp"
#include "trace/metrics.hpp"
#include "trace/prometheus.hpp"

namespace zerosum::aggregator {

class Aggregator;
class QueryService;

/// Decodes the query-string half of a request target ("/p?a=1&b=x%20y")
/// into decoded key/value pairs (percent-escapes and '+' for space;
/// duplicate keys resolve to the last value).  Exposed for tests and for
/// tools that build GET-form queries.
[[nodiscard]] std::map<std::string, std::string> parseQueryString(
    const std::string& target);

struct HttpRequest {
  std::string method;  ///< as received (method names are case-sensitive)
  std::string target;  ///< full request target, query string included
  std::string path;    ///< target up to '?'
  /// Header names lowercased; duplicate names resolve to the last value.
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  HttpResponse() = default;
  HttpResponse(int status_, std::string contentType_, std::string body_,
               std::map<std::string, std::string> headers_ = {})
      : status(status_),
        contentType(std::move(contentType_)),
        body(std::move(body_)),
        headers(std::move(headers_)) {}

  int status = 200;
  std::string contentType = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. Retry-After on a 429), emitted after
  /// the standard set.  Names are sent as given.
  std::map<std::string, std::string> headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpLimits {
  std::size_t maxRequestLineBytes = 8 * 1024;
  std::size_t maxHeaderBytes = 16 * 1024;  ///< whole header block
  std::size_t maxBodyBytes = 1 * 1024 * 1024;
  /// Connection hygiene for many concurrent readers: a hard cap on
  /// simultaneous connections (excess connects get a graceful 503 +
  /// close) and an idle timeout so an abandoned dashboard tab cannot
  /// pin a server slot forever.  0 disables either bound.
  std::size_t maxConnections = 128;
  double idleTimeoutSeconds = 60.0;
};

struct HttpServerCounters {
  std::uint64_t requests = 0;       ///< well-formed requests dispatched
  std::uint64_t errors = 0;         ///< responses with status >= 400
  std::uint64_t parseErrors = 0;    ///< malformed/oversized -> closed
  std::uint64_t connectionsOpened = 0;
  std::uint64_t connectionsClosed = 0;
  std::uint64_t connectionsRejected = 0;  ///< over maxConnections -> 503
  std::uint64_t idleClosed = 0;           ///< reaped by the idle timeout
};

[[nodiscard]] const char* httpStatusReason(int status);

class HttpServer {
 public:
  explicit HttpServer(std::unique_ptr<TransportServer> server,
                      HttpLimits limits = {});

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact (method, path) matches.  A path
  /// registered for some other method answers 405; unknown paths 404.
  void handle(const std::string& method, const std::string& path,
              HttpHandler handler);

  /// Drains the transport, parses complete requests, dispatches, and
  /// sends responses.  Call from the owner's event loop alongside the
  /// daemon's poll().  `nowSeconds` drives the idle-timeout sweep (any
  /// monotone clock — the zero-argument form uses the process monotonic
  /// clock); pass a consistent basis across calls.
  void poll();
  void poll(double nowSeconds);

  [[nodiscard]] const HttpServerCounters& counters() const {
    return counters_;
  }

 private:
  struct Conn {
    std::string buffer;
    double lastActivitySeconds = 0.0;
  };

  /// Parses and serves every complete request at the head of `buffer`;
  /// false when the connection must be closed (error or Connection:
  /// close).
  bool serveBuffered(std::uint64_t connection, Conn& conn);
  void respond(std::uint64_t connection, const HttpRequest* request,
               const HttpResponse& response, bool keepAlive);
  HttpResponse dispatch(const HttpRequest& request);

  std::unique_ptr<TransportServer> server_;
  HttpLimits limits_;
  HttpServerCounters counters_;
  std::map<std::uint64_t, Conn> connections_;
  /// (method, path) -> handler.
  std::map<std::pair<std::string, std::string>, HttpHandler> handlers_;
  trace::Counter* metricRequests_ = nullptr;
  trace::Counter* metricErrors_ = nullptr;
};

/// Mounts the standard daemon endpoint set (see file header) onto
/// `http`.  `now` supplies the daemon clock for /dashboard and /healthz;
/// `labels` are attached to every /metrics sample ({job,role}).  The
/// daemon must outlive the server.
///
/// With a QueryService (DESIGN.md §12), the read plane is mounted too:
///   GET  /api/query  GET-form queries (?op=...&metric=...); `class=bulk`
///                    or an `X-Query-Class: bulk` header selects the
///                    bulk priority class (op=export is always bulk)
///   GET  /api/stats  the service's own counters (never cached or shed)
/// and POST /query routes through the service instead of the one-shot
/// responder — shed queries answer 429 with a Retry-After header.
void mountDaemonEndpoints(HttpServer& http, Aggregator& daemon,
                          std::function<double()> now,
                          trace::PromLabels labels,
                          QueryService* queryService = nullptr);

}  // namespace zerosum::aggregator
