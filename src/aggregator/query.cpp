#include "aggregator/query.hpp"

#include <algorithm>
#include <sstream>

#include "aggregator/catalog.hpp"
#include "aggregator/daemon.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "tsdb/engine.hpp"

namespace zerosum::aggregator {

namespace {

std::string errorResponse(const std::string& message) {
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject().field("error", message).endObject();
  return out.str();
}

void writeRollup(json::Writer& w, const WindowRollup& row) {
  w.beginObject()
      .field("t", row.windowStartSeconds)
      .field("window_s", row.windowSeconds)
      .field("min", row.rollup.min)
      .field("avg", row.rollup.avg())
      .field("max", row.rollup.max)
      .field("count", row.rollup.count)
      .endObject();
}

std::string handleSources(const Aggregator& daemon) {
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject().key("sources").beginArray();
  for (const auto& info : daemon.sources()) {
    w.beginObject()
        .field("job", info.hello.job)
        .field("rank", static_cast<std::int64_t>(info.hello.rank))
        .field("world_size",
               static_cast<std::int64_t>(info.hello.worldSize))
        .field("hostname", info.hello.hostname)
        .field("pid", static_cast<std::int64_t>(info.hello.pid))
        .field("state", std::string(sourceStateName(info.state)))
        .field("first_seen_s", info.firstSeenSeconds)
        .field("last_seen_s", info.lastSeenSeconds)
        .field("batches", info.batches)
        .field("records", info.records)
        .key("health")
        .beginObject()
        .field("samples_taken", info.health.samplesTaken)
        .field("samples_degraded", info.health.samplesDegraded)
        .field("samples_dropped", info.health.samplesDropped)
        .field("loop_overruns", info.health.loopOverruns)
        .field("quarantined",
               static_cast<std::uint64_t>(info.health.quarantined))
        .endObject()
        .endObject();
  }
  w.endArray().endObject();
  return out.str();
}

std::string handleSnapshot(const Aggregator& daemon, const json::Value& req) {
  const json::Value* jobFilter = req.find("job");
  const json::Value* rankFilter = req.find("rank");
  // With a persistence engine attached, the engine is a strict superset
  // of the store (everything ingested was appended), so snapshots come
  // from it — series survive daemon restarts and store retention.
  const tsdb::Engine* engine = daemon.engine();
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject().key("series").beginArray();
  const auto keys =
      engine != nullptr ? engine->seriesKeys() : daemon.store().keys();
  for (const auto& key : keys) {
    if (jobFilter != nullptr && key.job != jobFilter->asString()) {
      continue;
    }
    if (rankFilter != nullptr &&
        key.rank != static_cast<int>(rankFilter->asNumber())) {
      continue;
    }
    w.beginObject()
        .field("job", key.job)
        .field("rank", static_cast<std::int64_t>(key.rank))
        .field("metric", key.metric);
    const auto fine = engine != nullptr
                          ? engine->latest(key, Resolution::kFine)
                          : daemon.store().latest(key, Resolution::kFine);
    if (fine) {
      w.key("fine");
      writeRollup(w, *fine);
    }
    const auto coarse = engine != nullptr
                            ? engine->latest(key, Resolution::kCoarse)
                            : daemon.store().latest(key, Resolution::kCoarse);
    if (coarse) {
      w.key("coarse");
      writeRollup(w, *coarse);
    }
    w.endObject();
  }
  w.endArray().endObject();
  return out.str();
}

std::string handleRange(const Aggregator& daemon, const json::Value& req) {
  const json::Value* metric = req.find("metric");
  if (metric == nullptr) {
    return errorResponse("range query requires \"metric\"");
  }
  SeriesKey key;
  key.job = req.stringOr("job", "");
  key.rank = static_cast<int>(req.numberOr("rank", 0.0));
  key.metric = metric->asString();
  const double t0 = req.numberOr("t0", 0.0);
  const double t1 = req.numberOr("t1", 1e18);
  const std::string res = req.stringOr("resolution", "fine");
  if (res != "fine" && res != "coarse") {
    return errorResponse("resolution must be \"fine\" or \"coarse\"");
  }
  const Resolution resolution =
      res == "coarse" ? Resolution::kCoarse : Resolution::kFine;
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject()
      .field("job", key.job)
      .field("rank", static_cast<std::int64_t>(key.rank))
      .field("metric", key.metric)
      .field("resolution", res)
      .key("windows")
      .beginArray();
  const auto rows = daemon.engine() != nullptr
                        ? daemon.engine()->range(key, t0, t1, resolution)
                        : daemon.store().range(key, t0, t1, resolution);
  for (const auto& row : rows) {
    writeRollup(w, row);
  }
  w.endArray().endObject();
  return out.str();
}

std::string handleCatalog(const Aggregator& daemon) {
  const Catalog* catalog = daemon.catalog();
  if (catalog == nullptr) {
    return errorResponse("this daemon hosts no catalog");
  }
  return catalog->toJson(daemon.lastPollSeconds());
}

std::string handleDashboard(const Aggregator& daemon) {
  double now = 0.0;
  for (const auto& info : daemon.sources()) {
    now = std::max(now, info.lastSeenSeconds);
  }
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject().field("text", daemon.dashboard(now)).endObject();
  return out.str();
}

}  // namespace

std::string runQuery(const Aggregator& daemon,
                     const std::string& requestJson) {
  try {
    const json::Value req = json::parse(requestJson);
    if (!req.isObject()) {
      return errorResponse("request must be a JSON object");
    }
    const std::string op = req.stringOr("op", "");
    if (op == "sources") {
      return handleSources(daemon);
    }
    if (op == "snapshot") {
      return handleSnapshot(daemon, req);
    }
    if (op == "range") {
      return handleRange(daemon, req);
    }
    if (op == "dashboard") {
      return handleDashboard(daemon);
    }
    if (op == "catalog") {
      return handleCatalog(daemon);
    }
    return errorResponse("unknown op \"" + op + "\"");
  } catch (const Error& e) {
    return errorResponse(e.what());
  } catch (const std::exception& e) {
    return errorResponse(std::string("internal: ") + e.what());
  }
}

std::optional<std::string> requestOverTransport(
    Transport& transport, const std::string& requestJson,
    const std::function<void()>& idle, int maxIdles) {
  if (!transport.connect()) {
    return std::nullopt;
  }
  Frame query;
  query.kind = FrameKind::kQuery;
  query.text = requestJson;
  if (!transport.send(encodeFrame(query))) {
    return std::nullopt;
  }
  FrameReader reader;
  std::string bytes;
  for (int round = 0; round < maxIdles; ++round) {
    bytes.clear();
    const bool open = transport.receive(bytes);
    reader.feed(bytes);
    Frame frame;
    try {
      if (reader.next(frame)) {
        if (frame.kind == FrameKind::kResponse) {
          return frame.text;
        }
        return std::nullopt;  // protocol violation
      }
    } catch (const Error&) {
      return std::nullopt;
    }
    if (!open) {
      return std::nullopt;
    }
    if (idle) {
      idle();
    }
  }
  return std::nullopt;
}

}  // namespace zerosum::aggregator
