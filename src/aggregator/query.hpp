// Query service: the read side of the aggregation daemon.
//
// Requests and responses are JSON (common/json), so `zerosum-post
// --agg-query` and the dashboard can speak to a daemon with nothing but
// a socket.  The request grammar is one small object:
//
//   {"op":"sources"}
//       -> every known source with identity, state, and health
//   {"op":"snapshot", "job":"...", "rank":N}        (filters optional)
//       -> newest fine+coarse rollup per matching series
//   {"op":"range", "metric":"...", "rank":N, "job":"...",
//    "t0":0, "t1":60, "resolution":"fine"|"coarse"}
//       -> all retained windows intersecting [t0, t1]
//   {"op":"dashboard"}
//       -> the rendered allocation dashboard as {"text": "..."}
//   {"op":"catalog"}
//       -> the hosted catalog's live entries (catalog hosts only; the
//          federation discovery lookup, see catalog.hpp)
//
// Untrusted input: the JSON arrives off the wire, so the parse is
// depth-limited and any malformed or unknown request yields an
// {"error": "..."} object instead of an exception escaping the daemon.
#pragma once

#include <functional>
#include <optional>
#include <string>

namespace zerosum::aggregator {

class Aggregator;
class Transport;

/// Executes one JSON request against the daemon's store; always returns
/// a JSON object (possibly {"error": ...}).  Never throws.
std::string runQuery(const Aggregator& daemon, const std::string& requestJson);

/// Client-side helper: connects `transport`, sends one kQuery frame, and
/// drains until the kResponse arrives.  `idle()` runs between receive
/// attempts — a short sleep against a TCP daemon, an Aggregator::poll
/// against the in-memory pipe.  nullopt when the daemon is unreachable,
/// the connection drops, or `maxIdles` rounds pass without a response.
std::optional<std::string> requestOverTransport(
    Transport& transport, const std::string& requestJson,
    const std::function<void()>& idle, int maxIdles = 200);

}  // namespace zerosum::aggregator
