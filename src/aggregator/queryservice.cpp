#include "aggregator/queryservice.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "aggregator/daemon.hpp"
#include "common/json.hpp"
#include "common/monotime.hpp"
#include "tsdb/engine.hpp"

namespace zerosum::aggregator {

namespace {

/// Shortest exact double for cache keys: 17 significant digits round-trip
/// every IEEE double, so a GET param and a POST field that parsed to the
/// same value always canonicalize to the same key.
std::string fmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string errorBody(const std::string& message) {
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject().field("error", message).endObject();
  out << '\n';
  return out.str();
}

void writeWindowRow(json::Writer& w, const WindowRollup& row) {
  w.beginObject()
      .field("t", row.windowStartSeconds)
      .field("window_s", row.windowSeconds)
      .field("min", row.rollup.min)
      .field("avg", row.rollup.avg())
      .field("max", row.rollup.max)
      .field("count", row.rollup.count)
      .endObject();
}

}  // namespace

const char* queryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kLive: return "live";
    case QueryClass::kBulk: return "bulk";
  }
  return "unknown";
}

QueryService::QueryService(const Aggregator& daemon,
                           QueryServiceOptions options)
    : daemon_(daemon), options_(std::move(options)) {
  auto& registry = trace::MetricsRegistry::instance();
  latLive_ = &registry.latency("zs.query.latency.live_seconds");
  latBulk_ = &registry.latency("zs.query.latency.bulk_seconds");
  ctrServed_ = &registry.counter("zs.query.served");
  ctrShed_ = &registry.counter("zs.query.shed");
  ctrCacheHits_ = &registry.counter("zs.query.cache_hits");
}

void QueryService::beginPoll(double nowSeconds) {
  (void)nowSeconds;
  std::lock_guard<std::mutex> lock(admitMutex_);
  queriesThisPoll_ = 0;
  bulkThisPoll_ = 0;
}

void QueryService::onRecord(const std::string& job, int rank,
                            names::Id metric, double timeSeconds,
                            double value) {
  std::lock_guard<std::mutex> lock(ladderMutex_);
  LadderSeries& series = ladder_[{job, rank, metric}];
  if (series.rings.empty()) {
    series.rings.resize(options_.ladderWindowsSeconds.size());
    for (auto& ring : series.rings) {
      ring.slots.resize(static_cast<std::size_t>(options_.ladderBuckets));
      ring.slotIndex.assign(static_cast<std::size_t>(options_.ladderBuckets),
                            -1);
    }
  }
  for (std::size_t i = 0; i < series.rings.size(); ++i) {
    const double sub = options_.ladderWindowsSeconds[i] /
                       static_cast<double>(options_.ladderBuckets);
    const auto idx = static_cast<std::int64_t>(std::floor(timeSeconds / sub));
    LadderRing& ring = series.rings[i];
    const auto buckets = static_cast<std::int64_t>(ring.slots.size());
    const auto slot =
        static_cast<std::size_t>(((idx % buckets) + buckets) % buckets);
    if (ring.slotIndex[slot] != idx) {
      // Ring wrap: this slot last held a sub-window one full window ago.
      ring.slots[slot] = Rollup{};
      ring.slotIndex[slot] = idx;
    }
    ring.slots[slot].merge(value);
  }
  ladderMaxTimeSeconds_ = std::max(ladderMaxTimeSeconds_, timeSeconds);
  ladderRecords_.fetch_add(1, std::memory_order_relaxed);
}

QueryResult QueryService::execute(const std::string& requestJson,
                                  QueryClass cls, double nowSeconds) {
  Parsed parsed = parseJson(requestJson);
  return run(parsed, cls, nowSeconds);
}

QueryResult QueryService::executeParams(
    const std::string& op, const std::map<std::string, std::string>& params,
    QueryClass cls, double nowSeconds) {
  Parsed parsed = parseParams(op, params);
  return run(parsed, cls, nowSeconds);
}

std::shared_ptr<const StoreSnapshot> QueryService::snapshot(
    double nowSeconds) {
  std::shared_ptr<const StoreSnapshot> out;
  bool refreshed = false;
  std::uint64_t keepGeneration = 0;
  {
    std::lock_guard<std::mutex> lock(snapMutex_);
    const std::uint64_t liveGeneration = daemon_.store().dataGeneration();
    const bool stale = !snap_ || snap_->generation() != liveGeneration;
    if (stale &&
        nowSeconds - lastRefreshSeconds_ >= options_.snapshotMinIntervalSeconds) {
      snap_ = std::make_shared<const StoreSnapshot>(daemon_.store().snapshot());
      lastRefreshSeconds_ = nowSeconds;
      refreshed = true;
      keepGeneration = snap_->generation();
      snapshotRefreshes_.fetch_add(1, std::memory_order_relaxed);
    } else if (!snap_) {
      // First call inside the rate-limit window: serve *something*.
      snap_ = std::make_shared<const StoreSnapshot>(daemon_.store().snapshot());
      lastRefreshSeconds_ = nowSeconds;
      refreshed = true;
      keepGeneration = snap_->generation();
      snapshotRefreshes_.fetch_add(1, std::memory_order_relaxed);
    }
    out = snap_;
  }
  if (refreshed) {
    // Generation moved: every cached body keyed to an older generation
    // can never be requested again (keys embed the generation), so
    // reclaim the memory eagerly rather than waiting for LRU pressure.
    cacheSweep(keepGeneration);
  }
  return out;
}

QueryServiceCounters QueryService::counters() const {
  QueryServiceCounters out;
  out.served = served_.load(std::memory_order_relaxed);
  out.servedLive = servedLive_.load(std::memory_order_relaxed);
  out.servedBulk = servedBulk_.load(std::memory_order_relaxed);
  out.cacheHits = cacheHits_.load(std::memory_order_relaxed);
  out.cacheMisses = cacheMisses_.load(std::memory_order_relaxed);
  out.cacheEvictions = cacheEvictions_.load(std::memory_order_relaxed);
  out.shedLive = shedLive_.load(std::memory_order_relaxed);
  out.shedBulk = shedBulk_.load(std::memory_order_relaxed);
  out.snapshotRefreshes = snapshotRefreshes_.load(std::memory_order_relaxed);
  out.ladderRecords = ladderRecords_.load(std::memory_order_relaxed);
  out.ladderFallbacks = ladderFallbacks_.load(std::memory_order_relaxed);
  out.badRequests = badRequests_.load(std::memory_order_relaxed);
  return out;
}

std::size_t QueryService::cacheEntries() const {
  std::lock_guard<std::mutex> lock(cacheMutex_);
  return lru_.size();
}

std::size_t QueryService::cacheBytes() const {
  std::lock_guard<std::mutex> lock(cacheMutex_);
  return cacheBytes_;
}

std::string QueryService::statsJson(double nowSeconds) {
  const QueryServiceCounters c = counters();
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(snapMutex_);
    if (snap_) generation = snap_->generation();
  }
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject()
      .field("time_seconds", nowSeconds)
      .field("pressure", pressureLevelName(daemon_.pressure()))
      .field("snapshot_generation", generation)
      .field("store_generation", daemon_.store().dataGeneration())
      .key("queries")
      .beginObject()
      .field("served", c.served)
      .field("served_live", c.servedLive)
      .field("served_bulk", c.servedBulk)
      .field("shed_live", c.shedLive)
      .field("shed_bulk", c.shedBulk)
      .field("bad_requests", c.badRequests)
      .endObject()
      .key("cache")
      .beginObject()
      .field("hits", c.cacheHits)
      .field("misses", c.cacheMisses)
      .field("evictions", c.cacheEvictions)
      .field("entries", std::uint64_t{cacheEntries()})
      .field("bytes", std::uint64_t{cacheBytes()})
      .endObject()
      .key("snapshot")
      .beginObject()
      .field("refreshes", c.snapshotRefreshes)
      .endObject()
      .key("ladder")
      .beginObject()
      .field("records", c.ladderRecords)
      .field("fallbacks", c.ladderFallbacks)
      .endObject()
      .endObject();
  out << '\n';
  return out.str();
}

// --- parsing / normalization -----------------------------------------------

QueryService::Parsed QueryService::parseJson(const std::string& requestJson) {
  Parsed parsed;
  try {
    const json::Value req = json::parse(requestJson);
    if (!req.isObject()) {
      parsed.error = "request must be a JSON object";
      return parsed;
    }
    parsed.op = req.stringOr("op", "");
    if (const json::Value* v = req.find("job")) {
      parsed.job = v->asString();
      parsed.hasJob = true;
    }
    if (const json::Value* v = req.find("rank")) {
      parsed.rank = static_cast<int>(v->asNumber());
      parsed.hasRank = true;
    }
    parsed.metric = req.stringOr("metric", "");
    parsed.t0 = req.numberOr("t0", 0.0);
    parsed.t1 = req.numberOr("t1", 1e18);
    const std::string res = req.stringOr("resolution", "fine");
    if (res != "fine" && res != "coarse") {
      parsed.error = "resolution must be \"fine\" or \"coarse\"";
      return parsed;
    }
    parsed.resolution = res == "coarse" ? Resolution::kCoarse
                                        : Resolution::kFine;
    parsed.windowSeconds = req.numberOr("window_s", 60.0);
  } catch (const std::exception& e) {
    parsed.error = std::string("bad request: ") + e.what();
    return parsed;
  }
  normalize(parsed);
  return parsed;
}

QueryService::Parsed QueryService::parseParams(
    const std::string& op, const std::map<std::string, std::string>& params) {
  Parsed parsed;
  parsed.op = op;
  auto number = [&](const std::string& name, double fallback,
                    bool* present = nullptr) {
    const auto it = params.find(name);
    if (it == params.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || (end != nullptr && *end != '\0')) {
      parsed.error = "parameter \"" + name + "\" is not a number";
      return fallback;
    }
    if (present != nullptr) *present = true;
    return v;
  };
  if (const auto it = params.find("job"); it != params.end()) {
    parsed.job = it->second;
    parsed.hasJob = true;
  }
  parsed.rank = static_cast<int>(number("rank", 0.0, &parsed.hasRank));
  if (const auto it = params.find("metric"); it != params.end()) {
    parsed.metric = it->second;
  }
  parsed.t0 = number("t0", 0.0);
  parsed.t1 = number("t1", 1e18);
  if (const auto it = params.find("resolution"); it != params.end()) {
    if (it->second != "fine" && it->second != "coarse") {
      parsed.error = "resolution must be \"fine\" or \"coarse\"";
      return parsed;
    }
    parsed.resolution = it->second == "coarse" ? Resolution::kCoarse
                                               : Resolution::kFine;
  }
  parsed.windowSeconds = number("window_s", 60.0);
  if (!parsed.error.empty()) {
    return parsed;
  }
  normalize(parsed);
  return parsed;
}

void QueryService::normalize(Parsed& parsed) {
  if (parsed.op != "series" && parsed.op != "snapshot" &&
      parsed.op != "range" && parsed.op != "window" &&
      parsed.op != "export" && parsed.op != "stats") {
    parsed.error = "unknown op \"" + parsed.op + "\"";
    return;
  }
  if ((parsed.op == "range" || parsed.op == "window") &&
      parsed.metric.empty()) {
    parsed.error = parsed.op + " query requires \"metric\"";
    return;
  }
  if (parsed.op == "window" && !(parsed.windowSeconds > 0.0)) {
    parsed.error = "window_s must be > 0";
    return;
  }
  // Canonical cache key: every executable field, length-prefixed strings
  // so a metric name containing a delimiter cannot forge another field.
  // GET and POST forms of the same logical query build the same key.
  std::ostringstream key;
  key << parsed.op << "|j";
  if (parsed.hasJob) {
    key << parsed.job.size() << ':' << parsed.job;
  } else {
    key << '-';
  }
  key << "|r";
  if (parsed.hasRank) {
    key << parsed.rank;
  } else {
    key << '-';
  }
  key << "|m" << parsed.metric.size() << ':' << parsed.metric << "|t"
      << fmtDouble(parsed.t0) << ',' << fmtDouble(parsed.t1) << "|"
      << (parsed.resolution == Resolution::kCoarse ? 'c' : 'f') << "|w"
      << fmtDouble(parsed.windowSeconds);
  parsed.key = key.str();
}

// --- execution -------------------------------------------------------------

QueryResult QueryService::run(Parsed& parsed, QueryClass cls,
                              double nowSeconds) {
  if (!parsed.error.empty()) {
    badRequests_.fetch_add(1, std::memory_order_relaxed);
    return {400, errorBody(parsed.error), false, 0.0};
  }
  if (parsed.op == "export") {
    cls = QueryClass::kBulk;  // exports can never claim the live budget
  }
  const double startedAt = monotonicSeconds();
  if (parsed.op == "stats") {
    // The service's own observability: never cached, never shed — an
    // operator must be able to see the shedding counters while shedding.
    QueryResult result{200, statsJson(nowSeconds), false, 0.0};
    finish(cls, false, monotonicSeconds() - startedAt);
    return result;
  }

  const std::shared_ptr<const StoreSnapshot> snap = snapshot(nowSeconds);
  std::uint64_t generation = snap->generation();
  if (parsed.op == "export" && daemon_.engine() != nullptr) {
    // Exports read the persistence engine (deep history), so their cache
    // entries invalidate on engine appends, not store mutations.
    generation = daemon_.engine()->dataGeneration();
  }
  const std::string cacheKey =
      parsed.key + "#g" + std::to_string(generation);

  if (options_.cacheMaxEntries > 0) {
    std::string hit = cacheLookup(cacheKey);
    if (!hit.empty()) {
      // Cache hits bypass admission: they cost no snapshot or store
      // work, so serving them cannot starve ingest even under overload.
      cacheHits_.fetch_add(1, std::memory_order_relaxed);
      finish(cls, true, monotonicSeconds() - startedAt);
      return {200, std::move(hit), true, 0.0};
    }
  }

  double retryAfter = 0.0;
  if (!admit(cls, &retryAfter)) {
    if (cls == QueryClass::kBulk) {
      shedBulk_.fetch_add(1, std::memory_order_relaxed);
    } else {
      shedLive_.fetch_add(1, std::memory_order_relaxed);
    }
    ctrShed_->add();
    return {429, errorBody("overloaded: retry after " +
                           fmtDouble(retryAfter) + "s"),
            false, retryAfter};
  }
  cacheMisses_.fetch_add(1, std::memory_order_relaxed);

  std::string body;
  if (parsed.op == "series") {
    body = runSeries(*snap);
  } else if (parsed.op == "snapshot") {
    body = runSnapshotOp(*snap, parsed);
  } else if (parsed.op == "range") {
    body = runRange(*snap, parsed);
  } else if (parsed.op == "window") {
    body = runWindow(*snap, parsed);
  } else {  // export
    body = runExport(*snap, parsed);
  }
  if (options_.cacheMaxEntries > 0) {
    cacheInsert(cacheKey, generation, body);
  }
  finish(cls, false, monotonicSeconds() - startedAt);
  return {200, std::move(body), false, 0.0};
}

bool QueryService::admit(QueryClass cls, double* retryAfter) {
  const PressureLevel pressure = daemon_.pressure();
  double scale = 1.0;
  if (pressure == PressureLevel::kElevated) scale = 2.0;
  if (pressure == PressureLevel::kOverloaded) scale = 5.0;
  *retryAfter = options_.retryAfterSeconds * scale;
  std::lock_guard<std::mutex> lock(admitMutex_);
  if (queriesThisPoll_ >= options_.maxQueriesPerPoll) {
    return false;
  }
  if (cls == QueryClass::kBulk) {
    // Bulk exports get a small slice of the budget, and none at all
    // while ingest is under pressure — live dashboards and the write
    // path always win.
    if (pressure != PressureLevel::kOk ||
        bulkThisPoll_ >= options_.bulkQueriesPerPoll) {
      return false;
    }
    ++bulkThisPoll_;
  }
  ++queriesThisPoll_;
  return true;
}

void QueryService::finish(QueryClass cls, bool cacheHit,
                          double elapsedSeconds) {
  served_.fetch_add(1, std::memory_order_relaxed);
  ctrServed_->add();
  if (cacheHit) {
    ctrCacheHits_->add();
  }
  if (cls == QueryClass::kBulk) {
    servedBulk_.fetch_add(1, std::memory_order_relaxed);
    latBulk_->observe(elapsedSeconds);
  } else {
    servedLive_.fetch_add(1, std::memory_order_relaxed);
    latLive_->observe(elapsedSeconds);
  }
}

// --- op bodies -------------------------------------------------------------

std::string QueryService::runSeries(const StoreSnapshot& snap) {
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject()
      .field("generation", snap.generation())
      .key("series")
      .beginArray();
  for (const SeriesSnapshot& series : snap.series()) {
    w.beginObject()
        .field("job", series.key.job)
        .field("rank", static_cast<std::int64_t>(series.key.rank))
        .field("metric", series.key.metric)
        .endObject();
  }
  w.endArray().endObject();
  out << '\n';
  return out.str();
}

std::string QueryService::runSnapshotOp(const StoreSnapshot& snap,
                                        const Parsed& parsed) {
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject()
      .field("generation", snap.generation())
      .key("series")
      .beginArray();
  for (const SeriesSnapshot& series : snap.series()) {
    if (parsed.hasJob && series.key.job != parsed.job) continue;
    if (parsed.hasRank && series.key.rank != parsed.rank) continue;
    if (!parsed.metric.empty() && series.key.metric != parsed.metric) continue;
    w.beginObject()
        .field("job", series.key.job)
        .field("rank", static_cast<std::int64_t>(series.key.rank))
        .field("metric", series.key.metric);
    if (const auto fine = snap.latest(series.key, Resolution::kFine)) {
      w.key("fine");
      writeWindowRow(w, *fine);
    }
    if (const auto coarse = snap.latest(series.key, Resolution::kCoarse)) {
      w.key("coarse");
      writeWindowRow(w, *coarse);
    }
    w.endObject();
  }
  w.endArray().endObject();
  out << '\n';
  return out.str();
}

std::string QueryService::runRange(const StoreSnapshot& snap,
                                   const Parsed& parsed) {
  SeriesKey key;
  key.job = parsed.job;
  key.rank = parsed.rank;
  key.metric = parsed.metric;
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject()
      .field("generation", snap.generation())
      .field("job", key.job)
      .field("rank", static_cast<std::int64_t>(key.rank))
      .field("metric", key.metric)
      .field("resolution",
             parsed.resolution == Resolution::kCoarse ? "coarse" : "fine")
      .key("windows")
      .beginArray();
  for (const WindowRollup& row :
       snap.range(key, parsed.t0, parsed.t1, parsed.resolution)) {
    writeWindowRow(w, row);
  }
  w.endArray().endObject();
  out << '\n';
  return out.str();
}

std::string QueryService::runWindow(const StoreSnapshot& snap,
                                    const Parsed& parsed) {
  // Anchor the trailing window at the newest data time either plane has
  // seen: the ladder's high-water mark for directly ingested records,
  // or the snapshot's newest fine window for forwarded-only stores.
  double anchor;
  {
    std::lock_guard<std::mutex> lock(ladderMutex_);
    anchor = ladderMaxTimeSeconds_;
  }
  for (const SeriesSnapshot& series : snap.series()) {
    if (series.key.metric != parsed.metric) continue;
    if (!series.fine.empty()) {
      anchor = std::max(anchor, (static_cast<double>(
                                     series.fine.rbegin()->first) +
                                 1.0) *
                                    snap.fineWindowSeconds());
    }
  }
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject()
      .field("generation", snap.generation())
      .field("metric", parsed.metric)
      .field("window_s", parsed.windowSeconds)
      .field("anchor_s", anchor)
      .key("series")
      .beginArray();
  for (const SeriesSnapshot& series : snap.series()) {
    if (parsed.hasJob && series.key.job != parsed.job) continue;
    if (parsed.hasRank && series.key.rank != parsed.rank) continue;
    if (series.key.metric != parsed.metric) continue;
    LadderWindow window =
        ladderRead(series.key, parsed.windowSeconds, anchor);
    if (!window.fromLadder) {
      // Forwarded series (ingestWindow bypasses the per-record hook) or
      // a window size outside the configured ladder: fold the trailing
      // fine windows from the snapshot instead.  Counted — a high
      // fallback rate says the ladder config misses a dashboard window.
      ladderFallbacks_.fetch_add(1, std::memory_order_relaxed);
      for (const WindowRollup& row :
           snap.range(series.key, anchor - parsed.windowSeconds, anchor,
                      Resolution::kFine)) {
        window.rollup.combine(row.rollup);
        ++window.buckets;
      }
    }
    w.beginObject()
        .field("job", series.key.job)
        .field("rank", static_cast<std::int64_t>(series.key.rank))
        .field("min", window.rollup.min)
        .field("avg", window.rollup.avg())
        .field("max", window.rollup.max)
        .field("count", window.rollup.count)
        .field("buckets", std::uint64_t{window.buckets})
        .field("from_ladder", window.fromLadder)
        .endObject();
  }
  w.endArray().endObject();
  out << '\n';
  return out.str();
}

std::string QueryService::runExport(const StoreSnapshot& snap,
                                    const Parsed& parsed) {
  const tsdb::Engine* engine = daemon_.engine();
  std::ostringstream out;
  json::Writer w(out);
  w.beginObject()
      .field("source", engine != nullptr ? "engine" : "snapshot")
      .field("resolution",
             parsed.resolution == Resolution::kCoarse ? "coarse" : "fine")
      .key("series")
      .beginArray();
  auto writeSeries = [&](const SeriesKey& key,
                         const std::vector<WindowRollup>& rows) {
    w.beginObject()
        .field("job", key.job)
        .field("rank", static_cast<std::int64_t>(key.rank))
        .field("metric", key.metric)
        .key("windows")
        .beginArray();
    for (const WindowRollup& row : rows) {
      writeWindowRow(w, row);
    }
    w.endArray().endObject();
  };
  if (engine != nullptr) {
    // Deep history: the engine is a strict superset of the store's
    // bounded retention (everything ingested was appended).
    for (const SeriesKey& key : engine->seriesKeys()) {
      if (parsed.hasJob && key.job != parsed.job) continue;
      if (parsed.hasRank && key.rank != parsed.rank) continue;
      if (!parsed.metric.empty() && key.metric != parsed.metric) continue;
      writeSeries(key,
                  engine->range(key, parsed.t0, parsed.t1, parsed.resolution));
    }
  } else {
    for (const SeriesSnapshot& series : snap.series()) {
      if (parsed.hasJob && series.key.job != parsed.job) continue;
      if (parsed.hasRank && series.key.rank != parsed.rank) continue;
      if (!parsed.metric.empty() && series.key.metric != parsed.metric) {
        continue;
      }
      writeSeries(series.key, snap.range(series.key, parsed.t0, parsed.t1,
                                         parsed.resolution));
    }
  }
  w.endArray().endObject();
  out << '\n';
  return out.str();
}

QueryService::LadderWindow QueryService::ladderRead(const SeriesKey& key,
                                                    double windowSeconds,
                                                    double anchor) {
  LadderWindow out;
  std::size_t ringIndex = options_.ladderWindowsSeconds.size();
  for (std::size_t i = 0; i < options_.ladderWindowsSeconds.size(); ++i) {
    if (options_.ladderWindowsSeconds[i] == windowSeconds) {
      ringIndex = i;
      break;
    }
  }
  if (ringIndex == options_.ladderWindowsSeconds.size()) {
    return out;  // window size not on the ladder
  }
  std::lock_guard<std::mutex> lock(ladderMutex_);
  const auto it = ladder_.find({key.job, key.rank, names::intern(key.metric)});
  if (it == ladder_.end()) {
    return out;  // series never directly ingested (forwarded)
  }
  const LadderRing& ring = it->second.rings[ringIndex];
  const double sub =
      windowSeconds / static_cast<double>(options_.ladderBuckets);
  for (std::size_t slot = 0; slot < ring.slots.size(); ++slot) {
    const std::int64_t idx = ring.slotIndex[slot];
    if (idx < 0) continue;
    const double slotStart = static_cast<double>(idx) * sub;
    // Keep sub-windows intersecting the trailing [anchor - w, anchor].
    if (slotStart + sub <= anchor - windowSeconds || slotStart > anchor) {
      continue;
    }
    out.rollup.combine(ring.slots[slot]);
    ++out.buckets;
  }
  out.fromLadder = true;
  return out;
}

// --- result cache ----------------------------------------------------------

std::string QueryService::cacheLookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(cacheMutex_);
  const auto it = cacheIndex_.find(key);
  if (it == cacheIndex_.end()) {
    return "";
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->body;
}

void QueryService::cacheInsert(const std::string& key,
                               std::uint64_t generation,
                               const std::string& body) {
  std::lock_guard<std::mutex> lock(cacheMutex_);
  if (const auto it = cacheIndex_.find(key); it != cacheIndex_.end()) {
    // Another thread computed the same miss concurrently; keep the
    // existing entry (same generation -> bit-identical body anyway).
    return;
  }
  lru_.push_front(CacheEntry{key, generation, body});
  cacheIndex_[key] = lru_.begin();
  cacheBytes_ += key.size() + body.size();
  while (!lru_.empty() && (lru_.size() > options_.cacheMaxEntries ||
                           cacheBytes_ > options_.cacheMaxBytes)) {
    const CacheEntry& victim = lru_.back();
    cacheBytes_ -= victim.key.size() + victim.body.size();
    cacheIndex_.erase(victim.key);
    lru_.pop_back();
    cacheEvictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryService::cacheSweep(std::uint64_t keepGeneration) {
  std::lock_guard<std::mutex> lock(cacheMutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->generation != keepGeneration) {
      cacheBytes_ -= it->key.size() + it->body.size();
      cacheIndex_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace zerosum::aggregator
