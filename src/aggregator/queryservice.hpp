// QueryService: the high-traffic read plane of the aggregation daemon —
// the ROADMAP's "serve many simultaneous dashboard readers while jobs
// are writing" milestone (DESIGN.md §12).
//
// Three mechanisms, layered over the existing store/engine/HTTP stack:
//
//   1. Snapshot-isolated reads.  Readers never touch the live
//      RollupStore: the service keeps one shared immutable StoreSnapshot
//      (shared_ptr, copy-on-read) and refreshes it only when the store's
//      dataGeneration() has advanced AND a minimum interval has elapsed.
//      Every query runs against a frozen generation — no torn reads, no
//      reader-side shard-lock contention against ingest, and the cost of
//      the full-store copy is amortized over every reader in the window.
//
//   2. A bounded query-result cache keyed by (normalized query, data
//      generation).  GET and POST forms of the same logical query
//      normalize to one canonical key, so they share entries; a key
//      embeds the generation it was computed at, so an ingest-driven
//      generation bump invalidates implicitly (stale keys can never be
//      asked for again) and a sweep on refresh reclaims the memory.
//      Within one generation the cache returns bit-identical bodies.
//      On top of the cache, precomputed downsample ladders for the
//      common dashboard windows (last 1m / 10m / 1h) are maintained
//      incrementally on ingest — a ring of sub-window rollups per
//      series per window — so "last minute, all ranks" is O(series),
//      not O(series x windows).  Series that arrive through federation
//      forwarding (ingestWindow, which bypasses the per-record hook)
//      fall back to computing the window from the snapshot, counted.
//
//   3. Load shedding with priority classes.  Queries are kLive
//      (dashboard) or kBulk (export); each poll grants a bounded budget
//      (live gets the whole budget, bulk a small slice that closes
//      entirely while the daemon's PressureLevel is elevated), and a
//      query past its budget is shed with 429 + Retry-After scaled by
//      pressure instead of queueing — reads can never starve ingest.
//      Cache hits are always served: they cost no snapshot work.
//
// Thread safety: execute() may be called from any thread.  The live
// store underneath is the sharded RollupStore (safe), pressure() reads
// are advisory, and the service's own state is split across small
// mutexes (snapshot, cache, ladder, admission) that are never nested.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "aggregator/store.hpp"
#include "common/interning.hpp"
#include "trace/metrics.hpp"

namespace zerosum::aggregator {

class Aggregator;

/// Priority class of one query.  Live beats bulk under load.
enum class QueryClass : std::uint8_t { kLive, kBulk };

[[nodiscard]] const char* queryClassName(QueryClass cls);

struct QueryServiceOptions {
  /// Result-cache bounds; 0 entries disables caching entirely.
  std::size_t cacheMaxEntries = 256;
  std::size_t cacheMaxBytes = 4 * 1024 * 1024;
  /// Snapshot refresh rate limit: even under continuous ingest the
  /// full-store copy is taken at most this often.
  double snapshotMinIntervalSeconds = 0.25;
  /// Admission budgets, reset by beginPoll(): total queries per poll,
  /// and the slice of that total bulk-class queries may use.
  std::size_t maxQueriesPerPoll = 128;
  std::size_t bulkQueriesPerPoll = 8;
  /// Base Retry-After for shed queries; scaled x2 / x5 as the daemon's
  /// pressure ladder rises.
  double retryAfterSeconds = 1.0;
  /// Dashboard ladder windows (seconds) and sub-buckets per window.
  std::vector<double> ladderWindowsSeconds = {60.0, 600.0, 3600.0};
  int ladderBuckets = 60;
};

struct QueryServiceCounters {
  std::uint64_t served = 0;       ///< 200s, cache hits included
  std::uint64_t servedLive = 0;
  std::uint64_t servedBulk = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheEvictions = 0;
  std::uint64_t shedLive = 0;     ///< 429s per class
  std::uint64_t shedBulk = 0;
  std::uint64_t snapshotRefreshes = 0;
  std::uint64_t ladderRecords = 0;    ///< records folded into the ladder
  std::uint64_t ladderFallbacks = 0;  ///< window series answered from the
                                      ///< snapshot (forwarded series)
  std::uint64_t badRequests = 0;  ///< 400s
};

/// Outcome of one execute().
struct QueryResult {
  int status = 200;  ///< 200, 400, or 429
  std::string body;  ///< JSON document (trailing newline included)
  bool cacheHit = false;
  double retryAfterSeconds = 0.0;  ///< > 0 only when status == 429
};

class QueryService {
 public:
  /// `daemon` must outlive the service.
  explicit QueryService(const Aggregator& daemon,
                        QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a fresh admission budget.  The owner's event loop calls this
  /// once per iteration, before the HTTP poll that delivers queries.
  void beginPoll(double nowSeconds);

  /// Ingest hook (called by the daemon per record): folds one
  /// observation into the downsample ladders.  Cheap — a few ring-slot
  /// merges under one mutex.
  void onRecord(const std::string& job, int rank, names::Id metric,
                double timeSeconds, double value);

  /// Executes one JSON query (POST body grammar; see DESIGN.md §12).
  /// Never throws: malformed input yields 400, shed load 429.
  [[nodiscard]] QueryResult execute(const std::string& requestJson,
                                    QueryClass cls, double nowSeconds);

  /// Same queries in GET form: `op` from the path, parameters from the
  /// decoded query string.  Normalizes to the identical cache key as the
  /// POST form.
  [[nodiscard]] QueryResult executeParams(
      const std::string& op, const std::map<std::string, std::string>& params,
      QueryClass cls, double nowSeconds);

  /// The shared read snapshot, refreshing it first when the store moved
  /// and the rate limit allows.  Never null after the first call.
  [[nodiscard]] std::shared_ptr<const StoreSnapshot> snapshot(
      double nowSeconds);

  [[nodiscard]] QueryServiceCounters counters() const;
  [[nodiscard]] std::size_t cacheEntries() const;
  [[nodiscard]] std::size_t cacheBytes() const;
  [[nodiscard]] const QueryServiceOptions& options() const {
    return options_;
  }

  /// The {"op":"stats"} body — the service's own observability surface.
  [[nodiscard]] std::string statsJson(double nowSeconds);

 private:
  /// A query parsed and normalized: every executable field made
  /// explicit, defaults applied, so `key` is canonical across GET/POST.
  struct Parsed {
    std::string op;
    std::string error;  ///< non-empty -> 400
    std::string job;
    bool hasJob = false;
    int rank = 0;
    bool hasRank = false;
    std::string metric;
    double t0 = 0.0;
    double t1 = 1e18;
    Resolution resolution = Resolution::kFine;
    double windowSeconds = 60.0;  ///< `window` op
    std::string key;              ///< canonical cache key (sans generation)
  };

  /// One ring of sub-window rollups for one ladder window.
  struct LadderRing {
    std::vector<Rollup> slots;
    std::vector<std::int64_t> slotIndex;  ///< absolute sub-window; -1 empty
  };
  struct LadderSeries {
    std::vector<LadderRing> rings;  ///< one per options_.ladderWindowsSeconds
  };
  /// Combined result of reading one ladder window of one series.
  struct LadderWindow {
    Rollup rollup;
    std::size_t buckets = 0;
    bool fromLadder = false;
  };

  static Parsed parseJson(const std::string& requestJson);
  static Parsed parseParams(const std::string& op,
                            const std::map<std::string, std::string>& params);
  /// Fills Parsed::key and validates op-specific requirements.
  static void normalize(Parsed& parsed);

  [[nodiscard]] QueryResult run(Parsed& parsed, QueryClass cls,
                                double nowSeconds);
  /// Admission control: true to execute now, false -> shed (429).
  bool admit(QueryClass cls, double* retryAfter);
  void finish(QueryClass cls, bool cacheHit, double elapsedSeconds);

  [[nodiscard]] std::string runSeries(const StoreSnapshot& snap);
  [[nodiscard]] std::string runSnapshotOp(const StoreSnapshot& snap,
                                          const Parsed& parsed);
  [[nodiscard]] std::string runRange(const StoreSnapshot& snap,
                                     const Parsed& parsed);
  [[nodiscard]] std::string runWindow(const StoreSnapshot& snap,
                                      const Parsed& parsed);
  [[nodiscard]] std::string runExport(const StoreSnapshot& snap,
                                      const Parsed& parsed);

  /// Reads one series' trailing window from the ladder; fromLadder false
  /// when the series has no ladder state (forwarded series).
  [[nodiscard]] LadderWindow ladderRead(const SeriesKey& key,
                                        double windowSeconds, double anchor);

  [[nodiscard]] std::string cacheLookup(const std::string& key);
  void cacheInsert(const std::string& key, std::uint64_t generation,
                   const std::string& body);
  void cacheSweep(std::uint64_t keepGeneration);

  const Aggregator& daemon_;
  QueryServiceOptions options_;

  // --- shared snapshot (snapMutex_) ----------------------------------------
  mutable std::mutex snapMutex_;
  std::shared_ptr<const StoreSnapshot> snap_;
  double lastRefreshSeconds_ = -1e18;

  // --- result cache (cacheMutex_) ------------------------------------------
  struct CacheEntry {
    std::string key;
    std::uint64_t generation = 0;
    std::string body;
  };
  mutable std::mutex cacheMutex_;
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::map<std::string, std::list<CacheEntry>::iterator> cacheIndex_;
  std::size_t cacheBytes_ = 0;

  // --- downsample ladder (ladderMutex_) ------------------------------------
  mutable std::mutex ladderMutex_;
  std::map<std::tuple<std::string, int, names::Id>, LadderSeries> ladder_;
  double ladderMaxTimeSeconds_ = 0.0;

  // --- admission (admitMutex_) ---------------------------------------------
  mutable std::mutex admitMutex_;
  std::size_t queriesThisPoll_ = 0;
  std::size_t bulkThisPoll_ = 0;

  // --- counters (atomic; read via counters()) ------------------------------
  std::atomic<std::uint64_t> served_{0}, servedLive_{0}, servedBulk_{0};
  std::atomic<std::uint64_t> cacheHits_{0}, cacheMisses_{0},
      cacheEvictions_{0};
  std::atomic<std::uint64_t> shedLive_{0}, shedBulk_{0};
  std::atomic<std::uint64_t> snapshotRefreshes_{0};
  std::atomic<std::uint64_t> ladderRecords_{0}, ladderFallbacks_{0};
  std::atomic<std::uint64_t> badRequests_{0};

  /// Per-class service latency, exported as zs.query.latency.* in
  /// /metrics.  Per-instance handles: tests reset the registry.
  trace::LatencyHistogram* latLive_ = nullptr;
  trace::LatencyHistogram* latBulk_ = nullptr;
  trace::Counter* ctrServed_ = nullptr;
  trace::Counter* ctrShed_ = nullptr;
  trace::Counter* ctrCacheHits_ = nullptr;
};

}  // namespace zerosum::aggregator
