#include "aggregator/store.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace zerosum::aggregator {

RollupStore::RollupStore(StoreOptions options) : options_(options) {
  if (options_.fineWindowSeconds <= 0.0) {
    throw ConfigError("RollupStore fine window must be positive");
  }
  if (options_.coarseFactor < 2) {
    throw ConfigError("RollupStore coarse factor must be >= 2");
  }
  if (options_.fineRetentionWindows < 1 ||
      options_.coarseRetentionWindows < 1) {
    throw ConfigError("RollupStore retention must be >= 1 window");
  }
  if (options_.shards < 1) {
    throw ConfigError("RollupStore needs >= 1 shard");
  }
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

RollupStore::Shard& RollupStore::shardOf(const SeriesKey& key) {
  const std::size_t h = std::hash<std::string>{}(key.metric) ^
                        (std::hash<int>{}(key.rank) << 1U) ^
                        (std::hash<std::string>{}(key.job) << 2U);
  return *shards_[h % shards_.size()];
}

const RollupStore::Shard& RollupStore::shardOf(const SeriesKey& key) const {
  return const_cast<RollupStore*>(this)->shardOf(key);
}

double RollupStore::windowSeconds(Resolution resolution) const {
  return resolution == Resolution::kFine
             ? options_.fineWindowSeconds
             : options_.fineWindowSeconds * options_.coarseFactor;
}

void RollupStore::mergeBounded(std::map<std::int64_t, Rollup>& windows,
                               std::int64_t index, double value,
                               int retention, std::uint64_t& evicted) {
  const std::int64_t newest =
      windows.empty() ? index : std::max(index, windows.rbegin()->first);
  const std::int64_t oldestKept = newest - retention + 1;
  if (index < oldestKept) {
    return;  // beyond the retention horizon: too old to matter
  }
  windows[index].merge(value);
  // Evict windows that fell off the horizon (at most a handful per
  // ingest; amortized O(1)).
  while (!windows.empty() && windows.begin()->first < oldestKept) {
    windows.erase(windows.begin());
    ++evicted;
  }
}

void RollupStore::mergeLocked(Series& series, double timeSeconds,
                              double value, Shard& shard) {
  const auto fineIndex = static_cast<std::int64_t>(
      std::floor(timeSeconds / options_.fineWindowSeconds));
  mergeBounded(series.fine, fineIndex, value, options_.fineRetentionWindows,
               shard.evicted);
  const std::int64_t coarseIndex =
      fineIndex >= 0 ? fineIndex / options_.coarseFactor
                     : (fineIndex - options_.coarseFactor + 1) /
                           options_.coarseFactor;
  mergeBounded(series.coarse, coarseIndex, value,
               options_.coarseRetentionWindows, shard.evicted);
  ++shard.ingested;
}

void RollupStore::ingest(const SeriesKey& key, double timeSeconds,
                         double value) {
  if (!std::isfinite(timeSeconds) || !std::isfinite(value) ||
      timeSeconds < 0.0) {
    return;  // hostile or corrupt input: ignore, never throw on ingest
  }
  Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  mergeLocked(shard.series[key], timeSeconds, value, shard);
}

void RollupStore::ingest(const SeriesKey& key, SeriesRef& ref,
                         double timeSeconds, double value) {
  if (!std::isfinite(timeSeconds) || !std::isfinite(value) ||
      timeSeconds < 0.0) {
    return;  // hostile or corrupt input: ignore, never throw on ingest
  }
  if (ref.shard == nullptr) {
    ref.shard = &shardOf(key);  // a key's shard never changes
  }
  std::lock_guard<std::mutex> lock(ref.shard->mutex);
  // Revalidate under the shard lock: evictSource bumps the generation
  // before erasing, so a stale ref re-resolves rather than following a
  // freed node.
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (ref.series == nullptr || ref.generation != gen) {
    ref.series = &ref.shard->series[key];
    ref.generation = gen;
  }
  mergeLocked(*ref.series, timeSeconds, value, *ref.shard);
}

std::size_t RollupStore::evictSource(const std::string& job, int rank) {
  std::size_t dropped = 0;
  // Invalidate outstanding SeriesRefs before any node is freed.
  generation_.fetch_add(1, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->series.begin(); it != shard->series.end();) {
      if (it->first.job == job && it->first.rank == rank) {
        shard->evicted += it->second.fine.size() + it->second.coarse.size();
        it = shard->series.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::optional<WindowRollup> RollupStore::latest(const SeriesKey& key,
                                                Resolution resolution) const {
  const Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(key);
  if (it == shard.series.end()) {
    return std::nullopt;
  }
  const auto& windows =
      resolution == Resolution::kFine ? it->second.fine : it->second.coarse;
  if (windows.empty()) {
    return std::nullopt;
  }
  const double width = windowSeconds(resolution);
  WindowRollup out;
  out.windowStartSeconds =
      static_cast<double>(windows.rbegin()->first) * width;
  out.windowSeconds = width;
  out.rollup = windows.rbegin()->second;
  return out;
}

std::vector<WindowRollup> RollupStore::range(const SeriesKey& key, double t0,
                                             double t1,
                                             Resolution resolution) const {
  std::vector<WindowRollup> out;
  if (t1 < t0) {
    return out;
  }
  const Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(key);
  if (it == shard.series.end()) {
    return out;
  }
  const auto& windows =
      resolution == Resolution::kFine ? it->second.fine : it->second.coarse;
  const double width = windowSeconds(resolution);
  const auto first = static_cast<std::int64_t>(std::floor(t0 / width));
  const auto last = static_cast<std::int64_t>(std::floor(t1 / width));
  for (auto w = windows.lower_bound(first);
       w != windows.end() && w->first <= last; ++w) {
    WindowRollup row;
    row.windowStartSeconds = static_cast<double>(w->first) * width;
    row.windowSeconds = width;
    row.rollup = w->second;
    out.push_back(row);
  }
  return out;
}

std::vector<SeriesKey> RollupStore::keys() const {
  std::vector<SeriesKey> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, series] : shard->series) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SeriesKey> RollupStore::keysOf(const std::string& job,
                                           int rank) const {
  std::vector<SeriesKey> out;
  for (const auto& key : keys()) {
    if (key.job == job && key.rank == rank) {
      out.push_back(key);
    }
  }
  return out;
}

std::size_t RollupStore::seriesCount() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    count += shard->series.size();
  }
  return count;
}

std::uint64_t RollupStore::samplesIngested() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->ingested;
  }
  return total;
}

std::uint64_t RollupStore::windowsEvicted() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->evicted;
  }
  return total;
}

}  // namespace zerosum::aggregator
