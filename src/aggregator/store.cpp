#include "aggregator/store.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace zerosum::aggregator {

RollupStore::RollupStore(StoreOptions options) : options_(options) {
  if (options_.fineWindowSeconds <= 0.0) {
    throw ConfigError("RollupStore fine window must be positive");
  }
  if (options_.coarseFactor < 2) {
    throw ConfigError("RollupStore coarse factor must be >= 2");
  }
  if (options_.fineRetentionWindows < 1 ||
      options_.coarseRetentionWindows < 1) {
    throw ConfigError("RollupStore retention must be >= 1 window");
  }
  if (options_.shards < 1) {
    throw ConfigError("RollupStore needs >= 1 shard");
  }
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

RollupStore::Shard& RollupStore::shardOf(const SeriesKey& key) {
  const std::size_t h = std::hash<std::string>{}(key.metric) ^
                        (std::hash<int>{}(key.rank) << 1U) ^
                        (std::hash<std::string>{}(key.job) << 2U);
  return *shards_[h % shards_.size()];
}

const RollupStore::Shard& RollupStore::shardOf(const SeriesKey& key) const {
  return const_cast<RollupStore*>(this)->shardOf(key);
}

double RollupStore::windowSeconds(Resolution resolution) const {
  return resolution == Resolution::kFine
             ? options_.fineWindowSeconds
             : options_.fineWindowSeconds * options_.coarseFactor;
}

void RollupStore::mergeBounded(std::map<std::int64_t, Rollup>& windows,
                               std::int64_t index, double value,
                               int retention, std::uint64_t& evicted) {
  const std::int64_t newest =
      windows.empty() ? index : std::max(index, windows.rbegin()->first);
  const std::int64_t oldestKept = newest - retention + 1;
  if (index < oldestKept) {
    return;  // beyond the retention horizon: too old to matter
  }
  windows[index].merge(value);
  // Evict windows that fell off the horizon (at most a handful per
  // ingest; amortized O(1)).
  while (!windows.empty() && windows.begin()->first < oldestKept) {
    windows.erase(windows.begin());
    ++evicted;
  }
}

void RollupStore::markDirtyLocked(Series& series, Resolution resolution,
                                  std::int64_t index, Shard& shard) {
  if (!trackDirty_.load(std::memory_order_relaxed)) {
    return;
  }
  auto& dirty = resolution == Resolution::kFine ? series.dirtyFine
                                                : series.dirtyCoarse;
  if (dirty.insert(index).second) {
    ++shard.dirty;
  }
}

void RollupStore::mergeLocked(Series& series, double timeSeconds,
                              double value, Shard& shard) {
  dataGeneration_.fetch_add(1, std::memory_order_release);
  const auto fineIndex = static_cast<std::int64_t>(
      std::floor(timeSeconds / options_.fineWindowSeconds));
  mergeBounded(series.fine, fineIndex, value, options_.fineRetentionWindows,
               shard.evicted);
  markDirtyLocked(series, Resolution::kFine, fineIndex, shard);
  const std::int64_t coarseIndex =
      fineIndex >= 0 ? fineIndex / options_.coarseFactor
                     : (fineIndex - options_.coarseFactor + 1) /
                           options_.coarseFactor;
  mergeBounded(series.coarse, coarseIndex, value,
               options_.coarseRetentionWindows, shard.evicted);
  markDirtyLocked(series, Resolution::kCoarse, coarseIndex, shard);
  ++shard.ingested;
}

void RollupStore::ingest(const SeriesKey& key, double timeSeconds,
                         double value) {
  if (!std::isfinite(timeSeconds) || !std::isfinite(value) ||
      timeSeconds < 0.0) {
    return;  // hostile or corrupt input: ignore, never throw on ingest
  }
  Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  mergeLocked(shard.series[key], timeSeconds, value, shard);
}

void RollupStore::ingest(const SeriesKey& key, SeriesRef& ref,
                         double timeSeconds, double value) {
  if (!std::isfinite(timeSeconds) || !std::isfinite(value) ||
      timeSeconds < 0.0) {
    return;  // hostile or corrupt input: ignore, never throw on ingest
  }
  if (ref.shard == nullptr) {
    ref.shard = &shardOf(key);  // a key's shard never changes
  }
  std::lock_guard<std::mutex> lock(ref.shard->mutex);
  // Revalidate under the shard lock: evictSource bumps the generation
  // before erasing, so a stale ref re-resolves rather than following a
  // freed node.
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (ref.series == nullptr || ref.generation != gen) {
    ref.series = &ref.shard->series[key];
    ref.generation = gen;
  }
  mergeLocked(*ref.series, timeSeconds, value, *ref.shard);
}

std::size_t RollupStore::evictSource(const std::string& job, int rank) {
  std::size_t dropped = 0;
  // Invalidate outstanding SeriesRefs before any node is freed.
  generation_.fetch_add(1, std::memory_order_release);
  dataGeneration_.fetch_add(1, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->series.begin(); it != shard->series.end();) {
      if (it->first.job == job && it->first.rank == rank) {
        shard->evicted += it->second.fine.size() + it->second.coarse.size();
        shard->dirty -=
            it->second.dirtyFine.size() + it->second.dirtyCoarse.size();
        it = shard->series.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

bool RollupStore::ingestWindow(const SeriesKey& key, Resolution resolution,
                               std::int64_t windowIndex,
                               const Rollup& rollup) {
  if (rollup.count == 0 || !std::isfinite(rollup.min) ||
      !std::isfinite(rollup.max) || !std::isfinite(rollup.sum)) {
    return false;  // hostile or corrupt input: ignore, never throw
  }
  Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Series& series = shard.series[key];
  auto& windows =
      resolution == Resolution::kFine ? series.fine : series.coarse;
  const int retention = resolution == Resolution::kFine
                            ? options_.fineRetentionWindows
                            : options_.coarseRetentionWindows;
  const std::int64_t newest =
      windows.empty() ? windowIndex
                      : std::max(windowIndex, windows.rbegin()->first);
  if (windowIndex < newest - retention + 1) {
    return false;  // beyond the retention horizon: too old to matter
  }
  auto [it, inserted] = windows.try_emplace(windowIndex);
  const bool newer = inserted || rollup.count > it->second.count;
  if (newer) {
    // Cumulative snapshots are monotone in count: higher count = newer.
    // Replacing (never combining) keeps retransmits idempotent.
    it->second = rollup;
    markDirtyLocked(series, resolution, windowIndex, shard);
    ++shard.ingested;
    dataGeneration_.fetch_add(1, std::memory_order_release);
  } else if (inserted) {
    windows.erase(it);
  }
  while (!windows.empty() && windows.begin()->first < newest - retention + 1) {
    windows.erase(windows.begin());
    ++shard.evicted;
  }
  return newer;
}

void RollupStore::merge(const RollupStore& other) {
  for (const auto& otherShard : other.shards_) {
    // Snapshot the other shard's windows under its lock, then release it
    // before taking this store's locks (no lock ordering between stores).
    std::vector<std::pair<SeriesKey, Series>> copied;
    {
      std::lock_guard<std::mutex> lock(otherShard->mutex);
      copied.reserve(otherShard->series.size());
      for (const auto& [key, series] : otherShard->series) {
        copied.emplace_back(key, series);
      }
    }
    for (auto& [key, incoming] : copied) {
      Shard& shard = shardOf(key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      Series& mine = shard.series[key];
      const std::pair<std::map<std::int64_t, Rollup>*,
                      std::map<std::int64_t, Rollup>*>
          planes[] = {{&mine.fine, &incoming.fine},
                      {&mine.coarse, &incoming.coarse}};
      const int retentions[] = {options_.fineRetentionWindows,
                                options_.coarseRetentionWindows};
      for (int p = 0; p < 2; ++p) {
        auto& target = *planes[p].first;
        const auto& source = *planes[p].second;
        for (const auto& [index, rollup] : source) {
          target[index].combine(rollup);
        }
        if (!target.empty()) {
          const std::int64_t oldestKept =
              target.rbegin()->first - retentions[p] + 1;
          while (!target.empty() && target.begin()->first < oldestKept) {
            target.erase(target.begin());
            ++shard.evicted;
          }
        }
      }
    }
  }
  dataGeneration_.fetch_add(1, std::memory_order_release);
}

StoreSnapshot RollupStore::snapshot() const {
  StoreSnapshot out;
  out.fineWindowSeconds_ = options_.fineWindowSeconds;
  out.coarseWindowSeconds_ =
      options_.fineWindowSeconds * options_.coarseFactor;
  // All shard locks, in index order (writers only ever hold one shard
  // lock, so this cannot deadlock against ingest): the copy and the
  // generation reading describe exactly the same instant.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex);
    total += shard->series.size();
  }
  out.generation_ = dataGeneration_.load(std::memory_order_acquire);
  out.series_.reserve(total);
  for (const auto& shard : shards_) {
    for (const auto& [key, series] : shard->series) {
      SeriesSnapshot snap;
      snap.key = key;
      snap.fine = series.fine;
      snap.coarse = series.coarse;
      out.series_.push_back(std::move(snap));
    }
  }
  locks.clear();
  std::sort(out.series_.begin(), out.series_.end(),
            [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
              return a.key < b.key;
            });
  return out;
}

const SeriesSnapshot* StoreSnapshot::find(const SeriesKey& key) const {
  const auto it = std::lower_bound(
      series_.begin(), series_.end(), key,
      [](const SeriesSnapshot& s, const SeriesKey& k) { return s.key < k; });
  if (it == series_.end() || !(it->key == key)) {
    return nullptr;
  }
  return &*it;
}

std::optional<WindowRollup> StoreSnapshot::latest(
    const SeriesKey& key, Resolution resolution) const {
  const SeriesSnapshot* series = find(key);
  if (series == nullptr) {
    return std::nullopt;
  }
  const auto& windows =
      resolution == Resolution::kFine ? series->fine : series->coarse;
  if (windows.empty()) {
    return std::nullopt;
  }
  const double width = resolution == Resolution::kFine
                           ? fineWindowSeconds_
                           : coarseWindowSeconds_;
  WindowRollup out;
  out.windowStartSeconds = static_cast<double>(windows.rbegin()->first) * width;
  out.windowSeconds = width;
  out.rollup = windows.rbegin()->second;
  return out;
}

std::vector<WindowRollup> StoreSnapshot::range(const SeriesKey& key, double t0,
                                               double t1,
                                               Resolution resolution) const {
  std::vector<WindowRollup> out;
  if (t1 < t0) {
    return out;
  }
  const SeriesSnapshot* series = find(key);
  if (series == nullptr) {
    return out;
  }
  const auto& windows =
      resolution == Resolution::kFine ? series->fine : series->coarse;
  const double width = resolution == Resolution::kFine
                           ? fineWindowSeconds_
                           : coarseWindowSeconds_;
  const auto first = static_cast<std::int64_t>(std::floor(t0 / width));
  const auto last = static_cast<std::int64_t>(std::floor(t1 / width));
  for (auto w = windows.lower_bound(first);
       w != windows.end() && w->first <= last; ++w) {
    WindowRollup row;
    row.windowStartSeconds = static_cast<double>(w->first) * width;
    row.windowSeconds = width;
    row.rollup = w->second;
    out.push_back(row);
  }
  return out;
}

void RollupStore::enableDirtyTracking() {
  trackDirty_.store(true, std::memory_order_relaxed);
}

std::size_t RollupStore::drainDirty(std::vector<DirtyWindow>& out,
                                    std::size_t maxWindows) {
  std::size_t appended = 0;
  for (auto& shard : shards_) {
    if (appended >= maxWindows) {
      break;
    }
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->dirty == 0) {
      continue;
    }
    for (auto& [key, series] : shard->series) {
      const std::pair<Resolution, std::set<std::int64_t>*> planes[] = {
          {Resolution::kFine, &series.dirtyFine},
          {Resolution::kCoarse, &series.dirtyCoarse}};
      for (const auto& [resolution, dirty] : planes) {
        const auto& windows =
            resolution == Resolution::kFine ? series.fine : series.coarse;
        while (!dirty->empty() && appended < maxWindows) {
          const std::int64_t index = *dirty->begin();
          dirty->erase(dirty->begin());
          --shard->dirty;
          const auto it = windows.find(index);
          if (it == windows.end()) {
            continue;  // evicted since it was marked
          }
          DirtyWindow w;
          w.key = key;
          w.resolution = resolution;
          w.windowIndex = index;
          w.rollup = it->second;
          out.push_back(std::move(w));
          ++appended;
        }
        if (appended >= maxWindows) {
          break;
        }
      }
      if (appended >= maxWindows) {
        break;
      }
    }
  }
  return appended;
}

void RollupStore::markAllDirty() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto& [key, series] : shard->series) {
      for (const auto& [index, rollup] : series.fine) {
        if (series.dirtyFine.insert(index).second) {
          ++shard->dirty;
        }
      }
      for (const auto& [index, rollup] : series.coarse) {
        if (series.dirtyCoarse.insert(index).second) {
          ++shard->dirty;
        }
      }
    }
  }
}

std::size_t RollupStore::dirtyCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->dirty;
  }
  return total;
}

std::optional<WindowRollup> RollupStore::latest(const SeriesKey& key,
                                                Resolution resolution) const {
  const Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(key);
  if (it == shard.series.end()) {
    return std::nullopt;
  }
  const auto& windows =
      resolution == Resolution::kFine ? it->second.fine : it->second.coarse;
  if (windows.empty()) {
    return std::nullopt;
  }
  const double width = windowSeconds(resolution);
  WindowRollup out;
  out.windowStartSeconds =
      static_cast<double>(windows.rbegin()->first) * width;
  out.windowSeconds = width;
  out.rollup = windows.rbegin()->second;
  return out;
}

std::vector<WindowRollup> RollupStore::range(const SeriesKey& key, double t0,
                                             double t1,
                                             Resolution resolution) const {
  std::vector<WindowRollup> out;
  if (t1 < t0) {
    return out;
  }
  const Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(key);
  if (it == shard.series.end()) {
    return out;
  }
  const auto& windows =
      resolution == Resolution::kFine ? it->second.fine : it->second.coarse;
  const double width = windowSeconds(resolution);
  const auto first = static_cast<std::int64_t>(std::floor(t0 / width));
  const auto last = static_cast<std::int64_t>(std::floor(t1 / width));
  for (auto w = windows.lower_bound(first);
       w != windows.end() && w->first <= last; ++w) {
    WindowRollup row;
    row.windowStartSeconds = static_cast<double>(w->first) * width;
    row.windowSeconds = width;
    row.rollup = w->second;
    out.push_back(row);
  }
  return out;
}

std::vector<SeriesKey> RollupStore::keys() const {
  std::vector<SeriesKey> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, series] : shard->series) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SeriesKey> RollupStore::keysOf(const std::string& job,
                                           int rank) const {
  std::vector<SeriesKey> out;
  for (const auto& key : keys()) {
    if (key.job == job && key.rank == rank) {
      out.push_back(key);
    }
  }
  return out;
}

std::size_t RollupStore::seriesCount() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    count += shard->series.size();
  }
  return count;
}

std::uint64_t RollupStore::samplesIngested() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->ingested;
  }
  return total;
}

std::uint64_t RollupStore::windowsEvicted() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->evicted;
  }
  return total;
}

}  // namespace zerosum::aggregator
