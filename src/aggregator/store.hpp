// RollupStore: the aggregation daemon's time-series state.
//
// Series are keyed by (job, rank, metric) and sharded by key hash so
// concurrent ingest from many connections contends on different locks.
// Each series keeps fixed-window rollups — min/avg/max/count, the paper's
// Listing-2 statistic set — at two resolutions (a fine window and a
// coarse window of `coarseFactor` fine widths), with bounded retention
// per resolution: windows older than the newest minus the retention
// depth are evicted, and out-of-order arrivals inside the retention
// horizon merge into the correct window.  Sources that stop reporting
// are evicted wholesale after `staleSeconds` (deltadb-style history
// truncation: the store answers "now" and "recently", not "ever").
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace zerosum::aggregator {

struct StoreOptions {
  double fineWindowSeconds = 1.0;
  /// Coarse window = fine window x this factor.
  int coarseFactor = 10;
  /// Retention depth, in windows, per resolution.
  int fineRetentionWindows = 600;
  int coarseRetentionWindows = 360;
  /// A source is evicted after this long without any frame.
  double staleSeconds = 30.0;
  /// Shard count (power of two); more shards = less ingest contention.
  int shards = 8;
};

/// min/avg/max/count over one window (avg derived from sum/count).
struct Rollup {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double avg() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  void merge(double value) {
    if (count == 0) {
      min = max = value;
    } else {
      min = std::min(min, value);
      max = std::max(max, value);
    }
    sum += value;
    ++count;
  }

  /// Folds another partial rollup over the same window in (federation
  /// merge path).  Exact for min/max/count; the sum is exact arithmetic
  /// too, but bit-identity with a single sequential store holds only when
  /// the two inputs partition the records by series (then each series'
  /// sum was accumulated in the original ingest order).
  void combine(const Rollup& other) {
    if (other.count == 0) {
      return;
    }
    if (count == 0) {
      *this = other;
      return;
    }
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    sum += other.sum;
    count += other.count;
  }
};

struct SeriesKey {
  std::string job;
  int rank = 0;
  std::string metric;

  friend bool operator==(const SeriesKey&, const SeriesKey&) = default;
  friend auto operator<=>(const SeriesKey&, const SeriesKey&) = default;
};

/// One window of one series, as returned by queries.
struct WindowRollup {
  double windowStartSeconds = 0.0;
  double windowSeconds = 0.0;
  Rollup rollup;
};

enum class Resolution : std::uint8_t { kFine, kCoarse };

/// One window flagged as modified since the last drainDirty() — what a
/// federation Forwarder ships upstream.  `rollup` is the window's
/// cumulative snapshot at drain time (see wire.hpp ForwardWindow).
struct DirtyWindow {
  SeriesKey key;
  Resolution resolution = Resolution::kFine;
  std::int64_t windowIndex = 0;
  Rollup rollup;
};

/// Point-in-time copy of one series' retained windows (both planes).
struct SeriesSnapshot {
  SeriesKey key;
  std::map<std::int64_t, Rollup> fine;
  std::map<std::int64_t, Rollup> coarse;
};

/// Immutable point-in-time copy of the whole store, taken under every
/// shard lock so no concurrent ingest can tear it (DESIGN.md §12).  The
/// query service hands one of these (behind a shared_ptr) to every
/// reader: a dashboard query runs against a frozen generation no matter
/// how hard ingest is advancing the live store underneath.
class StoreSnapshot {
 public:
  /// The store's data generation at the instant the copy was taken.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Newest window of a series at the given resolution.
  [[nodiscard]] std::optional<WindowRollup> latest(
      const SeriesKey& key, Resolution resolution = Resolution::kFine) const;

  /// Windows intersecting [t0, t1], oldest first.
  [[nodiscard]] std::vector<WindowRollup> range(
      const SeriesKey& key, double t0, double t1,
      Resolution resolution = Resolution::kFine) const;

  /// All captured series, sorted by (job, rank, metric).
  [[nodiscard]] const std::vector<SeriesSnapshot>& series() const {
    return series_;
  }

  [[nodiscard]] std::size_t seriesCount() const { return series_.size(); }
  [[nodiscard]] double fineWindowSeconds() const { return fineWindowSeconds_; }
  [[nodiscard]] double coarseWindowSeconds() const {
    return coarseWindowSeconds_;
  }

 private:
  friend class RollupStore;

  [[nodiscard]] const SeriesSnapshot* find(const SeriesKey& key) const;

  std::uint64_t generation_ = 0;
  double fineWindowSeconds_ = 1.0;
  double coarseWindowSeconds_ = 10.0;
  std::vector<SeriesSnapshot> series_;  ///< sorted by key
};

class RollupStore {
 private:
  struct Series;
  struct Shard;

 public:
  /// A resolved series handle for repeat ingestion.  The shard a key
  /// hashes to never changes, so it is cached once; the series node is
  /// cached until an eviction bumps the store generation, and then
  /// re-resolved lazily.  Callers that ingest the same series every
  /// period (the daemon) keep one ref per series and skip the per-record
  /// key hash and string-compare map walk.  Treat as opaque.
  struct SeriesRef {
    std::uint64_t generation = 0;
    Shard* shard = nullptr;
    Series* series = nullptr;
  };

  explicit RollupStore(StoreOptions options = {});

  /// Merges one observation into both resolutions.
  void ingest(const SeriesKey& key, double timeSeconds, double value);

  /// Same, through a cached handle: resolves `ref` on first use (or
  /// after an eviction invalidated it) and merges without hashing or
  /// comparing the key strings afterwards.
  void ingest(const SeriesKey& key, SeriesRef& ref, double timeSeconds,
              double value);

  /// Removes every series belonging to (job, rank).  Returns the number
  /// of series dropped.
  std::size_t evictSource(const std::string& job, int rank);

  // --- read-side snapshot surface (DESIGN.md §12) --------------------------

  /// Monotone counter bumped by every mutation (ingest, ingestWindow,
  /// evictSource, merge).  Two equal readings bracket an interval in
  /// which no data changed — the query cache's invalidation signal.
  [[nodiscard]] std::uint64_t dataGeneration() const {
    return dataGeneration_.load(std::memory_order_acquire);
  }

  /// Takes a point-in-time copy of every retained window under all shard
  /// locks (ingest stalls for the duration of the copy, which is why the
  /// query service rate-limits refreshes and shares one snapshot across
  /// readers).  The snapshot's generation() is read under the same
  /// locks, so it exactly identifies the copied state.
  [[nodiscard]] StoreSnapshot snapshot() const;

  // --- federation surface (DESIGN.md §11) ----------------------------------

  /// Applies one forwarded window snapshot: replaces the stored rollup
  /// when the incoming count is higher (a window's cumulative snapshot is
  /// monotone in count, so "more records seen" means "newer").  Returns
  /// false — a merge conflict, counted by the daemon — when the incoming
  /// snapshot is not newer than what is stored (a retransmit, a stale
  /// duplicate routed through a second parent, or two origins claiming
  /// the same series); the stored value is kept in that case unless the
  /// incoming one is strictly newer.  Respects retention exactly like
  /// ingest(): windows beyond the horizon are ignored.
  bool ingestWindow(const SeriesKey& key, Resolution resolution,
                    std::int64_t windowIndex, const Rollup& rollup);

  /// Folds every window of `other` into this store with
  /// Rollup::combine(), enforcing this store's retention bounds — the
  /// root's path to answering queries over the union of per-shard
  /// stores.  When the two stores partition series (consistent-hash
  /// sharding), the result is bit-identical to one store having ingested
  /// everything.
  void merge(const RollupStore& other);

  /// Turns on dirty-window tracking (off by default: the bookkeeping is
  /// only paid by daemons that host a Forwarder).  Every window touched
  /// by ingest()/ingestWindow() afterwards is queued for drainDirty().
  void enableDirtyTracking();
  [[nodiscard]] bool dirtyTrackingEnabled() const {
    return trackDirty_.load(std::memory_order_relaxed);
  }

  /// Moves up to `maxWindows` dirty windows into `out` (appended), each
  /// with a snapshot of its current cumulative rollup, and clears their
  /// dirty marks.  Windows evicted since they were marked are skipped.
  /// Returns the number appended.  More dirt may remain; callers loop.
  std::size_t drainDirty(std::vector<DirtyWindow>& out,
                         std::size_t maxWindows);

  /// Marks every retained window of every series dirty — the full-resync
  /// path after a forwarder reconnects or its upstream set changes.
  void markAllDirty();

  /// Dirty windows currently queued (approximate under concurrency).
  [[nodiscard]] std::size_t dirtyCount() const;

  /// Newest window of a series at the given resolution.
  [[nodiscard]] std::optional<WindowRollup> latest(
      const SeriesKey& key, Resolution resolution = Resolution::kFine) const;

  /// Windows intersecting [t0, t1], oldest first.
  [[nodiscard]] std::vector<WindowRollup> range(
      const SeriesKey& key, double t0, double t1,
      Resolution resolution = Resolution::kFine) const;

  /// All series keys, sorted (job, rank, metric).
  [[nodiscard]] std::vector<SeriesKey> keys() const;
  /// Keys restricted to one (job, rank).
  [[nodiscard]] std::vector<SeriesKey> keysOf(const std::string& job,
                                              int rank) const;

  [[nodiscard]] std::size_t seriesCount() const;
  [[nodiscard]] std::uint64_t samplesIngested() const;
  [[nodiscard]] std::uint64_t windowsEvicted() const;
  [[nodiscard]] const StoreOptions& options() const { return options_; }

 private:
  struct Series {
    /// windowIndex -> rollup, bounded by the retention depth.
    std::map<std::int64_t, Rollup> fine;
    std::map<std::int64_t, Rollup> coarse;
    /// Window indices touched since the last drainDirty() (only
    /// maintained while dirty tracking is on).
    std::set<std::int64_t> dirtyFine;
    std::set<std::int64_t> dirtyCoarse;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<SeriesKey, Series> series;
    std::uint64_t ingested = 0;
    std::uint64_t evicted = 0;
    std::size_t dirty = 0;  ///< dirty-window marks queued in this shard
  };

  [[nodiscard]] Shard& shardOf(const SeriesKey& key);
  [[nodiscard]] const Shard& shardOf(const SeriesKey& key) const;
  [[nodiscard]] double windowSeconds(Resolution resolution) const;

  static void mergeBounded(std::map<std::int64_t, Rollup>& windows,
                           std::int64_t index, double value, int retention,
                           std::uint64_t& evicted);

  void mergeLocked(Series& series, double timeSeconds, double value,
                   Shard& shard);

  void markDirtyLocked(Series& series, Resolution resolution,
                       std::int64_t index, Shard& shard);

  StoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Bumped by evictSource; outstanding SeriesRefs from older
  /// generations re-resolve instead of touching freed nodes.
  std::atomic<std::uint64_t> generation_{1};
  /// Bumped by every data mutation; see dataGeneration().
  std::atomic<std::uint64_t> dataGeneration_{1};
  std::atomic<bool> trackDirty_{false};
};

}  // namespace zerosum::aggregator
