#include "aggregator/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace zerosum::aggregator {

namespace {

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

sockaddr_in loopbackAddress(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ConfigError("bad aggregator host address: " + host);
  }
  return addr;
}

}  // namespace

// --- TcpTransport ----------------------------------------------------------

TcpTransport::TcpTransport(std::string host, int port, int timeoutMs)
    : host_(std::move(host)), port_(port), timeoutMs_(timeoutMs) {}

TcpTransport::~TcpTransport() { close(); }

bool TcpTransport::awaitWritable(int waitMs) const {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLOUT;
  while (true) {
    const int rc = ::poll(&pfd, 1, waitMs);
    if (rc > 0) {
      return (pfd.revents & POLLOUT) != 0 &&
             (pfd.revents & (POLLERR | POLLHUP)) == 0;
    }
    if (rc == 0) {
      return false;  // timed out: the peer is hung, not slow
    }
    if (errno != EINTR) {
      return false;
    }
  }
}

bool TcpTransport::connect() {
  if (fd_ >= 0) {
    return true;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  try {
    addr = loopbackAddress(host_, port_);
  } catch (const Error&) {
    ::close(fd);
    return false;
  }
  if (timeoutMs_ <= 0) {
    // Blocking connect: loopback either succeeds or refuses immediately.
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
  } else {
    // Bounded connect: start non-blocking, then wait for writability up
    // to the timeout — a hung daemon (or a full accept queue) costs at
    // most timeoutMs_, never an unbounded stall on the publish path.
    setNonBlocking(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        ::close(fd);
        return false;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int rc = 0;
      do {
        rc = ::poll(&pfd, 1, timeoutMs_);
      } while (rc < 0 && errno == EINTR);
      int soError = 0;
      socklen_t len = sizeof(soError);
      if (rc <= 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
          soError != 0) {
        ::close(fd);
        return false;
      }
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  setNonBlocking(fd);
  fd_ = fd;
  return true;
}

bool TcpTransport::send(const std::string& bytes) {
  if (fd_ < 0) {
    return false;
  }
  std::size_t sent = 0;
  bool waited = false;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Loopback buffers are large; a full buffer means the daemon has
      // stopped draining.  With a timeout budget, wait once for the
      // socket to drain; past the budget (or without one) a stalled
      // send fails rather than stalling the monitored app.
      if (timeoutMs_ > 0 && !waited) {
        waited = true;
        if (awaitWritable(timeoutMs_)) {
          continue;
        }
      }
      close();
      return false;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    close();
    return false;
  }
  return true;
}

bool TcpTransport::receive(std::string& out) {
  if (fd_ < 0) {
    return false;
  }
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close();
      return false;  // orderly peer close
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    close();
    return false;
  }
}

void TcpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- TcpServer -------------------------------------------------------------

TcpServer::TcpServer(int port) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw StateError("aggregator: cannot create listen socket: " +
                     std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopbackAddress("127.0.0.1", port);
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw StateError("aggregator: cannot listen on 127.0.0.1:" +
                     std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }
  setNonBlocking(listenFd_);
}

TcpServer::~TcpServer() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
    }
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
  }
}

std::vector<Delivery> TcpServer::poll() {
  std::vector<Delivery> out;
  // Accept everything pending.
  while (listenFd_ >= 0) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      break;
    }
    setNonBlocking(fd);
    Conn conn;
    conn.fd = fd;
    conns_.emplace(nextId_++, conn);
  }
  // Drain every connection.
  std::vector<std::uint64_t> dead;
  for (auto& [id, conn] : conns_) {
    Delivery d;
    d.connection = id;
    if (!conn.openedReported) {
      conn.openedReported = true;
      d.opened = true;
    }
    bool closed = false;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        d.bytes.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        closed = true;
      } else if (errno == EINTR) {
        continue;
      } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
        closed = true;
      }
      break;
    }
    d.closed = closed;
    if (d.opened || d.closed || !d.bytes.empty()) {
      out.push_back(std::move(d));
    }
    if (closed) {
      dead.push_back(id);
    }
  }
  for (const std::uint64_t id : dead) {
    disconnect(id);
  }
  return out;
}

bool TcpServer::send(std::uint64_t connection, const std::string& bytes) {
  const auto it = conns_.find(connection);
  if (it == conns_.end() || it->second.fd < 0) {
    return false;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(it->second.fd, bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Reader not draining; retry once after a short spin is pointless
      // in a poll loop — drop the response instead of blocking ingest.
      return false;
    }
    return false;
  }
  return true;
}

void TcpServer::disconnect(std::uint64_t connection) {
  const auto it = conns_.find(connection);
  if (it != conns_.end()) {
    if (it->second.fd >= 0) {
      ::close(it->second.fd);
    }
    conns_.erase(it);
  }
}

}  // namespace zerosum::aggregator
