// Loopback-TCP implementations of the aggregation transports.
//
// TcpServer listens on 127.0.0.1 (port 0 = kernel-assigned, reported by
// port()); accept and reads are non-blocking, driven by the daemon's
// poll() loop.  TcpTransport is the client side: best-effort connect
// (ECONNREFUSED is a normal "daemon absent" outcome, not an error) and
// sends that report failure instead of raising SIGPIPE, so a dead daemon
// degrades to counted drops in the client.
//
// With `timeoutMs` > 0 (ZS_AGG_TIMEOUT_MS), connect() and send() are
// bounded: a hung — not dead — daemon (SIGSTOPped, wedged, a full
// accept queue) can stall the publish path for at most that long before
// the call fails and the client falls back to its reconnect/degrade
// machinery.  0 keeps the legacy behavior (blocking loopback connect,
// EAGAIN fails immediately).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aggregator/transport.hpp"

namespace zerosum::aggregator {

class TcpTransport final : public Transport {
 public:
  /// `timeoutMs` bounds connect() and stalled send()s; 0 = no bound.
  TcpTransport(std::string host, int port, int timeoutMs = 0);
  ~TcpTransport() override;

  bool connect() override;
  [[nodiscard]] bool connected() const override { return fd_ >= 0; }
  bool send(const std::string& bytes) override;
  bool receive(std::string& out) override;
  void close() override;

 private:
  /// Waits until fd_ is writable or the deadline passes.
  [[nodiscard]] bool awaitWritable(int waitMs) const;

  std::string host_;
  int port_;
  int timeoutMs_;
  int fd_ = -1;
};

class TcpServer final : public TransportServer {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).  Throws
  /// StateError when the socket cannot be bound.
  explicit TcpServer(int port);
  ~TcpServer() override;

  /// The actual listening port (useful with port 0).
  [[nodiscard]] int port() const { return port_; }

  std::vector<Delivery> poll() override;
  bool send(std::uint64_t connection, const std::string& bytes) override;
  void disconnect(std::uint64_t connection) override;

 private:
  struct Conn {
    int fd = -1;
    bool openedReported = false;
  };

  int listenFd_ = -1;
  int port_ = 0;
  std::uint64_t nextId_ = 1;
  std::map<std::uint64_t, Conn> conns_;
};

}  // namespace zerosum::aggregator
