#include "aggregator/transport.hpp"

#include <algorithm>

namespace zerosum::aggregator {

// --- PipeTransport ---------------------------------------------------------

class PipeTransport final : public Transport {
 public:
  explicit PipeTransport(PipeHub* hub) : hub_(hub) {}

  ~PipeTransport() override { close(); }

  bool connect() override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    if (hub_->down_) {
      return false;
    }
    if (id_ != 0) {
      auto it = hub_->connections_.find(id_);
      if (it != hub_->connections_.end() && !it->second.serverClosed &&
          !it->second.clientClosed) {
        return true;  // already connected
      }
    }
    PipeHub::Connection conn;
    conn.id = hub_->nextId_++;
    conn.clientOpen = true;
    id_ = conn.id;
    hub_->connections_.emplace(conn.id, std::move(conn));
    hub_->noteNews(id_);
    return true;
  }

  [[nodiscard]] bool connected() const override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    if (id_ == 0 || hub_->down_) {
      return false;
    }
    const auto it = hub_->connections_.find(id_);
    return it != hub_->connections_.end() && !it->second.serverClosed &&
           !it->second.clientClosed;
  }

  bool send(const std::string& bytes) override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    if (id_ == 0 || hub_->down_) {
      return false;
    }
    auto it = hub_->connections_.find(id_);
    if (it == hub_->connections_.end() || it->second.serverClosed ||
        it->second.clientClosed) {
      return false;
    }
    it->second.toServer.append(bytes);
    hub_->noteNews(id_);
    return true;
  }

  bool receive(std::string& out) override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    if (id_ == 0) {
      return false;
    }
    auto it = hub_->connections_.find(id_);
    if (it == hub_->connections_.end()) {
      return false;
    }
    out.append(it->second.toClient);
    it->second.toClient.clear();
    return !it->second.serverClosed && !hub_->down_;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    if (id_ == 0) {
      return;
    }
    auto it = hub_->connections_.find(id_);
    if (it != hub_->connections_.end()) {
      it->second.clientClosed = true;
      hub_->noteNews(id_);
    }
    id_ = 0;
  }

 private:
  PipeHub* hub_;
  std::uint64_t id_ = 0;
};

// --- PipeServer ------------------------------------------------------------

class PipeServer final : public TransportServer {
 public:
  explicit PipeServer(PipeHub* hub) : hub_(hub) {}

  std::vector<Delivery> poll() override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    std::vector<Delivery> out;
    if (hub_->down_) {
      hub_->arrivalOrder_.clear();
      return out;
    }
    std::vector<std::uint64_t> ids;
    while (!hub_->arrivalOrder_.empty()) {
      const std::uint64_t id = hub_->arrivalOrder_.front();
      hub_->arrivalOrder_.pop_front();
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    for (const std::uint64_t id : ids) {
      auto it = hub_->connections_.find(id);
      if (it == hub_->connections_.end()) {
        continue;
      }
      auto& conn = it->second;
      Delivery d;
      d.connection = id;
      if (!conn.serverSawOpen) {
        conn.serverSawOpen = true;
        d.opened = true;
      }
      d.bytes = std::move(conn.toServer);
      conn.toServer.clear();
      if (conn.clientClosed && !conn.serverSawClose) {
        conn.serverSawClose = true;
        d.closed = true;
      }
      out.push_back(std::move(d));
      if (conn.clientClosed && conn.serverSawClose &&
          conn.toClient.empty()) {
        hub_->connections_.erase(it);
      }
    }
    return out;
  }

  bool send(std::uint64_t connection, const std::string& bytes) override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    auto it = hub_->connections_.find(connection);
    if (it == hub_->connections_.end() || it->second.clientClosed ||
        hub_->down_) {
      return false;
    }
    it->second.toClient.append(bytes);
    return true;
  }

  void disconnect(std::uint64_t connection) override {
    std::lock_guard<std::mutex> lock(hub_->mutex_);
    auto it = hub_->connections_.find(connection);
    if (it != hub_->connections_.end()) {
      it->second.serverClosed = true;
    }
  }

 private:
  PipeHub* hub_;
};

// --- PipeHub ---------------------------------------------------------------

void PipeHub::setDown(bool down) {
  std::lock_guard<std::mutex> lock(mutex_);
  down_ = down;
  if (down) {
    // The daemon died: every established connection is severed and any
    // in-flight bytes are lost with it.
    for (auto& [id, conn] : connections_) {
      conn.serverClosed = true;
      conn.toServer.clear();
      conn.toClient.clear();
    }
    arrivalOrder_.clear();
  }
}

bool PipeHub::down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return down_;
}

std::unique_ptr<Transport> PipeHub::makeClientTransport() {
  return std::make_unique<PipeTransport>(this);
}

std::unique_ptr<TransportServer> PipeHub::makeServer() {
  return std::make_unique<PipeServer>(this);
}

void PipeHub::noteNews(std::uint64_t id) { arrivalOrder_.push_back(id); }

}  // namespace zerosum::aggregator
