// Transport abstraction for the aggregation daemon.
//
// The client side is a byte pipe that may fail: connect() is best-effort
// (a missing daemon is a normal condition, not an error — "do no harm"),
// send() reports failure so the client can count drops and schedule a
// reconnect.  The server side is poll-driven: poll() returns whatever
// bytes arrived per connection since the last call, plus open/close
// edges, so the daemon never blocks on a slow or dead source.
//
// Two implementations:
//   * PipeHub / PipeTransport — deterministic in-memory queues, no
//     threads, no OS; what the tests and the lockstep cluster simulation
//     use.
//   * TcpServer / TcpTransport (tcp.hpp) — loopback sockets for real
//     multi-process runs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace zerosum::aggregator {

/// Client-side byte pipe to the daemon.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attempts to (re)connect; false when the daemon is unreachable.
  virtual bool connect() = 0;
  [[nodiscard]] virtual bool connected() const = 0;

  /// Sends one encoded frame; false on any failure (the connection is
  /// considered dead afterwards until connect() succeeds again).
  virtual bool send(const std::string& bytes) = 0;

  /// Bytes the daemon pushed back to this client (query responses).
  /// Appends to `out`; returns false once the peer has closed.
  virtual bool receive(std::string& out) = 0;

  virtual void close() = 0;
};

/// One server-side poll result: bytes received on a connection, plus
/// connection lifecycle edges.
struct Delivery {
  std::uint64_t connection = 0;  ///< stable per-connection id
  std::string bytes;             ///< may be empty on open/close edges
  bool opened = false;           ///< first delivery for this connection
  bool closed = false;           ///< peer closed (after `bytes`)
};

/// Server-side endpoint the daemon drains.
class TransportServer {
 public:
  virtual ~TransportServer() = default;

  /// Everything that arrived since the last poll, in arrival order.
  virtual std::vector<Delivery> poll() = 0;

  /// Pushes bytes back to a connection (query responses); false when the
  /// connection is gone.
  virtual bool send(std::uint64_t connection, const std::string& bytes) = 0;

  /// Closes one connection from the server side.
  virtual void disconnect(std::uint64_t connection) = 0;
};

/// In-memory rendezvous point: clients attach PipeTransports, the daemon
/// drains a PipeServer.  Deterministic (no threads of its own) but fully
/// thread-safe, so async monitor threads can publish through it too.
class PipeHub {
 public:
  /// Daemon availability switch: while down, connect() fails and every
  /// established connection reads as closed — the test hook for the
  /// "killed daemon" scenarios.
  void setDown(bool down);
  [[nodiscard]] bool down() const;

  /// Creates a client endpoint bound to this hub.  The hub must outlive
  /// the transport.
  std::unique_ptr<Transport> makeClientTransport();

  /// Creates the (single) server endpoint.
  std::unique_ptr<TransportServer> makeServer();

 private:
  friend class PipeTransport;
  friend class PipeServer;

  struct Connection {
    std::uint64_t id = 0;
    std::string toServer;    ///< bytes awaiting server poll
    std::string toClient;    ///< bytes awaiting client receive
    bool clientOpen = false;
    bool serverSawOpen = false;
    bool clientClosed = false;  ///< client closed its end
    bool serverClosed = false;  ///< server closed its end
    bool serverSawClose = false;
  };

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Connection> connections_;
  std::deque<std::uint64_t> arrivalOrder_;  ///< connections with news
  std::uint64_t nextId_ = 1;
  bool down_ = false;

  void noteNews(std::uint64_t id);
};

}  // namespace zerosum::aggregator
