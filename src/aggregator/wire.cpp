#include "aggregator/wire.hpp"

#include <cstring>

#include "common/error.hpp"

namespace zerosum::aggregator {

namespace {

// --- encode helpers (little-endian, fixed width) ---------------------------

void putU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFFU));
  out.push_back(static_cast<char>((v >> 8U) & 0xFFU));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8U * static_cast<unsigned>(i))) &
                                    0xFFU));
  }
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8U * static_cast<unsigned>(i))) &
                                    0xFFU));
  }
}

void putI32(std::string& out, std::int32_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
}

void putF64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void putString(std::string& out, const std::string& s) {
  if (s.size() > 0xFFFFU) {
    throw ParseError("wire: string exceeds 65535 bytes");
  }
  putU16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

// --- decode helpers --------------------------------------------------------

class PayloadReader {
 public:
  PayloadReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    need(2);
    const auto lo = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_]));
    const auto hi = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_ + 1]));
    pos_ += 2;
    return static_cast<std::uint16_t>(lo | (hi << 8U));
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8U * static_cast<unsigned>(i));
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8U * static_cast<unsigned>(i));
    }
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint16_t n = u16();
    need(n);
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  void done() const {
    if (pos_ != size_) {
      throw ParseError("wire: " + std::to_string(size_ - pos_) +
                       " trailing payload byte(s)");
    }
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > size_) {
      throw ParseError("wire: truncated payload");
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::string encodePayload(const Frame& frame) {
  std::string p;
  switch (frame.kind) {
    case FrameKind::kHello:
      putString(p, frame.hello.job);
      putI32(p, frame.hello.rank);
      putI32(p, frame.hello.worldSize);
      putString(p, frame.hello.hostname);
      putI32(p, frame.hello.pid);
      break;
    case FrameKind::kBatch:
      putF64(p, frame.timeSeconds);
      if (frame.version >= 2) {
        putU64(p, frame.batchSeq);
      }
      if (frame.version >= 3) {
        putF64(p, frame.enqueueSeconds);
        putF64(p, frame.encodeSeconds);
        putF64(p, frame.prevRoundtripSeconds);
      }
      putU32(p, static_cast<std::uint32_t>(frame.records.size()));
      for (const auto& r : frame.records) {
        putF64(p, r.timeSeconds);
        putString(p, r.name);
        putF64(p, r.value);
      }
      break;
    case FrameKind::kBatchAck:
      putU64(p, frame.batchSeq);
      putU8(p, static_cast<std::uint8_t>(frame.pressure));
      break;
    case FrameKind::kHealth:
      putU64(p, frame.health.samplesTaken);
      putU64(p, frame.health.samplesDegraded);
      putU64(p, frame.health.samplesDropped);
      putU64(p, frame.health.loopOverruns);
      putU32(p, frame.health.quarantined);
      break;
    case FrameKind::kHeartbeat:
    case FrameKind::kGoodbye:
      putF64(p, frame.timeSeconds);
      break;
    case FrameKind::kQuery:
    case FrameKind::kResponse:
      // JSON payloads can exceed the u16 string limit; length is implied
      // by the frame length.
      p.append(frame.text);
      break;
    case FrameKind::kForward:
      putF64(p, frame.timeSeconds);
      putU64(p, frame.batchSeq);
      putU8(p, frame.hopCount);
      putString(p, frame.origin);
      putI32(p, frame.rankLo);
      putI32(p, frame.rankHi);
      putU16(p, static_cast<std::uint16_t>(frame.forwardSources.size()));
      for (const auto& s : frame.forwardSources) {
        putString(p, s.job);
        putI32(p, s.rank);
        putI32(p, s.worldSize);
        putString(p, s.hostname);
        putU8(p, s.state);
        putF64(p, s.lastSeenAgeSeconds);
      }
      putU32(p, static_cast<std::uint32_t>(frame.forwardWindows.size()));
      for (const auto& w : frame.forwardWindows) {
        putString(p, w.job);
        putI32(p, w.rank);
        putString(p, w.metric);
        putU8(p, w.resolution);
        putU64(p, static_cast<std::uint64_t>(w.windowIndex));
        putF64(p, w.min);
        putF64(p, w.max);
        putF64(p, w.sum);
        putU64(p, w.count);
      }
      break;
    case FrameKind::kCatalogAnnounce:
      putU8(p, static_cast<std::uint8_t>(frame.catalogEntry.role));
      putString(p, frame.catalogEntry.name);
      putString(p, frame.catalogEntry.host);
      putI32(p, frame.catalogEntry.port);
      putU32(p, frame.catalogEntry.shardLo);
      putU32(p, frame.catalogEntry.shardHi);
      putU64(p, frame.catalogEntry.generation);
      break;
    case FrameKind::kCatalogAck:
      putU64(p, frame.catalogEntry.generation);
      putF64(p, frame.catalogTtlSeconds);
      break;
  }
  return p;
}

Frame decodePayload(FrameKind kind, std::uint8_t version, const char* data,
                    std::size_t size) {
  Frame frame;
  frame.kind = kind;
  frame.version = version;
  PayloadReader in(data, size);
  switch (kind) {
    case FrameKind::kHello:
      frame.hello.job = in.str();
      frame.hello.rank = in.i32();
      frame.hello.worldSize = in.i32();
      frame.hello.hostname = in.str();
      frame.hello.pid = in.i32();
      in.done();
      break;
    case FrameKind::kBatch: {
      frame.timeSeconds = in.f64();
      if (version >= 2) {
        frame.batchSeq = in.u64();
      }
      if (version >= 3) {
        frame.enqueueSeconds = in.f64();
        frame.encodeSeconds = in.f64();
        frame.prevRoundtripSeconds = in.f64();
      }
      const std::uint32_t count = in.u32();
      // 18 bytes = the minimum encoded record (two f64 + empty name).
      if (static_cast<std::size_t>(count) * 18 > size) {
        throw ParseError("wire: batch record count exceeds payload");
      }
      frame.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        WireRecord r;
        r.timeSeconds = in.f64();
        r.name = in.str();
        r.value = in.f64();
        frame.records.push_back(std::move(r));
      }
      in.done();
      break;
    }
    case FrameKind::kHealth:
      frame.health.samplesTaken = in.u64();
      frame.health.samplesDegraded = in.u64();
      frame.health.samplesDropped = in.u64();
      frame.health.loopOverruns = in.u64();
      frame.health.quarantined = in.u32();
      in.done();
      break;
    case FrameKind::kHeartbeat:
    case FrameKind::kGoodbye:
      frame.timeSeconds = in.f64();
      in.done();
      break;
    case FrameKind::kBatchAck: {
      frame.batchSeq = in.u64();
      const std::uint8_t level = in.u8();
      if (level > static_cast<std::uint8_t>(PressureLevel::kOverloaded)) {
        throw ParseError("wire: unknown pressure level " +
                         std::to_string(level));
      }
      frame.pressure = static_cast<PressureLevel>(level);
      in.done();
      break;
    }
    case FrameKind::kQuery:
    case FrameKind::kResponse:
      frame.text.assign(data, size);
      break;
    case FrameKind::kForward: {
      frame.timeSeconds = in.f64();
      frame.batchSeq = in.u64();
      frame.hopCount = in.u8();
      frame.origin = in.str();
      frame.rankLo = in.i32();
      frame.rankHi = in.i32();
      const std::uint16_t sourceCount = in.u16();
      frame.forwardSources.reserve(sourceCount);
      for (std::uint16_t i = 0; i < sourceCount; ++i) {
        ForwardSource s;
        s.job = in.str();
        s.rank = in.i32();
        s.worldSize = in.i32();
        s.hostname = in.str();
        s.state = in.u8();
        if (s.state > 2) {
          throw ParseError("wire: unknown forwarded source state " +
                           std::to_string(s.state));
        }
        s.lastSeenAgeSeconds = in.f64();
        frame.forwardSources.push_back(std::move(s));
      }
      const std::uint32_t windowCount = in.u32();
      // 46 bytes = the minimum encoded window (two empty strings).
      if (static_cast<std::size_t>(windowCount) * 46 > size) {
        throw ParseError("wire: forward window count exceeds payload");
      }
      frame.forwardWindows.reserve(windowCount);
      for (std::uint32_t i = 0; i < windowCount; ++i) {
        ForwardWindow w;
        w.job = in.str();
        w.rank = in.i32();
        w.metric = in.str();
        w.resolution = in.u8();
        if (w.resolution > 1) {
          throw ParseError("wire: unknown forward resolution " +
                           std::to_string(w.resolution));
        }
        w.windowIndex = static_cast<std::int64_t>(in.u64());
        w.min = in.f64();
        w.max = in.f64();
        w.sum = in.f64();
        w.count = in.u64();
        frame.forwardWindows.push_back(std::move(w));
      }
      in.done();
      break;
    }
    case FrameKind::kCatalogAnnounce: {
      const std::uint8_t role = in.u8();
      if (role > static_cast<std::uint8_t>(DaemonRole::kRoot)) {
        throw ParseError("wire: unknown daemon role " + std::to_string(role));
      }
      frame.catalogEntry.role = static_cast<DaemonRole>(role);
      frame.catalogEntry.name = in.str();
      frame.catalogEntry.host = in.str();
      frame.catalogEntry.port = in.i32();
      frame.catalogEntry.shardLo = in.u32();
      frame.catalogEntry.shardHi = in.u32();
      if (frame.catalogEntry.shardLo >= kShardSpace ||
          frame.catalogEntry.shardHi >= kShardSpace ||
          frame.catalogEntry.shardLo > frame.catalogEntry.shardHi) {
        throw ParseError("wire: catalog shard range out of bounds");
      }
      frame.catalogEntry.generation = in.u64();
      in.done();
      break;
    }
    case FrameKind::kCatalogAck:
      frame.catalogEntry.generation = in.u64();
      frame.catalogTtlSeconds = in.f64();
      in.done();
      break;
  }
  return frame;
}

bool validKind(std::uint8_t k, std::uint8_t version) {
  const auto last = version >= 4   ? FrameKind::kCatalogAck
                    : version >= 2 ? FrameKind::kBatchAck
                                   : FrameKind::kResponse;
  return k >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         k <= static_cast<std::uint8_t>(last);
}

}  // namespace

const char* daemonRoleName(DaemonRole role) {
  switch (role) {
    case DaemonRole::kNode: return "node";
    case DaemonRole::kGroup: return "group";
    case DaemonRole::kRoot: return "root";
  }
  return "?";
}

DaemonRole daemonRoleFromString(const std::string& name) {
  if (name == "node") return DaemonRole::kNode;
  if (name == "group") return DaemonRole::kGroup;
  if (name == "root") return DaemonRole::kRoot;
  throw ParseError("unknown daemon role '" + name +
                   "' (expected node|group|root)");
}

const char* pressureLevelName(PressureLevel level) {
  switch (level) {
    case PressureLevel::kOk: return "ok";
    case PressureLevel::kElevated: return "elevated";
    case PressureLevel::kOverloaded: return "overloaded";
  }
  return "?";
}

std::string encodeFrame(const Frame& frame) {
  if (frame.version < kMinWireVersion || frame.version > kWireVersion) {
    throw ParseError("wire: cannot encode version " +
                     std::to_string(frame.version));
  }
  if (!validKind(static_cast<std::uint8_t>(frame.kind), frame.version)) {
    throw ParseError("wire: frame kind not available at version " +
                     std::to_string(frame.version));
  }
  const std::string payload = encodePayload(frame);
  if (payload.size() > kMaxPayloadBytes) {
    throw ParseError("wire: frame payload exceeds " +
                     std::to_string(kMaxPayloadBytes) + " bytes");
  }
  std::string out;
  out.reserve(payload.size() + 6);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  putU8(out, frame.version);
  putU8(out, static_cast<std::uint8_t>(frame.kind));
  out.append(payload);
  return out;
}

void FrameReader::feed(const char* data, std::size_t size) {
  // Compact the buffer once the consumed prefix dominates, so a
  // long-lived connection does not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

bool FrameReader::next(Frame& out) {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 6) {
    return false;
  }
  const char* head = buffer_.data() + consumed_;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(head[i]))
              << (8U * static_cast<unsigned>(i));
  }
  if (length > kMaxPayloadBytes) {
    throw ParseError("wire: frame length " + std::to_string(length) +
                     " exceeds limit");
  }
  const std::uint8_t version = static_cast<std::uint8_t>(head[4]);
  if (version < kMinWireVersion || version > kWireVersion) {
    throw ParseError("wire: version " + std::to_string(version) +
                     " (accepted " + std::to_string(kMinWireVersion) + ".." +
                     std::to_string(kWireVersion) + ")");
  }
  const std::uint8_t kind = static_cast<std::uint8_t>(head[5]);
  if (!validKind(kind, version)) {
    throw ParseError("wire: unknown frame kind " + std::to_string(kind));
  }
  if (avail < 6 + static_cast<std::size_t>(length)) {
    return false;
  }
  out = decodePayload(static_cast<FrameKind>(kind), version, head + 6, length);
  consumed_ += 6 + static_cast<std::size_t>(length);
  return true;
}

Frame decodeFrame(const std::string& bytes) {
  FrameReader reader;
  reader.feed(bytes);
  Frame frame;
  if (!reader.next(frame)) {
    throw ParseError("wire: incomplete frame");
  }
  if (reader.pendingBytes() != 0) {
    throw ParseError("wire: trailing bytes after frame");
  }
  return frame;
}

}  // namespace zerosum::aggregator
