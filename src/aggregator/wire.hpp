// Aggregation wire protocol (paper §6: collecting ZeroSum data "from
// across the application processes" into a node/job-level service).
//
// Compact length-prefixed binary frames, modeled on the catalog-server /
// deltadb split in cctools: a client announces itself once (kHello),
// streams metric batches and health updates, and says goodbye; queries
// and their responses ride the same framing as JSON payloads.  Every
// frame is self-delimiting so the daemon can decode from a byte stream
// that arrives in arbitrary chunks:
//
//   [u32 payload length][u8 version][u8 kind][payload...]
//
// Integers are little-endian fixed width; strings are u16-length-prefixed.
// Decoding is strict: a truncated payload, an unknown kind, or a version
// outside [kMinWireVersion, kWireVersion] throws ParseError — the daemon
// drops the offending connection and counts the error rather than
// guessing.
//
// Version history:
//   v1  Hello / Batch / Health / Heartbeat / Goodbye / Query / Response.
//   v2  kBatch gains a u64 batch sequence number (after timeSeconds), and
//       kBatchAck appears: the daemon's per-batch acknowledgment carrying
//       its pressure level (ok / elevated / overloaded), the backpressure
//       signal driving the client's degradation ladder.  A heartbeat is
//       answered with a seq-0 ack so idle clients see pressure too.
//   v3  kBatch gains three f64 latency-attribution stamps (after
//       batchSeq, before the record count):
//       enqueueSeconds (client clock when the oldest record in the batch
//       was queued), encodeSeconds (client clock at frame encode), and
//       prevRoundtripSeconds (duration of the client's most recently
//       completed batch round-trip; negative = none yet).  The daemon
//       turns these into per-stage latency histograms; see DESIGN.md §10.
//   v4  Federation (DESIGN.md §11).  kForward carries pre-aggregated
//       rollup windows hop-by-hop up the fan-in tree, tagged with the
//       forwarder identity, origin rank range, and hop count; it reuses
//       batchSeq + kBatchAck for the pressure/ack protocol.  Window
//       payloads are cumulative snapshots (min/max/sum/count), so a
//       retransmit after a reconnect or parent restart replaces rather
//       than double-counts.  kCatalogAnnounce registers a daemon
//       {role, host, port, shard-range, generation} with a catalog;
//       kCatalogAck confirms registration and carries the catalog's
//       expiry horizon.  Catalog lookups ride kQuery ({"op":"catalog"}).
// The daemon accepts all versions (old clients keep working, v1 unacked,
// v2 unstamped); it only sends acks to connections that announced v2+.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/interning.hpp"

namespace zerosum::aggregator {

/// Protocol version; bumped on any incompatible layout change.
inline constexpr std::uint8_t kWireVersion = 4;
/// Oldest version the decoder still accepts.
inline constexpr std::uint8_t kMinWireVersion = 1;

/// Hard ceiling on a single frame's payload (defense against a corrupt
/// or hostile length prefix allocating gigabytes).
inline constexpr std::uint32_t kMaxPayloadBytes = 4U << 20;

enum class FrameKind : std::uint8_t {
  kHello = 1,      ///< source identity; first frame on every connection
  kBatch = 2,      ///< one sampling period's metric records
  kHealth = 3,     ///< monitor self-health counters
  kHeartbeat = 4,  ///< liveness when a period produced no records
  kGoodbye = 5,    ///< orderly shutdown of the source
  kQuery = 6,      ///< JSON query request (reader connections)
  kResponse = 7,   ///< JSON query response (daemon -> reader)
  kBatchAck = 8,   ///< v2: daemon -> client batch/heartbeat ack + pressure
  kForward = 9,    ///< v4: pre-aggregated rollup windows, child -> parent
  kCatalogAnnounce = 10,  ///< v4: daemon registration with the catalog
  kCatalogAck = 11,       ///< v4: catalog -> announcer confirmation
};

/// Daemon-side ingest pressure, computed from admission-queue depth and
/// tsdb-writer lag, echoed to clients in every kBatchAck.
enum class PressureLevel : std::uint8_t {
  kOk = 0,          ///< ingest keeping up
  kElevated = 1,    ///< backlog building: clients should coarsen
  kOverloaded = 2,  ///< backlog near the bound: shed aggressively
};

[[nodiscard]] const char* pressureLevelName(PressureLevel level);

/// Source identity carried by kHello.
struct Hello {
  std::string job;       ///< allocation/job identifier
  std::int32_t rank = 0;
  std::int32_t worldSize = 0;
  std::string hostname;
  std::int32_t pid = 0;

  friend bool operator==(const Hello&, const Hello&) = default;
};

/// One metric observation on the wire.  The source identity comes from
/// the connection's Hello, so records carry only time/name/value.
struct WireRecord {
  double timeSeconds = 0.0;
  std::string name;
  double value = 0.0;

  friend bool operator==(const WireRecord&, const WireRecord&) = default;
};

/// A WireRecord before it reaches the wire: the metric name held as an
/// interned id (names::intern).  Ids are process-local and never cross
/// the wire — the client materializes the name text when it encodes a
/// kBatch frame — so the wire format is unchanged and readers need no
/// shared table.
struct IdRecord {
  double timeSeconds = 0.0;
  names::Id name = names::kInvalidId;
  double value = 0.0;

  friend bool operator==(const IdRecord&, const IdRecord&) = default;
};

/// Monitor self-health counters (core::MonitorHealth, flattened).
struct HealthUpdate {
  std::uint64_t samplesTaken = 0;
  std::uint64_t samplesDegraded = 0;
  std::uint64_t samplesDropped = 0;
  std::uint64_t loopOverruns = 0;
  std::uint32_t quarantined = 0;

  friend bool operator==(const HealthUpdate&, const HealthUpdate&) = default;
};

/// Position of a daemon in the fan-in tree (DESIGN.md §11).
enum class DaemonRole : std::uint8_t {
  kNode = 0,   ///< leaf: ingests ranks point-to-point, forwards rollups
  kGroup = 1,  ///< mid-tier: merges node rollups, forwards to the root
  kRoot = 2,   ///< apex: union of every series; hosts the catalog
};

[[nodiscard]] const char* daemonRoleName(DaemonRole role);
/// Parses "node"/"group"/"root"; throws ParseError on anything else.
[[nodiscard]] DaemonRole daemonRoleFromString(const std::string& name);

/// One pre-aggregated rollup window inside a kForward frame.  The rollup
/// is the window's *cumulative* snapshot at forward time — min/max/sum/
/// count over every record the window has absorbed so far — so the
/// receiver replaces (count-monotone) instead of accumulating, and a
/// retransmit is idempotent.
struct ForwardWindow {
  std::string job;
  std::int32_t rank = 0;
  std::string metric;
  std::uint8_t resolution = 0;  ///< 0 = fine, 1 = coarse
  std::int64_t windowIndex = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;

  friend bool operator==(const ForwardWindow&, const ForwardWindow&) = default;
};

/// Source-registry propagation inside a kForward frame: the forwarding
/// daemon's view of one (job, rank), so every level of the tree can
/// answer sources()/missing-rank queries.  lastSeenAgeSeconds is an age
/// relative to the forwarder's clock at encode time — ages survive epoch
/// differences between daemons; absolute stamps would not.
struct ForwardSource {
  std::string job;
  std::int32_t rank = 0;
  std::int32_t worldSize = 0;
  std::string hostname;
  std::uint8_t state = 0;  ///< SourceState as u8
  double lastSeenAgeSeconds = 0.0;

  friend bool operator==(const ForwardSource&, const ForwardSource&) = default;
};

/// Shard space for catalog shard ranges: series hash to a shard in
/// [0, kShardSpace); an entry serves the inclusive [shardLo, shardHi]
/// slice of that space.  Multiple entries covering the same shard are
/// disambiguated by consistent hashing (federation.hpp).
inline constexpr std::uint32_t kShardSpace = 1U << 16;

/// One catalog registration: kCatalogAnnounce payload and the catalog's
/// stored record (cctools catalog_server-style: announce-with-TTL).
struct CatalogEntry {
  DaemonRole role = DaemonRole::kNode;
  std::string name;  ///< stable daemon identity (host:port or a label)
  std::string host;
  std::int32_t port = 0;
  std::uint32_t shardLo = 0;
  std::uint32_t shardHi = kShardSpace - 1;
  /// Announcer's incarnation: bumped on restart so the catalog (and
  /// anyone resolving through it) can tell a rebooted daemon from a
  /// duplicate announce.
  std::uint64_t generation = 0;

  friend bool operator==(const CatalogEntry&, const CatalogEntry&) = default;
};

/// A decoded frame.  Only the members matching `kind` are meaningful
/// (a tagged union spelled as a struct: the payloads are small and the
/// decode path stays trivially safe).
struct Frame {
  FrameKind kind = FrameKind::kHeartbeat;
  /// Version to encode with / version the frame arrived as.
  std::uint8_t version = kWireVersion;
  Hello hello;                      ///< kHello
  std::vector<WireRecord> records;  ///< kBatch
  HealthUpdate health;              ///< kHealth
  double timeSeconds = 0.0;         ///< kBatch / kHeartbeat / kGoodbye
  std::string text;                 ///< kQuery / kResponse (JSON)
  /// kBatch (v2+) / kBatchAck: client-assigned sequence number (0 = a
  /// heartbeat ack, or a v1 batch that carried none).
  std::uint64_t batchSeq = 0;
  PressureLevel pressure = PressureLevel::kOk;  ///< kBatchAck
  /// kBatch (v3+): latency-attribution stamps, client clock.  Negative
  /// prevRoundtripSeconds means "no completed round-trip yet" (0.0 is a
  /// legitimate duration under the lockstep virtual clock).
  double enqueueSeconds = 0.0;
  double encodeSeconds = 0.0;
  double prevRoundtripSeconds = -1.0;
  // --- kForward (v4) -------------------------------------------------------
  std::string origin;     ///< forwarding daemon identity
  std::uint8_t hopCount = 0;  ///< hops already taken (leaf batch = 0)
  std::int32_t rankLo = 0;    ///< origin rank range covered by this frame
  std::int32_t rankHi = -1;   ///< (empty range when rankHi < rankLo)
  std::vector<ForwardSource> forwardSources;
  std::vector<ForwardWindow> forwardWindows;
  // --- kCatalogAnnounce / kCatalogAck (v4) ---------------------------------
  CatalogEntry catalogEntry;       ///< kCatalogAnnounce
  double catalogTtlSeconds = 0.0;  ///< kCatalogAck: expiry horizon granted
};

/// Serializes one frame, length prefix included.
std::string encodeFrame(const Frame& frame);

/// Incremental decoder: feed() arbitrary byte chunks, then next() yields
/// completed frames until it returns false.  Throws ParseError on a
/// malformed frame; the caller should drop the connection.
class FrameReader {
 public:
  void feed(const char* data, std::size_t size);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Decodes the next complete frame into `out`; false when more bytes
  /// are needed.
  bool next(Frame& out);

  /// Bytes buffered but not yet decoded.
  [[nodiscard]] std::size_t pendingBytes() const {
    return buffer_.size() - consumed_;
  }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Convenience for tests: decodes exactly one frame from `bytes`;
/// throws ParseError when bytes hold anything other than one frame.
Frame decodeFrame(const std::string& bytes);

}  // namespace zerosum::aggregator
