#include "aggregator/writer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "tsdb/engine.hpp"

namespace zerosum::aggregator {

TsdbWriter::TsdbWriter(tsdb::Engine* engine, WriterOptions options)
    : engine_(engine), options_(options) {
  if (engine_ == nullptr) {
    throw ConfigError("TsdbWriter requires an engine");
  }
  if (options_.maxPendingBatches == 0 || options_.maxBatchesPerPump == 0 ||
      options_.maxGroupSamples == 0) {
    throw ConfigError("TsdbWriter bounds must be >= 1");
  }
  if (options_.threaded) {
    worker_ = std::thread([this] { workerLoop(); });
  }
}

TsdbWriter::~TsdbWriter() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    worker_.join();
  }
  // Whatever is still queued is discarded — crash semantics.  Those
  // batches were never acked (acks gate on writtenTicket), so only
  // unacknowledged records are lost.  Orderly paths call flush() first.
}

std::optional<std::uint64_t> TsdbWriter::submit(
    const std::string& job, std::int32_t rank,
    const std::vector<tsdb::Sample>& samples) {
  std::uint64_t ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.size() >= options_.maxPendingBatches) {
      ++counters_.submitRejected;
      return std::nullopt;
    }
    ticket = nextTicket_++;
    Pending p;
    p.job = job;
    p.rank = rank;
    p.samples = samples;
    p.ticket = ticket;
    queue_.push_back(std::move(p));
    ++counters_.batchesSubmitted;
  }
  wake_.notify_one();
  return ticket;
}

std::size_t TsdbWriter::drainSome(std::size_t maxBatches) {
  std::size_t written = 0;
  while (written < maxBatches) {
    // Pop a group: the head batch plus any adjacent batches from the
    // same (job, rank), coalesced into one engine append (one WAL frame
    // instead of many — the group commit).
    Pending group;
    std::size_t groupBatches = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) {
        break;
      }
      group = std::move(queue_.front());
      queue_.pop_front();
      groupBatches = 1;
      while (!queue_.empty() && groupBatches + written < maxBatches &&
             queue_.front().job == group.job &&
             queue_.front().rank == group.rank &&
             group.samples.size() + queue_.front().samples.size() <=
                 options_.maxGroupSamples) {
        Pending& next = queue_.front();
        group.samples.insert(group.samples.end(),
                             std::make_move_iterator(next.samples.begin()),
                             std::make_move_iterator(next.samples.end()));
        group.ticket = next.ticket;
        queue_.pop_front();
        ++groupBatches;
      }
    }
    {
      std::lock_guard<std::mutex> engineLock(engineMutex_);
      try {
        engine_->append(group.job, group.rank, group.samples);
        engine_->maybeCompact();
      } catch (const Error& e) {
        // A failing disk must not take the daemon down; the batch is
        // lost (counted) and — because writtenTicket still advances —
        // the pipeline keeps moving.  Acked-loss accounting treats this
        // as the explicit failure it is.
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.writeFailures;
        log::warn() << "tsdb writer: append failed: " << e.what();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      counters_.batchesWritten += groupBatches;
      counters_.samplesWritten += group.samples.size();
      if (groupBatches > 1) {
        ++counters_.groupCommits;
      }
    }
    writtenTicket_.store(group.ticket, std::memory_order_release);
    written += groupBatches;
  }
  drained_.notify_all();
  return written;
}

void TsdbWriter::pump() {
  if (options_.threaded) {
    return;  // the worker drains
  }
  drainSome(options_.maxBatchesPerPump);
}

void TsdbWriter::flush() {
  if (!options_.threaded) {
    while (drainSome(options_.maxBatchesPerPump) > 0) {
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queue_.empty() || stop_; });
}

std::size_t TsdbWriter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

double TsdbWriter::occupancy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<double>(queue_.size()) /
         static_cast<double>(options_.maxPendingBatches);
}

bool TsdbWriter::hasSpace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() < options_.maxPendingBatches;
}

WriterCounters TsdbWriter::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void TsdbWriter::workerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        drained_.notify_all();
        return;
      }
    }
    drainSome(options_.maxBatchesPerPump);
  }
}

}  // namespace zerosum::aggregator
