// TsdbWriter: a bounded-queue writer between the aggregation daemon and
// the tsdb engine, so a slow disk raises backpressure instead of
// stalling ingest.
//
// The daemon submit()s each admitted batch; the writer appends them to
// the engine in submission order, coalescing adjacent batches from the
// same (job, rank) into one WAL append (group commit).  submit() never
// blocks: when the queue is full it returns nullopt and the daemon
// falls back (inline append) while its pressure level reads overloaded.
//
// Two modes:
//   * sync (default) — no thread; the daemon calls pump() from its poll
//     loop and at most `maxBatchesPerPump` batches hit the disk per
//     poll.  Fully deterministic: what the tests and the lockstep
//     cluster simulation use.
//   * threaded — a worker thread drains the queue; `zerosum-aggd
//     --async-writer`.  engineMutex() serializes the worker's appends
//     against the daemon's query-path reads (the engine itself is
//     single-writer, not thread-safe).
//
// Durability contract: writtenTicket() is the highest submission ticket
// whose batch the engine has appended (WAL-logged).  The daemon gates
// batch acks on it — a client never sees an ack for records that could
// still be lost in this queue.  The destructor discards whatever is
// still queued (crash semantics: only unacked records are lost);
// orderly shutdown calls flush() first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "tsdb/wal.hpp"

namespace zerosum::tsdb {
class Engine;
}

namespace zerosum::aggregator {

struct WriterOptions {
  /// Queue bound, in batches; a full queue rejects submit().
  std::size_t maxPendingBatches = 256;
  /// Sync mode: batches appended per pump() call.
  std::size_t maxBatchesPerPump = 32;
  /// Cap on one coalesced group-commit append, in samples.
  std::size_t maxGroupSamples = 4096;
  /// Drain from a worker thread instead of pump().
  bool threaded = false;
};

struct WriterCounters {
  std::uint64_t batchesSubmitted = 0;
  std::uint64_t batchesWritten = 0;
  std::uint64_t samplesWritten = 0;
  std::uint64_t submitRejected = 0;  ///< queue full
  std::uint64_t groupCommits = 0;    ///< appends that coalesced >1 batch
  std::uint64_t writeFailures = 0;   ///< engine append threw; batch lost
};

class TsdbWriter {
 public:
  /// Non-owning: the engine must outlive the writer.
  explicit TsdbWriter(tsdb::Engine* engine, WriterOptions options = {});
  ~TsdbWriter();

  TsdbWriter(const TsdbWriter&) = delete;
  TsdbWriter& operator=(const TsdbWriter&) = delete;

  /// Queues one batch (copies the samples).  Returns the batch's
  /// monotonically increasing ticket, or nullopt when the queue is full
  /// — the caller handles the overflow; the writer never drops silently.
  std::optional<std::uint64_t> submit(const std::string& job,
                                      std::int32_t rank,
                                      const std::vector<tsdb::Sample>& samples);

  /// Sync mode: appends up to maxBatchesPerPump queued batches.  No-op
  /// when threaded (the worker drains).
  void pump();

  /// Drains the queue completely (orderly-shutdown path).  Blocks in
  /// threaded mode until the worker catches up.
  void flush();

  /// Highest ticket durably appended to the engine.
  [[nodiscard]] std::uint64_t writtenTicket() const {
    return writtenTicket_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t pending() const;
  /// Queue occupancy in [0, 1] — an input to the daemon's pressure level.
  [[nodiscard]] double occupancy() const;
  [[nodiscard]] bool hasSpace() const;
  [[nodiscard]] bool threaded() const { return options_.threaded; }
  [[nodiscard]] WriterCounters counters() const;
  [[nodiscard]] tsdb::Engine* engine() const { return engine_; }

  /// Serializes engine access between the worker thread and the owner's
  /// read path (queries, source persistence).  Meaningful in threaded
  /// mode; cheap and uncontended otherwise.
  [[nodiscard]] std::mutex& engineMutex() { return engineMutex_; }

 private:
  struct Pending {
    std::string job;
    std::int32_t rank = 0;
    std::vector<tsdb::Sample> samples;
    std::uint64_t ticket = 0;
  };

  /// Appends up to `maxBatches` queued batches (coalescing); returns the
  /// number written.  Caller must NOT hold mutex_.
  std::size_t drainSome(std::size_t maxBatches);
  void workerLoop();

  tsdb::Engine* engine_;
  WriterOptions options_;

  mutable std::mutex mutex_;  ///< guards queue_, counters_, nextTicket_
  std::mutex engineMutex_;
  std::condition_variable wake_;     ///< worker: work available / stop
  std::condition_variable drained_;  ///< flush(): queue emptied
  std::deque<Pending> queue_;
  WriterCounters counters_;
  std::uint64_t nextTicket_ = 1;
  std::atomic<std::uint64_t> writtenTicket_{0};

  std::thread worker_;
  bool stop_ = false;
};

}  // namespace zerosum::aggregator
