#include "analysis/aggregate.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::analysis {

JobSummary aggregate(std::span<const core::MonitorSession* const> sessions) {
  if (sessions.empty()) {
    throw StateError("aggregate: no sessions");
  }
  JobSummary job;
  job.minDuration = sessions.front()->durationSeconds();
  double busySum = 0.0;
  std::size_t busyCount = 0;

  for (const core::MonitorSession* session : sessions) {
    RankSummary rank;
    rank.rank = session->identity().rank;
    rank.durationSeconds = session->durationSeconds();

    stats::Accumulator busy;
    for (const auto& [cpu, record] : session->hwts().records()) {
      busy.add(100.0 - record.avgIdlePct());
    }
    rank.avgCpuBusyPct = busy.mean();

    for (const auto& [tid, record] : session->lwps().records()) {
      rank.totalNvctx += record.totalNonvoluntaryCtx();
      rank.totalVctx += record.totalVoluntaryCtx();
      ++rank.lwpCount;
    }

    const auto findings = session->analyze();
    rank.findingCount = findings.size();
    for (const auto& finding : findings) {
      job.findingsByCode[finding.code] += 1;
    }

    job.minDuration = std::min(job.minDuration, rank.durationSeconds);
    job.maxDuration = std::max(job.maxDuration, rank.durationSeconds);
    job.totalNvctx += rank.totalNvctx;
    busySum += rank.avgCpuBusyPct;
    ++busyCount;
    job.ranks.push_back(rank);
  }
  job.avgCpuBusyPct = busyCount > 0 ? busySum / static_cast<double>(busyCount)
                                    : 0.0;
  job.imbalance = job.maxDuration > 0.0
                      ? (job.maxDuration - job.minDuration) / job.maxDuration
                      : 0.0;
  return job;
}

std::string renderJobSummary(const JobSummary& summary) {
  std::ostringstream out;
  out << "Job summary (" << summary.ranks.size() << " ranks):\n";
  out << strings::padRight("rank", 6) << strings::padLeft("duration", 10)
      << strings::padLeft("cpu busy%", 11) << strings::padLeft("nvctx", 10)
      << strings::padLeft("vctx", 10) << strings::padLeft("lwps", 6)
      << strings::padLeft("findings", 10) << '\n';
  for (const auto& rank : summary.ranks) {
    out << strings::padRight(std::to_string(rank.rank), 6)
        << strings::padLeft(strings::fixed(rank.durationSeconds, 2), 10)
        << strings::padLeft(strings::fixed(rank.avgCpuBusyPct, 1), 11)
        << strings::padLeft(std::to_string(rank.totalNvctx), 10)
        << strings::padLeft(std::to_string(rank.totalVctx), 10)
        << strings::padLeft(std::to_string(rank.lwpCount), 6)
        << strings::padLeft(std::to_string(rank.findingCount), 10) << '\n';
  }
  out << "duration min/max: " << strings::fixed(summary.minDuration, 2) << "/"
      << strings::fixed(summary.maxDuration, 2) << " s (imbalance "
      << strings::fixed(summary.imbalance * 100.0, 1) << "%), mean CPU busy "
      << strings::fixed(summary.avgCpuBusyPct, 1) << "%\n";
  if (!summary.findingsByCode.empty()) {
    out << "findings across ranks:";
    for (const auto& [code, count] : summary.findingsByCode) {
      out << ' ' << code << "(x" << count << ')';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace zerosum::analysis
