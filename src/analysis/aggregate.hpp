// Job-level aggregation across ranks.
//
// The paper's rank 0 prints a summary while every rank writes a detailed
// log; this module folds many per-rank sessions into the job-wide view the
// user actually wants ("htop, but for all nodes in the allocation", §2).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/monitor.hpp"

namespace zerosum::analysis {

struct RankSummary {
  int rank = 0;
  double durationSeconds = 0.0;
  double avgCpuBusyPct = 0.0;     ///< mean busy% over the rank's HWTs
  std::uint64_t totalNvctx = 0;
  std::uint64_t totalVctx = 0;
  std::size_t lwpCount = 0;
  std::size_t findingCount = 0;
};

struct JobSummary {
  std::vector<RankSummary> ranks;
  double minDuration = 0.0;
  double maxDuration = 0.0;
  /// Load imbalance: (max - min) / max duration.
  double imbalance = 0.0;
  double avgCpuBusyPct = 0.0;
  std::uint64_t totalNvctx = 0;
  /// Findings across all ranks, de-duplicated by code, with counts.
  std::map<std::string, std::size_t> findingsByCode;
};

JobSummary aggregate(std::span<const core::MonitorSession* const> sessions);

std::string renderJobSummary(const JobSummary& summary);

}  // namespace zerosum::analysis
