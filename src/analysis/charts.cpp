#include "analysis/charts.hpp"

#include <algorithm>
#include <sstream>

#include "common/stats.hpp"
#include "common/strings.hpp"

namespace zerosum::analysis {

namespace {

std::string bar(double userPct, double systemPct, const ChartOptions& o) {
  const double w = static_cast<double>(o.width);
  const int userCols = static_cast<int>(userPct / 100.0 * w + 0.5);
  const int sysCols = static_cast<int>(systemPct / 100.0 * w + 0.5);
  const int used = std::min(o.width, userCols + sysCols);
  std::string out;
  out.append(static_cast<std::size_t>(std::min(userCols, o.width)),
             o.userChar);
  out.append(static_cast<std::size_t>(std::max(0, used - userCols)),
             o.systemChar);
  out.append(static_cast<std::size_t>(o.width - used), o.idleChar);
  return out;
}

}  // namespace

std::string renderLwpUtilization(const std::map<int, core::LwpRecord>& lwps,
                                 const ChartOptions& options) {
  std::ostringstream out;
  out << "LWP utilization over time ('" << options.userChar << "' user, '"
      << options.systemChar << "' system, '" << options.idleChar
      << "' idle; one row per period)\n";
  for (const auto& [tid, record] : lwps) {
    out << "LWP " << tid << " (" << lwpTypeName(record.type) << "):\n";
    for (const auto& s : record.samples) {
      const double userPct = 100.0 * static_cast<double>(s.utimeDelta) /
                             options.jiffiesPerPeriod;
      const double sysPct = 100.0 * static_cast<double>(s.stimeDelta) /
                            options.jiffiesPerPeriod;
      out << "  t=" << strings::padLeft(strings::fixed(s.timeSeconds, 1), 7)
          << "s |" << bar(userPct, sysPct, options) << "|\n";
    }
  }
  return out.str();
}

std::string renderHwtUtilization(
    const std::map<std::size_t, core::HwtRecord>& hwts,
    const ChartOptions& options) {
  std::ostringstream out;
  out << "HWT utilization over time ('" << options.userChar << "' user, '"
      << options.systemChar << "' system, '" << options.idleChar
      << "' idle; one row per period)\n";
  for (const auto& [cpu, record] : hwts) {
    out << "CPU " << strings::zeroPad(cpu, 3) << ":\n";
    for (const auto& s : record.samples) {
      out << "  t=" << strings::padLeft(strings::fixed(s.timeSeconds, 1), 7)
          << "s |" << bar(s.userPct, s.systemPct, options) << "|\n";
    }
  }
  return out.str();
}

double lwpNoiseExcess(const std::map<int, core::LwpRecord>& lwps,
                      double jiffiesPerPeriod) {
  if (jiffiesPerPeriod <= 0.0) {
    return 0.0;
  }
  // Busy-LWP busy% series, aligned by sample index.  Daemon threads (the
  // monitor itself, runtime helpers) are near-constant-zero and would
  // dilute the comparison; startup/teardown ramps are common-mode swings
  // that are not the measurement noise Figure 6 is about — both are
  // excluded.
  std::vector<std::vector<double>> series;
  for (const auto& [tid, record] : lwps) {
    std::vector<double> busy;
    busy.reserve(record.samples.size());
    double total = 0.0;
    for (const auto& s : record.samples) {
      const double busyPct =
          100.0 * static_cast<double>(s.utimeDelta + s.stimeDelta) /
          jiffiesPerPeriod;
      busy.push_back(busyPct);
      total += busyPct;
    }
    if (!busy.empty() &&
        total / static_cast<double>(busy.size()) >= 20.0) {
      series.push_back(std::move(busy));
    }
  }
  if (series.empty()) {
    return 0.0;
  }

  // Steady-state periods: mean across LWPs at least half the peak mean.
  std::size_t periods = series.front().size();
  for (const auto& s : series) {
    periods = std::min(periods, s.size());
  }
  std::vector<double> periodMean(periods, 0.0);
  double peak = 0.0;
  for (std::size_t p = 0; p < periods; ++p) {
    for (const auto& s : series) {
      periodMean[p] += s[p];
    }
    periodMean[p] /= static_cast<double>(series.size());
    peak = std::max(peak, periodMean[p]);
  }
  std::vector<std::size_t> steady;
  for (std::size_t p = 0; p < periods; ++p) {
    if (periodMean[p] >= 0.5 * peak) {
      steady.push_back(p);
    }
  }
  if (steady.size() < 2) {
    return 0.0;
  }

  stats::Accumulator perLwpStddev;
  for (const auto& s : series) {
    stats::Accumulator acc;
    for (std::size_t p : steady) {
      acc.add(s[p]);
    }
    perLwpStddev.add(acc.stddev());
  }
  stats::Accumulator aggregateSeries;
  for (std::size_t p : steady) {
    aggregateSeries.add(periodMean[p]);
  }
  return perLwpStddev.mean() - aggregateSeries.stddev();
}

}  // namespace zerosum::analysis
