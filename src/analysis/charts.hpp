// Text rendering of the time-series figures.
//
// Figures 6 and 7 are stacked user/system/idle charts over time for LWPs
// and HWTs respectively.  These renderers produce the same series as
// horizontal stacked bars (one row per sample period), which preserves the
// figures' information — including the Figure 6 observation that per-LWP
// /proc data is noisy while the aggregate is stable.
#pragma once

#include <map>
#include <string>

#include "core/records.hpp"

namespace zerosum::analysis {

struct ChartOptions {
  int width = 60;           ///< characters for 100%
  char userChar = '#';
  char systemChar = '+';
  char idleChar = '.';
  /// Jiffies in one sampling period (normalizes LWP deltas to percent).
  double jiffiesPerPeriod = 100.0;
};

/// One chart per LWP: each row is one period, bar split user/system/idle.
std::string renderLwpUtilization(const std::map<int, core::LwpRecord>& lwps,
                                 const ChartOptions& options = {});

/// One chart per HWT from the tracked percentages.
std::string renderHwtUtilization(
    const std::map<std::size_t, core::HwtRecord>& hwts,
    const ChartOptions& options = {});

/// Noise quantification for the Figure 6 caption: the mean per-period
/// standard deviation of LWP busy% minus that of the aggregate-across-LWPs
/// series.  Positive values mean individual LWP series are noisier than
/// their aggregate, the paper's stated observation.
double lwpNoiseExcess(const std::map<int, core::LwpRecord>& lwps,
                      double jiffiesPerPeriod);

}  // namespace zerosum::analysis
