#include "analysis/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace zerosum::analysis {

namespace {

constexpr const char kRamp[] = " .:-=+*#%@";
constexpr int kRampSteps = 10;

struct Grid {
  std::vector<std::vector<double>> intensity;  // [row][col] in [0,1]
  std::uint64_t maxCell = 0;
};

Grid buildGrid(const mpisim::CommMatrix& matrix,
               const HeatmapOptions& options) {
  const int bins = std::clamp(options.bins, 1, matrix.ranks());
  const auto binnedCells = matrix.binned(bins);
  Grid grid;
  grid.intensity.assign(static_cast<std::size_t>(bins),
                        std::vector<double>(static_cast<std::size_t>(bins)));
  for (const auto& row : binnedCells) {
    for (std::uint64_t cell : row) {
      grid.maxCell = std::max(grid.maxCell, cell);
    }
  }
  if (grid.maxCell == 0) {
    return grid;
  }
  const double logMax = std::log1p(static_cast<double>(grid.maxCell));
  for (std::size_t r = 0; r < binnedCells.size(); ++r) {
    for (std::size_t c = 0; c < binnedCells[r].size(); ++c) {
      const auto v = static_cast<double>(binnedCells[r][c]);
      grid.intensity[r][c] =
          options.logScale ? std::log1p(v) / logMax
                           : v / static_cast<double>(grid.maxCell);
    }
  }
  return grid;
}

}  // namespace

std::string renderAscii(const mpisim::CommMatrix& matrix,
                        const HeatmapOptions& options) {
  const Grid grid = buildGrid(matrix, options);
  std::ostringstream out;
  out << "P2P bytes heatmap (" << matrix.ranks() << " ranks, "
      << grid.intensity.size() << "x" << grid.intensity.size()
      << " bins, max cell " << grid.maxCell << " bytes"
      << (options.logScale ? ", log scale" : "") << ")\n";
  for (const auto& row : grid.intensity) {
    for (double v : row) {
      const int step = std::min(kRampSteps - 1,
                                static_cast<int>(v * (kRampSteps - 1) + 0.5));
      out << kRamp[step];
    }
    out << '\n';
  }
  return out.str();
}

std::string renderPgm(const mpisim::CommMatrix& matrix,
                      const HeatmapOptions& options) {
  const Grid grid = buildGrid(matrix, options);
  const std::size_t side = grid.intensity.size();
  std::ostringstream out;
  out << "P2\n" << side << ' ' << side << "\n255\n";
  for (const auto& row : grid.intensity) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ' ';
      }
      out << static_cast<int>(row[c] * 255.0 + 0.5);
    }
    out << '\n';
  }
  return out.str();
}

std::string writePgmFile(const mpisim::CommMatrix& matrix,
                         const std::string& path,
                         const HeatmapOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw StateError("cannot open " + path);
  }
  out << renderPgm(matrix, options);
  return path;
}

}  // namespace zerosum::analysis
