// Communication heatmap rendering (paper Figure 5): the N×N byte matrix
// from the MPI interposition recorders, downsampled and rendered either as
// ASCII shading for the terminal or as a PGM image for plotting tools.
#pragma once

#include <string>

#include "mpisim/recorder.hpp"

namespace zerosum::analysis {

struct HeatmapOptions {
  /// Output resolution (bins per side); clamped to the matrix size.
  int bins = 64;
  /// Log-scale intensities (Figure 5's dynamic range spans ~3 decades).
  bool logScale = true;
};

/// ASCII rendering with a 10-step shade ramp, row 0 at the top; includes
/// min/max legend.
std::string renderAscii(const mpisim::CommMatrix& matrix,
                        const HeatmapOptions& options = {});

/// Binary-free PGM (P2, 8-bit) text image; dark = no traffic.
std::string renderPgm(const mpisim::CommMatrix& matrix,
                      const HeatmapOptions& options = {});

/// Writes renderPgm() to a file; returns the path.  Throws StateError on
/// I/O failure.
std::string writePgmFile(const mpisim::CommMatrix& matrix,
                         const std::string& path,
                         const HeatmapOptions& options = {});

}  // namespace zerosum::analysis
