#include "analysis/logparse.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::analysis {

namespace {

constexpr std::string_view kSectionPrefix = "=== CSV: ";
constexpr std::string_view kSectionSuffix = " ===";

/// Splits on the exact " - " delimiter (a bare '-' also appears inside
/// affinity ranges like "[1-7]").
std::vector<std::string> splitOnDelimiter(const std::string& line,
                                          const std::string& delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delimiter, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + delimiter.size();
  }
}

/// "MPI 000 - PID 51334 - Node frontier09085 - CPUs allowed: [1-7]"
void parseProcessLine(const std::string& line, ParsedLog& log) {
  const auto fields = splitOnDelimiter(line, " - ");
  for (const auto& rawField : fields) {
    const std::string field = strings::trim(rawField);
    if (strings::startsWith(field, "MPI ")) {
      const auto v = strings::toU64(strings::trim(field.substr(4)));
      if (!v) {
        throw ParseError("bad MPI rank in '" + line + "'");
      }
      log.rank = static_cast<int>(*v);
    } else if (strings::startsWith(field, "PID ")) {
      const auto v = strings::toU64(strings::trim(field.substr(4)));
      if (!v) {
        throw ParseError("bad PID in '" + line + "'");
      }
      log.pid = static_cast<int>(*v);
    } else if (strings::startsWith(field, "Node ")) {
      log.hostname = strings::trim(field.substr(5));
    } else if (strings::startsWith(field, "CPUs allowed:")) {
      const auto open = field.find('[');
      const auto close = field.rfind(']');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        throw ParseError("bad affinity in '" + line + "'");
      }
      log.cpusAllowed =
          CpuSet::fromList(field.substr(open + 1, close - open - 1));
    }
  }
}

}  // namespace

const Table& ParsedLog::section(const std::string& name) const {
  const auto it = sections.find(name);
  if (it == sections.end()) {
    throw NotFoundError("log section '" + name + "'");
  }
  return it->second;
}

ParsedLog parseLog(std::istream& in) {
  ParsedLog log;
  std::string line;
  std::ostringstream report;
  std::optional<std::string> currentSection;
  std::ostringstream currentCsv;
  bool sawDuration = false;

  auto flushSection = [&] {
    if (!currentSection) {
      return;
    }
    try {
      log.sections.emplace(*currentSection,
                           Table::fromCsvText(currentCsv.str()));
    } catch (const ParseError& e) {
      throw ParseError("in log section '" + *currentSection +
                       "': " + e.what());
    }
    currentSection.reset();
    currentCsv.str("");
  };

  while (std::getline(in, line)) {
    if (strings::startsWith(line, kSectionPrefix) &&
        strings::endsWith(line, kSectionSuffix)) {
      flushSection();
      currentSection = line.substr(
          kSectionPrefix.size(),
          line.size() - kSectionPrefix.size() - kSectionSuffix.size());
      continue;
    }
    if (currentSection) {
      if (!strings::trim(line).empty()) {
        currentCsv << line << '\n';
      }
      continue;
    }

    report << line << '\n';
    if (strings::startsWith(line, "Duration of execution:")) {
      const auto parts = strings::splitWs(line);
      // "Duration of execution: <value> s"
      if (parts.size() < 4) {
        throw ParseError("bad duration line '" + line + "'");
      }
      const auto v = strings::toDouble(parts[3]);
      if (!v) {
        throw ParseError("bad duration value '" + parts[3] + "'");
      }
      log.durationSeconds = *v;
      sawDuration = true;
    } else if (strings::startsWith(line, "MPI ")) {
      parseProcessLine(line, log);
    }
  }
  flushSection();
  if (!sawDuration) {
    throw ParseError("log has no 'Duration of execution' header");
  }
  log.reportText = report.str();
  return log;
}

ParsedLog parseLogText(const std::string& text) {
  std::istringstream in(text);
  return parseLog(in);
}

ParsedLog parseLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw NotFoundError("log file " + path);
  }
  return parseLog(in);
}

}  // namespace zerosum::analysis
