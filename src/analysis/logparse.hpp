// Parser for ZeroSum's per-process log files (paper §3.6): the report
// header plus the "=== CSV: … ===" time-series sections.  This is the
// post-processing entry point — the paper's Figures 5-7 are all produced
// from these logs — and the round-trip counterpart of
// MonitorSession::writeLog().
#pragma once

#include <istream>
#include <map>
#include <optional>
#include <string>

#include "analysis/table.hpp"
#include "common/cpuset.hpp"

namespace zerosum::analysis {

struct ParsedLog {
  // From the report header.
  double durationSeconds = 0.0;
  int rank = 0;
  int pid = 0;
  std::string hostname;
  CpuSet cpusAllowed;
  /// The full report text (everything before the first CSV section).
  std::string reportText;
  /// CSV sections by name ("LWP time series", "HWT time series", ...).
  std::map<std::string, Table> sections;

  [[nodiscard]] bool hasSection(const std::string& name) const {
    return sections.count(name) != 0;
  }
  /// Throws NotFoundError when absent.
  [[nodiscard]] const Table& section(const std::string& name) const;
};

/// Parses a complete log.  Throws ParseError on structural damage
/// (malformed header line, CSV section that does not parse).
ParsedLog parseLog(std::istream& in);
ParsedLog parseLogText(const std::string& text);
ParsedLog parseLogFile(const std::string& path);

}  // namespace zerosum::analysis
