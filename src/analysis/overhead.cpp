#include "analysis/overhead.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace zerosum::analysis {

OverheadResult compareOverhead(std::span<const double> baseline,
                               std::span<const double> withTool,
                               double alpha) {
  OverheadResult result;
  result.baseline = stats::summarize(baseline);
  result.withTool = stats::summarize(withTool);
  result.ttest = stats::welchTTest(baseline, withTool);
  result.overheadAbs = result.withTool.mean - result.baseline.mean;
  result.overheadFraction =
      result.baseline.mean > 0.0 ? result.overheadAbs / result.baseline.mean
                                 : 0.0;
  result.significant = result.ttest.pValue < alpha;
  return result;
}

std::string renderOverhead(const OverheadResult& result,
                           const std::string& label) {
  std::ostringstream out;
  out << "Overhead comparison: " << label << '\n';
  out << "  baseline : " << strings::fixed(result.baseline.mean, 4) << " +/- "
      << strings::fixed(result.baseline.stddev, 4) << " s  (n="
      << result.baseline.n << ", min " << strings::fixed(result.baseline.min, 4)
      << ", max " << strings::fixed(result.baseline.max, 4) << ")\n";
  out << "  with tool: " << strings::fixed(result.withTool.mean, 4) << " +/- "
      << strings::fixed(result.withTool.stddev, 4) << " s  (n="
      << result.withTool.n << ", min " << strings::fixed(result.withTool.min, 4)
      << ", max " << strings::fixed(result.withTool.max, 4) << ")\n";
  out << "  t-test p = " << strings::fixed(result.ttest.pValue, 4) << " (t="
      << strings::fixed(result.ttest.t, 3) << ", df="
      << strings::fixed(result.ttest.df, 1) << ")\n";
  if (result.significant) {
    out << "  => measurable overhead: "
        << strings::fixed(result.overheadAbs, 4) << " s ("
        << strings::fixed(result.overheadFraction * 100.0, 2) << "%)\n";
  } else {
    out << "  => no statistically significant overhead\n";
  }
  return out.str();
}

}  // namespace zerosum::analysis
