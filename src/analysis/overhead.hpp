// Overhead comparison (paper §4.1, Figure 8): compare run-time
// distributions with and without the monitor using Welch's t-test, exactly
// the statistic the paper reports (p = 0.998 for one thread/core — no
// measurable overhead; p = 0.0006 for two threads/core — ~0.5% overhead).
#pragma once

#include <span>
#include <string>

#include "common/stats.hpp"

namespace zerosum::analysis {

struct OverheadResult {
  stats::Summary baseline;
  stats::Summary withTool;
  stats::TTest ttest;
  /// Mean slowdown in the samples' unit (seconds in the paper).
  double overheadAbs = 0.0;
  /// Mean slowdown as a fraction of the baseline mean.
  double overheadFraction = 0.0;
  /// True when the t-test distinguishes the distributions at alpha.
  bool significant = false;
};

/// Compares two run-time samples.  `alpha` — significance level (paper
/// uses the conventional 0.05 implicitly).
OverheadResult compareOverhead(std::span<const double> baseline,
                               std::span<const double> withTool,
                               double alpha = 0.05);

/// Renders the comparison the way the Figure 8 caption narrates it.
std::string renderOverhead(const OverheadResult& result,
                           const std::string& label);

}  // namespace zerosum::analysis
