#include "analysis/reorder.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::analysis {

namespace {

void validateMapping(const mpisim::CommMatrix& matrix,
                     const RankMapping& mapping) {
  if (mapping.size() != static_cast<std::size_t>(matrix.ranks())) {
    throw ConfigError("mapping size " + std::to_string(mapping.size()) +
                      " != matrix ranks " + std::to_string(matrix.ranks()));
  }
  for (int node : mapping) {
    if (node < 0) {
      throw ConfigError("negative node index in mapping");
    }
  }
}

/// Symmetric traffic between two ranks.
std::uint64_t pairBytes(const mpisim::CommMatrix& matrix, int a, int b) {
  return matrix.bytes(a, b) + matrix.bytes(b, a);
}

/// Change in inter-node bytes if ranks a and b swap nodes.  Negative is
/// an improvement.
std::int64_t swapDelta(const mpisim::CommMatrix& matrix,
                       const RankMapping& mapping, int a, int b) {
  const int nodeA = mapping[static_cast<std::size_t>(a)];
  const int nodeB = mapping[static_cast<std::size_t>(b)];
  if (nodeA == nodeB) {
    return 0;
  }
  std::int64_t delta = 0;
  const int ranks = matrix.ranks();
  for (int x = 0; x < ranks; ++x) {
    if (x == a || x == b) {
      continue;  // the (a,b) pair itself crosses iff it crossed before
    }
    const int nodeX = mapping[static_cast<std::size_t>(x)];
    const auto withA = static_cast<std::int64_t>(pairBytes(matrix, a, x));
    if (withA != 0) {
      const bool crossedBefore = nodeA != nodeX;
      const bool crossesAfter = nodeB != nodeX;
      delta += (crossesAfter ? withA : 0) - (crossedBefore ? withA : 0);
    }
    const auto withB = static_cast<std::int64_t>(pairBytes(matrix, b, x));
    if (withB != 0) {
      const bool crossedBefore = nodeB != nodeX;
      const bool crossesAfter = nodeA != nodeX;
      delta += (crossesAfter ? withB : 0) - (crossedBefore ? withB : 0);
    }
  }
  return delta;
}

}  // namespace

std::uint64_t interNodeBytes(const mpisim::CommMatrix& matrix,
                             const RankMapping& mapping) {
  validateMapping(matrix, mapping);
  std::uint64_t total = 0;
  const int ranks = matrix.ranks();
  for (int s = 0; s < ranks; ++s) {
    for (int d = 0; d < ranks; ++d) {
      if (mapping[static_cast<std::size_t>(s)] !=
          mapping[static_cast<std::size_t>(d)]) {
        total += matrix.bytes(s, d);
      }
    }
  }
  return total;
}

RankMapping blockMapping(int ranks, int ranksPerNode) {
  if (ranks < 1 || ranksPerNode < 1) {
    throw ConfigError("blockMapping: counts must be >= 1");
  }
  RankMapping mapping(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    mapping[static_cast<std::size_t>(r)] = r / ranksPerNode;
  }
  return mapping;
}

RankMapping roundRobinMapping(int ranks, int nodes) {
  if (ranks < 1 || nodes < 1) {
    throw ConfigError("roundRobinMapping: counts must be >= 1");
  }
  RankMapping mapping(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    mapping[static_cast<std::size_t>(r)] = r % nodes;
  }
  return mapping;
}

ReorderResult improveMapping(const mpisim::CommMatrix& matrix,
                             RankMapping start, int maxSwaps) {
  validateMapping(matrix, start);
  ReorderResult result;
  result.interNodeBytesBefore = interNodeBytes(matrix, start);
  result.mapping = std::move(start);

  const int ranks = matrix.ranks();
  bool improved = true;
  while (improved && result.swapsApplied < maxSwaps) {
    improved = false;
    for (int a = 0; a < ranks && result.swapsApplied < maxSwaps; ++a) {
      for (int b = a + 1; b < ranks; ++b) {
        if (swapDelta(matrix, result.mapping, a, b) < 0) {
          std::swap(result.mapping[static_cast<std::size_t>(a)],
                    result.mapping[static_cast<std::size_t>(b)]);
          ++result.swapsApplied;
          improved = true;
          break;  // restart the inner scan from this rank's new situation
        }
      }
    }
  }
  result.interNodeBytesAfter = interNodeBytes(matrix, result.mapping);
  return result;
}

std::string renderReorderAdvice(const mpisim::CommMatrix& matrix,
                                int ranksPerNode) {
  const int ranks = matrix.ranks();
  const int nodes = (ranks + ranksPerNode - 1) / ranksPerNode;
  const auto block = blockMapping(ranks, ranksPerNode);
  const auto rr = roundRobinMapping(ranks, nodes);
  const std::uint64_t blockCost = interNodeBytes(matrix, block);
  const std::uint64_t rrCost = interNodeBytes(matrix, rr);
  const ReorderResult improvedRr = improveMapping(matrix, rr);
  const std::uint64_t total = matrix.totalBytes();

  auto pct = [&](std::uint64_t bytes) {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(bytes) /
                            static_cast<double>(total);
  };
  std::ostringstream out;
  out << "Rank-placement advice (" << ranks << " ranks, " << ranksPerNode
      << " per node):\n";
  out << "  round-robin mapping: " << rrCost << " inter-node bytes ("
      << strings::fixed(pct(rrCost), 1) << "% of traffic)\n";
  out << "  block mapping      : " << blockCost << " inter-node bytes ("
      << strings::fixed(pct(blockCost), 1) << "% of traffic)\n";
  out << "  swap-improved      : " << improvedRr.interNodeBytesAfter
      << " inter-node bytes (" << strings::fixed(pct(improvedRr.interNodeBytesAfter), 1)
      << "% of traffic, " << improvedRr.swapsApplied
      << " swaps from round-robin)\n";
  if (blockCost < rrCost) {
    out << "  => keep consecutive ranks on the same node "
           "(nearest-neighbour traffic dominates)\n";
  }
  return out.str();
}

}  // namespace zerosum::analysis
