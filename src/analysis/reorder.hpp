// Rank-placement guidance from the P2P byte matrix (paper §3.1.3: "This
// data could also be used to guide the logical MPI process ordering on the
// nodes to exploit lower latency communication between ranks executing on
// the same node").
//
// Given the recorded CommMatrix and the ranks-per-node of the allocation,
// these functions score a rank→node mapping by the bytes that must cross
// the network, generate the standard mappings (block, round-robin), and
// improve a mapping with a pairwise-swap hill climb.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpisim/recorder.hpp"

namespace zerosum::analysis {

/// rankToNode[rank] = node index.  Every mapping function produces and
/// every consumer validates this shape.
using RankMapping = std::vector<int>;

/// Bytes whose source and destination live on different nodes — the cost
/// a mapping should minimize.  Throws ConfigError when the mapping size
/// disagrees with the matrix.
std::uint64_t interNodeBytes(const mpisim::CommMatrix& matrix,
                             const RankMapping& mapping);

/// Consecutive ranks share a node: [0..k) -> node 0, [k..2k) -> node 1 ...
/// (the usual Slurm default).
RankMapping blockMapping(int ranks, int ranksPerNode);

/// Ranks dealt round-robin across nodes (the usual worst case for
/// nearest-neighbour codes).
RankMapping roundRobinMapping(int ranks, int nodes);

struct ReorderResult {
  RankMapping mapping;
  std::uint64_t interNodeBytesBefore = 0;
  std::uint64_t interNodeBytesAfter = 0;
  int swapsApplied = 0;

  [[nodiscard]] double improvement() const {
    if (interNodeBytesBefore == 0) {
      return 0.0;
    }
    return 1.0 - static_cast<double>(interNodeBytesAfter) /
                     static_cast<double>(interNodeBytesBefore);
  }
};

/// Greedy pairwise-swap improvement: repeatedly applies the rank swap
/// that most reduces inter-node bytes until no swap helps or `maxSwaps`
/// is reached.  Node capacities are preserved (swaps only).
ReorderResult improveMapping(const mpisim::CommMatrix& matrix,
                             RankMapping start, int maxSwaps = 1000);

/// Human-readable comparison of the canonical mappings plus the improved
/// one, for the report/log.
std::string renderReorderAdvice(const mpisim::CommMatrix& matrix,
                                int ranksPerNode);

}  // namespace zerosum::analysis
