#include "analysis/selfprofile.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"

namespace zerosum::analysis {

namespace {

struct Accum {
  std::uint64_t count = 0;
  double totalMicros = 0.0;
  double maxMicros = 0.0;

  void add(double micros) {
    ++count;
    totalMicros += micros;
    maxMicros = std::max(maxMicros, micros);
  }
};

std::vector<SubsystemShare> toShares(const std::map<std::string, Accum>& in,
                                     double loopTotalMicros) {
  std::vector<SubsystemShare> out;
  out.reserve(in.size());
  for (const auto& [name, a] : in) {
    SubsystemShare s;
    s.name = name;
    s.count = a.count;
    s.totalMicros = a.totalMicros;
    s.meanMicros = a.count > 0 ? a.totalMicros / static_cast<double>(a.count)
                               : 0.0;
    s.maxMicros = a.maxMicros;
    s.shareOfLoop =
        loopTotalMicros > 0.0 ? a.totalMicros / loopTotalMicros : 0.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.totalMicros > b.totalMicros;
  });
  return out;
}

}  // namespace

SelfProfile attributeOverhead(const std::vector<trace::Event>& events) {
  // Group the span events per thread: nesting is only meaningful within
  // one thread's call stack.
  std::map<int, std::vector<const trace::Event*>> byTid;
  for (const auto& e : events) {
    if (e.kind == trace::EventKind::kSpan) {
      byTid[e.tid].push_back(&e);
    }
  }

  SelfProfile profile;
  std::map<std::string, Accum> children;
  std::map<std::string, Accum> outside;
  double attributedMicros = 0.0;

  for (auto& [tid, spans] : byTid) {
    (void)tid;
    // Parent-first order: by start time, longer (enclosing) span first on
    // a tie.  RAII guarantees a child's interval lies inside its parent's.
    std::sort(spans.begin(), spans.end(),
              [](const trace::Event* a, const trace::Event* b) {
                if (a->startNanos != b->startNanos) {
                  return a->startNanos < b->startNanos;
                }
                return a->durationNanos > b->durationNanos;
              });
    struct Open {
      const char* name;
      std::uint64_t endNanos;
      bool isLoop;
    };
    std::vector<Open> stack;
    for (const trace::Event* s : spans) {
      while (!stack.empty() && stack.back().endNanos <= s->startNanos) {
        stack.pop_back();
      }
      const bool isLoop = std::string_view(s->name) == kLoopSpanName;
      const double micros = static_cast<double>(s->durationNanos) / 1000.0;
      if (isLoop) {
        ++profile.loopCount;
        profile.loopTotalMicros += micros;
      } else if (!stack.empty() && stack.back().isLoop) {
        // A direct child of a loop iteration: this is the attribution.
        children[s->name].add(micros);
        attributedMicros += micros;
      } else if (stack.empty()) {
        outside[s->name].add(micros);
      }
      // Deeper descendants ride inside their parent's share; nothing to
      // credit, but they still need to be on the stack for their own
      // children's sake.
      stack.push_back(Open{s->name, s->startNanos + s->durationNanos,
                           isLoop});
    }
  }

  profile.shares = toShares(children, profile.loopTotalMicros);
  // Whatever loop time no child claimed is the loop's own bookkeeping
  // (guard state machines, health-series append, timestamps).  This keeps
  // the invariant: sum(shares.totalMicros) == loopTotalMicros.
  SubsystemShare bookkeeping;
  bookkeeping.name = kBookkeepingName;
  bookkeeping.count = profile.loopCount;
  bookkeeping.totalMicros =
      std::max(0.0, profile.loopTotalMicros - attributedMicros);
  bookkeeping.meanMicros =
      profile.loopCount > 0
          ? bookkeeping.totalMicros / static_cast<double>(profile.loopCount)
          : 0.0;
  bookkeeping.shareOfLoop = profile.loopTotalMicros > 0.0
                                ? bookkeeping.totalMicros /
                                      profile.loopTotalMicros
                                : 0.0;
  profile.shares.push_back(std::move(bookkeeping));
  std::sort(profile.shares.begin(), profile.shares.end(),
            [](const auto& a, const auto& b) {
              return a.totalMicros > b.totalMicros;
            });
  profile.outsideLoop = toShares(outside, 0.0);
  return profile;
}

SelfProfile attributeOverheadFromChromeTrace(const std::string& jsonText) {
  const json::Value doc = json::parse(jsonText);
  const json::Value* traceEvents = doc.find("traceEvents");
  if (traceEvents == nullptr || !traceEvents->isArray()) {
    throw ParseError("not a Chrome trace document: no traceEvents array");
  }
  // Event::name is a borrowed pointer; the deque gives the strings stable
  // addresses for the lifetime of this call.
  std::deque<std::string> names;
  std::vector<trace::Event> events;
  for (const auto& entry : traceEvents->asArray()) {
    if (entry.stringOr("ph", "") != "X") {
      continue;  // only complete spans participate in attribution
    }
    trace::Event e;
    names.push_back(entry.stringOr("name", ""));
    e.name = names.back().c_str();
    e.kind = trace::EventKind::kSpan;
    e.startNanos =
        static_cast<std::uint64_t>(entry.numberOr("ts", 0.0) * 1000.0);
    e.durationNanos =
        static_cast<std::uint64_t>(entry.numberOr("dur", 0.0) * 1000.0);
    e.tid = static_cast<int>(entry.numberOr("tid", 0.0));
    events.push_back(e);
  }
  return attributeOverhead(events);
}

std::string renderAttribution(const SelfProfile& profile) {
  std::ostringstream out;
  out << "=== Monitor overhead attribution ===\n";
  out << "loop iterations: " << profile.loopCount << "\n";
  out << "loop total     : " << strings::fixed(profile.loopTotalMicros / 1000.0, 3)
      << " ms\n";
  if (profile.shares.empty() && profile.outsideLoop.empty()) {
    out << "(no span events recorded)\n";
    return out.str();
  }
  const auto row = [&out](const SubsystemShare& s, bool withShare) {
    out << strings::padRight(s.name, 26)
        << strings::padLeft(std::to_string(s.count), 8)
        << strings::padLeft(strings::fixed(s.totalMicros / 1000.0, 3), 12)
        << strings::padLeft(strings::fixed(s.meanMicros, 1), 11)
        << strings::padLeft(strings::fixed(s.maxMicros, 1), 11);
    if (withShare) {
      out << strings::padLeft(strings::fixed(s.shareOfLoop * 100.0, 1), 8)
          << '%';
    }
    out << '\n';
  };
  out << strings::padRight("subsystem", 26) << strings::padLeft("count", 8)
      << strings::padLeft("total ms", 12) << strings::padLeft("mean us", 11)
      << strings::padLeft("max us", 11) << strings::padLeft("share", 9)
      << '\n';
  for (const auto& s : profile.shares) {
    row(s, true);
  }
  if (!profile.outsideLoop.empty()) {
    out << "outside the sampling loop:\n";
    for (const auto& s : profile.outsideLoop) {
      row(s, false);
    }
  }
  return out.str();
}

}  // namespace zerosum::analysis
