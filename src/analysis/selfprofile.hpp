// Overhead attribution from the monitor's own trace (tentpole of the
// self-observability layer): given the span events recorded by
// zerosum::trace, break the monitor's total sampling-loop time down per
// subsystem.  Where analysis/overhead.hpp measures the paper's Figure 8
// claim from the *outside* (application run-time with vs without the
// tool), this pass explains it from the *inside*: which fraction of the
// monitor's wall-clock went to LWP sampling, HWT sampling, memory, GPU,
// progress detection, and the loop's own bookkeeping.
//
// The attribution is exact by construction: every direct child span of a
// "zs.sample" loop iteration is credited to its name, and whatever loop
// time no child claims is the "(bookkeeping)" share — so the shares
// always sum to the loop total.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace zerosum::analysis {

/// One attributed share of the monitor's loop time.
struct SubsystemShare {
  std::string name;          ///< span name, e.g. "zs.sample.lwp"
  std::uint64_t count = 0;   ///< completed spans
  double totalMicros = 0.0;  ///< summed duration
  double meanMicros = 0.0;
  double maxMicros = 0.0;
  /// Fraction of the loop total in [0, 1]; 0 when the loop total is 0.
  double shareOfLoop = 0.0;
};

/// The full attribution result.
struct SelfProfile {
  std::uint64_t loopCount = 0;    ///< "zs.sample" iterations seen
  double loopTotalMicros = 0.0;   ///< summed "zs.sample" durations
  /// Direct children of the loop span plus one synthetic "(bookkeeping)"
  /// entry for unattributed loop time, largest total first.
  /// Invariant: the totals sum to loopTotalMicros (within rounding).
  std::vector<SubsystemShare> shares;
  /// Spans outside any loop iteration (report rendering, CSV export,
  /// publisher), largest total first.  Not part of the loop total.
  std::vector<SubsystemShare> outsideLoop;
};

/// Name of the span that brackets one sampling-loop iteration.
inline constexpr const char* kLoopSpanName = "zs.sample";
/// Name of the synthetic share for unattributed loop time.
inline constexpr const char* kBookkeepingName = "(bookkeeping)";

/// Attributes `events` (a TraceRecorder::snapshot(), or events re-read
/// from a Chrome trace file).  Only span events participate; instants and
/// counters are ignored.  Nesting is computed per thread from the span
/// intervals, so only *direct* children of a loop iteration are credited
/// — a grandchild span is part of its parent's share, not double-counted.
SelfProfile attributeOverhead(const std::vector<trace::Event>& events);

/// Parses a Chrome trace_event document (the format our exporter writes)
/// and attributes it.  Throws ParseError on malformed JSON or a document
/// without a traceEvents array.
SelfProfile attributeOverheadFromChromeTrace(const std::string& jsonText);

/// Renders the attribution as the table zerosum-post prints for
/// --trace-summary.
std::string renderAttribution(const SelfProfile& profile);

}  // namespace zerosum::analysis
