#include "analysis/table.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::analysis {

namespace {

/// Splits one CSV line honouring double quotes.
std::vector<std::string> splitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return out;
}

std::string escapeCsvField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header,
             std::vector<std::vector<std::string>> rows)
    : header_(std::move(header)), rows_(std::move(rows)) {
  for (const auto& row : rows_) {
    if (row.size() != header_.size()) {
      throw ParseError("table row width " + std::to_string(row.size()) +
                       " != header width " + std::to_string(header_.size()));
    }
  }
}

Table Table::fromCsv(std::istream& in) {
  std::string line;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    auto fields = splitCsvLine(line);
    if (first) {
      header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != header.size()) {
        throw ParseError("CSV row has " + std::to_string(fields.size()) +
                         " fields, expected " + std::to_string(header.size()) +
                         ": '" + line + "'");
      }
      rows.push_back(std::move(fields));
    }
  }
  if (first) {
    throw ParseError("CSV input is empty");
  }
  return Table(std::move(header), std::move(rows));
}

Table Table::fromCsvText(const std::string& text) {
  std::istringstream in(text);
  return fromCsv(in);
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  if (i >= rows_.size()) {
    throw NotFoundError("table row " + std::to_string(i));
  }
  return rows_[i];
}

std::size_t Table::columnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) {
      return i;
    }
  }
  throw NotFoundError("table column '" + name + "'");
}

std::vector<std::string> Table::column(const std::string& name) const {
  const std::size_t idx = columnIndex(name);
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    out.push_back(row[idx]);
  }
  return out;
}

std::vector<double> Table::numericColumn(const std::string& name) const {
  const std::size_t idx = columnIndex(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    const auto v = strings::toDouble(row[idx]);
    if (!v) {
      throw ParseError("non-numeric cell '" + row[idx] + "' in column " +
                       name);
    }
    out.push_back(*v);
  }
  return out;
}

Table Table::filter(const std::string& name, const std::string& value) const {
  const std::size_t idx = columnIndex(name);
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : rows_) {
    if (row[idx] == value) {
      rows.push_back(row);
    }
  }
  return Table(header_, std::move(rows));
}

std::string Table::toCsv() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i != 0) {
      out << ',';
    }
    out << escapeCsvField(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        out << ',';
      }
      out << escapeCsvField(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace zerosum::analysis
