// A small CSV-backed table for post-processing the per-process logs
// (paper §3.6: "a detailed dump of all data collected ... as comma
// separated values, allowing for time-series analysis").
#pragma once

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

namespace zerosum::analysis {

class Table {
 public:
  Table() = default;
  Table(std::vector<std::string> header,
        std::vector<std::vector<std::string>> rows);

  /// Parses CSV with a header row.  Handles double-quoted fields (the
  /// affinity column contains commas).  Throws ParseError on ragged rows.
  static Table fromCsv(std::istream& in);
  static Table fromCsvText(const std::string& text);

  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Column index by name; throws NotFoundError.
  [[nodiscard]] std::size_t columnIndex(const std::string& name) const;

  /// Whole column as strings / parsed doubles (throws ParseError on
  /// non-numeric cells).
  [[nodiscard]] std::vector<std::string> column(const std::string& name) const;
  [[nodiscard]] std::vector<double> numericColumn(
      const std::string& name) const;

  /// Rows where `name` equals `value`.
  [[nodiscard]] Table filter(const std::string& name,
                             const std::string& value) const;

  [[nodiscard]] std::string toCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zerosum::analysis
