#include "cluster/job.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/aggregate.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "procfs/simfs.hpp"
#include "sim/slurm.hpp"
#include "trace/metrics.hpp"

namespace zerosum::cluster {

ClusterJob::ClusterJob(const topology::Topology& nodeTopology,
                       const ClusterJobConfig& config)
    : config_(config) {
  if (config_.nodes < 1 || config_.ranksPerNode < 1) {
    throw ConfigError("ClusterJob needs >= 1 node and >= 1 rank per node");
  }

  sim::slurm::SrunArgs args;
  args.ntasks = config_.ranksPerNode;
  args.cpusPerTask = config_.cpusPerTask;
  const auto plan = sim::slurm::planSrun(nodeTopology, args);

  for (int n = 0; n < config_.nodes; ++n) {
    auto node = std::make_unique<sim::SimNode>(
        nodeTopology.allPus(), 512ULL << 30, sim::SchedulerParams{},
        config_.seed + static_cast<std::uint64_t>(n));
    for (int r = 0; r < config_.ranksPerNode; ++r) {
      const auto& placement = plan[static_cast<std::size_t>(r)];
      sim::MiniQmcConfig qmc = config_.workload;
      if (config_.bindSpread) {
        qmc.threadBinding = sim::slurm::planOmpBinding(
            nodeTopology, placement.cpus, qmc.ompThreads,
            sim::slurm::OmpBind::kSpread, sim::slurm::OmpPlaces::kCores);
      }
      ranks_.push_back(
          sim::buildMiniQmcRank(*node, placement.cpus, qmc, node->hwts()));
    }
    nodes_.push_back(std::move(node));
  }

  // One monitor session per rank, each observing its node through its own
  // provider (exactly what each rank's injected ZeroSum instance does).
  core::Config cfg;
  cfg.jiffyHz = sim::kHz;
  cfg.signalHandler = false;
  for (int rank = 0; rank < totalRanks(); ++rank) {
    const int n = nodeOfRank(rank);
    core::ProcessIdentity identity;
    identity.rank = rank;
    identity.worldSize = totalRanks();
    identity.pid = ranks_[static_cast<std::size_t>(rank)].pid;
    identity.hostname = hostnameOf(n);
    sessions_.push_back(std::make_unique<core::MonitorSession>(
        cfg,
        procfs::makeSimProcFs(*nodes_[static_cast<std::size_t>(n)],
                              identity.pid),
        identity));
  }
}

void ClusterJob::addInterference(const Interference& interference) {
  if (ran_) {
    throw StateError("addInterference after run()");
  }
  if (interference.node < 0 || interference.node >= config_.nodes) {
    throw ConfigError("interference names node " +
                      std::to_string(interference.node));
  }
  sim::SimNode& node = *nodes_[static_cast<std::size_t>(interference.node)];
  const CpuSet cpus =
      interference.cpus.empty() ? node.hwts() : interference.cpus;
  const sim::Pid pid = node.spawnProcess("noisy-neighbor", cpus);
  if (interference.memoryBytes > 0) {
    node.setProcessRssModel(pid, interference.memoryBytes,
                            interference.memoryBytes, 1);
  }
  for (int t = 0; t < interference.threads; ++t) {
    sim::Behavior hog;
    hog.iterations = 0;  // daemon: never finishes, never blocks the job end
    hog.iterWorkJiffies = 50;
    hog.blockJiffies = 1;
    hog.systemFraction = 0.05;
    node.spawnTask(pid, "noisy-neighbor", LwpType::kOther, hog);
  }
}

void ClusterJob::setAggClientOptions(aggregator::ClientOptions options) {
  if (aggHub_ || aggTree_) {
    throw StateError("setAggClientOptions after enableAggregation");
  }
  aggClientOptions_ = options;
}

void ClusterJob::setAggDaemonOptions(aggregator::DaemonOptions options) {
  if (aggHub_ || aggTree_) {
    throw StateError("setAggDaemonOptions after enableAggregation");
  }
  aggDaemonOptions_ = options;
}

void ClusterJob::setAggWriterOptions(aggregator::WriterOptions options) {
  if (aggHub_ || aggTree_) {
    throw StateError("setAggWriterOptions after enableAggregation");
  }
  aggWriterOptions_ = options;
  aggUseWriter_ = true;
}

void ClusterJob::setAggFaultSpec(const std::string& spec,
                                 std::uint64_t seed) {
  if (aggHub_ || aggTree_) {
    throw StateError("setAggFaultSpec after enableAggregation");
  }
  aggFaultRules_ = aggregator::parseTransportFaultSpec(spec);
  aggFaultSeed_ = seed;
}

void ClusterJob::enableAggregation(const std::string& jobName,
                                   aggregator::StoreOptions storeOptions,
                                   const std::string& dataDir,
                                   tsdb::EngineOptions engineOptions) {
  if (ran_) {
    throw StateError("enableAggregation after run()");
  }
  if (aggHub_) {
    throw StateError("enableAggregation called twice");
  }
  if (aggUseWriter_ && dataDir.empty()) {
    throw ConfigError("setAggWriterOptions requires a dataDir");
  }
  aggStoreOptions_ = storeOptions;
  aggEngineOptions_ = engineOptions;
  aggDataDir_ = dataDir;
  aggHub_ = std::make_unique<aggregator::PipeHub>();
  aggDaemon_ = std::make_unique<aggregator::Aggregator>(
      aggHub_->makeServer(), storeOptions, aggDaemonOptions_);
  if (!aggDataDir_.empty()) {
    aggEngine_ = std::make_unique<tsdb::Engine>(aggDataDir_, engineOptions);
    if (aggUseWriter_) {
      aggWriter_ =
          std::make_unique<aggregator::TsdbWriter>(aggEngine_.get(),
                                                   aggWriterOptions_);
      aggDaemon_->attachWriter(aggWriter_.get());
    } else {
      aggDaemon_->attachEngine(aggEngine_.get());
    }
  }
  aggDeparted_.assign(static_cast<std::size_t>(totalRanks()), false);
  aggClosedClients_.resize(static_cast<std::size_t>(totalRanks()));
  aggFaultPtrs_.assign(static_cast<std::size_t>(totalRanks()), nullptr);
  for (int rank = 0; rank < totalRanks(); ++rank) {
    auto& session = *sessions_[static_cast<std::size_t>(rank)];
    aggregator::Hello hello;
    hello.job = jobName;
    hello.rank = rank;
    hello.worldSize = totalRanks();
    hello.hostname = session.identity().hostname;
    hello.pid = session.identity().pid;
    auto stream = std::make_unique<exporter::MetricStream>();
    auto publisher =
        std::make_unique<exporter::SessionPublisher>(stream.get());
    std::unique_ptr<aggregator::Transport> transport =
        aggHub_->makeClientTransport();
    if (!aggFaultRules_.empty()) {
      auto faulty = std::make_unique<aggregator::FaultInjectingTransport>(
          std::move(transport), aggFaultRules_,
          aggFaultSeed_ + static_cast<std::uint64_t>(rank));
      aggFaultPtrs_[static_cast<std::size_t>(rank)] = faulty.get();
      transport = std::move(faulty);
    }
    publisher->attachAggregator(std::make_unique<aggregator::Client>(
        std::move(transport), hello, aggClientOptions_));
    exporter::SessionPublisher* raw = publisher.get();
    session.setSampleCallback(
        [raw](const core::MonitorSession& s, double timeSeconds) {
          raw->publish(s, timeSeconds);
        });
    // Fold the client's ladder state into the rank's health series (the
    // same wiring the live facade does), so the per-rank health CSV
    // shows coarsening while it happens.
    session.setAggHealthProvider([raw]() -> core::AggHealth {
      core::AggHealth agg;
      if (const auto* client = raw->aggregatorClient()) {
        const auto& counters = client->counters();
        agg.recordsCoarsened = counters.recordsCoarsened;
        agg.degradeTransitions = counters.degradeTransitions;
        agg.recordsDropped = counters.recordsDropped;
        agg.degradeStage = static_cast<int>(client->level());
        agg.ackedPressure = static_cast<int>(client->pressure());
      }
      return agg;
    });
    aggStreams_.push_back(std::move(stream));
    aggPublishers_.push_back(std::move(publisher));
  }
}

void ClusterJob::enableFederation(const std::string& jobName, int groups,
                                  aggregator::FederationTreeOptions
                                      treeOptions) {
  if (ran_) {
    throw StateError("enableFederation after run()");
  }
  if (aggHub_ || aggTree_) {
    throw StateError("aggregation already enabled");
  }
  if (groups < 1 || config_.nodes % groups != 0) {
    throw ConfigError("enableFederation: " + std::to_string(config_.nodes) +
                      " node(s) do not divide into " +
                      std::to_string(groups) + " group(s)");
  }
  treeOptions.groups = groups;
  treeOptions.nodesPerGroup = config_.nodes / groups;
  aggTree_ = std::make_unique<aggregator::FederationTree>(treeOptions);
  aggDeparted_.assign(static_cast<std::size_t>(totalRanks()), false);
  aggClosedClients_.resize(static_cast<std::size_t>(totalRanks()));
  aggFaultPtrs_.assign(static_cast<std::size_t>(totalRanks()), nullptr);
  aggregator::Aggregator* rootDaemon = &aggTree_->root();
  for (int rank = 0; rank < totalRanks(); ++rank) {
    auto& session = *sessions_[static_cast<std::size_t>(rank)];
    aggregator::Hello hello;
    hello.job = jobName;
    hello.rank = rank;
    hello.worldSize = totalRanks();
    hello.hostname = session.identity().hostname;
    hello.pid = session.identity().pid;
    auto stream = std::make_unique<exporter::MetricStream>();
    auto publisher =
        std::make_unique<exporter::SessionPublisher>(stream.get());
    // Each rank publishes to its own node's daemon, exactly like a real
    // per-node zerosum-aggd deployment.
    const int n = nodeOfRank(rank);
    std::unique_ptr<aggregator::Transport> transport =
        aggTree_->makeNodeTransport(n / treeOptions.nodesPerGroup,
                                    n % treeOptions.nodesPerGroup);
    if (!aggFaultRules_.empty()) {
      auto faulty = std::make_unique<aggregator::FaultInjectingTransport>(
          std::move(transport), aggFaultRules_,
          aggFaultSeed_ + static_cast<std::uint64_t>(rank));
      aggFaultPtrs_[static_cast<std::size_t>(rank)] = faulty.get();
      transport = std::move(faulty);
    }
    publisher->attachAggregator(std::make_unique<aggregator::Client>(
        std::move(transport), hello, aggClientOptions_));
    exporter::SessionPublisher* raw = publisher.get();
    session.setSampleCallback(
        [raw](const core::MonitorSession& s, double timeSeconds) {
          raw->publish(s, timeSeconds);
        });
    // Ladder state from the rank's own client, plus the root's per-hop
    // source composition — the allocation-wide fan-in view lands in every
    // rank's health CSV alongside the quarantine columns.
    session.setAggHealthProvider([raw, rootDaemon]() -> core::AggHealth {
      core::AggHealth agg;
      if (const auto* client = raw->aggregatorClient()) {
        const auto& counters = client->counters();
        agg.recordsCoarsened = counters.recordsCoarsened;
        agg.degradeTransitions = counters.degradeTransitions;
        agg.recordsDropped = counters.recordsDropped;
        agg.degradeStage = static_cast<int>(client->level());
        agg.ackedPressure = static_cast<int>(client->pressure());
      }
      for (const auto& [hops, count] : rootDaemon->sourcesByHop()) {
        if (hops == 0) {
          agg.faninDirectSources += static_cast<int>(count);
        } else {
          agg.faninForwardedSources += static_cast<int>(count);
          agg.faninMaxHops = std::max(agg.faninMaxHops, hops);
        }
      }
      return agg;
    });
    aggStreams_.push_back(std::move(stream));
    aggPublishers_.push_back(std::move(publisher));
  }
}

void ClusterJob::crashAggGroup(int g) {
  if (!aggTree_) {
    throw StateError("crashAggGroup without enableFederation");
  }
  aggTree_->crashGroup(g);
}

void ClusterJob::restartAggGroup(int g) {
  if (!aggTree_) {
    throw StateError("restartAggGroup without enableFederation");
  }
  aggTree_->restartGroup(g, runtime_);
}

bool ClusterJob::jobFinished() const {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (int r = 0; r < config_.ranksPerNode; ++r) {
      const auto& rank =
          ranks_[n * static_cast<std::size_t>(config_.ranksPerNode) +
                 static_cast<std::size_t>(r)];
      if (!nodes_[n]->processFinished(rank.pid)) {
        return false;
      }
    }
  }
  return true;
}

void ClusterJob::crashAggregator() {
  if (!aggHub_) {
    throw StateError("crashAggregator without enableAggregation");
  }
  if (!aggDaemon_) {
    throw StateError("crashAggregator: daemon already down");
  }
  // Sever every connection first (clients observe a dead daemon), then
  // drop the daemon and engine with no seal/flush — a hard kill keeps
  // only what append() already write()'d into the WAL file.
  aggHub_->setDown(true);
  aggDaemon_.reset();
  aggWriter_.reset();  // discards queued-but-unacked batches, like SIGKILL
  aggEngine_.reset();
}

void ClusterJob::restartAggregation() {
  if (!aggHub_ || aggDaemon_) {
    throw StateError("restartAggregation without a crashed daemon");
  }
  aggDaemon_ = std::make_unique<aggregator::Aggregator>(
      aggHub_->makeServer(), aggStoreOptions_, aggDaemonOptions_);
  if (!aggDataDir_.empty()) {
    // Recovery happens here: segments verified, WAL tail repaired and
    // replayed, source registry reloaded.
    aggEngine_ = std::make_unique<tsdb::Engine>(aggDataDir_,
                                                aggEngineOptions_);
    if (aggUseWriter_) {
      aggWriter_ =
          std::make_unique<aggregator::TsdbWriter>(aggEngine_.get(),
                                                   aggWriterOptions_);
      aggDaemon_->attachWriter(aggWriter_.get());
    } else {
      aggDaemon_->attachEngine(aggEngine_.get());
    }
  }
  aggHub_->setDown(false);
}

exporter::MetricStream& ClusterJob::aggStream(int rank) {
  if ((!aggHub_ && !aggTree_) || rank < 0 || rank >= totalRanks()) {
    throw NotFoundError("aggregation stream for rank " +
                        std::to_string(rank));
  }
  return *aggStreams_[static_cast<std::size_t>(rank)];
}

const aggregator::Client& ClusterJob::aggClient(int rank) const {
  if ((!aggHub_ && !aggTree_) || rank < 0 || rank >= totalRanks()) {
    throw NotFoundError("aggregation client for rank " +
                        std::to_string(rank));
  }
  const auto index = static_cast<std::size_t>(rank);
  if (aggClosedClients_[index]) {
    return *aggClosedClients_[index];
  }
  const aggregator::Client* live =
      const_cast<exporter::SessionPublisher&>(*aggPublishers_[index])
          .aggregatorClient();
  if (live == nullptr) {
    throw NotFoundError("aggregation client for rank " +
                        std::to_string(rank));
  }
  return *live;
}

void ClusterJob::run(double maxSeconds) {
  ran_ = true;
  while (!jobFinished() && runtime_ < maxSeconds) {
    for (auto& node : nodes_) {
      node->advance(sim::kHz);
    }
    runtime_ = nodes_.front()->nowSeconds();
    for (int rank = 0; rank < totalRanks(); ++rank) {
      // A rank stops sampling once its process exits (as the real tool's
      // monitor thread dies with the process).
      const int n = nodeOfRank(rank);
      if (!nodes_[static_cast<std::size_t>(n)]->processFinished(
              ranks_[static_cast<std::size_t>(rank)].pid)) {
        sessions_[static_cast<std::size_t>(rank)]->sampleNow(runtime_);
      } else if ((aggDaemon_ || aggTree_) &&
                 !aggDeparted_[static_cast<std::size_t>(rank)]) {
        // The rank's tool exits with its process: flush and say goodbye.
        aggClosedClients_[static_cast<std::size_t>(rank)] =
            aggPublishers_[static_cast<std::size_t>(rank)]->closeAggregator(
                runtime_);
        aggDeparted_[static_cast<std::size_t>(rank)] = true;
      }
    }
    if (aggTree_) {
      aggTree_->step(runtime_);
    } else if (aggDaemon_) {
      aggDaemon_->poll(runtime_);
    }
  }
  // Orderly end of job: any rank still attached departs now, and the
  // daemon drains the final goodbyes.  Only when the job actually
  // finished — run() returning at maxSeconds is a pause (the caller may
  // resume, or crash/restart the daemon in between), not an exit.
  if ((aggDaemon_ || aggTree_) && jobFinished()) {
    for (int rank = 0; rank < totalRanks(); ++rank) {
      if (!aggDeparted_[static_cast<std::size_t>(rank)]) {
        aggClosedClients_[static_cast<std::size_t>(rank)] =
            aggPublishers_[static_cast<std::size_t>(rank)]->closeAggregator(
                runtime_);
        aggDeparted_[static_cast<std::size_t>(rank)] = true;
      }
    }
    if (aggTree_) {
      // Drain the fan-in: keep stepping (the clock holds still, so no
      // catalog entry can age out mid-drain) until every forwarder at
      // both tiers has routed, sent, and been acked — or until the bound
      // trips because a crashed group was never restarted and some
      // shards have no live owner.
      for (int round = 0; round < 400 && !aggTree_->quiesced(); ++round) {
        aggTree_->step(runtime_);
      }
    } else {
      aggDaemon_->poll(runtime_);
      // Whatever admission control deferred (and whatever the async
      // writer still queues) must hit the store before the orderly seal —
      // a paused job keeps its backlog and drains it on resume instead.
      aggDaemon_->drainBacklog(runtime_);
      if (aggEngine_) {
        aggEngine_->seal();
      }
    }
  }
  // No catch-up sampling: each rank's duration freezes at the last period
  // in which its process was alive, so the per-rank durations expose the
  // job's load imbalance (a rank that finished at t=5 reads ~5 s even when
  // a noisy node drags the job to t=7).
}

int ClusterJob::nodeOfRank(int rank) const {
  if (rank < 0 || rank >= totalRanks()) {
    throw NotFoundError("rank " + std::to_string(rank));
  }
  return rank / config_.ranksPerNode;
}

std::string ClusterJob::hostnameOf(int node) const {
  return "node" + strings::zeroPad(static_cast<std::uint64_t>(node), 4);
}

const core::MonitorSession& ClusterJob::session(int rank) const {
  if (rank < 0 || rank >= totalRanks()) {
    throw NotFoundError("rank " + std::to_string(rank));
  }
  return *sessions_[static_cast<std::size_t>(rank)];
}

std::vector<const core::MonitorSession*> ClusterJob::sessions() const {
  std::vector<const core::MonitorSession*> out;
  out.reserve(sessions_.size());
  for (const auto& session : sessions_) {
    out.push_back(session.get());
  }
  return out;
}

sim::SimNode& ClusterJob::node(int index) {
  if (index < 0 || index >= config_.nodes) {
    throw NotFoundError("node " + std::to_string(index));
  }
  return *nodes_[static_cast<std::size_t>(index)];
}

std::string ClusterJob::dashboard() const {
  std::ostringstream out;
  out << "Allocation dashboard: " << config_.nodes << " node(s) x "
      << config_.ranksPerNode << " rank(s), t="
      << strings::fixed(runtime_, 1) << "s\n";
  for (int n = 0; n < config_.nodes; ++n) {
    out << "--- " << hostnameOf(n) << " ---\n";
    std::vector<const core::MonitorSession*> nodeSessions;
    for (int r = 0; r < config_.ranksPerNode; ++r) {
      nodeSessions.push_back(
          sessions_[static_cast<std::size_t>(n * config_.ranksPerNode + r)]
              .get());
    }
    out << analysis::renderJobSummary(analysis::aggregate(nodeSessions));
  }
  out << "=== whole allocation ===\n"
      << analysis::renderJobSummary(analysis::aggregate(sessions()));
  if (aggDaemon_ != nullptr || !aggPublishers_.empty()) {
    // Everything in a ClusterJob runs in one process, so the shared
    // MetricsRegistry holds both the per-rank client histograms and the
    // daemon's attribution stages.
    const char* stages[][2] = {
        {"enqueue->send", "zs.agg.daemon.latency.enqueue_to_send_seconds"},
        {"send->ingest", "zs.agg.daemon.latency.send_to_ingest_seconds"},
        {"ingest->durable", "zs.agg.daemon.latency.ingest_to_durable_seconds"},
        {"roundtrip", "zs.agg.client.latency.roundtrip_seconds"},
    };
    std::string line;
    for (const auto& stage : stages) {
      const auto stats =
          trace::MetricsRegistry::instance().latency(stage[1]).stats();
      if (stats.count == 0) {
        continue;
      }
      if (!line.empty()) {
        line += ", ";
      }
      line += stage[0];
      line += " mean=" + strings::fixed(stats.mean() * 1000.0, 3) + "ms";
      line += " p99=" + strings::fixed(stats.quantile(0.99) * 1000.0, 3) +
              "ms";
    }
    if (!line.empty()) {
      out << "batch latency: " << line << '\n';
    }
  }
  return out.str();
}

}  // namespace zerosum::cluster
