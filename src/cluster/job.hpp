// Multi-node allocation monitoring — the paper's §2 wish: "the htop view
// … but for all nodes in a given allocation, and for all resources at
// their disposal", and the §6 goal of collecting ZeroSum data from across
// the application processes.
//
// ClusterJob stands up N simulated nodes, places a miniQMC-like job across
// them with the Slurm planner, attaches one MonitorSession per rank, and
// drives everything in lockstep virtual time.  It also hosts the
// noisy-neighbour scenario (Bhatele et al., cited in §2): an interfering
// process outside the job sharing a node, whose effect surfaces as rank
// imbalance and contention findings on exactly the affected node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "aggregator/daemon.hpp"
#include "aggregator/faulttransport.hpp"
#include "aggregator/federation.hpp"
#include "aggregator/transport.hpp"
#include "aggregator/writer.hpp"
#include "core/monitor.hpp"
#include "export/publisher.hpp"
#include "export/stream.hpp"
#include "sim/workload.hpp"
#include "topology/hardware.hpp"
#include "tsdb/engine.hpp"

namespace zerosum::cluster {

struct ClusterJobConfig {
  int nodes = 2;
  /// Ranks per node (each node runs its own srun-style placement).
  int ranksPerNode = 4;
  int cpusPerTask = 7;
  bool bindSpread = true;
  sim::MiniQmcConfig workload;
  std::uint64_t seed = 0xC1u;
};

/// An interfering workload outside the job (another user's process, a
/// runaway system daemon).
struct Interference {
  int node = 0;
  CpuSet cpus;                       ///< empty = whole node
  /// CPU-bound demand threads to spawn.
  int threads = 1;
  /// Memory it consumes on the node.
  std::uint64_t memoryBytes = 0;
};

class ClusterJob {
 public:
  ClusterJob(const topology::Topology& nodeTopology,
             const ClusterJobConfig& config);

  /// Adds a noisy neighbour before run().
  void addInterference(const Interference& interference);

  /// Stands up an in-job aggregation daemon (in-memory transport) and
  /// wires every rank's publisher into it, before run().  Each rank
  /// publishes its per-period metrics through its own embedded client;
  /// the daemon is polled once per lockstep step and receives a goodbye
  /// when a rank's process finishes — the §6 cross-rank collection path,
  /// driven in virtual time.
  ///
  /// A non-empty `dataDir` turns on persistence: a tsdb::Engine under the
  /// daemon WAL-logs every ingested batch and serves range/snapshot
  /// queries from disk + hot windows, which is what makes
  /// crashAggregator()/restartAggregation() lossless for acked batches.
  void enableAggregation(const std::string& jobName = "simjob",
                         aggregator::StoreOptions storeOptions = {},
                         const std::string& dataDir = "",
                         tsdb::EngineOptions engineOptions = {});

  /// Tree-topology aggregation (DESIGN.md §11) instead of one flat
  /// daemon: stands up a FederationTree — one node daemon per simulated
  /// node, `groups` group daemons, and one root hosting the catalog —
  /// and connects every rank's client to its node's daemon.  run() pumps
  /// the whole tree once per lockstep step, so rollups fan in node →
  /// group → root in virtual time and the root's store and dashboard
  /// reflect the entire allocation.  Requires nodes % groups == 0.
  /// Mutually exclusive with enableAggregation().
  void enableFederation(const std::string& jobName = "simjob", int groups = 2,
                        aggregator::FederationTreeOptions treeOptions = {});

  // --- Overload / chaos knobs (before enableAggregation) ------------------
  /// Options for every rank's embedded client (degradation ladder,
  /// heartbeats, jitter).  The default keeps jitter off so lockstep runs
  /// stay deterministic.
  void setAggClientOptions(aggregator::ClientOptions options);
  /// Admission-control and pressure thresholds for the in-job daemon
  /// (also applied by restartAggregation()).
  void setAggDaemonOptions(aggregator::DaemonOptions options);
  /// Puts a bounded async TsdbWriter between the daemon and the engine
  /// (requires a dataDir); a slow store then raises pressure instead of
  /// stalling ingest.  Also applied by restartAggregation().
  void setAggWriterOptions(aggregator::WriterOptions options);
  /// Wraps every rank's transport in a FaultInjectingTransport with these
  /// rules; rank r gets seed `seed + r` so schedules are decorrelated but
  /// deterministic.
  void setAggFaultSpec(const std::string& spec, std::uint64_t seed = 1);

  /// Hard-kills the in-job daemon mid-run (between lockstep steps): the
  /// daemon and its storage engine are destroyed with no orderly seal —
  /// exactly what SIGKILL leaves behind (the WAL bytes already written,
  /// nothing else) — and the transport hub goes down so clients see dead
  /// connections and start their reconnect backoff.
  void crashAggregator();

  /// Brings a fresh daemon back up over the same data dir: the engine
  /// recovers segments + WAL, seeds the daemon's source registry, and the
  /// hub comes back up so clients reconnect and drain their queues.
  void restartAggregation();

  /// The in-job daemon; nullptr unless enableAggregation() was called
  /// (or after crashAggregator() until restartAggregation()).
  [[nodiscard]] aggregator::Aggregator* aggregatorDaemon() {
    return aggDaemon_.get();
  }

  /// The fan-in tree; nullptr unless enableFederation() was called.
  [[nodiscard]] aggregator::FederationTree* federationTree() {
    return aggTree_.get();
  }

  /// Kills / restarts one group daemon of the federation tree mid-run
  /// (between lockstep steps).  The group's catalog entry ages out, node
  /// forwarders re-resolve through the catalog and full-resync into the
  /// surviving membership — the zero-acked-loss failover path.
  void crashAggGroup(int g);
  void restartAggGroup(int g);

  /// The persistence engine; nullptr unless a dataDir was given.
  [[nodiscard]] tsdb::Engine* aggEngine() { return aggEngine_.get(); }

  /// The async store writer; nullptr unless setAggWriterOptions was used.
  [[nodiscard]] aggregator::TsdbWriter* aggWriter() { return aggWriter_.get(); }

  /// Per-rank fault injector; nullptr unless setAggFaultSpec was used.
  [[nodiscard]] aggregator::FaultInjectingTransport* aggFaults(int rank) {
    if (rank < 0 || static_cast<std::size_t>(rank) >= aggFaultPtrs_.size()) {
      return nullptr;
    }
    return aggFaultPtrs_[static_cast<std::size_t>(rank)];
  }

  /// Rank-local metric stream feeding that rank's aggregation client;
  /// tests subscribe to it for a brute-force reference of everything the
  /// rank published.  Throws unless aggregation is enabled.
  [[nodiscard]] exporter::MetricStream& aggStream(int rank);

  /// That rank's embedded aggregation client (counters for tests).
  [[nodiscard]] const aggregator::Client& aggClient(int rank) const;

  /// Advances all nodes in lockstep, sampling every rank's monitor once
  /// per virtual second, until the job finishes or maxSeconds elapses.
  void run(double maxSeconds = 900.0);

  [[nodiscard]] int totalRanks() const {
    return config_.nodes * config_.ranksPerNode;
  }
  [[nodiscard]] double runtimeSeconds() const { return runtime_; }
  [[nodiscard]] int nodeOfRank(int rank) const;
  [[nodiscard]] std::string hostnameOf(int node) const;
  [[nodiscard]] const core::MonitorSession& session(int rank) const;
  [[nodiscard]] std::vector<const core::MonitorSession*> sessions() const;
  [[nodiscard]] sim::SimNode& node(int index);

  /// The allocation-wide view: one block per node with its ranks'
  /// duration / CPU busy / contention columns, plus job-level totals and
  /// imbalance (rendered via analysis::aggregate).
  [[nodiscard]] std::string dashboard() const;

 private:
  [[nodiscard]] bool jobFinished() const;

  ClusterJobConfig config_;
  std::vector<std::unique_ptr<sim::SimNode>> nodes_;
  std::vector<sim::BuiltRank> ranks_;                   // global rank order
  std::vector<std::unique_ptr<core::MonitorSession>> sessions_;
  double runtime_ = 0.0;
  bool ran_ = false;

  // Aggregation plumbing (enableAggregation); indexed by global rank.
  // Declaration order matters for teardown: the writer must die before the
  // engine (its worker thread appends into it) and is therefore declared
  // after it.
  std::unique_ptr<aggregator::PipeHub> aggHub_;
  std::unique_ptr<aggregator::FederationTree> aggTree_;
  std::unique_ptr<aggregator::Aggregator> aggDaemon_;
  std::unique_ptr<tsdb::Engine> aggEngine_;
  std::unique_ptr<aggregator::TsdbWriter> aggWriter_;
  std::vector<std::unique_ptr<exporter::MetricStream>> aggStreams_;
  std::vector<std::unique_ptr<exporter::SessionPublisher>> aggPublishers_;
  std::vector<std::unique_ptr<aggregator::Client>> aggClosedClients_;
  std::vector<bool> aggDeparted_;
  std::vector<aggregator::FaultInjectingTransport*> aggFaultPtrs_;
  // Retained for restartAggregation().
  aggregator::StoreOptions aggStoreOptions_;
  tsdb::EngineOptions aggEngineOptions_;
  std::string aggDataDir_;
  aggregator::ClientOptions aggClientOptions_;
  aggregator::DaemonOptions aggDaemonOptions_;
  aggregator::WriterOptions aggWriterOptions_;
  bool aggUseWriter_ = false;
  std::vector<aggregator::TransportFaultRule> aggFaultRules_;
  std::uint64_t aggFaultSeed_ = 1;
};

}  // namespace zerosum::cluster
