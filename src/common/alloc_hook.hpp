// Global-allocation counting hook, for the zero-allocation guarantees on
// the sampling hot path (bench_sampling_loop, test_zero_alloc).
//
// Including this header DEFINES the replaceable global operator new /
// operator delete set, so it must be included in EXACTLY ONE translation
// unit of a binary — it is a measurement harness, not a library header.
// Every successful allocation bumps a relaxed atomic counter; frees are
// not counted (the claim under test is "no allocation", not "balanced").
//
// The hooks malloc/free directly (no recursion risk: malloc is not
// operator new) and never throw except bad_alloc on exhaustion, matching
// the replaced operators' contracts.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace zerosum::allochook {

inline std::atomic<std::uint64_t> count{0};

/// Total allocations since process start (relaxed; single-threaded
/// measurement loops read a before/after delta).
inline std::uint64_t allocations() {
  return count.load(std::memory_order_relaxed);
}

inline void* allocate(std::size_t size) {
  count.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr legally; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

inline void* allocateAligned(std::size_t size, std::align_val_t align) {
  count.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace zerosum::allochook

void* operator new(std::size_t size) {
  return zerosum::allochook::allocate(size);
}
void* operator new[](std::size_t size) {
  return zerosum::allochook::allocate(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return zerosum::allochook::allocate(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return zerosum::allochook::allocate(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return zerosum::allochook::allocateAligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return zerosum::allochook::allocateAligned(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
