#include "common/clock.hpp"

#include "common/error.hpp"

namespace zerosum {

RealPacer::RealPacer() : start_(std::chrono::steady_clock::now()) {}

bool RealPacer::waitPeriod(std::chrono::milliseconds period) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, period, [this] { return stop_; });
  return !stop_;
}

void RealPacer::requestStop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
}

double RealPacer::elapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

VirtualPacer::VirtualPacer(AdvanceFn advance) : advance_(std::move(advance)) {
  if (!advance_) {
    throw StateError("VirtualPacer requires an advance function");
  }
}

bool VirtualPacer::waitPeriod(std::chrono::milliseconds period) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      return false;
    }
    elapsed_ += period;
  }
  return advance_(period);
}

void VirtualPacer::requestStop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stop_ = true;
}

double VirtualPacer::elapsedSeconds() const {
  return std::chrono::duration<double>(elapsed_).count();
}

}  // namespace zerosum
