// Time pacing for the asynchronous monitor thread.
//
// The paper's tool samples once per second of *wall-clock* time.  This
// reproduction also drives the monitor against a simulated node where a
// "second" must pass instantly, so the monitor loop is written against a
// Pacer interface:
//   * RealPacer   — sleeps on a condition variable (interruptible), used when
//     monitoring the live process via the real /proc.
//   * VirtualPacer — delegates each period to a callback that advances
//     simulated time; used by every table/figure reproduction.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace zerosum {

/// Controls when the monitor takes its next sample.
class Pacer {
 public:
  virtual ~Pacer() = default;

  /// Blocks (or advances virtual time) for one sampling period.
  /// Returns false when monitoring should end: stop was requested, or the
  /// observed workload finished.
  virtual bool waitPeriod(std::chrono::milliseconds period) = 0;

  /// Asks a blocked waitPeriod() to return false promptly.  Thread-safe.
  virtual void requestStop() = 0;

  /// Seconds of (real or virtual) time elapsed since construction; this is
  /// the "Duration of execution" reported by ZeroSum.
  [[nodiscard]] virtual double elapsedSeconds() const = 0;
};

/// Wall-clock pacer with interruptible sleep.
class RealPacer final : public Pacer {
 public:
  RealPacer();

  bool waitPeriod(std::chrono::milliseconds period) override;
  void requestStop() override;
  [[nodiscard]] double elapsedSeconds() const override;

 private:
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Virtual-time pacer: each period invokes `advance(period)`, which should
/// move the simulation forward and return false once the workload completes.
class VirtualPacer final : public Pacer {
 public:
  using AdvanceFn = std::function<bool(std::chrono::milliseconds)>;

  explicit VirtualPacer(AdvanceFn advance);

  bool waitPeriod(std::chrono::milliseconds period) override;
  void requestStop() override;
  [[nodiscard]] double elapsedSeconds() const override;

 private:
  AdvanceFn advance_;
  std::mutex mutex_;
  bool stop_ = false;
  std::chrono::milliseconds elapsed_{0};
};

}  // namespace zerosum
