#include "common/cpuset.hpp"

#include <charconv>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum {

namespace {

std::size_t parseIndex(std::string_view tok) {
  std::size_t value = 0;
  const char* begin = tok.data();
  const char* end = begin + tok.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ParseError("bad cpu index '" + std::string(tok) + "'");
  }
  if (value >= CpuSet::kMaxCpus) {
    throw ParseError("cpu index " + std::to_string(value) + " exceeds capacity");
  }
  return value;
}

}  // namespace

CpuSet CpuSet::fromList(std::string_view list) {
  CpuSet out;
  std::string_view rest = strings::trimView(list);
  if (rest.empty()) {
    return out;
  }
  while (true) {
    const auto comma = rest.find(',');
    const std::string_view tok = strings::trimView(
        comma == std::string_view::npos ? rest : rest.substr(0, comma));
    if (tok.empty()) {
      throw ParseError("empty element in cpulist '" + std::string(list) +
                       "'");
    }
    const auto dash = tok.find('-');
    if (dash == std::string_view::npos) {
      out.set(parseIndex(tok));
    } else {
      const std::size_t lo = parseIndex(tok.substr(0, dash));
      const std::size_t hi = parseIndex(tok.substr(dash + 1));
      if (hi < lo) {
        throw ParseError("descending range '" + std::string(tok) + "'");
      }
      for (std::size_t i = lo; i <= hi; ++i) {
        out.set(i);
      }
    }
    if (comma == std::string_view::npos) {
      break;
    }
    rest.remove_prefix(comma + 1);
  }
  return out;
}

CpuSet CpuSet::fromHexMask(std::string_view mask) {
  const std::string trimmed = strings::trim(mask);
  if (trimmed.empty()) {
    throw ParseError("empty cpu hex mask");
  }
  const auto words = strings::split(trimmed, ',');
  CpuSet out;
  // Words are most-significant first; the last word covers CPUs 0-31.
  std::size_t wordBase = 0;
  for (auto it = words.rbegin(); it != words.rend(); ++it, wordBase += 32) {
    const std::string word = strings::trim(*it);
    if (word.empty() || word.size() > 8) {
      throw ParseError("bad hex mask word '" + word + "'");
    }
    std::uint32_t bits = 0;
    for (char c : word) {
      std::uint32_t nibble = 0;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        throw ParseError("bad hex digit '" + std::string(1, c) +
                         "' in cpu mask");
      }
      bits = (bits << 4) | nibble;
    }
    for (std::size_t bit = 0; bit < 32; ++bit) {
      if ((bits >> bit) & 1u) {
        out.set(wordBase + bit);
      }
    }
  }
  return out;
}

CpuSet CpuSet::range(std::size_t firstCpu, std::size_t lastCpu) {
  if (lastCpu < firstCpu) {
    throw StateError("CpuSet::range: last < first");
  }
  if (lastCpu >= kMaxCpus) {
    throw StateError("CpuSet::range: index exceeds capacity");
  }
  CpuSet out;
  for (std::size_t i = firstCpu; i <= lastCpu; ++i) {
    out.bits_.set(i);
  }
  return out;
}

CpuSet CpuSet::of(const std::vector<std::size_t>& cpus) {
  CpuSet out;
  for (std::size_t c : cpus) {
    out.set(c);
  }
  return out;
}

CpuSet CpuSet::firstN(std::size_t n) {
  if (n == 0) {
    return {};
  }
  return range(0, n - 1);
}

void CpuSet::set(std::size_t cpu) {
  if (cpu >= kMaxCpus) {
    throw StateError("CpuSet::set: index " + std::to_string(cpu) +
                     " exceeds capacity");
  }
  bits_.set(cpu);
}

void CpuSet::clear(std::size_t cpu) {
  if (cpu >= kMaxCpus) {
    throw StateError("CpuSet::clear: index exceeds capacity");
  }
  bits_.reset(cpu);
}

bool CpuSet::test(std::size_t cpu) const {
  return cpu < kMaxCpus && bits_.test(cpu);
}

std::size_t CpuSet::first() const {
  for (std::size_t i = 0; i < kMaxCpus; ++i) {
    if (bits_.test(i)) {
      return i;
    }
  }
  throw StateError("CpuSet::first on empty set");
}

std::size_t CpuSet::last() const {
  for (std::size_t i = kMaxCpus; i-- > 0;) {
    if (bits_.test(i)) {
      return i;
    }
  }
  throw StateError("CpuSet::last on empty set");
}

std::vector<std::size_t> CpuSet::toVector() const {
  std::vector<std::size_t> out;
  out.reserve(bits_.count());
  for (std::size_t i = 0; i < kMaxCpus; ++i) {
    if (bits_.test(i)) {
      out.push_back(i);
    }
  }
  return out;
}

std::string CpuSet::toList() const {
  std::string out;
  std::size_t i = 0;
  while (i < kMaxCpus) {
    if (!bits_.test(i)) {
      ++i;
      continue;
    }
    std::size_t runEnd = i;
    while (runEnd + 1 < kMaxCpus && bits_.test(runEnd + 1)) {
      ++runEnd;
    }
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(i);
    if (runEnd > i) {
      out += '-';
      out += std::to_string(runEnd);
    }
    i = runEnd + 1;
  }
  return out;
}

CpuSet CpuSet::operator&(const CpuSet& o) const {
  CpuSet out;
  out.bits_ = bits_ & o.bits_;
  return out;
}

CpuSet CpuSet::operator|(const CpuSet& o) const {
  CpuSet out;
  out.bits_ = bits_ | o.bits_;
  return out;
}

CpuSet CpuSet::operator-(const CpuSet& o) const {
  CpuSet out;
  out.bits_ = bits_ & ~o.bits_;
  return out;
}

CpuSet& CpuSet::operator|=(const CpuSet& o) {
  bits_ |= o.bits_;
  return *this;
}

CpuSet& CpuSet::operator&=(const CpuSet& o) {
  bits_ &= o.bits_;
  return *this;
}

bool CpuSet::intersects(const CpuSet& o) const {
  return (bits_ & o.bits_).any();
}

bool CpuSet::containsAll(const CpuSet& o) const {
  return (o.bits_ & ~bits_).none();
}

}  // namespace zerosum
