// CpuSet: a fixed-capacity bitmask over hardware-thread indexes.
//
// ZeroSum reads and compares CPU affinity lists constantly: the process
// affinity from /proc/<pid>/status ("Cpus_allowed_list"), per-LWP affinity,
// topology cpusets for NUMA domains and caches, and scheduler masks in the
// node simulator.  This type provides the cpulist grammar used by the kernel
// ("1-7,9-15,64") plus the set algebra the contention analyzer needs.
#pragma once

#include <bitset>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zerosum {

/// Bitmask of hardware-thread (PU) OS indexes.  Capacity covers current and
/// near-future HPC nodes (Frontier exposes 128 HWTs; Aurora 208).
class CpuSet {
 public:
  static constexpr std::size_t kMaxCpus = 2048;

  CpuSet() = default;

  /// Parses a kernel cpulist, e.g. "0", "1-7", "1-7,9-15,64".
  /// Whitespace around commas is tolerated.  Throws ParseError on bad
  /// input.  Allocation-free except on the error path.
  static CpuSet fromList(std::string_view list);

  /// Parses the kernel's hexadecimal mask format ("Cpus_allowed" in
  /// /proc/<pid>/status): comma-separated 32-bit words, most significant
  /// first, e.g. "ff" = CPUs 0-7, "1,00000000" = CPU 32.
  static CpuSet fromHexMask(std::string_view mask);

  /// Builds the set {first, first+1, ..., last}.  Throws if last < first or
  /// last >= kMaxCpus.
  static CpuSet range(std::size_t first, std::size_t last);

  /// Builds a set from explicit indexes.
  static CpuSet of(const std::vector<std::size_t>& cpus);

  /// Full mask of the first `n` CPUs.
  static CpuSet firstN(std::size_t n);

  void set(std::size_t cpu);
  void clear(std::size_t cpu);
  [[nodiscard]] bool test(std::size_t cpu) const;

  [[nodiscard]] std::size_t count() const { return bits_.count(); }
  [[nodiscard]] bool empty() const { return bits_.none(); }

  /// Lowest set index; throws StateError when empty.
  [[nodiscard]] std::size_t first() const;
  /// Highest set index; throws StateError when empty.
  [[nodiscard]] std::size_t last() const;

  /// All set indexes in ascending order.
  [[nodiscard]] std::vector<std::size_t> toVector() const;

  /// Renders the kernel cpulist form, collapsing runs: "1-7,9-15,64".
  /// An empty set renders as "".
  [[nodiscard]] std::string toList() const;

  [[nodiscard]] CpuSet operator&(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator|(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator-(const CpuSet& o) const;
  CpuSet& operator|=(const CpuSet& o);
  CpuSet& operator&=(const CpuSet& o);

  [[nodiscard]] bool intersects(const CpuSet& o) const;
  /// True when every CPU in `o` is also in *this.
  [[nodiscard]] bool containsAll(const CpuSet& o) const;

  bool operator==(const CpuSet& o) const = default;

 private:
  std::bitset<kMaxCpus> bits_;
};

}  // namespace zerosum
