#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::env {

std::optional<std::string> get(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) {
    return std::nullopt;
  }
  return std::string(raw);
}

std::string getString(const std::string& name, const std::string& fallback) {
  return get(name).value_or(fallback);
}

std::int64_t getInt(const std::string& name, std::int64_t fallback) {
  const auto raw = get(name);
  if (!raw) {
    return fallback;
  }
  const auto parsed = strings::toI64(strings::trim(*raw));
  if (!parsed) {
    throw ConfigError(name + "='" + *raw + "' is not an integer");
  }
  return *parsed;
}

double getDouble(const std::string& name, double fallback) {
  const auto raw = get(name);
  if (!raw) {
    return fallback;
  }
  const auto parsed = strings::toDouble(strings::trim(*raw));
  if (!parsed) {
    throw ConfigError(name + "='" + *raw + "' is not a number");
  }
  return *parsed;
}

bool getBool(const std::string& name, bool fallback) {
  const auto raw = get(name);
  if (!raw) {
    return fallback;
  }
  std::string v = strings::trim(*raw);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  throw ConfigError(name + "='" + *raw + "' is not a boolean");
}

void setForTesting(const std::string& name, const std::string& value) {
  ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
}

void unsetForTesting(const std::string& name) { ::unsetenv(name.c_str()); }

}  // namespace zerosum::env
