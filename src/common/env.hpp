// Typed environment-variable access.
//
// ZeroSum is configured the way the paper's tool is: entirely through
// environment variables set in the job script (ZS_PERIOD_MS, ZS_ASYNC_CORE,
// ...), because an LD_PRELOAD-style tool has no argv of its own.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace zerosum::env {

/// Raw lookup; nullopt when unset.
std::optional<std::string> get(const std::string& name);

/// Typed lookups.  An unset variable yields the fallback; a *malformed*
/// value throws ConfigError — silent fallback on typos hides
/// misconfiguration, the exact failure mode this tool exists to catch.
std::string getString(const std::string& name, const std::string& fallback);
std::int64_t getInt(const std::string& name, std::int64_t fallback);
double getDouble(const std::string& name, double fallback);
/// Accepts 1/0, true/false, yes/no, on/off (case-insensitive).
bool getBool(const std::string& name, bool fallback);

/// Test hook: overrides one variable for the current process (setenv).
void setForTesting(const std::string& name, const std::string& value);
void unsetForTesting(const std::string& name);

}  // namespace zerosum::env
