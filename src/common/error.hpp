// Error types shared across the ZeroSum libraries.
//
// Per C++ Core Guidelines E.2/E.14, errors that cannot be handled locally are
// reported with exceptions derived from std::runtime_error, one type per
// broad failure family so callers can discriminate without string matching.
#pragma once

#include <stdexcept>
#include <string>

namespace zerosum {

/// Base class for all ZeroSum errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input while parsing /proc-style text, CSV, or cpulists.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A referenced entity (pid, tid, cpu index, GPU index, rank) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what)
      : Error("not found: " + what) {}
};

/// An operation was attempted in a state that does not permit it.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error("state error: " + what) {}
};

/// Invalid configuration supplied via environment or API.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("config error: " + what) {}
};

/// Describes the exception currently being handled.  Only meaningful
/// inside a catch block (it rethrows the active exception to inspect it);
/// lets `catch (...)` handlers log what they caught instead of swallowing
/// it invisibly.
inline std::string currentExceptionMessage() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace zerosum
