#include "common/interning.hpp"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace zerosum::names {

namespace {

// Entries are stored in fixed-size chunks that, once allocated, never
// move: lookup() may dereference them without a lock.  The top-level
// chunk-pointer table is a fixed array (no reallocation either); only
// the chunk pointers and the published size are atomic.
constexpr std::size_t kChunkBits = 10;  // 1024 names per chunk
constexpr std::size_t kChunkSize = 1U << kChunkBits;
constexpr std::size_t kMaxChunks = 4096;  // 4M distinct names: plenty

struct Chunk {
  std::array<std::string, kChunkSize> entries;
};

struct Table {
  std::mutex mutex;  // serializes intern() misses only
  std::unordered_map<std::string_view, Id> index;  // views into chunks
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
  std::atomic<std::uint32_t> published{0};  // count of readable entries

  ~Table() = default;
};

Table& table() {
  // Leaked singleton: lookup() views must stay valid through static
  // destruction (subscribers and tool backends may flush very late).
  static Table* t = new Table();
  return *t;
}

}  // namespace

Id intern(std::string_view name) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  if (const auto it = t.index.find(name); it != t.index.end()) {
    return it->second;
  }
  const std::uint32_t slot = t.published.load(std::memory_order_relaxed);
  const std::size_t chunkIdx = slot >> kChunkBits;
  if (chunkIdx >= kMaxChunks) {
    // Table full: degrade to "unknown" rather than throwing on a
    // monitoring path ("do no harm").
    return kInvalidId;
  }
  Chunk* chunk = t.chunks[chunkIdx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    t.chunks[chunkIdx].store(chunk, std::memory_order_release);
  }
  std::string& storage = chunk->entries[slot & (kChunkSize - 1)];
  storage.assign(name);
  t.index.emplace(std::string_view(storage), slot + 1);  // ids are 1-based
  // Publish after the entry is fully written so lock-free readers only
  // ever see complete strings.
  t.published.store(slot + 1, std::memory_order_release);
  return slot + 1;
}

std::string_view lookup(Id id) {
  if (id == kInvalidId) {
    return {};
  }
  Table& t = table();
  const std::uint32_t published = t.published.load(std::memory_order_acquire);
  if (id > published) {
    return {};
  }
  const std::uint32_t slot = id - 1;
  const Chunk* chunk =
      t.chunks[slot >> kChunkBits].load(std::memory_order_acquire);
  return chunk == nullptr ? std::string_view{}
                          : std::string_view(chunk->entries[slot & (kChunkSize - 1)]);
}

std::string lookupString(Id id) { return std::string(lookup(id)); }

std::size_t internedCount() {
  return table().published.load(std::memory_order_acquire);
}

}  // namespace zerosum::names
