// Process-global metric-name interning (the sampling hot path's answer to
// repeated string building and hashing).
//
// Every metric name the monitor publishes ("lwp.51334.utime_delta",
// "hwt.1.idle_pct", "rank.0") is interned exactly once into a small dense
// integer Id.  The hot path then carries Ids: exporter::Record holds two
// Ids instead of two std::strings, the aggregation client queues Ids, and
// the tsdb ingest path keys its series caches by Id.  Names are resolved
// back to text only at the edges (wire encode, CSV/staging write, tool
// feeds), so steady-state sampling performs no heap allocation and no
// repeated string hashing.
//
// Concurrency contract, matching the trace ring's design philosophy:
//   * intern() takes a mutex, but only the *first* sight of a name does
//     real work — callers cache the returned Id, so the lock is off the
//     steady-state path entirely.
//   * lookup() is wait-free: entries live in fixed-size chunks that are
//     never moved or freed, published through an acquire/release size
//     counter, so any thread may resolve an Id without synchronizing
//     with concurrent intern() calls.
//
// Ids are process-local and dense from 1 (0 is kInvalidId); they are
// never persisted or sent on the wire — the wire/CSV formats still carry
// names, so interning is invisible to readers (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace zerosum::names {

using Id = std::uint32_t;

/// Id 0 is reserved; lookup(kInvalidId) returns "".
inline constexpr Id kInvalidId = 0;

/// Returns the Id for `name`, interning it on first sight.  Identical
/// strings always yield the same Id for the life of the process.
Id intern(std::string_view name);

/// Resolves an Id to its name.  Wait-free; an Id never handed out by
/// intern() (including kInvalidId) resolves to "".  The returned view
/// points into storage that lives until process exit.
std::string_view lookup(Id id);

/// Convenience: lookup() materialized as a std::string (edges only).
std::string lookupString(Id id);

/// Number of distinct names interned so far (diagnostics / tests).
std::size_t internedCount();

}  // namespace zerosum::names
