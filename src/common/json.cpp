#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace zerosum::json {

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

// --- Writer ----------------------------------------------------------------

void Writer::beforeValue() {
  if (stack_.empty()) {
    return;  // top-level document value
  }
  if (stack_.back() == Frame::kObject && !keyPending_) {
    throw StateError("json: value inside an object requires a key");
  }
  if (stack_.back() == Frame::kArray) {
    if (!first_.back()) {
      out_ << ',';
    }
    first_.back() = false;
  }
  keyPending_ = false;
}

Writer& Writer::beginObject() {
  beforeValue();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

Writer& Writer::endObject() {
  if (stack_.empty() || stack_.back() != Frame::kObject || keyPending_) {
    throw StateError("json: endObject without matching beginObject");
  }
  out_ << '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

Writer& Writer::beginArray() {
  beforeValue();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

Writer& Writer::endArray() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw StateError("json: endArray without matching beginArray");
  }
  out_ << ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

Writer& Writer::key(const std::string& k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || keyPending_) {
    throw StateError("json: key() outside an object");
  }
  if (!first_.back()) {
    out_ << ',';
  }
  first_.back() = false;
  out_ << quote(k) << ':';
  keyPending_ = true;
  return *this;
}

Writer& Writer::value(const std::string& v) {
  beforeValue();
  out_ << quote(v);
  return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional substitute.
    out_ << "null";
    return *this;
  }
  // Shortest round-trip form (Ryū via to_chars): the fewest digits that
  // parse back to exactly `v`, so persisted rollups survive a
  // write→parse cycle bit-for-bit and never carry padding digits.
  char buf[32];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general);
  if (ec != std::errc{}) {
    throw StateError("json: cannot format number");
  }
  out_.write(buf, ptr - buf);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

Writer& Writer::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  beforeValue();
  out_ << "null";
  return *this;
}

// --- Value -----------------------------------------------------------------

bool Value::asBool() const {
  if (kind_ != Kind::kBool) {
    throw ParseError("json: value is not a bool");
  }
  return bool_;
}

double Value::asNumber() const {
  if (kind_ != Kind::kNumber) {
    throw ParseError("json: value is not a number");
  }
  return number_;
}

const std::string& Value::asString() const {
  if (kind_ != Kind::kString) {
    throw ParseError("json: value is not a string");
  }
  return string_;
}

const Value::Array& Value::asArray() const {
  if (kind_ != Kind::kArray) {
    throw ParseError("json: value is not an array");
  }
  return *array_;
}

const Value::Object& Value::asObject() const {
  if (kind_ != Kind::kObject) {
    throw ParseError("json: value is not an object");
  }
  return *object_;
}

const Value* Value::find(const std::string& name) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  const auto it = object_->find(name);
  return it == object_->end() ? nullptr : &it->second;
}

double Value::numberOr(const std::string& name, double fallback) const {
  const Value* v = find(name);
  return (v != nullptr && v->kind() == Kind::kNumber) ? v->asNumber()
                                                      : fallback;
}

std::string Value::stringOr(const std::string& name,
                            const std::string& fallback) const {
  const Value* v = find(name);
  return (v != nullptr && v->kind() == Kind::kString) ? v->asString()
                                                      : fallback;
}

// --- parse -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  /// Container nesting bound: the recursive descent otherwise turns
  /// attacker-sized documents (the aggregation query path parses bytes
  /// straight off a socket) into stack exhaustion.  64 is far beyond
  /// anything this repository emits.
  static constexpr int kMaxDepth = 64;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) {
        parser.fail("nesting deeper than " + std::to_string(kMaxDepth));
      }
    }
    ~DepthGuard() { --parser.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser;
  };

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json at offset " + std::to_string(pos_) + ": " + why);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    const char c = peek();
    switch (c) {
      case '{': {
        DepthGuard guard(*this);
        return parseObject();
      }
      case '[': {
        DepthGuard guard(*this);
        return parseArray();
      }
      case '"': return Value(parseString());
      case 't':
        if (consumeLiteral("true")) {
          return Value(true);
        }
        fail("bad literal");
      case 'f':
        if (consumeLiteral("false")) {
          return Value(false);
        }
        fail("bad literal");
      case 'n':
        if (consumeLiteral("null")) {
          return Value();
        }
        fail("bad literal");
      default: return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Value::Object members;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skipWs();
      std::string name = parseString();
      skipWs();
      expect(':');
      members.insert_or_assign(std::move(name), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parseArray() {
    expect('[');
    Value::Array items;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      items.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // We only ever emit \u00xx (control characters); decode the low
          // byte and ignore the (never-emitted) high planes.
          out.push_back(static_cast<char>(code & 0xFFU));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Value(out);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace zerosum::json
