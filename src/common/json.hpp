// Minimal JSON support for the self-observability layer.
//
// Two halves, both deliberately small:
//   * json::Writer — streaming emitter with correct string escaping, used
//     by the Chrome trace_event exporter (trace/chrome_export) and the
//     machine-readable bench result files (BENCH_*.json).
//   * json::Value / json::parse — a strict recursive-descent reader for
//     the documents this repository itself emits (trace files, bench
//     results), so zerosum-post can summarize a trace without a external
//     JSON dependency.  Full RFC 8259 grammar minus \u surrogate pairs
//     (which we never emit; lone \uXXXX escapes are decoded as Latin-1).
//     Also fed untrusted bytes by the aggregation query service, hence
//     the hardening guarantees: container nesting is limited to 64
//     levels, duplicate object keys resolve to the last occurrence, and
//     any bytes after the document are an error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace zerosum::json {

/// Escapes and double-quotes `s` per JSON string rules.
std::string quote(const std::string& s);

/// Streaming JSON emitter.  The caller provides structure through
/// beginObject/beginArray and key/value calls; the writer tracks comma
/// placement.  Misuse (value without key inside an object, unbalanced
/// end) throws StateError — emitting a malformed trace file silently
/// would defeat the purpose of the exporter.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  Writer& beginObject();
  Writer& endObject();
  Writer& beginArray();
  Writer& endArray();

  /// Emits the key of the next key/value pair (objects only).
  Writer& key(const std::string& k);

  Writer& value(const std::string& v);
  Writer& value(const char* v);
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(bool v);
  Writer& null();

  /// key() + value() in one call.
  template <typename T>
  Writer& field(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  /// Depth of open containers (0 when the document is complete).
  [[nodiscard]] int depth() const { return static_cast<int>(stack_.size()); }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void beforeValue();

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;
  bool keyPending_ = false;
};

/// A parsed JSON document node.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw ParseError when the kind does not match.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] const Object& asObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& name) const;
  /// Member `name` as a number/string with a fallback.
  [[nodiscard]] double numberOr(const std::string& name,
                                double fallback) const;
  [[nodiscard]] std::string stringOr(const std::string& name,
                                     const std::string& fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document; trailing non-whitespace, unterminated
/// containers, or any grammar violation throws ParseError.
Value parse(const std::string& text);

}  // namespace zerosum::json
