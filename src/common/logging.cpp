#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace zerosum::log {

namespace {

Level initialThreshold() {
  const char* env = std::getenv("ZS_LOG_LEVEL");
  if (env == nullptr) {
    return Level::kWarn;
  }
  const std::string v(env);
  if (v == "debug") return Level::kDebug;
  if (v == "info") return Level::kInfo;
  if (v == "warn") return Level::kWarn;
  if (v == "error") return Level::kError;
  if (v == "off") return Level::kOff;
  return Level::kWarn;
}

std::atomic<Level>& thresholdRef() {
  static std::atomic<Level> level{initialThreshold()};
  return level;
}

std::atomic<std::ostream*>& sinkRef() {
  static std::atomic<std::ostream*> sink{nullptr};
  return sink;
}

std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

const char* levelName(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level threshold() { return thresholdRef().load(std::memory_order_relaxed); }

void setThreshold(Level level) {
  thresholdRef().store(level, std::memory_order_relaxed);
}

void setSink(std::ostream* sink) {
  sinkRef().store(sink, std::memory_order_relaxed);
}

void write(Level level, const std::string& message) {
  if (level < threshold() || level == Level::kOff) {
    return;
  }
  std::ostream* sink = sinkRef().load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sinkMutex());
  std::ostream& out = sink != nullptr ? *sink : std::cerr;
  out << "[zerosum " << levelName(level) << "] " << message << '\n';
  out.flush();
}

}  // namespace zerosum::log
