// Minimal leveled logger.
//
// ZeroSum writes three kinds of output: the user-facing report (stdout, rank
// 0), per-process log files, and diagnostics.  This logger covers the
// diagnostics path; report/log-file output goes through core::Reporter and
// core::CsvExporter which own their streams.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace zerosum::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global diagnostic threshold; defaults to kWarn so library users see
/// nothing unless something is wrong.  Reads ZS_LOG_LEVEL at first use
/// ("debug"|"info"|"warn"|"error"|"off").
Level threshold();
void setThreshold(Level level);

/// Redirects diagnostics (default: std::cerr).  Not owned; caller keeps the
/// stream alive.  Passing nullptr restores std::cerr.
void setSink(std::ostream* sink);

void write(Level level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace zerosum::log
