#include "common/lwp_type.hpp"

namespace zerosum {

std::string lwpTypeName(LwpType type) {
  switch (type) {
    case LwpType::kMain: return "Main";
    case LwpType::kZeroSum: return "ZeroSum";
    case LwpType::kOpenMp: return "OpenMP";
    case LwpType::kGpuHelper: return "GPU";
    case LwpType::kMpiHelper: return "MPI";
    case LwpType::kOther: return "Other";
  }
  return "Unknown";
}

}  // namespace zerosum
