// Thread classification vocabulary shared by the monitor and the
// simulator: the "Type" column of the paper's LWP report (Tables 1-3).
#pragma once

#include <string>

namespace zerosum {

enum class LwpType {
  kMain,       ///< the process main thread (tid == pid)
  kZeroSum,    ///< the monitor's own asynchronous thread
  kOpenMp,     ///< announced by the OpenMP runtime (OMPT or probe)
  kGpuHelper,  ///< vendor runtime helper (HIP/CUDA event threads)
  kMpiHelper,  ///< MPI progress thread
  kOther,      ///< anything unclassified
};

std::string lwpTypeName(LwpType type);

}  // namespace zerosum
