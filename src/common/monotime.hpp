// Monotonic time for liveness bookkeeping.
//
// Source staleness sweeps, catalog TTL expiry, and forwarder backoff all
// compare "now" against deadlines recorded earlier in the same process.
// Those comparisons must be immune to wall-clock steps: an NTP slew or an
// administrator resetting the date must never mass-expire sources, wedge
// catalog generations, or fire every retry timer at once.  This header is
// the one sanctioned clock for such code — steady_clock seconds since an
// arbitrary per-process epoch.  The epoch differs between processes, so
// monotonic stamps must never cross the wire as absolutes; ship ages or
// durations instead (see wire.hpp ForwardSource::lastSeenAgeSeconds).
#pragma once

#include <chrono>

namespace zerosum {

/// Seconds on the process-local monotonic clock.  Strictly non-decreasing;
/// unrelated to the wall clock and to other processes' epochs.
[[nodiscard]] inline double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace zerosum
