#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace zerosum::stats {

void Accumulator::add(double v) {
  ++n_;
  sum_ += v;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Accumulator::min() const { return n_ == 0 ? 0.0 : min_; }
double Accumulator::max() const { return n_ == 0 ? 0.0 : max_; }
double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& o) {
  if (o.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(o.n_);
  const double nab = na + nb;
  m2_ += o.m2_ + delta * delta * na * nb / nab;
  mean_ += delta * nb / nab;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) {
    return s;
  }
  Accumulator acc;
  for (double x : xs) {
    acc.add(x);
  }
  s.n = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(xs, 50.0);
  return s;
}

namespace {

/// log Gamma via Lanczos approximation (g=7, n=9), |error| < 1e-13 on the
/// positive real axis, plenty for p-values.
double lgammaApprox(double x) {
  static constexpr double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - lgammaApprox(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) {
    a += kCoef[i] / (x + static_cast<double>(i));
  }
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

/// Continued fraction for the incomplete beta (Numerical-Recipes style
/// modified Lentz).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-12;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) {
    d = kFpMin;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const auto md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

}  // namespace

double incompleteBeta(double a, double b, double x) {
  if (x < 0.0 || x > 1.0) {
    throw StateError("incompleteBeta: x out of [0,1]");
  }
  if (x == 0.0) {
    return 0.0;
  }
  if (x == 1.0) {
    return 1.0;
  }
  const double lnBeta = lgammaApprox(a + b) - lgammaApprox(a) - lgammaApprox(b);
  const double front =
      std::exp(lnBeta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double studentTTwoSidedP(double t, double df) {
  if (df <= 0.0) {
    throw StateError("studentTTwoSidedP: df <= 0");
  }
  const double x = df / (df + t * t);
  return incompleteBeta(df / 2.0, 0.5, x);
}

TTest welchTTest(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw StateError("welchTTest: need >= 2 samples per side");
  }
  Accumulator sa;
  Accumulator sb;
  for (double v : a) {
    sa.add(v);
  }
  for (double v : b) {
    sb.add(v);
  }
  const double va = sa.variance() / static_cast<double>(sa.count());
  const double vb = sb.variance() / static_cast<double>(sb.count());
  TTest out;
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) {
    // Identical constant samples: indistinguishable.
    out.t = 0.0;
    out.df = static_cast<double>(sa.count() + sb.count() - 2);
    out.pValue = 1.0;
    return out;
  }
  out.t = (sa.mean() - sb.mean()) / denom;
  const double dfNum = (va + vb) * (va + vb);
  const double dfDen = va * va / static_cast<double>(sa.count() - 1) +
                       vb * vb / static_cast<double>(sb.count() - 1);
  out.df = dfNum / dfDen;
  out.pValue = studentTTwoSidedP(out.t, out.df);
  return out;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) {
    throw StateError("percentile on empty sample");
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::uint64_t SplitMix64::next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double SplitMix64::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t SplitMix64::nextBelow(std::uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  return next() % bound;
}

double SplitMix64::nextGaussian() {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) {
    sum += nextDouble();
  }
  return sum - 6.0;
}

}  // namespace zerosum::stats
