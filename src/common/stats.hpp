// Statistics primitives used throughout ZeroSum:
//   * Accumulator — single-pass min/mean/max/stddev (Welford), the shape of
//     every metric row in the GPU utilization report (Listing 2).
//   * Welch's t-test — the paper's overhead evaluation (Figure 8) compares
//     run-time distributions with/without ZeroSum via a t-test p-value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace zerosum::stats {

/// Streaming accumulator: O(1) memory, numerically stable variance (Welford).
class Accumulator {
 public:
  void add(double v);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction form of Welford).
  void merge(const Accumulator& o);

  void reset() { *this = Accumulator{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Descriptive summary of a sample vector.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Result of Welch's unequal-variance two-sample t-test.
struct TTest {
  double t = 0.0;        ///< t statistic
  double df = 0.0;       ///< Welch–Satterthwaite degrees of freedom
  double pValue = 1.0;   ///< two-sided p-value
};

/// Welch's t-test between two samples.  Requires >= 2 elements per side.
/// A p-value near 1 means "same distribution" (paper's 0.998 for the
/// one-thread-per-core case); near 0 means distinguishable (0.0006 for the
/// two-threads-per-core case).
TTest welchTTest(std::span<const double> a, std::span<const double> b);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Lentz).  Exposed for tests; domain x in [0,1], a,b > 0.
double incompleteBeta(double a, double b, double x);

/// Two-sided Student-t survival probability for |t| with `df` degrees of
/// freedom: P(|T| >= |t|).
double studentTTwoSidedP(double t, double df);

/// p-th percentile (0..100) with linear interpolation; input need not be
/// sorted.  Throws StateError on empty input.
double percentile(std::span<const double> xs, double p);

/// SplitMix64: tiny deterministic RNG for the simulators.  Deterministic
/// across platforms (unlike std::default_random_engine distributions).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform integer in [0, bound).
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Approximate standard normal via sum of 12 uniforms (Irwin–Hall);
  /// adequate for workload jitter, fully deterministic.
  double nextGaussian();

 private:
  std::uint64_t state_;
};

}  // namespace zerosum::stats
