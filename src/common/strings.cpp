#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace zerosum::strings {

namespace {
bool isSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWs(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && isSpace(s[i])) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && !isSpace(s[i])) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string trim(std::string_view s) { return std::string(trimView(s)); }

std::string_view trimView(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && isSpace(s[b])) {
    ++b;
  }
  while (e > b && isSpace(s[e - 1])) {
    --e;
  }
  return s.substr(b, e - b);
}

bool nextLine(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) {
    return false;
  }
  const std::size_t pos = rest.find('\n');
  if (pos == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, pos);
    rest.remove_prefix(pos + 1);
  }
  return true;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::uint64_t> toU64(std::string_view s) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> toI64(std::string_view s) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> toDouble(std::string_view s) {
  // std::from_chars for double exists in GCC 12; keep strictness identical
  // to the integer parsers.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return value;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string zeroPad(std::uint64_t v, int width) {
  std::string digits = std::to_string(v);
  if (digits.size() >= static_cast<std::size_t>(width)) {
    return digits;
  }
  return std::string(static_cast<std::size_t>(width) - digits.size(), '0') +
         digits;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string padRight(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) {
    out.append(width - out.size(), ' ');
  }
  return out;
}

std::string padLeft(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) {
    out.insert(out.begin(), static_cast<std::ptrdiff_t>(width - out.size()),
               ' ');
  }
  return out;
}

}  // namespace zerosum::strings
