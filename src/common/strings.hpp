// Small string helpers used by the /proc parsers, CSV reader/writer, and
// report formatters.  All functions are pure and allocation-conscious.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace zerosum::strings {

/// Splits on a single character; adjacent separators yield empty tokens.
/// split("a,,b", ',') == {"a", "", "b"}.  An empty input yields {""}.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace; never yields empty tokens.
std::vector<std::string> splitWs(std::string_view s);

/// Removes leading/trailing whitespace (space, tab, CR, LF).
std::string trim(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// Strict unsigned/signed/double parsers.  Return nullopt on any trailing
/// garbage instead of best-effort prefixes, so /proc format drift is caught.
std::optional<std::uint64_t> toU64(std::string_view s);
std::optional<std::int64_t> toI64(std::string_view s);
std::optional<double> toDouble(std::string_view s);

/// printf-style %.2f / %.6f rendering without locale surprises.
std::string fixed(double v, int precision);

/// Left-pads with '0' to `width` digits: zeroPad(7, 3) == "007".
std::string zeroPad(std::uint64_t v, int width);

/// Joins tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Pads/truncates to an exact column width (right-pad with spaces).
std::string padRight(std::string_view s, std::size_t width);
std::string padLeft(std::string_view s, std::size_t width);

}  // namespace zerosum::strings
