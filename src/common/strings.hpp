// Small string helpers used by the /proc parsers, CSV reader/writer, and
// report formatters.  All functions are pure and allocation-conscious.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace zerosum::strings {

/// Splits on a single character; adjacent separators yield empty tokens.
/// split("a,,b", ',') == {"a", "", "b"}.  An empty input yields {""}.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace; never yields empty tokens.
std::vector<std::string> splitWs(std::string_view s);

/// Removes leading/trailing whitespace (space, tab, CR, LF).
std::string trim(std::string_view s);

/// trim() without the copy: a view into the input.  The zero-allocation
/// parsers use this; callers must keep the underlying buffer alive.
std::string_view trimView(std::string_view s);

/// Zero-allocation replacement for splitWs(): walks whitespace-separated
/// tokens as views into the input.
///
///   TokenCursor cur(line);
///   std::string_view tok;
///   while (cur.next(tok)) { ... }
class TokenCursor {
 public:
  explicit TokenCursor(std::string_view s) : s_(s) {}

  /// Advances to the next non-empty token; false at end of input.
  bool next(std::string_view& token) {
    while (pos_ < s_.size() && isWs(s_[pos_])) {
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    const std::size_t start = pos_;
    while (pos_ < s_.size() && !isWs(s_[pos_])) {
      ++pos_;
    }
    token = s_.substr(start, pos_ - start);
    return true;
  }

 private:
  static bool isWs(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Zero-allocation line iteration: extracts the next '\n'-terminated line
/// (without the terminator) from `rest`, shrinking it.  False when `rest`
/// is exhausted.
bool nextLine(std::string_view& rest, std::string_view& line);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// Strict unsigned/signed/double parsers.  Return nullopt on any trailing
/// garbage instead of best-effort prefixes, so /proc format drift is caught.
std::optional<std::uint64_t> toU64(std::string_view s);
std::optional<std::int64_t> toI64(std::string_view s);
std::optional<double> toDouble(std::string_view s);

/// printf-style %.2f / %.6f rendering without locale surprises.
std::string fixed(double v, int precision);

/// Left-pads with '0' to `width` digits: zeroPad(7, 3) == "007".
std::string zeroPad(std::uint64_t v, int width);

/// Joins tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Pads/truncates to an exact column width (right-pad with spaces).
std::string padRight(std::string_view s, std::size_t width);
std::string padLeft(std::string_view s, std::size_t width);

}  // namespace zerosum::strings
