#include "core/adaptation.hpp"

#include <algorithm>

namespace zerosum::core {

std::optional<Recommendation> ConcurrencyController::observe(
    const std::map<int, LwpRecord>& lwps,
    const std::map<std::size_t, HwtRecord>& hwts, double jiffiesPerPeriod) {
  if (cooldown_ > 0) {
    --cooldown_;
    return std::nullopt;
  }
  if (jiffiesPerPeriod <= 0.0) {
    return std::nullopt;
  }

  // Census over the *latest period only*: throttleable team threads that
  // were busy, their contention, and their saturation.
  int busyTeamThreads = 0;
  int saturatedTeamThreads = 0;
  std::uint64_t nvctxDelta = 0;
  for (const auto& [tid, record] : lwps) {
    if (!record.alive || record.samples.empty()) {
      continue;
    }
    if (record.type != LwpType::kMain && record.type != LwpType::kOpenMp) {
      continue;
    }
    const auto& s = record.samples.back();
    const double use =
        static_cast<double>(s.utimeDelta + s.stimeDelta) / jiffiesPerPeriod;
    if (use < params_.busyFraction) {
      continue;
    }
    ++busyTeamThreads;
    if (use >= params_.saturatedFraction) {
      ++saturatedTeamThreads;
    }
    if (record.samples.size() >= 2) {
      const auto& prev = record.samples[record.samples.size() - 2];
      nvctxDelta += s.nonvoluntaryCtx - prev.nonvoluntaryCtx;
    } else {
      nvctxDelta += s.nonvoluntaryCtx;
    }
  }

  int idleSlots = 0;
  int totalSlots = 0;
  for (const auto& [cpu, record] : hwts) {
    if (record.samples.empty()) {
      continue;
    }
    ++totalSlots;
    if (record.samples.back().idlePct >= params_.idleHwtPct) {
      ++idleSlots;
    }
  }
  if (busyTeamThreads == 0 || totalSlots == 0) {
    streakKind_ = Pressure::kNone;
    streak_ = 0;
    return std::nullopt;
  }

  Pressure pressure = Pressure::kNone;
  if (busyTeamThreads > totalSlots &&
      static_cast<double>(nvctxDelta) >
          params_.nvctxPerThreadPerPeriod *
              static_cast<double>(busyTeamThreads)) {
    pressure = Pressure::kShrink;
  } else if (idleSlots > 0 && busyTeamThreads < totalSlots &&
             saturatedTeamThreads == busyTeamThreads) {
    pressure = Pressure::kGrow;
  }

  if (pressure == Pressure::kNone || pressure != streakKind_) {
    streakKind_ = pressure;
    streak_ = pressure == Pressure::kNone ? 0 : 1;
    return std::nullopt;
  }
  if (++streak_ < params_.confirmPeriods) {
    return std::nullopt;
  }

  // Confirmed: recommend matching the allocation.
  Recommendation rec;
  rec.currentThreads = busyTeamThreads;
  rec.recommendedThreads =
      std::clamp(totalSlots, params_.minThreads, params_.maxThreads);
  if (rec.recommendedThreads == rec.currentThreads) {
    streak_ = 0;
    streakKind_ = Pressure::kNone;
    return std::nullopt;
  }
  rec.reason =
      pressure == Pressure::kShrink
          ? std::to_string(busyTeamThreads) + " busy threads time-slice " +
                std::to_string(totalSlots) + " HWTs (" +
                std::to_string(nvctxDelta) +
                " preemptions last period); shrink to match the allocation"
          : std::to_string(idleSlots) + " of " + std::to_string(totalSlots) +
                " allocated HWTs idle while every thread is saturated; "
                "grow to use them";
  streak_ = 0;
  streakKind_ = Pressure::kNone;
  cooldown_ = params_.cooldownPeriods;
  ++issued_;
  return rec;
}

}  // namespace zerosum::core
