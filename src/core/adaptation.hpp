// Adaptive concurrency control (paper §2 "Adaptation"; Porterfield et al.,
// cited there, showed that monitoring a contended resource can drive
// thread-concurrency throttling).  The paper positions ZeroSum's data as
// "in some cases … useful" for this; this module is that case made
// concrete: a controller that watches the per-period LWP/HWT observations
// and recommends a team size that matches the allocation.
//
// The policy is deliberately conservative (the tool must never thrash the
// application):
//   * oversubscription — more busy threads than allocated slots with
//     time-slicing evidence (non-voluntary context switches) → shrink
//     toward the slot count;
//   * undersubscription — idle allocated HWTs while every current thread
//     is saturated → grow toward the slot count;
//   * hysteresis — a recommendation needs `confirmPeriods` consecutive
//     agreeing observations, and after a change the controller holds off
//     for `cooldownPeriods`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/records.hpp"

namespace zerosum::core {

struct AdaptationParams {
  int minThreads = 1;
  int maxThreads = 256;
  /// Consecutive periods an observation must persist before acting.
  int confirmPeriods = 3;
  /// Periods to wait after a recommendation before the next one.
  int cooldownPeriods = 5;
  /// A thread is busy when using at least this fraction of a period.
  double busyFraction = 0.05;
  /// nvctx per busy thread per period that indicates time-slicing.
  double nvctxPerThreadPerPeriod = 2.0;
  /// A HWT counts as idle capacity above this idle percentage.
  double idleHwtPct = 80.0;
  /// A thread counts as saturated above this busy fraction.
  double saturatedFraction = 0.85;
};

struct Recommendation {
  int currentThreads = 0;
  int recommendedThreads = 0;
  std::string reason;
};

class ConcurrencyController {
 public:
  ConcurrencyController() : ConcurrencyController(AdaptationParams{}) {}
  explicit ConcurrencyController(const AdaptationParams& params)
      : params_(params) {}

  /// Feeds one period of observations; returns a recommendation when the
  /// evidence has persisted long enough.  `teamTypeOnly` restricts the
  /// busy-thread census to Main/OpenMP threads (the ones a runtime can
  /// actually throttle).
  std::optional<Recommendation> observe(
      const std::map<int, LwpRecord>& lwps,
      const std::map<std::size_t, HwtRecord>& hwts, double jiffiesPerPeriod);

  [[nodiscard]] int recommendationsIssued() const { return issued_; }

 private:
  enum class Pressure { kNone, kShrink, kGrow };

  AdaptationParams params_;
  Pressure streakKind_ = Pressure::kNone;
  int streak_ = 0;
  int cooldown_ = 0;
  int issued_ = 0;
};

}  // namespace zerosum::core
