#include "core/config.hpp"

#include <cstdlib>

#include "common/env.hpp"
#include "common/error.hpp"

namespace zerosum::core {

Config Config::fromEnv() {
  Config cfg;
  const auto periodMs = env::getInt("ZS_PERIOD_MS", cfg.period.count());
  if (periodMs <= 0) {
    throw ConfigError("ZS_PERIOD_MS must be positive");
  }
  cfg.period = std::chrono::milliseconds(periodMs);
  cfg.asyncCore = static_cast<int>(env::getInt("ZS_ASYNC_CORE", -1));
  cfg.heartbeat = env::getBool("ZS_HEARTBEAT", cfg.heartbeat);
  cfg.heartbeatPeriods = static_cast<int>(
      env::getInt("ZS_HEARTBEAT_PERIODS", cfg.heartbeatPeriods));
  if (cfg.heartbeatPeriods < 1) {
    throw ConfigError("ZS_HEARTBEAT_PERIODS must be >= 1");
  }
  cfg.signalHandler = env::getBool("ZS_SIGNAL_HANDLER", cfg.signalHandler);
  cfg.deadlockDetect = env::getBool("ZS_DEADLOCK_DETECT", cfg.deadlockDetect);
  cfg.deadlockPeriods = static_cast<int>(
      env::getInt("ZS_DEADLOCK_PERIODS", cfg.deadlockPeriods));
  if (cfg.deadlockPeriods < 2) {
    throw ConfigError("ZS_DEADLOCK_PERIODS must be >= 2");
  }
  cfg.logPrefix = env::getString("ZS_LOG_PREFIX", cfg.logPrefix);
  cfg.csvExport = env::getBool("ZS_CSV", cfg.csvExport);
  cfg.monitorGpu = env::getBool("ZS_MONITOR_GPU", cfg.monitorGpu);
  cfg.monitorMemory = env::getBool("ZS_MONITOR_MEMORY", cfg.monitorMemory);
  cfg.memWarnFraction =
      env::getDouble("ZS_MEM_WARN_FRACTION", cfg.memWarnFraction);
  if (cfg.memWarnFraction <= 0.0 || cfg.memWarnFraction > 1.0) {
    throw ConfigError("ZS_MEM_WARN_FRACTION must be in (0, 1]");
  }
  cfg.maxConsecutiveErrors = static_cast<int>(
      env::getInt("ZS_MAX_CONSECUTIVE_ERRORS", cfg.maxConsecutiveErrors));
  if (cfg.maxConsecutiveErrors < 1) {
    throw ConfigError("ZS_MAX_CONSECUTIVE_ERRORS must be >= 1");
  }
  cfg.retryBackoffPeriods = static_cast<int>(
      env::getInt("ZS_RETRY_BACKOFF_PERIODS", cfg.retryBackoffPeriods));
  if (cfg.retryBackoffPeriods < 1) {
    throw ConfigError("ZS_RETRY_BACKOFF_PERIODS must be >= 1");
  }
  cfg.traceFile = env::getString("ZS_TRACE_FILE", cfg.traceFile);
  cfg.trace = env::getBool("ZS_TRACE", cfg.trace) || !cfg.traceFile.empty();
  cfg.metricsFile = env::getString("ZS_METRICS_FILE", cfg.metricsFile);
  cfg.aggHost = env::getString("ZS_AGG_HOST", cfg.aggHost);
  cfg.aggPort = static_cast<int>(env::getInt("ZS_AGG_PORT", cfg.aggPort));
  if (cfg.aggPort < 0 || cfg.aggPort > 65535) {
    throw ConfigError("ZS_AGG_PORT must be in [0, 65535]");
  }
  cfg.aggCatalog = env::getString("ZS_AGG_CATALOG", cfg.aggCatalog);
  if (!cfg.aggCatalog.empty()) {
    const auto colon = cfg.aggCatalog.rfind(':');
    bool ok = colon != std::string::npos && colon > 0 &&
              colon + 1 < cfg.aggCatalog.size();
    if (ok) {
      const std::string portPart = cfg.aggCatalog.substr(colon + 1);
      ok = portPart.find_first_not_of("0123456789") == std::string::npos;
      if (ok) {
        const long port = std::strtol(portPart.c_str(), nullptr, 10);
        ok = port >= 1 && port <= 65535;
      }
    }
    if (!ok) {
      throw ConfigError("ZS_AGG_CATALOG must be \"host:port\"");
    }
  }
  cfg.aggJob = env::getString(
      "ZS_AGG_JOB", env::getString("SLURM_JOB_ID", "default"));
  cfg.aggQueueRecords = static_cast<int>(
      env::getInt("ZS_AGG_QUEUE", cfg.aggQueueRecords));
  cfg.aggBatchRecords = static_cast<int>(
      env::getInt("ZS_AGG_BATCH", cfg.aggBatchRecords));
  cfg.aggBatchAgeMs = static_cast<int>(
      env::getInt("ZS_AGG_BATCH_AGE_MS", cfg.aggBatchAgeMs));
  if (cfg.aggQueueRecords < 1 || cfg.aggBatchRecords < 1 ||
      cfg.aggBatchAgeMs < 1) {
    throw ConfigError("ZS_AGG_QUEUE/ZS_AGG_BATCH/ZS_AGG_BATCH_AGE_MS must "
                      "be >= 1");
  }
  cfg.aggTimeoutMs = static_cast<int>(
      env::getInt("ZS_AGG_TIMEOUT_MS", cfg.aggTimeoutMs));
  if (cfg.aggTimeoutMs < 0) {
    throw ConfigError("ZS_AGG_TIMEOUT_MS must be >= 0");
  }
  return cfg;
}

}  // namespace zerosum::core
