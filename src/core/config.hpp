// ZeroSum runtime configuration.
//
// Like the paper's tool, configuration arrives through environment
// variables set in the job script (the tool is injected; it has no argv):
//   ZS_PERIOD_MS         sampling period (default 1000, paper default 1 s)
//   ZS_ASYNC_CORE        HWT to pin the monitor thread to (-1 = last allowed)
//   ZS_HEARTBEAT         periodic progress line to stdout (default off)
//   ZS_HEARTBEAT_PERIODS heartbeat every N samples (default 10)
//   ZS_SIGNAL_HANDLER    install the backtrace handler (default on)
//   ZS_DEADLOCK_DETECT   enable the stuck-progress heuristic (default off)
//   ZS_DEADLOCK_PERIODS  consecutive idle samples before reporting (default 5)
//   ZS_LOG_PREFIX        per-process log file prefix (default "zerosum")
//   ZS_CSV               include CSV time-series in the log (default on)
//   ZS_MONITOR_GPU       sample GPU devices (default on)
//   ZS_MONITOR_MEMORY    sample meminfo/RSS (default on)
//   ZS_MEM_WARN_FRACTION fraction of node memory in use that triggers a
//                        low-memory finding (default 0.95)
//   ZS_MAX_CONSECUTIVE_ERRORS
//                        consecutive sampling failures before a subsystem
//                        (LWP/HWT/memory/GPU/progress) is quarantined
//                        (default 5)
//   ZS_RETRY_BACKOFF_PERIODS
//                        initial quarantine retry interval in sampling
//                        periods; doubles per failed retry, capped at
//                        kBackoffCapPeriods (default 4)
//   ZS_FAULT_SPEC        fault-injection schedule applied to the /proc
//                        provider, e.g. "taskstat:enoent@3,meminfo:
//                        truncate@5.." (default off; see procfs/faultfs.hpp)
//   ZS_FAULT_SEED        seed for the injected garbage bodies (default 1)
//   ZS_TRACE             record the monitor's own spans/counters with the
//                        trace subsystem (default off; see trace/trace.hpp)
//   ZS_TRACE_FILE        write a Chrome trace_event JSON at finalize;
//                        setting this implies ZS_TRACE
//   ZS_TRACE_RING        per-thread trace ring capacity in events
//                        (default 8192, rounded up to a power of two)
//   ZS_AGG_PORT          aggregation daemon TCP port; > 0 enables the
//                        embedded aggregation client (default 0 = off)
//   ZS_AGG_HOST          daemon address (default 127.0.0.1)
//   ZS_AGG_CATALOG       federation catalog "host:port"; when set the
//                        client resolves its node-level daemon through
//                        the catalog (preferring one on this host)
//                        instead of static ZS_AGG_HOST/ZS_AGG_PORT
//                        wiring, which stays as the fallback (default
//                        unset)
//   ZS_AGG_JOB           job identifier announced to the daemon (default
//                        SLURM_JOB_ID, else "default")
//   ZS_AGG_QUEUE         client send-queue bound in records; overflow
//                        drops oldest with a counter (default 8192)
//   ZS_AGG_BATCH         records per wire batch (default 256)
//   ZS_AGG_BATCH_AGE_MS  flush queued records older than this (default
//                        1000)
//   ZS_AGG_TIMEOUT_MS    connect/stalled-send budget for the TCP
//                        transport so a hung daemon cannot stall the
//                        publish path (default 250; 0 = unbounded)
//   ZS_AGG_FAULT_SPEC    fault-injection schedule applied to the
//                        aggregation transport, e.g. "send:disconnect@5,
//                        connect:fail@1..3" (default off; see
//                        aggregator/faulttransport.hpp)
//   ZS_AGG_FAULT_SEED    seed for the transport fault schedule (default 1)
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace zerosum::core {

struct Config {
  std::chrono::milliseconds period{1000};
  int asyncCore = -1;
  bool heartbeat = false;
  int heartbeatPeriods = 10;
  bool signalHandler = true;
  bool deadlockDetect = false;
  int deadlockPeriods = 5;
  std::string logPrefix = "zerosum";
  bool csvExport = true;
  bool monitorGpu = true;
  bool monitorMemory = true;
  double memWarnFraction = 0.95;
  /// Consecutive failures before a sampling subsystem is quarantined.
  int maxConsecutiveErrors = 5;
  /// Initial quarantine retry interval, in sampling periods (doubles per
  /// failed retry, capped at kBackoffCapPeriods).
  int retryBackoffPeriods = 4;
  /// Enable the self-instrumentation recorder (trace/trace.hpp) for this
  /// session; also enabled implicitly when `traceFile` is non-empty.
  bool trace = false;
  /// Chrome trace_event JSON written by zerosum::finalize(); empty = none.
  std::string traceFile;
  /// MetricsRegistry JSON snapshot written by zerosum::finalize(); empty
  /// = none.  Rendered to Prometheus text by `zerosum-post --prom-dump`.
  std::string metricsFile;
  /// Aggregation daemon endpoint; port 0 disables the embedded client.
  std::string aggHost = "127.0.0.1";
  int aggPort = 0;
  /// Federation catalog "host:port"; empty = no catalog resolution.
  std::string aggCatalog;
  /// Job identifier announced in the aggregation Hello.
  std::string aggJob;
  /// Client send-queue bound (records) and batching knobs.
  int aggQueueRecords = 8192;
  int aggBatchRecords = 256;
  int aggBatchAgeMs = 1000;
  /// TCP connect/stalled-send budget (ms); 0 = unbounded.
  int aggTimeoutMs = 250;
  /// Jiffies per second of the monitored clock: USER_HZ for the live
  /// kernel, sim::kHz for the simulator.
  std::uint64_t jiffyHz = 100;

  /// Reads the ZS_* environment; throws ConfigError on malformed values.
  static Config fromEnv();

  /// Jiffies in one sampling period (the denominator of the per-period
  /// utilization percentages in the reports).
  [[nodiscard]] double jiffiesPerPeriod() const {
    return static_cast<double>(jiffyHz) *
           std::chrono::duration<double>(period).count();
  }
};

}  // namespace zerosum::core
