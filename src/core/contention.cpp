#include "core/contention.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace zerosum::core {

std::string severityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "INFO";
    case Severity::kWarning: return "WARNING";
    case Severity::kCritical: return "CRITICAL";
  }
  return "UNKNOWN";
}

std::string renderFindings(const std::vector<Finding>& findings) {
  if (findings.empty()) {
    return "No findings: configuration looks healthy.\n";
  }
  std::ostringstream out;
  for (const auto& f : findings) {
    out << '[' << severityName(f.severity) << "] " << f.code << ": "
        << f.message;
    if (!f.tids.empty()) {
      out << " (LWPs:";
      for (int tid : f.tids) {
        out << ' ' << tid;
      }
      out << ')';
    }
    out << '\n';
  }
  return out.str();
}

std::vector<Finding> ContentionAnalyzer::analyze(
    const std::map<int, LwpRecord>& lwps,
    const std::map<std::size_t, HwtRecord>& hwts,
    const CpuSet& processAffinity, double jiffiesPerPeriod,
    double durationSeconds) const {
  std::vector<Finding> findings;
  if (jiffiesPerPeriod <= 0.0 || durationSeconds <= 0.0) {
    return findings;
  }

  // Partition LWPs: busy ones, and among those, bound ones (affinity
  // narrower than the whole process allocation).
  std::vector<const LwpRecord*> busy;
  auto cpuUseOf = [&](const LwpRecord& record) {
    return (record.avgUtimePerPeriod() + record.avgStimePerPeriod()) /
           jiffiesPerPeriod;
  };
  for (const auto& [tid, record] : lwps) {
    if (cpuUseOf(record) >= params_.busyFraction) {
      busy.push_back(&record);
    }
  }

  // Rule: identical affinity sets shared by several busy LWPs (the paper's
  // "easy benefit" — LWPs assigned to the same HWTs, contending).  The
  // group is flagged when the members outnumber the slots and together
  // saturate them — under time-slicing each member individually looks
  // *underutilized*, which is why a per-thread threshold cannot catch it.
  std::map<std::string, std::vector<const LwpRecord*>> byAffinity;
  for (const LwpRecord* record : busy) {
    byAffinity[record->lastAffinity().toList()].push_back(record);
  }
  for (const auto& [affinity, group] : byAffinity) {
    const std::size_t slots = group.front()->lastAffinity().count();
    double groupDemand = 0.0;
    for (const LwpRecord* record : group) {
      groupDemand += cpuUseOf(*record);
    }
    if (group.size() > slots &&
        groupDemand >=
            params_.groupDemandFraction * static_cast<double>(slots)) {
      Finding f;
      f.severity = Severity::kCritical;
      f.code = "oversubscribed-hwt";
      f.message = std::to_string(group.size()) +
                  " busy threads share HWT set [" + affinity + "] with only " +
                  std::to_string(slots) + " slot(s); the OS is time-slicing";
      std::uint64_t nvctx = 0;
      for (const LwpRecord* record : group) {
        f.tids.push_back(record->tid);
        nvctx += record->totalNonvoluntaryCtx();
      }
      f.message += " (" + std::to_string(nvctx) +
                   " non-voluntary context switches observed)";
      findings.push_back(std::move(f));
    }
  }

  // Rule: per-LWP non-voluntary context switch rate.
  for (const auto& [tid, record] : lwps) {
    const double rate =
        static_cast<double>(record.totalNonvoluntaryCtx()) / durationSeconds;
    if (rate >= params_.nvctxRatePerSecond) {
      Finding f;
      f.severity = Severity::kWarning;
      f.code = "high-nvctx-rate";
      f.message = "LWP " + std::to_string(tid) + " (" +
                  lwpTypeName(record.type) + ") preempted " +
                  strings::fixed(rate, 1) +
                  " times/s — it is competing for its HWT";
      f.tids.push_back(tid);
      findings.push_back(std::move(f));
    }
  }

  // Rule: syscall-heavy threads.
  for (const auto& [tid, record] : lwps) {
    const double stimeFrac = record.avgStimePerPeriod() / jiffiesPerPeriod;
    if (stimeFrac >= params_.stimeFraction) {
      Finding f;
      f.severity = Severity::kWarning;
      f.code = "high-system-time";
      f.message = "LWP " + std::to_string(tid) + " spends " +
                  strings::fixed(stimeFrac * 100.0, 1) +
                  "% of its time in system calls — contended kernel "
                  "resources (I/O, synchronization, data movement)";
      f.tids.push_back(tid);
      findings.push_back(std::move(f));
    }
  }

  // Rule: idle allocation next to oversubscription/time-slicing.
  std::size_t idleHwts = 0;
  for (const auto& [cpu, record] : hwts) {
    if (record.avgIdlePct() >= params_.idleHwtPct) {
      ++idleHwts;
    }
  }
  const bool anyOversubscribed =
      std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
        return f.code == "oversubscribed-hwt";
      });
  if (idleHwts > 0 && anyOversubscribed) {
    Finding f;
    f.severity = Severity::kCritical;
    f.code = "undersubscribed-allocation";
    f.message = std::to_string(idleHwts) +
                " allocated HWT(s) sat idle while threads time-sliced "
                "elsewhere — spread the threads (e.g. srun -c / "
                "OMP_PROC_BIND)";
    findings.push_back(std::move(f));
  }

  // Rule: the monitor's own thread perturbing an application thread.
  const LwpRecord* zerosum = nullptr;
  for (const auto& [tid, record] : lwps) {
    if (record.type == LwpType::kZeroSum) {
      zerosum = &record;
      break;
    }
  }
  if (zerosum != nullptr) {
    for (const LwpRecord* record : busy) {
      if (record->type == LwpType::kZeroSum) {
        continue;
      }
      // One preemption per monitor wake is the expected signature; half
      // that rate over the run is already attributable to the monitor.
      if (record->lastAffinity().intersects(zerosum->lastAffinity()) &&
          static_cast<double>(record->totalNonvoluntaryCtx()) >
              durationSeconds / 2.0) {
        Finding f;
        f.severity = Severity::kInfo;
        f.code = "monitor-collision";
        f.message = "LWP " + std::to_string(record->tid) +
                    " shares HWT [" + zerosum->lastAffinity().toList() +
                    "] with the ZeroSum monitor thread; move the monitor "
                    "with ZS_ASYNC_CORE to avoid the perturbation";
        f.tids = {record->tid, zerosum->tid};
        findings.push_back(std::move(f));
        break;
      }
    }
  }

  // Rule: unbound threads migrating (Table 2's signature).
  for (const LwpRecord* record : busy) {
    if (record->lastAffinity() == processAffinity &&
        processAffinity.count() > 1 && record->observedMigrations() > 0) {
      Finding f;
      f.severity = Severity::kInfo;
      f.code = "unbound-thread-migrated";
      f.message = "LWP " + std::to_string(record->tid) +
                  " is unbound within the allocation and migrated " +
                  std::to_string(record->observedMigrations()) +
                  " time(s); binding (OMP_PROC_BIND=spread, "
                  "OMP_PLACES=cores) would improve locality";
      f.tids.push_back(record->tid);
      findings.push_back(std::move(f));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return static_cast<int>(a.severity) >
                     static_cast<int>(b.severity);
            });
  return findings;
}

std::vector<Finding> ConfigEvaluator::evaluate(
    const topology::Topology& topo,
    const std::vector<sim::slurm::TaskPlacement>& plan,
    const JobShape& shape) const {
  std::vector<Finding> findings;

  CpuSet jobPus;
  for (const auto& tp : plan) {
    jobPus |= tp.cpus;

    // Oversubscription: more threads than PUs in the rank's allocation
    // (Table 1: 8 threads, 1 core).
    if (static_cast<std::size_t>(shape.threadsPerRank) > tp.cpus.count()) {
      Finding f;
      f.severity = Severity::kCritical;
      f.code = "rank-oversubscribed";
      f.message = "rank " + std::to_string(tp.rank) + " runs " +
                  std::to_string(shape.threadsPerRank) + " threads on " +
                  std::to_string(tp.cpus.count()) +
                  " HWT(s) [" + tp.cpus.toList() +
                  "]; request more cores per task (srun -c)";
      findings.push_back(std::move(f));
    } else if (!shape.threadsBound && tp.cpus.count() > 1) {
      Finding f;
      f.severity = Severity::kInfo;
      f.code = "rank-threads-unbound";
      f.message = "rank " + std::to_string(tp.rank) +
                  " has enough HWTs but no thread binding; set "
                  "OMP_PROC_BIND=spread and OMP_PLACES=cores";
      findings.push_back(std::move(f));
    }

    // GPU locality: assigned GPU attached to a different NUMA domain.
    for (int visible : tp.gpuVisibleIndexes) {
      const auto& gpu = topo.gpuByVisibleIndex(visible);
      if (gpu.numaAffinity >= 0 && gpu.numaAffinity != tp.numaDomain) {
        Finding f;
        f.severity = Severity::kWarning;
        f.code = "gpu-numa-mismatch";
        f.message =
            "rank " + std::to_string(tp.rank) + " (NUMA " +
            std::to_string(tp.numaDomain) + ") was assigned GPU visible#" +
            std::to_string(visible) + " attached to NUMA " +
            std::to_string(gpu.numaAffinity) +
            "; use --gpu-bind=closest or reorder ranks";
        findings.push_back(std::move(f));
      }
    }

    // Reserved-core use (should be impossible through planSrun, but a
    // hand-written plan can do it).
    const CpuSet reservedUse = tp.cpus & topo.reservedPus();
    if (!reservedUse.empty()) {
      Finding f;
      f.severity = Severity::kWarning;
      f.code = "reserved-core-use";
      f.message = "rank " + std::to_string(tp.rank) +
                  " includes system-reserved HWTs [" + reservedUse.toList() +
                  "]; expect OS noise";
      findings.push_back(std::move(f));
    }
  }

  // Node-level undersubscription: the job leaves most of the node idle.
  const std::size_t available = topo.availablePus().count();
  if (available > 0 && jobPus.count() * 2 < available) {
    Finding f;
    f.severity = Severity::kInfo;
    f.code = "node-undersubscribed";
    f.message = "job uses " + std::to_string(jobPus.count()) + " of " +
                std::to_string(available) +
                " available HWTs on the node; allocation time may be wasted";
    findings.push_back(std::move(f));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return static_cast<int>(a.severity) >
                     static_cast<int>(b.severity);
            });
  return findings;
}

}  // namespace zerosum::core
