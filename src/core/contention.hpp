// Contention analysis and configuration evaluation.
//
// The paper's §3.2 describes configuration evaluation as future work but
// names the "easy benefit": automatically detecting when multiple LWPs are
// assigned to the same HWTs with measurable contention between them.  This
// module implements that, plus the placement-level rule evaluation the
// paper envisions (under/over-subscription, unbound threads, GPU/NUMA
// mismatch) — the reproduction's §5 extension.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/records.hpp"
#include "sim/slurm.hpp"
#include "topology/hardware.hpp"

namespace zerosum::core {

enum class Severity { kInfo = 0, kWarning = 1, kCritical = 2 };

std::string severityName(Severity severity);

struct Finding {
  Severity severity = Severity::kInfo;
  /// Stable rule identifier, e.g. "oversubscribed-hwt".
  std::string code;
  std::string message;
  /// LWPs implicated (empty for node-level findings).
  std::vector<int> tids;
};

std::string renderFindings(const std::vector<Finding>& findings);

/// Post-hoc analysis of a finished (or running) monitoring session.
class ContentionAnalyzer {
 public:
  struct Params {
    /// An LWP participates in contention analysis when its average CPU use
    /// exceeds this fraction of a period.  Deliberately low: under heavy
    /// time-slicing each victim only gets a small share (Table 1 shows
    /// ~13% per thread), which is precisely when the analysis matters.
    double busyFraction = 0.05;
    /// An affinity group is oversubscribed when it has more busy members
    /// than HWT slots *and* their combined demand exceeds this fraction of
    /// the slots' capacity.
    double groupDemandFraction = 0.80;
    /// Non-voluntary context switches per second that indicate
    /// time-slicing contention.
    double nvctxRatePerSecond = 50.0;
    /// System-time fraction of a period considered syscall-heavy.
    double stimeFraction = 0.25;
    /// Idle percentage above which a HWT counts as wasted.
    double idleHwtPct = 90.0;
  };

  ContentionAnalyzer() : params_(Params{}) {}
  explicit ContentionAnalyzer(const Params& params) : params_(params) {}

  [[nodiscard]] std::vector<Finding> analyze(
      const std::map<int, LwpRecord>& lwps,
      const std::map<std::size_t, HwtRecord>& hwts,
      const CpuSet& processAffinity, double jiffiesPerPeriod,
      double durationSeconds) const;

 private:
  Params params_;
};

/// Pre-run (or any-time) evaluation of a placement plan against a node
/// topology: the rules a user would check by hand against Figures 1-3.
class ConfigEvaluator {
 public:
  struct JobShape {
    int threadsPerRank = 1;
    bool threadsBound = false;
    int gpusPerRank = 0;
  };

  [[nodiscard]] std::vector<Finding> evaluate(
      const topology::Topology& topo,
      const std::vector<sim::slurm::TaskPlacement>& plan,
      const JobShape& shape) const;
};

}  // namespace zerosum::core
