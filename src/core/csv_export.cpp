#include "core/csv_export.hpp"

#include "common/strings.hpp"
#include "gpu/metrics.hpp"

namespace zerosum::core {

void CsvExporter::writeLwpSeries(std::ostream& out,
                                 const std::map<int, LwpRecord>& lwps) {
  out << "time,tid,type,state,utime,stime,utime_delta,stime_delta,vctx,"
         "nvctx,minflt,majflt,processor,affinity\n";
  for (const auto& [tid, record] : lwps) {
    for (const auto& s : record.samples) {
      out << strings::fixed(s.timeSeconds, 3) << ',' << tid << ','
          << lwpTypeName(record.type) << ',' << s.state << ',' << s.utime
          << ',' << s.stime << ',' << s.utimeDelta << ',' << s.stimeDelta
          << ',' << s.voluntaryCtx << ',' << s.nonvoluntaryCtx << ','
          << s.minorFaults << ',' << s.majorFaults << ',' << s.processor
          << ",\"" << s.affinity.toList() << "\"\n";
    }
  }
}

void CsvExporter::writeHwtSeries(std::ostream& out,
                                 const std::map<std::size_t, HwtRecord>& hwts) {
  out << "time,cpu,user_pct,system_pct,idle_pct\n";
  for (const auto& [cpu, record] : hwts) {
    for (const auto& s : record.samples) {
      out << strings::fixed(s.timeSeconds, 3) << ',' << cpu << ','
          << strings::fixed(s.userPct, 2) << ','
          << strings::fixed(s.systemPct, 2) << ','
          << strings::fixed(s.idlePct, 2) << '\n';
    }
  }
}

void CsvExporter::writeMemorySeries(std::ostream& out,
                                    const std::vector<MemSample>& samples) {
  out << "time,mem_total_kb,mem_free_kb,mem_available_kb,rss_kb,hwm_kb\n";
  for (const auto& s : samples) {
    out << strings::fixed(s.timeSeconds, 3) << ',' << s.memTotalKb << ','
        << s.memFreeKb << ',' << s.memAvailableKb << ',' << s.processRssKb
        << ',' << s.processHwmKb << '\n';
  }
}

void CsvExporter::writeGpuSeries(std::ostream& out,
                                 const std::vector<GpuRecord>& gpus) {
  out << "time,gpu,metric,value\n";
  for (const auto& gpu : gpus) {
    for (const auto& [time, sample] : gpu.samples) {
      for (const auto& [metric, value] : sample) {
        out << strings::fixed(time, 3) << ',' << gpu.visibleIndex << ",\""
            << gpu::metricLabel(metric) << "\"," << strings::fixed(value, 6)
            << '\n';
      }
    }
  }
}

void CsvExporter::writeCommSeries(std::ostream& out,
                                  const mpisim::Recorder& recorder) {
  out << recorder.toCsv();
}

void CsvExporter::writeHealthSeries(std::ostream& out,
                                    const std::vector<HealthSample>& samples) {
  out << "time,samples_taken,samples_degraded,samples_dropped,loop_overruns,"
         "subsystems_quarantined,quarantines,recoveries,"
         "agg_records_coarsened,agg_degrade_transitions,"
         "agg_records_dropped,agg_degrade_stage,agg_acked_pressure,"
         "agg_fanin_direct,agg_fanin_forwarded,agg_fanin_max_hops\n";
  for (const auto& s : samples) {
    out << strings::fixed(s.timeSeconds, 3) << ',' << s.samplesTaken << ','
        << s.samplesDegraded << ',' << s.samplesDropped << ','
        << s.loopOverruns << ',' << s.subsystemsQuarantined << ','
        << s.quarantines << ',' << s.recoveries << ','
        << s.aggRecordsCoarsened << ',' << s.aggDegradeTransitions << ','
        << s.aggRecordsDropped << ',' << s.aggDegradeStage << ','
        << s.aggAckedPressure << ',' << s.aggFaninDirect << ','
        << s.aggFaninForwarded << ',' << s.aggFaninMaxHops << '\n';
  }
}

}  // namespace zerosum::core
