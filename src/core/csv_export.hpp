// CSV time-series export (paper §3.6): everything sampled per period is
// dumped as comma-separated values in the per-process log, enabling the
// post-hoc time-series analysis of Figures 6 and 7 and the heatmap of
// Figure 5.
#pragma once

#include <map>
#include <ostream>
#include <vector>

#include "core/health.hpp"
#include "core/records.hpp"
#include "mpisim/recorder.hpp"

namespace zerosum::core {

class CsvExporter {
 public:
  /// time,tid,type,state,utime,stime,utime_delta,stime_delta,vctx,nvctx,
  /// minflt,majflt,processor,affinity
  static void writeLwpSeries(std::ostream& out,
                             const std::map<int, LwpRecord>& lwps);

  /// time,cpu,user_pct,system_pct,idle_pct
  static void writeHwtSeries(std::ostream& out,
                             const std::map<std::size_t, HwtRecord>& hwts);

  /// time,mem_total_kb,mem_free_kb,mem_available_kb,rss_kb,hwm_kb
  static void writeMemorySeries(std::ostream& out,
                                const std::vector<MemSample>& samples);

  /// time,gpu,metric,value
  static void writeGpuSeries(std::ostream& out,
                             const std::vector<GpuRecord>& gpus);

  /// direction,peer,bytes,count — the rank's point-to-point totals.
  static void writeCommSeries(std::ostream& out,
                              const mpisim::Recorder& recorder);

  /// time,samples_taken,samples_degraded,samples_dropped,loop_overruns,
  /// subsystems_quarantined,quarantines,recoveries — the monitor's own
  /// health per sample.
  static void writeHealthSeries(std::ostream& out,
                                const std::vector<HealthSample>& samples);
};

}  // namespace zerosum::core
