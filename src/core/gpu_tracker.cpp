#include "core/gpu_tracker.hpp"

#include "common/strings.hpp"

namespace zerosum::core {

GpuTracker::GpuTracker(gpu::DeviceList devices, double warnFraction)
    : devices_(std::move(devices)), warnFraction_(warnFraction) {
  records_.reserve(devices_.size());
  for (const auto& device : devices_) {
    GpuRecord record;
    record.visibleIndex = device->visibleIndex();
    record.physicalIndex = device->physicalIndex();
    record.model = device->model();
    records_.push_back(std::move(record));
  }
  inLowMemory_.assign(devices_.size(), false);
}

void GpuTracker::sample(double timeSeconds) {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    gpu::GpuDevice& device = *devices_[i];
    GpuRecord& record = records_[i];

    const gpu::Sample sample = device.query();
    for (const auto& [metric, value] : sample) {
      record.accumulators[metric].add(value);
    }
    record.samples.emplace_back(timeSeconds, sample);

    const gpu::MemoryInfo mem = device.memoryInfo();
    if (mem.totalBytes == 0) {
      continue;
    }
    const double usedFraction = static_cast<double>(mem.usedBytes) /
                                static_cast<double>(mem.totalBytes);
    const bool low = usedFraction >= warnFraction_;
    if (low && !inLowMemory_[i]) {
      GpuMemoryEvent event;
      event.timeSeconds = timeSeconds;
      event.visibleIndex = record.visibleIndex;
      event.usedFraction = usedFraction;
      event.description = "GPU " + std::to_string(record.visibleIndex) +
                          " VRAM " + strings::fixed(usedFraction * 100.0, 1) +
                          "% used (" + std::to_string(mem.usedBytes) + " of " +
                          std::to_string(mem.totalBytes) + " bytes)";
      events_.push_back(std::move(event));
    }
    inLowMemory_[i] = low;
  }
}

}  // namespace zerosum::core
