// GpuTracker: periodic GPU metric sampling (paper §3.4-3.5).
//
// Queries every attached device each period, accumulating min/avg/max per
// metric for the summary table (Listing 2) and retaining the raw series
// for CSV export.  Also watches VRAM headroom for the contention report.
#pragma once

#include <string>
#include <vector>

#include "core/records.hpp"
#include "gpu/device.hpp"

namespace zerosum::core {

struct GpuMemoryEvent {
  double timeSeconds = 0.0;
  int visibleIndex = 0;
  double usedFraction = 0.0;
  std::string description;
};

class GpuTracker {
 public:
  /// `warnFraction` — VRAM-used fraction that triggers an event.
  explicit GpuTracker(gpu::DeviceList devices, double warnFraction = 0.95);

  void sample(double timeSeconds);

  [[nodiscard]] const std::vector<GpuRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::vector<GpuMemoryEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return devices_.empty(); }

 private:
  gpu::DeviceList devices_;
  double warnFraction_;
  std::vector<GpuRecord> records_;
  std::vector<bool> inLowMemory_;
  std::vector<GpuMemoryEvent> events_;
};

}  // namespace zerosum::core
