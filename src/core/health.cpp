#include "core/health.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace zerosum::core {

SubsystemGuard::SubsystemGuard(std::string name, int maxConsecutiveErrors,
                               int backoffPeriods)
    : maxConsecutive_(std::max(1, maxConsecutiveErrors)),
      baseBackoff_(std::max(1, backoffPeriods)) {
  health_.name = std::move(name);
  // Interned once here so the hot-path instant events in runOnce() can
  // carry a per-subsystem name without allocating.
  auto& recorder = trace::TraceRecorder::instance();
  traceError_ = recorder.intern("zs.fault." + health_.name + ".error");
  traceQuarantine_ =
      recorder.intern("zs.fault." + health_.name + ".quarantine");
  traceRecovery_ = recorder.intern("zs.fault." + health_.name + ".recovery");
}

bool SubsystemGuard::runOnce(const std::function<void()>& fn) {
  if (health_.quarantined && periodsUntilRetry_ > 0) {
    --periodsUntilRetry_;
    ++health_.skipped;
    return false;
  }

  ++health_.attempts;
  bool ok = false;
  try {
    fn();
    ok = true;
  } catch (const std::exception& e) {
    health_.lastError = e.what();
  } catch (...) {
    health_.lastError = "unknown exception";
  }

  if (ok) {
    if (health_.quarantined) {
      health_.quarantined = false;
      ++health_.recoveries;
      ZS_TRACE_INSTANT(traceRecovery_);
      log::info() << "subsystem " << health_.name
                  << " recovered after quarantine";
    }
    health_.consecutiveErrors = 0;
    currentBackoff_ = 0;
    return true;
  }

  ++health_.errors;
  ++health_.consecutiveErrors;
  ZS_TRACE_INSTANT(traceError_);
  if (health_.quarantined) {
    // A failed retry: back off harder.
    currentBackoff_ = std::min(currentBackoff_ * 2, kBackoffCapPeriods);
    periodsUntilRetry_ = currentBackoff_;
    log::debug() << "subsystem " << health_.name << " retry failed ("
                 << health_.lastError << "); next retry in "
                 << currentBackoff_ << " periods";
  } else if (health_.consecutiveErrors >=
             static_cast<std::uint64_t>(maxConsecutive_)) {
    health_.quarantined = true;
    ++health_.quarantines;
    ZS_TRACE_INSTANT(traceQuarantine_);
    currentBackoff_ = baseBackoff_;
    periodsUntilRetry_ = currentBackoff_;
    log::warn() << "subsystem " << health_.name << " quarantined after "
                << health_.consecutiveErrors << " consecutive errors ("
                << health_.lastError << "); retrying in " << currentBackoff_
                << " periods";
  } else if (health_.consecutiveErrors == 1) {
    // First failure of a streak is the interesting one; repeats stay at
    // debug so a flapping subsystem cannot flood the diagnostics.
    log::warn() << "subsystem " << health_.name
                << " sample failed: " << health_.lastError;
  } else {
    log::debug() << "subsystem " << health_.name
                 << " sample failed again: " << health_.lastError;
  }
  return false;
}

}  // namespace zerosum::core
