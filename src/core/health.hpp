// Monitor self-health: the machinery that keeps a failing subsystem from
// taking down the sampling thread, plus the telemetry that makes the
// degradation observable instead of silent.
//
// ZeroSum is injected into production jobs (paper §3.1); "do no harm"
// means a single bad /proc read must never terminate the application.
// Each sampling subsystem (LWP, HWT, memory, GPU, progress) therefore
// runs inside a SubsystemGuard: an error boundary that counts failures,
// quarantines the subsystem after ZS_MAX_CONSECUTIVE_ERRORS consecutive
// ones, retries it with exponential backoff (starting at
// ZS_RETRY_BACKOFF_PERIODS periods, doubling up to kBackoffCapPeriods),
// and re-enables it on the first success.  The aggregate MonitorHealth is
// rendered as a "Monitor health" report section and a CSV series.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace zerosum::core {

/// Upper bound on the quarantine retry interval, in sampling periods.
inline constexpr int kBackoffCapPeriods = 256;

/// Counters for one guarded sampling subsystem.
struct SubsystemHealth {
  std::string name;
  std::uint64_t attempts = 0;    ///< periods where the subsystem ran
  std::uint64_t errors = 0;      ///< attempts that threw
  std::uint64_t consecutiveErrors = 0;
  std::uint64_t quarantines = 0;  ///< times the subsystem was quarantined
  std::uint64_t recoveries = 0;   ///< quarantine exits on a successful retry
  std::uint64_t skipped = 0;      ///< periods skipped while quarantined
  bool quarantined = false;
  std::string lastError;
};

/// Error boundary + quarantine state machine for one subsystem.  One
/// runOnce() call corresponds to one sampling period.
class SubsystemGuard {
 public:
  /// `maxConsecutiveErrors` failures in a row trigger quarantine;
  /// `backoffPeriods` is the initial retry interval (doubles per failed
  /// retry, capped at kBackoffCapPeriods).
  SubsystemGuard(std::string name, int maxConsecutiveErrors,
                 int backoffPeriods);

  /// Runs `fn` unless the subsystem is quarantined and still backing off.
  /// Catches everything `fn` throws.  Returns true when `fn` ran and
  /// succeeded; false when it failed or was skipped.
  bool runOnce(const std::function<void()>& fn);

  [[nodiscard]] const SubsystemHealth& health() const { return health_; }

 private:
  int maxConsecutive_;
  int baseBackoff_;
  int currentBackoff_ = 0;   // doubles per failed retry while quarantined
  int periodsUntilRetry_ = 0;
  SubsystemHealth health_;
  // Interned trace-event names (stable storage; see trace/trace.hpp).
  const char* traceError_ = nullptr;
  const char* traceQuarantine_ = nullptr;
  const char* traceRecovery_ = nullptr;
};

/// Aggregation-client degradation counters folded into the health time
/// series (provided by the export layer via setAggHealthProvider — core
/// cannot depend on the aggregator).  The ladder becomes observable in
/// the same CSV that shows quarantines: *when* the client coarsened,
/// stepped levels, or finally dropped.
struct AggHealth {
  std::uint64_t recordsCoarsened = 0;
  std::uint64_t degradeTransitions = 0;
  std::uint64_t recordsDropped = 0;
  /// Current ladder stage (0 full / 1 coarse / 2 essential) and the last
  /// daemon pressure acked (0 ok / 1 elevated / 2 overloaded) — the live
  /// state behind the cumulative transition counters, so the CSV shows
  /// coarsening while it happens.
  int degradeStage = 0;
  int ackedPressure = 0;
  /// Fan-in composition of the co-resident aggregation daemon (zeros when
  /// the rank feeds a flat daemon): sources it sees directly vs through
  /// kForward hops, and the deepest hop count observed — the per-hop
  /// source counts of the federation tree, visible per sample.
  int faninDirectSources = 0;
  int faninForwardedSources = 0;
  int faninMaxHops = 0;
};

/// One row of the per-sample health time series.
struct HealthSample {
  double timeSeconds = 0.0;
  std::uint64_t samplesTaken = 0;
  std::uint64_t samplesDegraded = 0;
  std::uint64_t samplesDropped = 0;
  std::uint64_t loopOverruns = 0;
  int subsystemsQuarantined = 0;
  /// Cumulative quarantine entries / exits summed over all subsystems, so
  /// the time series shows *when* the degradation machinery fired.
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
  /// Cumulative aggregation-client degradation counters (zeros when no
  /// aggregation client is attached).
  std::uint64_t aggRecordsCoarsened = 0;
  std::uint64_t aggDegradeTransitions = 0;
  std::uint64_t aggRecordsDropped = 0;
  int aggDegradeStage = 0;
  int aggAckedPressure = 0;
  /// Federation fan-in composition (zeros outside tree mode).
  int aggFaninDirect = 0;
  int aggFaninForwarded = 0;
  int aggFaninMaxHops = 0;
};

/// Aggregate self-health of one MonitorSession.
struct MonitorHealth {
  std::uint64_t samplesTaken = 0;    ///< sampleOnce completions
  std::uint64_t samplesDegraded = 0; ///< samples with >=1 failed/skipped subsystem
  std::uint64_t samplesDropped = 0;  ///< samples lost to an escaped exception
  std::uint64_t loopOverruns = 0;    ///< samples that took longer than the period
  std::vector<SubsystemHealth> subsystems;

  [[nodiscard]] int quarantinedCount() const {
    int count = 0;
    for (const auto& s : subsystems) {
      count += s.quarantined ? 1 : 0;
    }
    return count;
  }

  [[nodiscard]] std::uint64_t totalQuarantines() const {
    std::uint64_t total = 0;
    for (const auto& s : subsystems) {
      total += s.quarantines;
    }
    return total;
  }

  [[nodiscard]] std::uint64_t totalRecoveries() const {
    std::uint64_t total = 0;
    for (const auto& s : subsystems) {
      total += s.recoveries;
    }
    return total;
  }
};

}  // namespace zerosum::core
