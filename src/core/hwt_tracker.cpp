#include "core/hwt_tracker.hpp"

namespace zerosum::core {

HwtTracker::HwtTracker(const procfs::ProcFs& fs, CpuSet watched)
    : fs_(fs), watched_(watched) {}

void HwtTracker::sample(double timeSeconds) {
  fs_.readStatInto(bufScratch_);
  procfs::parseStatInto(bufScratch_, snapScratch_);
  const procfs::StatSnapshot& snapshot = snapScratch_;
  for (const auto& [cpuInt, times] : snapshot.perCpu) {
    const auto cpu = static_cast<std::size_t>(cpuInt);
    if (!watched_.empty() && !watched_.test(cpu)) {
      continue;
    }
    HwtSample sample;
    sample.timeSeconds = timeSeconds;
    sample.user = times.user + times.nice;
    sample.system = times.system + times.irq + times.softirq;
    sample.idle = times.idle + times.iowait;

    const auto prevIt = previous_.find(cpu);
    std::uint64_t du = sample.user;
    std::uint64_t ds = sample.system;
    std::uint64_t di = sample.idle;
    if (prevIt != previous_.end()) {
      const auto& p = prevIt->second;
      const std::uint64_t pu = p.user + p.nice;
      const std::uint64_t ps = p.system + p.irq + p.softirq;
      const std::uint64_t pi = p.idle + p.iowait;
      du = sample.user >= pu ? sample.user - pu : 0;
      ds = sample.system >= ps ? sample.system - ps : 0;
      di = sample.idle >= pi ? sample.idle - pi : 0;
    }
    const double total = static_cast<double>(du + ds + di);
    if (total > 0.0) {
      sample.userPct = 100.0 * static_cast<double>(du) / total;
      sample.systemPct = 100.0 * static_cast<double>(ds) / total;
      sample.idlePct = 100.0 * static_cast<double>(di) / total;
    } else {
      sample.idlePct = 100.0;
    }
    previous_[cpu] = times;

    auto [it, isNew] = records_.try_emplace(cpu);
    if (isNew) {
      it->second.cpu = cpu;
    }
    it->second.samples.push_back(sample);
  }
}

}  // namespace zerosum::core
