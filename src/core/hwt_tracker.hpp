// HwtTracker: per-hardware-thread utilization from /proc/stat (paper §3.4).
//
// The HWT report is limited to the HWTs in the process affinity list —
// those are the resources the job was given; the rest of the node belongs
// to other jobs (the paper's report makes the same restriction).
#pragma once

#include <map>

#include "common/cpuset.hpp"
#include "core/records.hpp"
#include "procfs/procfs.hpp"

namespace zerosum::core {

class HwtTracker {
 public:
  /// `watched` — the PU OS indexes to track (typically the process
  /// affinity).  Empty means every CPU the provider reports.
  HwtTracker(const procfs::ProcFs& fs, CpuSet watched);

  void sample(double timeSeconds);

  [[nodiscard]] const std::map<std::size_t, HwtRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const CpuSet& watched() const { return watched_; }

 private:
  const procfs::ProcFs& fs_;
  CpuSet watched_;
  std::map<std::size_t, HwtRecord> records_;
  std::map<std::size_t, procfs::CpuTimes> previous_;
  // Reused across sample() calls: raw /proc/stat bytes and the parsed
  // snapshot (whose per-CPU map nodes persist period to period).
  std::string bufScratch_;
  procfs::StatSnapshot snapScratch_;
};

}  // namespace zerosum::core
