#include "core/lwp_tracker.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace zerosum::core {

LwpTracker::LwpTracker(const procfs::ProcFs& fs, int pid)
    : fs_(fs), pid_(pid) {}

void LwpTracker::hintType(int tid, LwpType type) { typeHints_[tid] = type; }

void LwpTracker::addOmpTids(const std::set<int>& tids) {
  ompTids_.insert(tids.begin(), tids.end());
  // A Main record that turns out to be an OpenMP team member gets the
  // paper's dagger annotation retroactively.
  for (auto& [tid, record] : records_) {
    if (record.type == LwpType::kMain && ompTids_.count(tid) != 0) {
      record.alsoOpenMp = true;
    }
  }
}

LwpType LwpTracker::classify(int tid, const std::string& comm) const {
  if (const auto it = typeHints_.find(tid); it != typeHints_.end()) {
    return it->second;
  }
  if (tid == pid_) {
    return LwpType::kMain;
  }
  if (ompTids_.count(tid) != 0) {
    return LwpType::kOpenMp;
  }
  // Name heuristics mirror what the tool can infer on real systems from
  // thread names set by the runtimes.
  const std::string lower = [&] {
    std::string s = comm;
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    return s;
  }();
  if (lower.find("zerosum") != std::string::npos) {
    return LwpType::kZeroSum;
  }
  if (lower.find("omp") != std::string::npos) {
    return LwpType::kOpenMp;
  }
  if (lower.find("cuda") != std::string::npos ||
      lower.find("hip") != std::string::npos ||
      lower.find("rocr") != std::string::npos) {
    return LwpType::kGpuHelper;
  }
  return LwpType::kOther;
}

void LwpTracker::sample(double timeSeconds) {
  fs_.listTasksInto(pid_, tidsScratch_);
  seenScratch_.clear();
  for (int tid : tidsScratch_) {
    procfs::TaskStat& stat = statScratch_;
    procfs::ProcStatus& status = statusScratch_;
    try {
      fs_.readTaskStatInto(pid_, tid, bufScratch_);
      procfs::parseTaskStatInto(bufScratch_, stat);
      fs_.readTaskStatusInto(pid_, tid, bufScratch_);
      procfs::parseStatusInto(bufScratch_, status);
    } catch (const Error& e) {
      // The thread exited between the directory scan and the read; its
      // record (if any) will be marked dead below.
      log::debug() << "tid " << tid << " vanished mid-scan: " << e.what();
      continue;
    }
    seenScratch_.push_back(tid);  // tids arrive sorted, so this stays sorted

    auto [it, isNew] = records_.try_emplace(tid);
    LwpRecord& record = it->second;
    if (isNew) {
      record.tid = tid;
      record.name = stat.comm;
      record.type = classify(tid, stat.comm);
      record.alsoOpenMp =
          record.type == LwpType::kMain && ompTids_.count(tid) != 0;
    }
    record.alive = true;

    LwpSample sample;
    sample.timeSeconds = timeSeconds;
    sample.state = stat.state;
    sample.utime = stat.utimeJiffies;
    sample.stime = stat.stimeJiffies;
    sample.voluntaryCtx = status.voluntaryCtxSwitches;
    sample.nonvoluntaryCtx = status.nonvoluntaryCtxSwitches;
    sample.minorFaults = stat.minorFaults;
    sample.majorFaults = stat.majorFaults;
    sample.processor = stat.processor;
    sample.affinity = status.cpusAllowed;
    if (!record.samples.empty()) {
      const LwpSample& prev = record.samples.back();
      sample.utimeDelta =
          sample.utime >= prev.utime ? sample.utime - prev.utime : 0;
      sample.stimeDelta =
          sample.stime >= prev.stime ? sample.stime - prev.stime : 0;
    } else {
      sample.utimeDelta = sample.utime;
      sample.stimeDelta = sample.stime;
    }
    record.samples.push_back(std::move(sample));
  }

  for (auto& [tid, record] : records_) {
    if (!std::binary_search(seenScratch_.begin(), seenScratch_.end(), tid)) {
      record.alive = false;
    }
  }
}

std::size_t LwpTracker::liveCount() const {
  std::size_t count = 0;
  for (const auto& [tid, record] : records_) {
    if (record.alive) {
      ++count;
    }
  }
  return count;
}

}  // namespace zerosum::core
