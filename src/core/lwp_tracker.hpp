// LwpTracker: thread discovery and per-LWP sampling (paper §3.1.1).
//
// Threads are discovered by scanning /proc/<pid>/task each period — the
// paper's deliberate alternative to intercepting pthread_create, trading
// visibility of very short-lived threads for robustness.  Affinity is
// re-read every period because a thread may be (re)bound after creation.
#pragma once

#include <map>
#include <set>
#include <string>

#include "core/records.hpp"
#include "procfs/procfs.hpp"

namespace zerosum::core {

class LwpTracker {
 public:
  LwpTracker(const procfs::ProcFs& fs, int pid);

  /// Classification hints.  Explicit hints (the monitor announcing its own
  /// tid) take precedence over OMPT tids, which take precedence over
  /// name-based heuristics.
  void hintType(int tid, LwpType type);
  void addOmpTids(const std::set<int>& tids);

  /// Takes one sample of every live LWP.  Threads that vanished since the
  /// last period are kept in the records with alive=false; threads that
  /// appear are classified and begin their history.
  void sample(double timeSeconds);

  [[nodiscard]] const std::map<int, LwpRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t liveCount() const;

 private:
  [[nodiscard]] LwpType classify(int tid, const std::string& comm) const;

  const procfs::ProcFs& fs_;
  int pid_;
  std::map<int, LwpRecord> records_;
  std::map<int, LwpType> typeHints_;
  std::set<int> ompTids_;

  // Reused across sample() calls so the steady state allocates nothing:
  // the tid listing, the raw /proc file bytes, and the parsed structs
  // all keep their capacity period to period.
  std::vector<int> tidsScratch_;
  std::vector<int> seenScratch_;
  std::string bufScratch_;
  procfs::TaskStat statScratch_;
  procfs::ProcStatus statusScratch_;
};

}  // namespace zerosum::core
