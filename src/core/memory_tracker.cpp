#include "core/memory_tracker.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace zerosum::core {

MemoryTracker::MemoryTracker(const procfs::ProcFs& fs, int pid,
                             double warnFraction)
    : fs_(fs), pid_(pid), warnFraction_(warnFraction) {}

void MemoryTracker::sample(double timeSeconds) {
  fs_.readMeminfoInto(bufScratch_);
  procfs::parseMeminfoInto(bufScratch_, memScratch_);
  fs_.readProcessStatusInto(pid_, bufScratch_);
  procfs::parseStatusInto(bufScratch_, statusScratch_);
  const procfs::MemInfo& mem = memScratch_;
  const procfs::ProcStatus& status = statusScratch_;

  MemSample s;
  s.timeSeconds = timeSeconds;
  s.memTotalKb = mem.totalKb;
  s.memFreeKb = mem.freeKb;
  s.memAvailableKb = mem.availableKb;
  s.processRssKb = status.vmRssKb;
  s.processHwmKb = status.vmHwmKb;
  samples_.push_back(s);
  peakRssKb_ = std::max(peakRssKb_, status.vmRssKb);

  if (mem.totalKb == 0) {
    return;
  }
  const double usedFraction =
      1.0 - static_cast<double>(mem.availableKb) /
                static_cast<double>(mem.totalKb);
  const bool low = usedFraction >= warnFraction_;
  if (low && !inLowMemory_) {
    MemoryEvent event;
    event.timeSeconds = timeSeconds;
    event.usedFraction = usedFraction;
    const std::uint64_t usedKb = mem.totalKb - mem.availableKb;
    event.attributedToProcess =
        usedKb > 0 && status.vmRssKb * 2 >= usedKb;
    event.description =
        "node memory " + strings::fixed(usedFraction * 100.0, 1) +
        "% used; process RSS " + std::to_string(status.vmRssKb) + " kB of " +
        std::to_string(usedKb) + " kB used — likely " +
        (event.attributedToProcess ? "the application itself"
                                   : "external consumption");
    events_.push_back(std::move(event));
  }
  inLowMemory_ = low;
}

}  // namespace zerosum::core
