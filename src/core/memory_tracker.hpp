// MemoryTracker: node and process memory watch (paper §3.5).
//
// Samples /proc/meminfo alongside the process VmRSS so an out-of-memory
// condition can be *attributed*: did the application processes consume the
// node, or did something external (another job, a system service)?
#pragma once

#include <string>
#include <vector>

#include "core/records.hpp"
#include "procfs/procfs.hpp"

namespace zerosum::core {

/// A low-memory observation with attribution.
struct MemoryEvent {
  double timeSeconds = 0.0;
  /// Fraction of node memory in use when the event fired.
  double usedFraction = 0.0;
  /// True when the monitored process's own RSS accounts for a majority of
  /// the shortfall-relevant consumption on this node view.
  bool attributedToProcess = false;
  std::string description;
};

class MemoryTracker {
 public:
  /// `warnFraction` — used-memory fraction that triggers a MemoryEvent.
  MemoryTracker(const procfs::ProcFs& fs, int pid, double warnFraction);

  void sample(double timeSeconds);

  [[nodiscard]] const std::vector<MemSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] const std::vector<MemoryEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t peakRssKb() const { return peakRssKb_; }

 private:
  const procfs::ProcFs& fs_;
  int pid_;
  double warnFraction_;
  bool inLowMemory_ = false;  // edge-trigger events, don't repeat each period
  std::uint64_t peakRssKb_ = 0;
  std::vector<MemSample> samples_;
  std::vector<MemoryEvent> events_;
  // Reused across sample() calls (zero-allocation steady state).
  std::string bufScratch_;
  procfs::MemInfo memScratch_;
  procfs::ProcStatus statusScratch_;
};

}  // namespace zerosum::core
