#include "core/monitor.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "openmp/ompt.hpp"
#include "trace/trace.hpp"

namespace zerosum::core {

MonitorSession::MonitorSession(Config config,
                               std::unique_ptr<procfs::ProcFs> fs,
                               ProcessIdentity identity,
                               gpu::DeviceList gpuDevices)
    : config_(config),
      fs_(std::move(fs)),
      identity_(identity),
      lwpGuard_("lwp", config.maxConsecutiveErrors, config.retryBackoffPeriods),
      hwtGuard_("hwt", config.maxConsecutiveErrors, config.retryBackoffPeriods),
      memGuard_("memory", config.maxConsecutiveErrors,
                config.retryBackoffPeriods),
      gpuGuard_("gpu", config.maxConsecutiveErrors, config.retryBackoffPeriods),
      progressGuard_("progress", config.maxConsecutiveErrors,
                     config.retryBackoffPeriods) {
  if (!fs_) {
    throw ConfigError("MonitorSession requires a ProcFs provider");
  }
  if (config_.trace || !config_.traceFile.empty()) {
    trace::TraceRecorder::instance().enable();
  }
  if (identity_.pid == 0) {
    identity_.pid = fs_->selfPid();
  }
  if (identity_.hostname.empty() || identity_.hostname == "localhost") {
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
      identity_.hostname = host;
    }
  }
  affinity_ = fs_->processStatus(identity_.pid).cpusAllowed;

  lwpTracker_ = std::make_unique<LwpTracker>(*fs_, identity_.pid);
  hwtTracker_ = std::make_unique<HwtTracker>(*fs_, affinity_);
  memTracker_ = std::make_unique<MemoryTracker>(*fs_, identity_.pid,
                                                config_.memWarnFraction);
  gpuTracker_ = std::make_unique<GpuTracker>(std::move(gpuDevices));
  progress_ = std::make_unique<ProgressDetector>(config_.deadlockPeriods);
  if (config_.heartbeat) {
    progress_->setHeartbeatSink(
        [](const std::string& line) { std::cout << line << '\n'; });
  }
  // Pick up OpenMP threads announced before the session existed.
  lwpTracker_->addOmpTids(openmp::ToolRegistry::instance().knownOmpTids());
}

MonitorSession::~MonitorSession() {
  if (running()) {
    try {
      stop();
    } catch (...) {  // NOLINT(bugprone-empty-catch) — destructor must not throw
    }
  }
}

void MonitorSession::addOmpTids(const std::set<int>& tids) {
  lwpTracker_->addOmpTids(tids);
}

void MonitorSession::attachCommRecorder(const mpisim::Recorder* recorder) {
  commRecorder_ = recorder;
}

void MonitorSession::setProgressSink(
    std::function<void(const std::string&)> sink) {
  progress_->setHeartbeatSink(std::move(sink));
}

void MonitorSession::setSampleCallback(
    std::function<void(const MonitorSession&, double)> callback) {
  sampleCallback_ = std::move(callback);
}

void MonitorSession::setAggHealthProvider(
    std::function<AggHealth()> provider) {
  aggHealthProvider_ = std::move(provider);
}

void MonitorSession::sampleOnce(double timeSeconds) {
  ZS_TRACE_SCOPE("zs.sample");
  // Each subsystem samples inside its own error boundary: a bad /proc
  // read degrades that subsystem for this period (and may quarantine it),
  // but the sample as a whole — and the application — carries on.  The
  // spans sit inside the guard lambdas, so a quarantined (skipped)
  // subsystem contributes no trace time — exactly what the overhead
  // attribution should see.
  bool degraded = false;
  degraded |= !lwpGuard_.runOnce([&] {
    ZS_TRACE_SCOPE("zs.sample.lwp");
    lwpTracker_->sample(timeSeconds);
  });
  degraded |= !hwtGuard_.runOnce([&] {
    ZS_TRACE_SCOPE("zs.sample.hwt");
    hwtTracker_->sample(timeSeconds);
  });
  if (config_.monitorMemory) {
    degraded |= !memGuard_.runOnce([&] {
      ZS_TRACE_SCOPE("zs.sample.memory");
      memTracker_->sample(timeSeconds);
    });
  }
  if (config_.monitorGpu) {
    degraded |= !gpuGuard_.runOnce([&] {
      ZS_TRACE_SCOPE("zs.sample.gpu");
      gpuTracker_->sample(timeSeconds);
    });
  }
  degraded |= !progressGuard_.runOnce([&] {
    ZS_TRACE_SCOPE("zs.sample.progress");
    progress_->observe(timeSeconds, lwpTracker_->records(),
                       config_.heartbeatPeriods);
  });
  duration_ = timeSeconds;
  ++samplesTaken_;
  if (degraded) {
    ++samplesDegraded_;
  }
  // Summed straight off the guards: building a full MonitorHealth here
  // would copy per-subsystem name/error strings every period.
  HealthSample hs;
  hs.timeSeconds = timeSeconds;
  hs.samplesTaken = samplesTaken_;
  hs.samplesDegraded = samplesDegraded_;
  hs.samplesDropped = samplesDropped_;
  hs.loopOverruns = loopOverruns_;
  const SubsystemGuard* guards[] = {&lwpGuard_, &hwtGuard_, &memGuard_,
                                    &gpuGuard_, &progressGuard_};
  for (const SubsystemGuard* guard : guards) {
    const SubsystemHealth& sh = guard->health();
    hs.subsystemsQuarantined += sh.quarantined ? 1 : 0;
    hs.quarantines += sh.quarantines;
    hs.recoveries += sh.recoveries;
  }
  if (aggHealthProvider_) {
    const AggHealth agg = aggHealthProvider_();
    hs.aggRecordsCoarsened = agg.recordsCoarsened;
    hs.aggDegradeTransitions = agg.degradeTransitions;
    hs.aggRecordsDropped = agg.recordsDropped;
    hs.aggDegradeStage = agg.degradeStage;
    hs.aggAckedPressure = agg.ackedPressure;
    hs.aggFaninDirect = agg.faninDirectSources;
    hs.aggFaninForwarded = agg.faninForwardedSources;
    hs.aggFaninMaxHops = agg.faninMaxHops;
  }
  healthSeries_.push_back(hs);
  ZS_TRACE_COUNTER("zs.samples_degraded",
                   static_cast<double>(samplesDegraded_));
  ZS_TRACE_COUNTER("zs.subsystems_quarantined",
                   static_cast<double>(hs.subsystemsQuarantined));
  if (sampleCallback_) {
    ZS_TRACE_SCOPE("zs.export.callback");
    try {
      sampleCallback_(*this, timeSeconds);
    } catch (const std::exception& e) {
      log::debug() << "sample callback threw: " << e.what();
    } catch (...) {
      log::debug() << "sample callback threw an unknown exception";
    }
  }
}

void MonitorSession::pinMonitorThread() {
  std::size_t target;
  if (config_.asyncCore >= 0) {
    target = static_cast<std::size_t>(config_.asyncCore);
  } else if (!affinity_.empty()) {
    // Paper default: the last hardware thread assigned to the process.
    target = affinity_.last();
  } else {
    return;
  }
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (target < CPU_SETSIZE) {
    CPU_SET(target, &mask);
    if (::pthread_setaffinity_np(::pthread_self(), sizeof(mask), &mask) != 0) {
      log::info() << "could not pin monitor thread to HWT " << target;
    }
  }
}

void MonitorSession::monitorLoop() {
  monitorTid_ = openmp::currentTid();
  lwpTracker_->hintType(monitorTid_, LwpType::kZeroSum);
  // Visible as the comm field in /proc — other tools (and our own
  // name-based classifier) can identify the monitor without hints.
  ::pthread_setname_np(::pthread_self(), "zerosum");
  pinMonitorThread();
  // Nothing may cross the thread boundary: std::terminate here would take
  // the monitored application down with the monitor.
  try {
    while (pacer_->waitPeriod(config_.period)) {
      const auto begin = std::chrono::steady_clock::now();
      try {
        sampleOnce(pacer_->elapsedSeconds());
      } catch (const std::exception& e) {
        ++samplesDropped_;
        log::warn() << "sample dropped: " << e.what();
      } catch (...) {
        ++samplesDropped_;
        log::warn() << "sample dropped: unknown exception";
      }
      if (std::chrono::steady_clock::now() - begin > config_.period) {
        ++loopOverruns_;
      }
    }
  } catch (const std::exception& e) {
    log::error() << "monitor loop aborted: " << e.what();
  } catch (...) {
    log::error() << "monitor loop aborted: unknown exception";
  }
}

void MonitorSession::start(std::unique_ptr<Pacer> pacer) {
  if (running()) {
    throw StateError("monitor already running");
  }
  if (manualMode_ || stopped_) {
    throw StateError("cannot start(): session was used in manual mode or "
                     "already stopped");
  }
  pacer_ = pacer ? std::move(pacer) : std::make_unique<RealPacer>();
  thread_ = std::thread([this] { monitorLoop(); });
}

void MonitorSession::stop() {
  if (!running()) {
    return;
  }
  pacer_->requestStop();
  thread_.join();
  // Final sample so short runs still produce a report.  stop() is called
  // from application shutdown paths; it must never throw.
  try {
    sampleOnce(pacer_->elapsedSeconds());
  } catch (const std::exception& e) {
    ++samplesDropped_;
    log::warn() << "final sample dropped: " << e.what();
  } catch (...) {
    ++samplesDropped_;
    log::warn() << "final sample dropped: unknown exception";
  }
  stopped_ = true;
}

void MonitorSession::sampleNow(double timeSeconds) {
  if (running()) {
    throw StateError("cannot sampleNow() while the async monitor runs");
  }
  if (stopped_) {
    throw StateError("session is stopped; results are frozen");
  }
  manualMode_ = true;
  sampleOnce(timeSeconds);
}

MonitorHealth MonitorSession::health() const {
  MonitorHealth out;
  out.samplesTaken = samplesTaken_;
  out.samplesDegraded = samplesDegraded_;
  out.samplesDropped = samplesDropped_;
  out.loopOverruns = loopOverruns_;
  out.subsystems = {lwpGuard_.health(), hwtGuard_.health()};
  if (config_.monitorMemory) {
    out.subsystems.push_back(memGuard_.health());
  }
  if (config_.monitorGpu) {
    out.subsystems.push_back(gpuGuard_.health());
  }
  out.subsystems.push_back(progressGuard_.health());
  return out;
}

std::vector<Finding> MonitorSession::analyze() const {
  ContentionAnalyzer analyzer;
  return analyzer.analyze(lwpTracker_->records(), hwtTracker_->records(),
                          affinity_, config_.jiffiesPerPeriod(), duration_);
}

std::string MonitorSession::report() const {
  ZS_TRACE_SCOPE("zs.report");
  ReportInput input;
  input.identity = identity_;
  input.durationSeconds = duration_;
  input.processAffinity = affinity_;
  input.lwps = &lwpTracker_->records();
  input.hwts = &hwtTracker_->records();
  if (config_.monitorGpu && !gpuTracker_->records().empty()) {
    input.gpus = &gpuTracker_->records();
  }
  if (config_.monitorMemory) {
    input.memory = &memTracker_->samples();
  }
  input.findings = analyze();
  const MonitorHealth health = this->health();
  input.health = &health;
  std::string rendered = Reporter::render(input);
  if (trace::TraceRecorder::instance().enabled()) {
    rendered += trace::renderSelfProfile();
  }
  return rendered;
}

void MonitorSession::writeLog(std::ostream& out) const {
  ZS_TRACE_SCOPE("zs.export.csv");
  out << report();
  if (!config_.csvExport) {
    return;
  }
  out << "\n=== CSV: LWP time series ===\n";
  CsvExporter::writeLwpSeries(out, lwpTracker_->records());
  out << "\n=== CSV: HWT time series ===\n";
  CsvExporter::writeHwtSeries(out, hwtTracker_->records());
  if (config_.monitorMemory) {
    out << "\n=== CSV: memory time series ===\n";
    CsvExporter::writeMemorySeries(out, memTracker_->samples());
  }
  if (config_.monitorGpu && !gpuTracker_->records().empty()) {
    out << "\n=== CSV: GPU time series ===\n";
    CsvExporter::writeGpuSeries(out, gpuTracker_->records());
  }
  if (commRecorder_ != nullptr) {
    out << "\n=== CSV: MPI point-to-point ===\n";
    CsvExporter::writeCommSeries(out, *commRecorder_);
  }
  out << "\n=== CSV: monitor health ===\n";
  CsvExporter::writeHealthSeries(out, healthSeries_);
}

std::string MonitorSession::writeLogFile() const {
  const std::string path = config_.logPrefix + "." +
                           std::to_string(identity_.rank) + "." +
                           std::to_string(identity_.pid) + ".log";
  std::ofstream out(path);
  if (!out) {
    throw StateError("cannot open log file " + path);
  }
  writeLog(out);
  return path;
}

}  // namespace zerosum::core
