// MonitorSession: the asynchronous monitor at the heart of ZeroSum
// (paper §3.1).
//
// One session monitors one process.  In *async* mode it spawns the
// background sampling thread (pinned, by default, to the last HWT of the
// process affinity) and samples every Config::period of wall time.  In
// *manual* mode the embedding harness calls sampleNow() between simulator
// advances, so the Tables 1-3 and Figures 6-7 experiments run in virtual
// time.  All observation flows through the ProcFs provider; the session
// never touches the OS directly.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <thread>

#include "common/clock.hpp"
#include "core/config.hpp"
#include "core/contention.hpp"
#include "core/csv_export.hpp"
#include "core/gpu_tracker.hpp"
#include "core/health.hpp"
#include "core/hwt_tracker.hpp"
#include "core/lwp_tracker.hpp"
#include "core/memory_tracker.hpp"
#include "core/progress.hpp"
#include "core/reporter.hpp"
#include "mpisim/recorder.hpp"

namespace zerosum::core {

class MonitorSession {
 public:
  /// `identity.pid == 0` autodetects from the provider's selfPid().
  MonitorSession(Config config, std::unique_ptr<procfs::ProcFs> fs,
                 ProcessIdentity identity = {},
                 gpu::DeviceList gpuDevices = {});
  ~MonitorSession();

  MonitorSession(const MonitorSession&) = delete;
  MonitorSession& operator=(const MonitorSession&) = delete;

  // --- Wiring (before start / between samples) ---------------------------
  /// Classifies these tids as OpenMP threads (OMPT callback or probe).
  void addOmpTids(const std::set<int>& tids);
  /// Attaches this rank's MPI point-to-point recorder for log export.
  void attachCommRecorder(const mpisim::Recorder* recorder);
  /// Receives heartbeat and warning lines (default: stdout when
  /// Config::heartbeat is set).
  void setProgressSink(std::function<void(const std::string&)> sink);
  /// Invoked after every sample with this session and the sample time —
  /// the hook the export publishers attach to (paper §3.3/§6).  In async
  /// mode it runs on the monitor thread.
  void setSampleCallback(
      std::function<void(const MonitorSession&, double)> callback);
  /// Supplies the aggregation client's degradation counters for the
  /// health time series (core cannot depend on the aggregator, so the
  /// export wiring injects a getter).  Called once per sample; must not
  /// throw.
  void setAggHealthProvider(std::function<AggHealth()> provider);

  // --- Async operation ----------------------------------------------------
  /// Spawns the monitor thread.  A custom pacer substitutes virtual time
  /// (used by tests); default is wall-clock.
  void start(std::unique_ptr<Pacer> pacer = nullptr);
  /// Stops the monitor thread, takes a final sample, freezes duration.
  void stop();
  [[nodiscard]] bool running() const { return thread_.joinable(); }
  /// Kernel tid of the monitor thread (0 until started).
  [[nodiscard]] int monitorTid() const { return monitorTid_; }

  // --- Manual operation ---------------------------------------------------
  /// Takes one sample at the given virtual time.  Must not be mixed with
  /// start()/stop().
  void sampleNow(double timeSeconds);

  // --- Results -------------------------------------------------------------
  [[nodiscard]] double durationSeconds() const { return duration_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const ProcessIdentity& identity() const { return identity_; }
  [[nodiscard]] const CpuSet& processAffinity() const { return affinity_; }
  [[nodiscard]] const LwpTracker& lwps() const { return *lwpTracker_; }
  [[nodiscard]] const HwtTracker& hwts() const { return *hwtTracker_; }
  [[nodiscard]] const MemoryTracker& memory() const { return *memTracker_; }
  [[nodiscard]] const GpuTracker& gpus() const { return *gpuTracker_; }
  [[nodiscard]] const ProgressDetector& progress() const { return *progress_; }

  /// Self-health snapshot: samples taken/degraded/dropped, loop overruns,
  /// and per-subsystem error/quarantine/recovery counters.  Call after
  /// stop() (or between manual samples); the monitor thread mutates the
  /// underlying counters while running.
  [[nodiscard]] MonitorHealth health() const;
  /// Per-sample health time series (one row per completed sampleOnce).
  [[nodiscard]] const std::vector<HealthSample>& healthSeries() const {
    return healthSeries_;
  }

  /// Runs the contention analyzer over everything sampled so far.
  [[nodiscard]] std::vector<Finding> analyze() const;

  /// The Listing-2-style report (includes findings).
  [[nodiscard]] std::string report() const;

  /// Report plus all CSV sections — the per-process log of §3.6.
  void writeLog(std::ostream& out) const;
  /// Writes the log to "<logPrefix>.<rank>.<pid>.log"; returns the path.
  std::string writeLogFile() const;

 private:
  void sampleOnce(double timeSeconds);
  void monitorLoop();
  void pinMonitorThread();

  Config config_;
  std::unique_ptr<procfs::ProcFs> fs_;
  ProcessIdentity identity_;
  CpuSet affinity_;

  std::unique_ptr<LwpTracker> lwpTracker_;
  std::unique_ptr<HwtTracker> hwtTracker_;
  std::unique_ptr<MemoryTracker> memTracker_;
  std::unique_ptr<GpuTracker> gpuTracker_;
  std::unique_ptr<ProgressDetector> progress_;

  // Error boundaries around each sampling subsystem ("do no harm").
  SubsystemGuard lwpGuard_;
  SubsystemGuard hwtGuard_;
  SubsystemGuard memGuard_;
  SubsystemGuard gpuGuard_;
  SubsystemGuard progressGuard_;
  std::uint64_t samplesTaken_ = 0;
  std::uint64_t samplesDegraded_ = 0;
  std::uint64_t samplesDropped_ = 0;
  std::uint64_t loopOverruns_ = 0;
  std::vector<HealthSample> healthSeries_;
  std::function<void(const MonitorSession&, double)> sampleCallback_;
  std::function<AggHealth()> aggHealthProvider_;
  const mpisim::Recorder* commRecorder_ = nullptr;

  std::unique_ptr<Pacer> pacer_;
  std::thread thread_;
  int monitorTid_ = 0;
  double duration_ = 0.0;
  bool manualMode_ = false;
  bool stopped_ = false;
};

}  // namespace zerosum::core
