#include "core/progress.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace zerosum::core {

void ProgressDetector::observe(double timeSeconds,
                               const std::map<int, LwpRecord>& lwps,
                               int heartbeatEvery) {
  ++samplesSeen_;

  std::size_t live = 0;
  std::size_t busy = 0;
  std::vector<int>& idleTids = idleTidsScratch_;
  idleTids.clear();
  bool anyProgress = false;
  for (const auto& [tid, record] : lwps) {
    if (!record.alive || record.samples.empty()) {
      continue;
    }
    // The monitor's own thread always makes progress; exclude it so the
    // detector judges the *application*.
    if (record.type == LwpType::kZeroSum) {
      continue;
    }
    ++live;
    const LwpSample& s = record.samples.back();
    if (s.utimeDelta + s.stimeDelta > 0) {
      ++busy;
      anyProgress = true;
    } else {
      idleTids.push_back(tid);
    }
  }

  if (sink_ && heartbeatEvery > 0 && samplesSeen_ % heartbeatEvery == 0) {
    std::ostringstream line;
    line << "[zerosum] heartbeat t=" << strings::fixed(timeSeconds, 1)
         << "s: " << live << " LWPs, " << busy << " making progress";
    sink_(line.str());
  }

  if (live == 0) {
    return;  // nothing to judge yet
  }
  if (anyProgress) {
    noProgressStreak_ = 0;
    stuck_ = false;
    return;
  }
  if (noProgressStreak_ == 0) {
    streakStart_ = timeSeconds;
  }
  ++noProgressStreak_;
  if (noProgressStreak_ >= stuckPeriods_ && !stuck_) {
    stuck_ = true;
    StuckReport report;
    report.sinceSeconds = streakStart_;
    report.atSeconds = timeSeconds;
    report.tids = idleTids;
    report.description =
        "no application LWP consumed CPU for " +
        std::to_string(noProgressStreak_) + " consecutive periods (since t=" +
        strings::fixed(streakStart_, 1) + "s) — possible deadlock";
    reports_.push_back(std::move(report));
    if (sink_) {
      sink_("[zerosum] WARNING: " + reports_.back().description);
    }
  }
}

}  // namespace zerosum::core
