// Progress detection (paper §3.3): a positive heartbeat to stdout, plus the
// stuck-progress heuristic the paper sketches as future work — if every
// application LWP shows no CPU progress and a sleeping state for several
// consecutive periods, the job is likely deadlocked and burning allocation.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/records.hpp"

namespace zerosum::core {

struct StuckReport {
  double sinceSeconds = 0.0;  ///< first period of the stuck window
  double atSeconds = 0.0;     ///< when the detector fired
  std::vector<int> tids;      ///< the no-progress LWPs
  std::string description;
};

class ProgressDetector {
 public:
  /// `stuckPeriods` — consecutive no-progress samples before reporting.
  explicit ProgressDetector(int stuckPeriods) : stuckPeriods_(stuckPeriods) {}

  /// Sink for heartbeat lines (default: nothing; the session wires stdout).
  void setHeartbeatSink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }

  /// Called once per sample with the current LWP records.  Emits a
  /// heartbeat every `heartbeatEvery` calls when a sink is set; tracks the
  /// no-progress window for deadlock suspicion.
  void observe(double timeSeconds, const std::map<int, LwpRecord>& lwps,
               int heartbeatEvery);

  [[nodiscard]] bool stuck() const { return stuck_; }
  [[nodiscard]] const std::vector<StuckReport>& reports() const {
    return reports_;
  }

 private:
  int stuckPeriods_;
  std::function<void(const std::string&)> sink_;
  int samplesSeen_ = 0;
  int noProgressStreak_ = 0;
  double streakStart_ = 0.0;
  bool stuck_ = false;
  std::vector<StuckReport> reports_;
  /// Reused across observe() calls (zero-allocation steady state).
  std::vector<int> idleTidsScratch_;
};

}  // namespace zerosum::core
