#include "core/records.hpp"

#include "common/error.hpp"

namespace zerosum::core {

namespace {
const CpuSet kEmptySet{};
}

double LwpRecord::avgUtimePerPeriod() const {
  if (samples.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& s : samples) {
    total += static_cast<double>(s.utimeDelta);
  }
  return total / static_cast<double>(samples.size());
}

double LwpRecord::avgStimePerPeriod() const {
  if (samples.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& s : samples) {
    total += static_cast<double>(s.stimeDelta);
  }
  return total / static_cast<double>(samples.size());
}

std::uint64_t LwpRecord::totalVoluntaryCtx() const {
  return samples.empty() ? 0 : samples.back().voluntaryCtx;
}

std::uint64_t LwpRecord::totalNonvoluntaryCtx() const {
  return samples.empty() ? 0 : samples.back().nonvoluntaryCtx;
}

std::uint64_t LwpRecord::totalUtime() const {
  return samples.empty() ? 0 : samples.back().utime;
}

std::uint64_t LwpRecord::totalStime() const {
  return samples.empty() ? 0 : samples.back().stime;
}

std::uint64_t LwpRecord::observedMigrations() const {
  std::uint64_t migrations = 0;
  int previous = -1;
  for (const auto& s : samples) {
    if (previous >= 0 && s.processor >= 0 && s.processor != previous) {
      ++migrations;
    }
    if (s.processor >= 0) {
      previous = s.processor;
    }
  }
  return migrations;
}

const CpuSet& LwpRecord::lastAffinity() const {
  if (samples.empty()) {
    return kEmptySet;
  }
  return samples.back().affinity;
}

bool LwpRecord::affinityChanged() const {
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (!(samples[i].affinity == samples[i - 1].affinity)) {
      return true;
    }
  }
  return false;
}

namespace {

double averageOf(const std::vector<HwtSample>& samples,
                 double HwtSample::* field) {
  if (samples.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& s : samples) {
    total += s.*field;
  }
  return total / static_cast<double>(samples.size());
}

}  // namespace

double HwtRecord::avgUserPct() const {
  return averageOf(samples, &HwtSample::userPct);
}

double HwtRecord::avgSystemPct() const {
  return averageOf(samples, &HwtSample::systemPct);
}

double HwtRecord::avgIdlePct() const {
  return averageOf(samples, &HwtSample::idlePct);
}

}  // namespace zerosum::core
