// Sample records: the time-series every tracker accumulates and every
// report/export consumes.  One sample per monitoring period per entity.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/cpuset.hpp"
#include "common/lwp_type.hpp"
#include "common/stats.hpp"
#include "gpu/metrics.hpp"

namespace zerosum::core {

/// One periodic observation of a light-weight process.
struct LwpSample {
  double timeSeconds = 0.0;
  char state = '?';
  // Cumulative kernel counters at sample time.
  std::uint64_t utime = 0;
  std::uint64_t stime = 0;
  std::uint64_t voluntaryCtx = 0;
  std::uint64_t nonvoluntaryCtx = 0;
  std::uint64_t minorFaults = 0;
  std::uint64_t majorFaults = 0;
  // Deltas since the previous sample of this LWP (first sample: since 0).
  std::uint64_t utimeDelta = 0;
  std::uint64_t stimeDelta = 0;
  int processor = -1;
  CpuSet affinity;
};

/// Full history of one LWP over the run.
struct LwpRecord {
  int tid = 0;
  std::string name;
  LwpType type = LwpType::kOther;
  /// The paper's "†": a Main thread that is also an OpenMP team member.
  bool alsoOpenMp = false;
  bool alive = true;  ///< false once the tid vanishes from /proc
  std::vector<LwpSample> samples;

  [[nodiscard]] double avgUtimePerPeriod() const;
  [[nodiscard]] double avgStimePerPeriod() const;
  [[nodiscard]] std::uint64_t totalVoluntaryCtx() const;
  [[nodiscard]] std::uint64_t totalNonvoluntaryCtx() const;
  [[nodiscard]] std::uint64_t totalUtime() const;
  [[nodiscard]] std::uint64_t totalStime() const;
  /// Number of observed last-CPU changes (a lower bound on migrations —
  /// exactly the quantity the paper reports for Table 2's unbound threads).
  [[nodiscard]] std::uint64_t observedMigrations() const;
  [[nodiscard]] const CpuSet& lastAffinity() const;
  /// True when the affinity list changed between any two samples.
  [[nodiscard]] bool affinityChanged() const;
};

/// One periodic observation of a hardware thread.
struct HwtSample {
  double timeSeconds = 0.0;
  // Cumulative jiffies.
  std::uint64_t user = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  // Period percentages (deltas normalized by their sum).
  double userPct = 0.0;
  double systemPct = 0.0;
  double idlePct = 0.0;
};

struct HwtRecord {
  std::size_t cpu = 0;
  std::vector<HwtSample> samples;

  [[nodiscard]] double avgUserPct() const;
  [[nodiscard]] double avgSystemPct() const;
  [[nodiscard]] double avgIdlePct() const;
};

/// One periodic observation of node and process memory.
struct MemSample {
  double timeSeconds = 0.0;
  std::uint64_t memTotalKb = 0;
  std::uint64_t memFreeKb = 0;
  std::uint64_t memAvailableKb = 0;
  std::uint64_t processRssKb = 0;
  std::uint64_t processHwmKb = 0;
};

/// Accumulated GPU observations: min/avg/max per metric (the Listing 2
/// table) plus the raw time series for CSV export.
struct GpuRecord {
  int visibleIndex = 0;
  int physicalIndex = 0;
  std::string model;
  std::map<gpu::Metric, stats::Accumulator> accumulators;
  std::vector<std::pair<double, gpu::Sample>> samples;
};

}  // namespace zerosum::core
