#include "core/reporter.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "gpu/metrics.hpp"

namespace zerosum::core {

namespace {

std::string lwpTypeLabel(const LwpRecord& record) {
  std::string label = lwpTypeName(record.type);
  if (record.alsoOpenMp) {
    label += ", OpenMP";
  }
  return label;
}

}  // namespace

std::string Reporter::render(const ReportInput& input) {
  std::ostringstream out;
  out << "Duration of execution: "
      << strings::fixed(input.durationSeconds, 3) << " s\n\n";

  out << "Process Summary:\n";
  out << "MPI " << strings::zeroPad(static_cast<std::uint64_t>(
                       input.identity.rank < 0 ? 0 : input.identity.rank), 3)
      << " - PID " << input.identity.pid << " - Node "
      << input.identity.hostname << " - CPUs allowed: ["
      << input.processAffinity.toList() << "]\n\n";

  if (input.lwps != nullptr) {
    out << "LWP (thread) Summary:\n";
    for (const auto& [tid, record] : *input.lwps) {
      out << "LWP " << tid << ": " << lwpTypeLabel(record)
          << " - stime: " << strings::fixed(record.avgStimePerPeriod(), 2)
          << ", utime: " << strings::fixed(record.avgUtimePerPeriod(), 2)
          << ", nv_ctx: " << record.totalNonvoluntaryCtx()
          << ", ctx: " << record.totalVoluntaryCtx() << ", CPUs: ["
          << record.lastAffinity().toList() << "]";
      if (!record.alive) {
        out << " (exited)";
      }
      out << '\n';
    }
    out << '\n';
  }

  if (input.hwts != nullptr) {
    out << renderHwtSection(*input.hwts) << '\n';
  }

  if (input.gpus != nullptr && !input.gpus->empty()) {
    out << renderGpuSection(*input.gpus) << '\n';
  }

  if (input.memory != nullptr && !input.memory->empty()) {
    const MemSample& last = input.memory->back();
    std::uint64_t peakRss = 0;
    for (const auto& s : *input.memory) {
      peakRss = std::max(peakRss, s.processRssKb);
    }
    out << "Memory Summary:\n";
    out << "Node total: " << last.memTotalKb << " kB, available at end: "
        << last.memAvailableKb << " kB\n";
    out << "Process RSS at end: " << last.processRssKb
        << " kB, peak: " << peakRss << " kB\n\n";
  }

  if (!input.findings.empty()) {
    out << "Contention / Configuration Findings:\n"
        << renderFindings(input.findings) << '\n';
  }

  if (input.health != nullptr) {
    out << renderHealthSection(*input.health) << '\n';
  }
  return out.str();
}

std::string Reporter::renderHealthSection(const MonitorHealth& health) {
  std::ostringstream out;
  out << "Monitor health:\n";
  out << "Samples: " << health.samplesTaken << " taken, "
      << health.samplesDegraded << " degraded, " << health.samplesDropped
      << " dropped; loop overruns: " << health.loopOverruns << '\n';
  for (const auto& s : health.subsystems) {
    out << strings::padRight(s.name, 10)
        << (s.quarantined ? "quarantined" : "ok") << " - errors: " << s.errors
        << ", quarantines: " << s.quarantines
        << ", recoveries: " << s.recoveries << ", skipped: " << s.skipped;
    if (!s.lastError.empty()) {
      out << " (last error: " << s.lastError << ")";
    }
    out << '\n';
  }
  return out.str();
}

std::string Reporter::renderLwpTable(const std::map<int, LwpRecord>& lwps) {
  std::ostringstream out;
  out << strings::padRight("LWP", 8) << strings::padRight("Type", 14)
      << strings::padLeft("stime", 8) << strings::padLeft("utime", 9)
      << strings::padLeft("nvctx", 9) << strings::padLeft("ctx", 9)
      << "  CPUs\n";
  for (const auto& [tid, record] : lwps) {
    out << strings::padRight(std::to_string(tid), 8)
        << strings::padRight(
               lwpTypeName(record.type) + (record.alsoOpenMp ? "+" : ""), 14)
        << strings::padLeft(strings::fixed(record.avgStimePerPeriod(), 2), 8)
        << strings::padLeft(strings::fixed(record.avgUtimePerPeriod(), 2), 9)
        << strings::padLeft(std::to_string(record.totalNonvoluntaryCtx()), 9)
        << strings::padLeft(std::to_string(record.totalVoluntaryCtx()), 9)
        << "  " << record.lastAffinity().toList() << '\n';
  }
  return out.str();
}

std::string Reporter::renderHwtSection(
    const std::map<std::size_t, HwtRecord>& hwts) {
  std::ostringstream out;
  out << "Hardware Summary:\n";
  for (const auto& [cpu, record] : hwts) {
    out << "CPU " << strings::zeroPad(cpu, 3)
        << " - idle: " << strings::fixed(record.avgIdlePct(), 2)
        << ", system: " << strings::fixed(record.avgSystemPct(), 2)
        << ", user: " << strings::fixed(record.avgUserPct(), 2) << '\n';
  }
  return out.str();
}

std::string Reporter::renderGpuSection(const std::vector<GpuRecord>& gpus) {
  std::ostringstream out;
  for (const auto& gpu : gpus) {
    out << "GPU " << gpu.visibleIndex << " - (metric: min avg max)";
    if (gpu.physicalIndex != gpu.visibleIndex) {
      out << "  [true device index " << gpu.physicalIndex << "]";
    }
    out << '\n';
    for (const gpu::Metric metric : gpu::kAllMetrics) {
      const auto it = gpu.accumulators.find(metric);
      if (it == gpu.accumulators.end()) {
        continue;
      }
      const auto& acc = it->second;
      out << "  " << strings::padRight(gpu::metricLabel(metric) + ":", 32)
          << strings::fixed(acc.min(), 6) << ' '
          << strings::fixed(acc.mean(), 6) << ' '
          << strings::fixed(acc.max(), 6) << '\n';
    }
  }
  return out.str();
}

}  // namespace zerosum::core
