// Report rendering (paper §3.4): the end-of-run utilization report in the
// exact shape of Listing 2 — duration, process summary, LWP table, HWT
// table, GPU min/avg/max table — plus the compact tabular form used by the
// paper's Tables 1-3 and the contention findings section (§3.5).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/contention.hpp"
#include "core/health.hpp"
#include "core/memory_tracker.hpp"
#include "core/records.hpp"

namespace zerosum::core {

/// Who this process is within the job.
struct ProcessIdentity {
  int rank = 0;
  int worldSize = 1;
  int pid = 0;
  std::string hostname = "localhost";
};

struct ReportInput {
  ProcessIdentity identity;
  double durationSeconds = 0.0;
  CpuSet processAffinity;
  const std::map<int, LwpRecord>* lwps = nullptr;
  const std::map<std::size_t, HwtRecord>* hwts = nullptr;
  const std::vector<GpuRecord>* gpus = nullptr;          // optional
  const std::vector<MemSample>* memory = nullptr;        // optional
  std::vector<Finding> findings;                         // optional
  const MonitorHealth* health = nullptr;                 // optional
};

class Reporter {
 public:
  /// The full Listing-2-style report.
  [[nodiscard]] static std::string render(const ReportInput& input);

  /// The paper's table form (Tables 1-3): one row per LWP with columns
  /// LWP, Type, stime, utime, nvctx, ctx, CPUs.
  [[nodiscard]] static std::string renderLwpTable(
      const std::map<int, LwpRecord>& lwps);

  /// Hardware-only section (Figure 7's source data, aggregated).
  [[nodiscard]] static std::string renderHwtSection(
      const std::map<std::size_t, HwtRecord>& hwts);

  /// GPU min/avg/max section in Listing 2's format.
  [[nodiscard]] static std::string renderGpuSection(
      const std::vector<GpuRecord>& gpus);

  /// Monitor self-health: sample and per-subsystem degradation counters.
  [[nodiscard]] static std::string renderHealthSection(
      const MonitorHealth& health);
};

}  // namespace zerosum::core
