#include "core/signal_handler.hpp"

#include <execinfo.h>
#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstring>

namespace zerosum::core {

namespace {

constexpr std::array<int, 4> kSignals = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE};

std::atomic<bool> gInstalled{false};

void writeStderr(const char* text) {
  // write(2) is async-signal-safe; the return value is deliberately
  // ignored — there is no recovery path inside a crash handler.
  const ssize_t rc = ::write(STDERR_FILENO, text, std::strlen(text));
  (void)rc;
}

extern "C" void crashHandler(int signum) {
  writeStderr("\n[zerosum] fatal signal ");
  // Async-signal-safe integer rendering.
  char digits[16];
  int n = 0;
  int v = signum;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0 && n < 15);
  while (n > 0) {
    const ssize_t rc = ::write(STDERR_FILENO, &digits[--n], 1);
    (void)rc;
  }
  writeStderr(" — backtrace follows:\n");

  void* frames[64];
  const int depth = ::backtrace(frames, 64);
  ::backtrace_symbols_fd(frames, depth, STDERR_FILENO);

  // Restore default disposition and re-raise so the process terminates
  // with the original signal (visible to the scheduler / core dumps).
  ::signal(signum, SIG_DFL);
  ::raise(signum);
}

}  // namespace

void installCrashHandlers() {
  bool expected = false;
  if (!gInstalled.compare_exchange_strong(expected, true)) {
    return;
  }
  struct sigaction action{};
  action.sa_handler = crashHandler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;
  for (int sig : kSignals) {
    ::sigaction(sig, &action, nullptr);
  }
}

void removeCrashHandlers() {
  if (!gInstalled.exchange(false)) {
    return;
  }
  for (int sig : kSignals) {
    ::signal(sig, SIG_DFL);
  }
}

bool crashHandlersInstalled() { return gInstalled.load(); }

}  // namespace zerosum::core
