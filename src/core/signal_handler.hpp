// Crash backtrace handler (paper §3.1): optionally installed at
// initialization to report a backtrace on segmentation violation, bus
// error, or abnormal abort, then re-raise with default disposition so the
// exit status is preserved for the job scheduler.
#pragma once

namespace zerosum::core {

/// Installs handlers for SIGSEGV, SIGBUS, SIGABRT and SIGFPE.  Idempotent.
/// The handler writes a backtrace to stderr using only async-signal-safe
/// calls (backtrace_symbols_fd), then re-raises.
void installCrashHandlers();

/// Restores default dispositions (test hook).
void removeCrashHandlers();

/// True when installCrashHandlers() is active.
bool crashHandlersInstalled();

}  // namespace zerosum::core
