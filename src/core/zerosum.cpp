#include "core/zerosum.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "aggregator/catalog.hpp"
#include "aggregator/faulttransport.hpp"
#include "aggregator/tcp.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/signal_handler.hpp"
#include "export/perfstubs.hpp"
#include "export/publisher.hpp"
#include "procfs/faultfs.hpp"
#include "trace/chrome_export.hpp"
#include "trace/prometheus.hpp"
#include "trace/trace.hpp"

namespace zerosum {

namespace {

std::mutex gMutex;
std::unique_ptr<core::MonitorSession> gSession;

/// The aggregation export path (ZS_AGG_PORT): a MetricStream feeding a
/// SessionPublisher whose embedded aggregator::Client streams batches to
/// the daemon over loopback TCP.  Owned at file scope because the sample
/// callback runs on the monitor thread for the session's whole life.
exporter::MetricStream* gAggStream = nullptr;
std::unique_ptr<exporter::SessionPublisher> gAggPublisher;

/// ZS_AGG_CATALOG resolution: ask the catalog daemon for the node-level
/// daemon to feed (preferring one announced from this host) instead of
/// static ZS_AGG_HOST/ZS_AGG_PORT wiring.  Any failure — unreachable
/// catalog, garbage reply, no node entries — falls back to the static
/// endpoint; discovery must never be the reason monitoring is off.
std::pair<std::string, int> resolveAggEndpoint(
    const core::Config& cfg, const std::string& localHostname) {
  std::pair<std::string, int> endpoint{cfg.aggHost, cfg.aggPort};
  if (cfg.aggCatalog.empty()) {
    return endpoint;
  }
  const auto colon = cfg.aggCatalog.rfind(':');
  const std::string catalogHost = cfg.aggCatalog.substr(0, colon);
  const int catalogPort =
      std::atoi(cfg.aggCatalog.substr(colon + 1).c_str());
  aggregator::TcpTransport transport(catalogHost, catalogPort,
                                     cfg.aggTimeoutMs);
  const auto entries = aggregator::resolveCatalog(
      transport,
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); },
      100);
  if (!entries) {
    log::info() << "ZS_AGG_CATALOG " << cfg.aggCatalog
                << " unreachable; falling back to static endpoint";
    return endpoint;
  }
  const aggregator::CatalogEntry* chosen = nullptr;
  for (const auto& entry : *entries) {
    if (entry.role != aggregator::DaemonRole::kNode) {
      continue;
    }
    if (chosen == nullptr) {
      chosen = &entry;
    }
    if (entry.host == localHostname) {
      chosen = &entry;
      break;
    }
  }
  if (chosen != nullptr) {
    endpoint = {chosen->host, static_cast<int>(chosen->port)};
  }
  return endpoint;
}

void wireAggregation(core::MonitorSession& session) {
  const core::Config& cfg = session.config();
  const auto [aggHost, aggPort] =
      resolveAggEndpoint(cfg, session.identity().hostname);
  if (aggPort <= 0) {
    return;
  }
  static exporter::MetricStream stream;
  gAggStream = &stream;
  gAggPublisher = std::make_unique<exporter::SessionPublisher>(&stream);

  aggregator::Hello hello;
  hello.job = cfg.aggJob.empty() ? "default" : cfg.aggJob;
  hello.rank = session.identity().rank;
  hello.worldSize = session.identity().worldSize;
  hello.hostname = session.identity().hostname;
  hello.pid = session.identity().pid;
  aggregator::ClientOptions options;
  options.maxQueueRecords = static_cast<std::size_t>(cfg.aggQueueRecords);
  options.batchRecords = static_cast<std::size_t>(cfg.aggBatchRecords);
  options.batchAgeSeconds = static_cast<double>(cfg.aggBatchAgeMs) / 1000.0;
  options.heartbeatSeconds = 5.0;
  // ZS_AGG_FAULT_SPEC (normally unset) wraps the transport with the fault
  // injector — the aggregation analogue of ZS_FAULT_SPEC on the provider.
  gAggPublisher->attachAggregator(std::make_unique<aggregator::Client>(
      aggregator::wrapTransportFaultsFromEnv(
          std::make_unique<aggregator::TcpTransport>(aggHost, aggPort,
                                                     cfg.aggTimeoutMs)),
      hello, options));
  session.setSampleCallback(
      [](const core::MonitorSession& s, double timeSeconds) {
        gAggPublisher->publish(s, timeSeconds);
      });
  // Fold the client's degradation counters into the health time series.
  session.setAggHealthProvider([]() -> core::AggHealth {
    core::AggHealth agg;
    if (gAggPublisher != nullptr) {
      if (const auto* client = gAggPublisher->aggregatorClient()) {
        const auto& counters = client->counters();
        agg.recordsCoarsened = counters.recordsCoarsened;
        agg.degradeTransitions = counters.degradeTransitions;
        agg.recordsDropped = counters.recordsDropped;
        agg.degradeStage = static_cast<int>(client->level());
        agg.ackedPressure = static_cast<int>(client->pressure());
      }
    }
    return agg;
  });
}

void closeAggregation(const core::MonitorSession& session) {
  if (!gAggPublisher) {
    return;
  }
  const auto client =
      gAggPublisher->closeAggregator(session.durationSeconds());
  if (client != nullptr && client->counters().recordsDropped > 0) {
    log::info() << "aggregation client dropped "
                << client->counters().recordsDropped
                << " record(s) (daemon slow or absent)";
  }
  gAggPublisher.reset();
  gAggStream = nullptr;
}

/// Final telemetry push at shutdown (paper §6): a registered ToolApi
/// backend receives the run's identity as metadata plus the monitor's
/// own health counters, and — when tracing is on — the aggregated
/// self-instrumentation statistics.
void flushFinalTelemetry(const core::MonitorSession& session) {
  auto& api = exporter::ToolApi::instance();
  const auto& id = session.identity();
  api.metadata("rank", std::to_string(id.rank));
  api.metadata("hostname", id.hostname);
  api.metadata("pid", std::to_string(id.pid));
  api.metadata("period_ms",
               std::to_string(session.config().period.count()));
  api.metadata("duration_s",
               std::to_string(session.durationSeconds()));
  const core::MonitorHealth health = session.health();
  api.sampleCounter("zs.samples_taken",
                    static_cast<double>(health.samplesTaken));
  api.sampleCounter("zs.samples_degraded",
                    static_cast<double>(health.samplesDegraded));
  api.sampleCounter("zs.samples_dropped",
                    static_cast<double>(health.samplesDropped));
  api.sampleCounter("zs.loop_overruns",
                    static_cast<double>(health.loopOverruns));
  trace::flushToToolApi();
}

/// Writes the Chrome trace_event file when requested.  The path comes
/// from the session's Config; the ZS_TRACE_FILE environment variable is
/// the fallback for sessions built from a hand-rolled Config (quickstart
/// style) rather than Config::fromEnv().
void writeTraceFileIfRequested(const core::MonitorSession& session) {
  std::string path = session.config().traceFile;
  if (path.empty()) {
    path = env::getString("ZS_TRACE_FILE", "");
  }
  if (path.empty() || !trace::TraceRecorder::instance().enabled()) {
    return;
  }
  const auto& id = session.identity();
  const std::map<std::string, std::string> metadata = {
      {"rank", std::to_string(id.rank)},
      {"hostname", id.hostname},
      {"pid", std::to_string(id.pid)},
  };
  try {
    const std::size_t events =
        trace::writeChromeTraceFile(path, "zerosum", metadata);
    log::info() << "wrote " << events << " trace events to " << path;
  } catch (const Error& e) {
    log::warn() << "could not write trace file: " << e.what();
  }
}

/// Writes the final MetricsRegistry as a JSON snapshot (ZS_METRICS_FILE)
/// — the artifact `zerosum-post --prom-dump` renders to Prometheus text,
/// so offline runs and live /metrics scrapes share one exposition.
void writeMetricsFileIfRequested(const core::MonitorSession& session) {
  std::string path = session.config().metricsFile;
  if (path.empty()) {
    path = env::getString("ZS_METRICS_FILE", "");
  }
  if (path.empty()) {
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    log::warn() << "could not open metrics file " << path;
    return;
  }
  trace::writeMetricsJson(out, trace::MetricsRegistry::instance().snapshot());
  log::info() << "wrote metrics snapshot to " << path;
}

}  // namespace

core::MonitorSession& initialize(core::ProcessIdentity identity) {
  return initialize(core::Config::fromEnv(), identity);
}

core::MonitorSession& initialize(core::Config config,
                                 core::ProcessIdentity identity,
                                 gpu::DeviceList devices) {
  std::lock_guard<std::mutex> lock(gMutex);
  if (gSession) {
    throw StateError("zerosum::initialize called twice");
  }
  if (config.signalHandler) {
    core::installCrashHandlers();
  }
  // ZS_FAULT_SPEC (normally unset) wraps the provider with the fault
  // injector, so the degradation machinery can be exercised in situ.
  gSession = std::make_unique<core::MonitorSession>(
      config, procfs::wrapFaultsFromEnv(procfs::makeRealProcFs()), identity,
      std::move(devices));
  wireAggregation(*gSession);
  gSession->start();
  return *gSession;
}

core::MonitorSession* session() {
  std::lock_guard<std::mutex> lock(gMutex);
  return gSession.get();
}

bool initialized() { return session() != nullptr; }

std::string finalize() {
  std::unique_ptr<core::MonitorSession> owned;
  {
    std::lock_guard<std::mutex> lock(gMutex);
    owned = std::move(gSession);
  }
  if (!owned) {
    return {};
  }
  owned->stop();
  closeAggregation(*owned);
  std::string report = owned->report();
  try {
    owned->writeLogFile();
  } catch (const Error& e) {
    log::warn() << "could not write log file: " << e.what();
  }
  flushFinalTelemetry(*owned);
  writeTraceFileIfRequested(*owned);
  writeMetricsFileIfRequested(*owned);
  return report;
}

namespace {

/// The library-constructor analogue of the LD_PRELOAD static-initializer
/// path (§3.1): opt-in so that merely linking the library never changes
/// behaviour.
struct AutoInit {
  AutoInit() {
    try {
      if (env::getBool("ZS_AUTO_INIT", false)) {
        initialize();
      }
    } catch (const std::exception& e) {
      log::error() << "auto-initialization failed: " << e.what();
    }
  }
};

[[maybe_unused]] const AutoInit gAutoInit;

}  // namespace

}  // namespace zerosum
