#include "core/zerosum.hpp"

#include <mutex>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/signal_handler.hpp"
#include "procfs/faultfs.hpp"

namespace zerosum {

namespace {

std::mutex gMutex;
std::unique_ptr<core::MonitorSession> gSession;

}  // namespace

core::MonitorSession& initialize(core::ProcessIdentity identity) {
  return initialize(core::Config::fromEnv(), identity);
}

core::MonitorSession& initialize(core::Config config,
                                 core::ProcessIdentity identity,
                                 gpu::DeviceList devices) {
  std::lock_guard<std::mutex> lock(gMutex);
  if (gSession) {
    throw StateError("zerosum::initialize called twice");
  }
  if (config.signalHandler) {
    core::installCrashHandlers();
  }
  // ZS_FAULT_SPEC (normally unset) wraps the provider with the fault
  // injector, so the degradation machinery can be exercised in situ.
  gSession = std::make_unique<core::MonitorSession>(
      config, procfs::wrapFaultsFromEnv(procfs::makeRealProcFs()), identity,
      std::move(devices));
  gSession->start();
  return *gSession;
}

core::MonitorSession* session() {
  std::lock_guard<std::mutex> lock(gMutex);
  return gSession.get();
}

bool initialized() { return session() != nullptr; }

std::string finalize() {
  std::unique_ptr<core::MonitorSession> owned;
  {
    std::lock_guard<std::mutex> lock(gMutex);
    owned = std::move(gSession);
  }
  if (!owned) {
    return {};
  }
  owned->stop();
  std::string report = owned->report();
  try {
    owned->writeLogFile();
  } catch (const Error& e) {
    log::warn() << "could not write log file: " << e.what();
  }
  return report;
}

namespace {

/// The library-constructor analogue of the LD_PRELOAD static-initializer
/// path (§3.1): opt-in so that merely linking the library never changes
/// behaviour.
struct AutoInit {
  AutoInit() {
    try {
      if (env::getBool("ZS_AUTO_INIT", false)) {
        initialize();
      }
    } catch (const std::exception& e) {
      log::error() << "auto-initialization failed: " << e.what();
    }
  }
};

[[maybe_unused]] const AutoInit gAutoInit;

}  // namespace

}  // namespace zerosum
