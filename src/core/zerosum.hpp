// ZeroSum public facade.
//
// The paper's tool injects itself with LD_PRELOAD and initializes from a
// static constructor or a __libc_start_main wrapper (§3.1).  As a linkable
// library this reproduction exposes the same lifecycle explicitly:
//
//   #include "core/zerosum.hpp"
//   int main() {
//     zerosum::initialize();            // ZS_* env config, live /proc
//     ... application ...
//     std::cout << zerosum::finalize(); // report (rank 0 prints to stdout)
//   }
//
// plus an opt-in auto-initialization path (export ZS_AUTO_INIT=1) that runs
// from a library constructor — the closest safe analogue of the preload
// trick inside a normal link step.
#pragma once

#include <memory>
#include <string>

#include "core/monitor.hpp"

namespace zerosum {

/// Creates and starts the process-wide monitor session over the live
/// /proc, with configuration from the ZS_* environment.  Installs the
/// crash handlers when Config::signalHandler is set.  Throws StateError if
/// already initialized.
core::MonitorSession& initialize(core::ProcessIdentity identity = {});

/// Same, but with an explicit configuration and (optionally) GPU devices.
core::MonitorSession& initialize(core::Config config,
                                 core::ProcessIdentity identity,
                                 gpu::DeviceList devices = {});

/// The active session; nullptr before initialize()/after finalize().
core::MonitorSession* session();

/// True between initialize() and finalize().
bool initialized();

/// Stops monitoring, writes the per-process log file, and returns the
/// report text (the paper's rank-0 stdout summary).  No-op empty string if
/// never initialized.
std::string finalize();

}  // namespace zerosum
