#include "export/perfstubs.hpp"

namespace zerosum::exporter {

ToolApi& ToolApi::instance() {
  static ToolApi api;
  return api;
}

void ToolApi::registerBackend(std::shared_ptr<ToolBackend> backend) {
  std::lock_guard<std::mutex> lock(mutex_);
  backend_ = std::move(backend);
}

void ToolApi::deregisterBackend() {
  std::lock_guard<std::mutex> lock(mutex_);
  backend_.reset();
}

bool ToolApi::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backend_ != nullptr;
}

void ToolApi::timerStart(const std::string& name) {
  std::shared_ptr<ToolBackend> backend;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    backend = backend_;
  }
  if (backend) {
    backend->timerStart(name);
  }
}

void ToolApi::timerStop(const std::string& name) {
  std::shared_ptr<ToolBackend> backend;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    backend = backend_;
  }
  if (backend) {
    backend->timerStop(name);
  }
}

void ToolApi::sampleCounter(const std::string& name, double value) {
  std::shared_ptr<ToolBackend> backend;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    backend = backend_;
  }
  if (backend) {
    backend->sampleCounter(name, value);
  }
}

void ToolApi::metadata(const std::string& key, const std::string& value) {
  std::shared_ptr<ToolBackend> backend;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    backend = backend_;
  }
  if (backend) {
    backend->metadata(key, value);
  }
}

void RecordingBackend::timerStart(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++timers_[name].starts;
}

void RecordingBackend::timerStop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++timers_[name].stops;
}

void RecordingBackend::sampleCounter(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name].push_back(value);
}

void RecordingBackend::metadata(const std::string& key,
                                const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  metadata_[key] = value;
}

std::map<std::string, RecordingBackend::TimerStats>
RecordingBackend::timers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timers_;
}

std::map<std::string, std::vector<double>> RecordingBackend::counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::map<std::string, std::string> RecordingBackend::metadataMap() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metadata_;
}

}  // namespace zerosum::exporter
