// PerfStubs-style tool interface (paper §6: "interfaces to ZeroSum could
// make its data accessible to application performance tools like TAU.
// Caliper or PerfStubs would be a good candidate for this purpose").
//
// PerfStubs is a header-only shim: the application (or here, the monitor)
// calls timer/counter functions that resolve to a registered tool at
// runtime, or to nothing.  This reproduction provides the same contract:
// a process-global ToolApi with timer start/stop and counter sampling,
// and a pluggable backend.  ZeroSum publishes its per-period metrics as
// counters; a TAU-like tool (or the bundled recording backend used in
// tests) registers to receive them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace zerosum::exporter {

/// The backend a performance tool registers.
class ToolBackend {
 public:
  virtual ~ToolBackend() = default;
  virtual void timerStart(const std::string& name) = 0;
  virtual void timerStop(const std::string& name) = 0;
  virtual void sampleCounter(const std::string& name, double value) = 0;
  /// Free-form metadata ("hostname", "affinity", ...).
  virtual void metadata(const std::string& key, const std::string& value) = 0;
};

/// Process-global dispatch.  All calls are no-ops until a backend
/// registers (the PerfStubs "dormant" behaviour — zero cost when no tool
/// is attached beyond one atomic load).
class ToolApi {
 public:
  static ToolApi& instance();

  void registerBackend(std::shared_ptr<ToolBackend> backend);
  void deregisterBackend();
  [[nodiscard]] bool active() const;

  void timerStart(const std::string& name);
  void timerStop(const std::string& name);
  void sampleCounter(const std::string& name, double value);
  void metadata(const std::string& key, const std::string& value);

 private:
  ToolApi() = default;
  mutable std::mutex mutex_;
  std::shared_ptr<ToolBackend> backend_;
};

/// RAII timer against the global api.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name) : name_(std::move(name)) {
    ToolApi::instance().timerStart(name_);
  }
  ~ScopedTimer() { ToolApi::instance().timerStop(name_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
};

/// A bundled backend that records everything (the test double, and a
/// usable in-memory sink for post-run inspection).
class RecordingBackend final : public ToolBackend {
 public:
  struct TimerStats {
    std::uint64_t starts = 0;
    std::uint64_t stops = 0;
  };

  void timerStart(const std::string& name) override;
  void timerStop(const std::string& name) override;
  void sampleCounter(const std::string& name, double value) override;
  void metadata(const std::string& key, const std::string& value) override;

  [[nodiscard]] std::map<std::string, TimerStats> timers() const;
  [[nodiscard]] std::map<std::string, std::vector<double>> counters() const;
  [[nodiscard]] std::map<std::string, std::string> metadataMap() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TimerStats> timers_;
  std::map<std::string, std::vector<double>> counters_;
  std::map<std::string, std::string> metadata_;
};

}  // namespace zerosum::exporter
