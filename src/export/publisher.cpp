#include "export/publisher.hpp"

#include "common/error.hpp"
#include "export/perfstubs.hpp"
#include "gpu/metrics.hpp"
#include "trace/trace.hpp"

namespace zerosum::exporter {

namespace {

/// True when the sample was taken in the current period (records carry
/// the timestamp the tracker stamped them with).
bool isCurrent(double sampleTime, double now) {
  return sampleTime >= now - 1e-9;
}

}  // namespace

SessionPublisher::SessionPublisher(MetricStream* stream, Options options)
    : stream_(stream), options_(options) {
  if (stream_ == nullptr) {
    throw ConfigError("SessionPublisher requires a MetricStream");
  }
}

void SessionPublisher::openStaging(const std::string& path) {
  staging_ = std::make_unique<StagingWriter>(path);
}

void SessionPublisher::closeStaging() {
  if (staging_) {
    staging_->close();
    staging_.reset();
  }
}

void SessionPublisher::attachAggregator(
    std::unique_ptr<aggregator::Client> client) {
  if (client == nullptr) {
    throw ConfigError("attachAggregator requires a client");
  }
  aggregator_ = std::move(client);
}

std::unique_ptr<aggregator::Client> SessionPublisher::closeAggregator(
    double timeSeconds) {
  if (aggregator_) {
    aggregator_->goodbye(timeSeconds);
  }
  return std::move(aggregator_);
}

Batch SessionPublisher::makeBatch(const core::MonitorSession& session,
                                  double timeSeconds) const {
  Batch batch;
  const std::string source =
      "rank." + std::to_string(session.identity().rank);
  auto add = [&](const std::string& name, double value) {
    Record record;
    record.timeSeconds = timeSeconds;
    record.source = source;
    record.name = name;
    record.value = value;
    batch.push_back(std::move(record));
  };

  if (options_.lwp) {
    for (const auto& [tid, record] : session.lwps().records()) {
      if (!record.alive || record.samples.empty() ||
          !isCurrent(record.samples.back().timeSeconds, timeSeconds)) {
        continue;
      }
      const auto& s = record.samples.back();
      const std::string prefix = "lwp." + std::to_string(tid) + ".";
      add(prefix + "utime_delta", static_cast<double>(s.utimeDelta));
      add(prefix + "stime_delta", static_cast<double>(s.stimeDelta));
      add(prefix + "vctx", static_cast<double>(s.voluntaryCtx));
      add(prefix + "nvctx", static_cast<double>(s.nonvoluntaryCtx));
      add(prefix + "processor", static_cast<double>(s.processor));
    }
  }
  if (options_.hwt) {
    for (const auto& [cpu, record] : session.hwts().records()) {
      if (record.samples.empty() ||
          !isCurrent(record.samples.back().timeSeconds, timeSeconds)) {
        continue;
      }
      const auto& s = record.samples.back();
      const std::string prefix = "hwt." + std::to_string(cpu) + ".";
      add(prefix + "user_pct", s.userPct);
      add(prefix + "system_pct", s.systemPct);
      add(prefix + "idle_pct", s.idlePct);
    }
  }
  if (options_.memory && !session.memory().samples().empty()) {
    const auto& s = session.memory().samples().back();
    if (isCurrent(s.timeSeconds, timeSeconds)) {
      add("mem.node_available_kb", static_cast<double>(s.memAvailableKb));
      add("mem.process_rss_kb", static_cast<double>(s.processRssKb));
    }
  }
  if (options_.gpu) {
    for (const auto& record : session.gpus().records()) {
      if (record.samples.empty() ||
          !isCurrent(record.samples.back().first, timeSeconds)) {
        continue;
      }
      const std::string prefix =
          "gpu." + std::to_string(record.visibleIndex) + ".";
      for (const auto& [metric, value] : record.samples.back().second) {
        add(prefix + gpu::metricLabel(metric), value);
      }
    }
  }
  return batch;
}

void SessionPublisher::publish(const core::MonitorSession& session,
                               double timeSeconds) {
  ZS_TRACE_SCOPE("zs.export.publish");
  const Batch batch = makeBatch(session, timeSeconds);
  stream_->publish(batch);

  if (options_.perfstubs && ToolApi::instance().active()) {
    for (const auto& record : batch) {
      ToolApi::instance().sampleCounter(record.name, record.value);
    }
  }

  if (staging_) {
    ZS_TRACE_SCOPE("zs.export.staging");
    staging_->beginStep();
    // One variable per record name: a 1x2 row [time, value]; downstream
    // readers reassemble series across steps.
    for (const auto& record : batch) {
      staging_->put(record.name, {record.timeSeconds, record.value});
    }
    staging_->endStep();
  }

  if (aggregator_) {
    ZS_TRACE_SCOPE("zs.export.aggregate");
    // The Hello carried the source identity; the wire records are just
    // (time, name, value).
    std::vector<aggregator::WireRecord> wire;
    wire.reserve(batch.size());
    for (const auto& record : batch) {
      wire.push_back({record.timeSeconds, record.name, record.value});
    }
    if (wire.empty()) {
      aggregator_->pump(timeSeconds);  // heartbeat path: keep flushing
    } else {
      aggregator_->enqueue(wire, timeSeconds);
    }
    const core::MonitorHealth health = session.health();
    aggregator::HealthUpdate update;
    update.samplesTaken = health.samplesTaken;
    update.samplesDegraded = health.samplesDegraded;
    update.samplesDropped = health.samplesDropped;
    update.loopOverruns = health.loopOverruns;
    update.quarantined =
        static_cast<std::uint32_t>(health.quarantinedCount());
    aggregator_->sendHealth(update, timeSeconds);
  }
  ++periods_;
}

}  // namespace zerosum::exporter
