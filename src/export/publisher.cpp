#include "export/publisher.hpp"

#include "common/error.hpp"
#include "export/perfstubs.hpp"
#include "gpu/metrics.hpp"
#include "trace/trace.hpp"

namespace zerosum::exporter {

namespace {

/// True when the sample was taken in the current period (records carry
/// the timestamp the tracker stamped them with).
bool isCurrent(double sampleTime, double now) {
  return sampleTime >= now - 1e-9;
}

}  // namespace

SessionPublisher::SessionPublisher(MetricStream* stream, Options options)
    : stream_(stream), options_(options) {
  if (stream_ == nullptr) {
    throw ConfigError("SessionPublisher requires a MetricStream");
  }
}

void SessionPublisher::openStaging(const std::string& path) {
  staging_ = std::make_unique<StagingWriter>(path);
}

void SessionPublisher::closeStaging() {
  if (staging_) {
    staging_->close();
    staging_.reset();
  }
}

void SessionPublisher::attachAggregator(
    std::unique_ptr<aggregator::Client> client) {
  if (client == nullptr) {
    throw ConfigError("attachAggregator requires a client");
  }
  aggregator_ = std::move(client);
}

std::unique_ptr<aggregator::Client> SessionPublisher::closeAggregator(
    double timeSeconds) {
  if (aggregator_) {
    aggregator_->goodbye(timeSeconds);
  }
  return std::move(aggregator_);
}

const SessionPublisher::LwpIds& SessionPublisher::lwpIdsFor(int tid) {
  const auto [it, inserted] = lwpIds_.try_emplace(tid);
  if (inserted) {
    const std::string prefix = "lwp." + std::to_string(tid) + ".";
    it->second.utime = names::intern(prefix + "utime_delta");
    it->second.stime = names::intern(prefix + "stime_delta");
    it->second.vctx = names::intern(prefix + "vctx");
    it->second.nvctx = names::intern(prefix + "nvctx");
    it->second.processor = names::intern(prefix + "processor");
  }
  return it->second;
}

const SessionPublisher::HwtIds& SessionPublisher::hwtIdsFor(
    std::size_t cpu) {
  const auto [it, inserted] = hwtIds_.try_emplace(cpu);
  if (inserted) {
    const std::string prefix = "hwt." + std::to_string(cpu) + ".";
    it->second.user = names::intern(prefix + "user_pct");
    it->second.system = names::intern(prefix + "system_pct");
    it->second.idle = names::intern(prefix + "idle_pct");
  }
  return it->second;
}

names::Id SessionPublisher::gpuIdFor(int visibleIndex, int metric) {
  const auto [it, inserted] =
      gpuIds_.try_emplace({visibleIndex, metric}, names::kInvalidId);
  if (inserted) {
    it->second = names::intern(
        "gpu." + std::to_string(visibleIndex) + "." +
        gpu::metricLabel(static_cast<gpu::Metric>(metric)));
  }
  return it->second;
}

const Batch& SessionPublisher::makeBatch(const core::MonitorSession& session,
                                         double timeSeconds) {
  Batch& batch = batchScratch_;
  batch.clear();
  const std::int32_t rank = session.identity().rank;
  if (!sourceCached_ || sourceRank_ != rank) {
    sourceId_ = names::intern("rank." + std::to_string(rank));
    sourceRank_ = rank;
    sourceCached_ = true;
  }
  auto add = [&](names::Id name, double value) {
    batch.push_back(Record{timeSeconds, sourceId_, name, value});
  };

  if (options_.lwp) {
    for (const auto& [tid, record] : session.lwps().records()) {
      if (!record.alive || record.samples.empty() ||
          !isCurrent(record.samples.back().timeSeconds, timeSeconds)) {
        continue;
      }
      const auto& s = record.samples.back();
      const LwpIds& ids = lwpIdsFor(tid);
      add(ids.utime, static_cast<double>(s.utimeDelta));
      add(ids.stime, static_cast<double>(s.stimeDelta));
      add(ids.vctx, static_cast<double>(s.voluntaryCtx));
      add(ids.nvctx, static_cast<double>(s.nonvoluntaryCtx));
      add(ids.processor, static_cast<double>(s.processor));
    }
  }
  if (options_.hwt) {
    for (const auto& [cpu, record] : session.hwts().records()) {
      if (record.samples.empty() ||
          !isCurrent(record.samples.back().timeSeconds, timeSeconds)) {
        continue;
      }
      const auto& s = record.samples.back();
      const HwtIds& ids = hwtIdsFor(cpu);
      add(ids.user, s.userPct);
      add(ids.system, s.systemPct);
      add(ids.idle, s.idlePct);
    }
  }
  if (options_.memory && !session.memory().samples().empty()) {
    const auto& s = session.memory().samples().back();
    if (isCurrent(s.timeSeconds, timeSeconds)) {
      if (memAvailableId_ == names::kInvalidId) {
        memAvailableId_ = names::intern("mem.node_available_kb");
        memRssId_ = names::intern("mem.process_rss_kb");
      }
      add(memAvailableId_, static_cast<double>(s.memAvailableKb));
      add(memRssId_, static_cast<double>(s.processRssKb));
    }
  }
  if (options_.gpu) {
    for (const auto& record : session.gpus().records()) {
      if (record.samples.empty() ||
          !isCurrent(record.samples.back().first, timeSeconds)) {
        continue;
      }
      for (const auto& [metric, value] : record.samples.back().second) {
        add(gpuIdFor(record.visibleIndex, static_cast<int>(metric)), value);
      }
    }
  }
  return batch;
}

void SessionPublisher::publish(const core::MonitorSession& session,
                               double timeSeconds) {
  ZS_TRACE_SCOPE("zs.export.publish");
  const Batch& batch = makeBatch(session, timeSeconds);
  stream_->publish(batch);

  if (options_.perfstubs && ToolApi::instance().active()) {
    for (const auto& record : batch) {
      // The ToolApi contract takes strings; nameScratch_ keeps its
      // capacity across records and periods.
      nameScratch_.assign(record.nameView());
      ToolApi::instance().sampleCounter(nameScratch_, record.value);
    }
  }

  if (staging_) {
    ZS_TRACE_SCOPE("zs.export.staging");
    staging_->beginStep();
    // One variable per record name: a 1x2 row [time, value]; downstream
    // readers reassemble series across steps.
    for (const auto& record : batch) {
      nameScratch_.assign(record.nameView());
      rowScratch_[0] = record.timeSeconds;
      rowScratch_[1] = record.value;
      staging_->put(nameScratch_, rowScratch_);
    }
    staging_->endStep();
  }

  if (aggregator_) {
    ZS_TRACE_SCOPE("zs.export.aggregate");
    // The Hello carried the source identity; the queued records are just
    // (time, interned-name-id, value) — the client materializes name
    // text when it encodes an outgoing frame.
    wireScratch_.clear();
    wireScratch_.reserve(batch.size());
    for (const auto& record : batch) {
      wireScratch_.push_back({record.timeSeconds, record.name, record.value});
    }
    if (wireScratch_.empty()) {
      aggregator_->pump(timeSeconds);  // heartbeat path: keep flushing
    } else {
      aggregator_->enqueueIds(wireScratch_, timeSeconds);
    }
    // Per-sample counters come from the health series (pushed by
    // sampleOnce before this callback runs) — session.health() builds an
    // allocating per-subsystem report and stays off the hot path.
    aggregator::HealthUpdate update;
    if (!session.healthSeries().empty()) {
      const core::HealthSample& hs = session.healthSeries().back();
      update.samplesTaken = hs.samplesTaken;
      update.samplesDegraded = hs.samplesDegraded;
      update.samplesDropped = hs.samplesDropped;
      update.loopOverruns = hs.loopOverruns;
      update.quarantined =
          static_cast<std::uint32_t>(hs.subsystemsQuarantined);
    }
    aggregator_->sendHealth(update, timeSeconds);
  }
  ++periods_;
}

}  // namespace zerosum::exporter
