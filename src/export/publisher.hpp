// SessionPublisher: the glue between the monitor and the export paths —
// after every sampling period it turns the newest observations into
// (a) a MetricStream batch (LDMS-style service feed),
// (b) PerfStubs counter samples (TAU-style tool feed), and
// (c) one staging step (the ADIOS2-style refactored log).
// Wire it with MonitorSession::setSampleCallback; in async mode the
// callback runs on the monitor thread, so all three sinks are
// thread-safe-by-construction (stream locks, ToolApi locks, the writer is
// owned by the publisher).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aggregator/client.hpp"
#include "common/interning.hpp"
#include "core/monitor.hpp"
#include "export/staging.hpp"
#include "export/stream.hpp"

namespace zerosum::exporter {

class SessionPublisher {
 public:
  struct Options {
    bool lwp = true;
    bool hwt = true;
    bool memory = true;
    bool gpu = true;
    /// Also push counters through the PerfStubs ToolApi when a tool
    /// backend is registered.
    bool perfstubs = false;
  };

  explicit SessionPublisher(MetricStream* stream)
      : SessionPublisher(stream, Options{}) {}
  SessionPublisher(MetricStream* stream, Options options);

  /// Adds an ADIOS2-style staging sink (one step per period).
  void openStaging(const std::string& path);
  void closeStaging();

  /// Attaches an aggregation client (paper §6: cross-process collection).
  /// Every published batch is also forwarded to the daemon, along with a
  /// per-period health update.  The client's bounded queue and drop
  /// counters guarantee a dead daemon cannot stall the publish path.
  void attachAggregator(std::unique_ptr<aggregator::Client> client);
  /// Final flush + kGoodbye; detaches the client and returns it (for
  /// counter inspection).  nullptr when none was attached.
  std::unique_ptr<aggregator::Client> closeAggregator(double timeSeconds);
  [[nodiscard]] aggregator::Client* aggregatorClient() {
    return aggregator_.get();
  }

  /// Publishes the observations taken at `timeSeconds`.  Designed as the
  /// MonitorSession sample callback.
  void publish(const core::MonitorSession& session, double timeSeconds);

  [[nodiscard]] std::uint64_t periodsPublished() const { return periods_; }

 private:
  /// Interned metric-name ids for one entity.  Built (with string
  /// concatenation) the first period an entity appears, then reused — the
  /// steady-state batch is assembled from ids alone.
  struct LwpIds {
    names::Id utime, stime, vctx, nvctx, processor;
  };
  struct HwtIds {
    names::Id user, system, idle;
  };

  /// Fills batchScratch_ (reused across periods) and returns it.
  const Batch& makeBatch(const core::MonitorSession& session,
                         double timeSeconds);
  [[nodiscard]] const LwpIds& lwpIdsFor(int tid);
  [[nodiscard]] const HwtIds& hwtIdsFor(std::size_t cpu);
  [[nodiscard]] names::Id gpuIdFor(int visibleIndex, int metric);

  MetricStream* stream_;
  Options options_;
  std::unique_ptr<StagingWriter> staging_;
  std::unique_ptr<aggregator::Client> aggregator_;
  std::uint64_t periods_ = 0;

  // --- Steady-state scratch + id caches (no allocation once warm) ---------
  Batch batchScratch_;
  std::vector<aggregator::IdRecord> wireScratch_;
  std::string nameScratch_;           ///< id -> text for string-taking sinks
  std::vector<double> rowScratch_{0.0, 0.0};  ///< staging [time, value] row
  names::Id sourceId_ = names::kInvalidId;
  bool sourceCached_ = false;
  std::int32_t sourceRank_ = 0;
  std::map<int, LwpIds> lwpIds_;
  std::map<std::size_t, HwtIds> hwtIds_;
  std::map<std::pair<int, int>, names::Id> gpuIds_;
  names::Id memAvailableId_ = names::kInvalidId;
  names::Id memRssId_ = names::kInvalidId;
};

}  // namespace zerosum::exporter
