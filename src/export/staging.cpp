#include "export/staging.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"

namespace zerosum::exporter {

namespace {

constexpr std::uint64_t kMagic = 0x5A53535447313ULL;  // "ZSSTG1"-ish
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kStepMarker = 0x53544550ULL;   // "STEP"
constexpr std::uint64_t kFooterMarker = 0x464F4F54ULL; // "FOOT"
constexpr std::uint64_t kMaxName = 4096;
constexpr std::uint64_t kMaxRows = 1ULL << 32;

void fullWrite(int fd, const void* data, std::size_t bytes,
               const char* what) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n <= 0) {
      throw StateError(std::string("staging write failed: ") + what);
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
}

void fullRead(int fd, void* data, std::size_t bytes, const char* what) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n < 0) {
      throw ParseError(std::string("staging read failed: ") + what);
    }
    if (n == 0) {
      throw ParseError(std::string("staging file truncated at: ") + what);
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
}

}  // namespace

// --- Writer ---------------------------------------------------------------

StagingWriter::StagingWriter(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    throw StateError("cannot create staging file " + path);
  }
  writeU64(kMagic);
  writeU64(kVersion);
}

StagingWriter::~StagingWriter() {
  try {
    close();
  } catch (...) {  // NOLINT(bugprone-empty-catch) — destructor must not throw
  }
}

void StagingWriter::writeU64(std::uint64_t value) {
  // Host order is little-endian on every supported target; fixed width.
  fullWrite(fd_, &value, sizeof(value), "u64");
}

void StagingWriter::writeString(const std::string& value) {
  writeU64(value.size());
  fullWrite(fd_, value.data(), value.size(), "string");
}

void StagingWriter::beginStep() {
  if (closed_) {
    throw StateError("staging writer is closed");
  }
  if (stepOpen_) {
    throw StateError("a staging step is already open");
  }
  stepOpen_ = true;
  pending_.clear();
}

void StagingWriter::put(const std::string& variable,
                        const VariableData& rows) {
  if (!stepOpen_) {
    throw StateError("put() outside beginStep/endStep");
  }
  if (variable.empty() || variable.size() > kMaxName) {
    throw StateError("bad staging variable name");
  }
  for (const auto& existing : pending_) {
    if (existing.name == variable) {
      throw StateError("duplicate variable '" + variable + "' in step");
    }
  }
  if (!rows.empty()) {
    const std::size_t width = rows.front().size();
    for (const auto& row : rows) {
      if (row.size() != width) {
        throw StateError("ragged rows for variable '" + variable + "'");
      }
    }
  }
  PendingVariable pv;
  pv.name = variable;
  pv.rows = rows;
  pending_.push_back(std::move(pv));
}

void StagingWriter::put(const std::string& variable,
                        const std::vector<double>& row) {
  put(variable, VariableData{row});
}

void StagingWriter::endStep() {
  if (!stepOpen_) {
    throw StateError("endStep() without beginStep()");
  }
  const off_t offset = ::lseek(fd_, 0, SEEK_CUR);
  if (offset < 0) {
    throw StateError("staging lseek failed");
  }
  stepOffsets_.push_back(static_cast<std::uint64_t>(offset));

  writeU64(kStepMarker);
  writeU64(stepOffsets_.size() - 1);  // step index
  writeU64(pending_.size());
  for (const auto& pv : pending_) {
    writeString(pv.name);
    writeU64(pv.rows.size());
    writeU64(pv.rows.empty() ? 0 : pv.rows.front().size());
    for (const auto& row : pv.rows) {
      fullWrite(fd_, row.data(), row.size() * sizeof(double), "row");
    }
  }
  pending_.clear();
  stepOpen_ = false;
}

void StagingWriter::close() {
  if (closed_) {
    return;
  }
  if (stepOpen_) {
    endStep();
  }
  const off_t footerStart = ::lseek(fd_, 0, SEEK_CUR);
  writeU64(kFooterMarker);
  writeU64(stepOffsets_.size());
  for (std::uint64_t offset : stepOffsets_) {
    writeU64(offset);
  }
  writeU64(static_cast<std::uint64_t>(footerStart));
  writeU64(kMagic);
  ::close(fd_);
  fd_ = -1;
  closed_ = true;
}

// --- Reader ---------------------------------------------------------------

StagingReader::StagingReader(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw NotFoundError("staging file " + path);
  }
  try {
    if (readU64() != kMagic || readU64() != kVersion) {
      throw ParseError("not a ZeroSum staging file: " + path);
    }
    // Trailer: footerStart + magic are the last 16 bytes.
    const off_t size = ::lseek(fd_, -16, SEEK_END);
    if (size < 0) {
      throw ParseError("staging file too short: " + path);
    }
    const std::uint64_t footerStart = readU64();
    if (readU64() != kMagic) {
      throw ParseError("staging trailer magic mismatch: " + path);
    }
    seekTo(footerStart);
    if (readU64() != kFooterMarker) {
      throw ParseError("staging footer marker mismatch: " + path);
    }
    const std::uint64_t steps = readU64();
    if (steps > kMaxRows) {
      throw ParseError("implausible staging step count");
    }
    stepOffsets_.reserve(steps);
    for (std::uint64_t i = 0; i < steps; ++i) {
      stepOffsets_.push_back(readU64());
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

StagingReader::~StagingReader() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::uint64_t StagingReader::readU64() {
  std::uint64_t value = 0;
  fullRead(fd_, &value, sizeof(value), "u64");
  return value;
}

std::string StagingReader::readString() {
  const std::uint64_t length = readU64();
  if (length > kMaxName) {
    throw ParseError("implausible staging string length");
  }
  std::string out(length, '\0');
  fullRead(fd_, out.data(), length, "string");
  return out;
}

void StagingReader::seekTo(std::uint64_t offset) {
  if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    throw ParseError("staging seek failed");
  }
}

std::map<std::string, VariableData> StagingReader::getStep(
    std::uint64_t step) {
  if (step >= stepOffsets_.size()) {
    throw NotFoundError("staging step " + std::to_string(step));
  }
  seekTo(stepOffsets_[step]);
  if (readU64() != kStepMarker) {
    throw ParseError("staging step marker mismatch");
  }
  if (readU64() != step) {
    throw ParseError("staging step index mismatch");
  }
  const std::uint64_t varCount = readU64();
  if (varCount > kMaxRows) {
    throw ParseError("implausible staging variable count");
  }
  std::map<std::string, VariableData> out;
  for (std::uint64_t v = 0; v < varCount; ++v) {
    const std::string name = readString();
    const std::uint64_t rows = readU64();
    const std::uint64_t width = readU64();
    if (rows > kMaxRows || width > kMaxRows) {
      throw ParseError("implausible staging dimensions");
    }
    VariableData data(rows, std::vector<double>(width));
    for (auto& row : data) {
      fullRead(fd_, row.data(), width * sizeof(double), "row");
    }
    out.emplace(name, std::move(data));
  }
  return out;
}

std::vector<std::string> StagingReader::variables(std::uint64_t step) {
  std::vector<std::string> out;
  for (const auto& [name, rows] : getStep(step)) {
    out.push_back(name);
  }
  return out;
}

VariableData StagingReader::get(std::uint64_t step,
                                const std::string& variable) {
  auto all = getStep(step);
  const auto it = all.find(variable);
  if (it == all.end()) {
    throw NotFoundError("staging variable '" + variable + "' in step " +
                        std::to_string(step));
  }
  return std::move(it->second);
}

}  // namespace zerosum::exporter
