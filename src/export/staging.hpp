// Step-based staging I/O — the paper's §6 plan to "refactor the log output
// to utilize the time-series I/O staging library ADIOS2".
//
// A self-contained binary container with ADIOS2's usage shape:
//   writer: beginStep() / put(variable, rows) / endStep() ... close()
//   reader: stepCount() / variables(step) / get(step, variable)
// Layout: a fixed header, append-only step blocks (each: step header,
// variable blocks of named double-rows), and a footer index of step
// offsets written at close so a reader can seek straight to any step.
// All integers little-endian fixed-width; the format is versioned and the
// reader validates magic/version/counts before trusting anything.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zerosum::exporter {

/// Rows of doubles under one variable name within a step.
using VariableData = std::vector<std::vector<double>>;

class StagingWriter {
 public:
  /// Creates/truncates the container file.  Throws StateError on I/O
  /// failure.
  explicit StagingWriter(const std::string& path);
  ~StagingWriter();

  StagingWriter(const StagingWriter&) = delete;
  StagingWriter& operator=(const StagingWriter&) = delete;

  /// Opens a new step.  Steps are numbered 0,1,2,... in call order.
  /// Throws StateError when a step is already open.
  void beginStep();
  /// Adds one variable to the open step.  Row widths within a variable
  /// must agree; a duplicate name within the step is an error.
  void put(const std::string& variable, const VariableData& rows);
  /// Convenience: single row.
  void put(const std::string& variable, const std::vector<double>& row);
  /// Seals the open step (flushes it to disk).
  void endStep();
  /// Writes the footer index and closes the file.  Idempotent; also runs
  /// from the destructor.
  void close();

  [[nodiscard]] std::uint64_t stepsWritten() const { return stepOffsets_.size(); }

 private:
  struct PendingVariable {
    std::string name;
    VariableData rows;
  };

  void writeU64(std::uint64_t value);
  void writeString(const std::string& value);

  std::string path_;
  int fd_ = -1;
  bool stepOpen_ = false;
  bool closed_ = false;
  std::vector<PendingVariable> pending_;
  std::vector<std::uint64_t> stepOffsets_;
};

class StagingReader {
 public:
  /// Opens and validates the container.  Throws ParseError on a corrupt
  /// or truncated file, NotFoundError when the file is missing.
  explicit StagingReader(const std::string& path);
  ~StagingReader();

  StagingReader(const StagingReader&) = delete;
  StagingReader& operator=(const StagingReader&) = delete;

  [[nodiscard]] std::uint64_t stepCount() const {
    return stepOffsets_.size();
  }
  /// Variable names present in a step, in file order.
  [[nodiscard]] std::vector<std::string> variables(std::uint64_t step);
  /// Reads one variable of one step; throws NotFoundError when absent.
  [[nodiscard]] VariableData get(std::uint64_t step,
                                 const std::string& variable);
  /// Reads a whole step at once.
  [[nodiscard]] std::map<std::string, VariableData> getStep(
      std::uint64_t step);

 private:
  [[nodiscard]] std::uint64_t readU64();
  [[nodiscard]] std::string readString();
  void seekTo(std::uint64_t offset);

  int fd_ = -1;
  std::vector<std::uint64_t> stepOffsets_;
};

}  // namespace zerosum::exporter
