#include "export/stream.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace zerosum::exporter {

int MetricStream::subscribe(SubscriberFn subscriber) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = std::make_shared<Subscriber>();
  entry->handle = nextHandle_++;
  entry->fn = std::move(subscriber);
  subscribers_.push_back(std::move(entry));
  return subscribers_.back()->handle;
}

void MetricStream::unsubscribe(int handle) {
  std::shared_ptr<Subscriber> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = std::find_if(
        subscribers_.begin(), subscribers_.end(),
        [handle](const auto& s) { return s->handle == handle; });
    if (it == subscribers_.end()) {
      return;
    }
    entry = *it;
    subscribers_.erase(it);
  }
  if (entry->callingThread.load() == std::this_thread::get_id()) {
    // Self-unsubscribe from inside the callback: this thread already
    // holds entry->callMutex in publish(), so flipping `active` here is
    // ordered correctly and re-locking would deadlock.
    entry->active = false;
    return;
  }
  // Block until any in-flight delivery on another thread drains, so the
  // caller may destroy captured state once we return.
  std::lock_guard<std::mutex> call(entry->callMutex);
  entry->active = false;
}

void MetricStream::publish(const Batch& batch) {
  // The snapshot buffer is reused across publishes (thread-local: any
  // thread may publish) so the steady state allocates nothing; copying
  // shared_ptrs only bumps refcounts.
  thread_local std::vector<std::shared_ptr<Subscriber>> snapshot;
  snapshot.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    records_ += batch.size();
    snapshot.assign(subscribers_.begin(), subscribers_.end());
  }
  std::vector<int> failed;  // stays unallocated until a subscriber throws
  for (const auto& subscriber : snapshot) {
    std::lock_guard<std::mutex> call(subscriber->callMutex);
    if (!subscriber->active) {
      continue;  // unsubscribed between the snapshot and now
    }
    subscriber->callingThread.store(std::this_thread::get_id());
    try {
      subscriber->fn(batch);
    } catch (const std::exception& e) {
      log::warn() << "metric subscriber " << subscriber->handle
                  << " threw (" << e.what() << "); dropping it";
      failed.push_back(subscriber->handle);
    }
    subscriber->callingThread.store(std::thread::id{});
  }
  for (int handle : failed) {
    unsubscribe(handle);
  }
}

std::size_t MetricStream::subscriberCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribers_.size();
}

std::uint64_t MetricStream::batchesPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::uint64_t MetricStream::recordsPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace zerosum::exporter
