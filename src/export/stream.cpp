#include "export/stream.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace zerosum::exporter {

int MetricStream::subscribe(SubscriberFn subscriber) {
  std::lock_guard<std::mutex> lock(mutex_);
  Subscriber entry;
  entry.handle = nextHandle_++;
  entry.fn = std::move(subscriber);
  subscribers_.push_back(std::move(entry));
  return subscribers_.back().handle;
}

void MetricStream::unsubscribe(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [handle](const Subscriber& s) {
                       return s.handle == handle;
                     }),
      subscribers_.end());
}

void MetricStream::publish(const Batch& batch) {
  std::vector<Subscriber> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    records_ += batch.size();
    snapshot = subscribers_;
  }
  std::vector<int> failed;
  for (const auto& subscriber : snapshot) {
    try {
      subscriber.fn(batch);
    } catch (const std::exception& e) {
      log::warn() << "metric subscriber " << subscriber.handle
                  << " threw (" << e.what() << "); dropping it";
      failed.push_back(subscriber.handle);
    }
  }
  for (int handle : failed) {
    unsubscribe(handle);
  }
}

std::size_t MetricStream::subscriberCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribers_.size();
}

std::uint64_t MetricStream::batchesPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::uint64_t MetricStream::recordsPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace zerosum::exporter
