// MetricStream: the "continuous stream of data reporting the current state
// of the application" from paper §3.3, and the §6 vision of feeding
// application-side data to system-side services (LDMS) and tools (TAU).
//
// A small in-process pub/sub bus: the monitor publishes one batch of
// records per sampling period; any number of subscribers (a staging
// writer, a dashboard, a test) receive the batches synchronously in
// registration order.  Thread-safe: the monitor thread publishes while
// subscribers come and go.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace zerosum::exporter {

/// One metric observation.
struct Record {
  double timeSeconds = 0.0;
  /// Producer identity ("rank.0", "node.frontier-sim").
  std::string source;
  /// Hierarchical metric name ("lwp.51334.utime_delta", "hwt.1.idle_pct").
  std::string name;
  double value = 0.0;
};

using Batch = std::vector<Record>;
using SubscriberFn = std::function<void(const Batch&)>;

class MetricStream {
 public:
  /// Registers a subscriber; returns a handle for unsubscribe().
  int subscribe(SubscriberFn subscriber);
  void unsubscribe(int handle);

  /// Delivers a batch to every subscriber (synchronously, in registration
  /// order).  A subscriber that throws is dropped and the error logged —
  /// an export failure must never take down the monitored application.
  void publish(const Batch& batch);

  [[nodiscard]] std::size_t subscriberCount() const;
  [[nodiscard]] std::uint64_t batchesPublished() const;
  [[nodiscard]] std::uint64_t recordsPublished() const;

 private:
  struct Subscriber {
    int handle = 0;
    SubscriberFn fn;
  };

  mutable std::mutex mutex_;
  std::vector<Subscriber> subscribers_;
  int nextHandle_ = 1;
  std::uint64_t batches_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace zerosum::exporter
