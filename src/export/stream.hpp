// MetricStream: the "continuous stream of data reporting the current state
// of the application" from paper §3.3, and the §6 vision of feeding
// application-side data to system-side services (LDMS) and tools (TAU).
//
// A small in-process pub/sub bus: the monitor publishes one batch of
// records per sampling period; any number of subscribers (a staging
// writer, a dashboard, a test) receive the batches synchronously in
// registration order.  Thread-safe: the monitor thread publishes while
// subscribers come and go, and unsubscribe() does not return while the
// subscriber is mid-delivery on another thread — after it returns, the
// callback will never run again, so the caller may free captured state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace zerosum::exporter {

/// One metric observation.
struct Record {
  double timeSeconds = 0.0;
  /// Producer identity ("rank.0", "node.frontier-sim").
  std::string source;
  /// Hierarchical metric name ("lwp.51334.utime_delta", "hwt.1.idle_pct").
  std::string name;
  double value = 0.0;
};

using Batch = std::vector<Record>;
using SubscriberFn = std::function<void(const Batch&)>;

class MetricStream {
 public:
  /// Registers a subscriber; returns a handle for unsubscribe().
  int subscribe(SubscriberFn subscriber);

  /// Deregisters.  Blocks until any in-flight delivery to this
  /// subscriber on another thread has finished; calling it from inside
  /// the subscriber's own callback (self-unsubscribe) is allowed and
  /// does not deadlock.
  void unsubscribe(int handle);

  /// Delivers a batch to every subscriber (synchronously, in registration
  /// order).  A subscriber that throws is dropped and the error logged —
  /// an export failure must never take down the monitored application.
  void publish(const Batch& batch);

  [[nodiscard]] std::size_t subscriberCount() const;
  [[nodiscard]] std::uint64_t batchesPublished() const;
  [[nodiscard]] std::uint64_t recordsPublished() const;

 private:
  /// Shared between the registry and any publish() currently delivering:
  /// `callMutex` serializes invocations and gates `active`, so a
  /// subscriber that unsubscribes mid-delivery waits for the delivery
  /// rather than racing it.  `callingThread` identifies the thread
  /// currently inside fn, which lets that thread self-unsubscribe
  /// without re-locking its own callMutex.
  struct Subscriber {
    int handle = 0;
    SubscriberFn fn;
    std::mutex callMutex;
    bool active = true;  ///< guarded by callMutex
    std::atomic<std::thread::id> callingThread{};
  };

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Subscriber>> subscribers_;
  int nextHandle_ = 1;
  std::uint64_t batches_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace zerosum::exporter
