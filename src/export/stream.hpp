// MetricStream: the "continuous stream of data reporting the current state
// of the application" from paper §3.3, and the §6 vision of feeding
// application-side data to system-side services (LDMS) and tools (TAU).
//
// A small in-process pub/sub bus: the monitor publishes one batch of
// records per sampling period; any number of subscribers (a staging
// writer, a dashboard, a test) receive the batches synchronously in
// registration order.  Thread-safe: the monitor thread publishes while
// subscribers come and go, and unsubscribe() does not return while the
// subscriber is mid-delivery on another thread — after it returns, the
// callback will never run again, so the caller may free captured state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/interning.hpp"

namespace zerosum::exporter {

/// One metric observation.  The producer identity ("rank.0") and the
/// hierarchical metric name ("lwp.51334.utime_delta", "hwt.1.idle_pct")
/// are carried as interned ids (names::intern), so a Record is a flat
/// 24-byte value and batches move through the publish path without
/// allocating or copying strings; resolve text at the edges with
/// sourceView()/nameView().
struct Record {
  double timeSeconds = 0.0;
  names::Id source = names::kInvalidId;
  names::Id name = names::kInvalidId;
  double value = 0.0;

  Record() = default;
  Record(double t, names::Id src, names::Id metric, double v)
      : timeSeconds(t), source(src), name(metric), value(v) {}
  /// Interning convenience for tests and cold paths.
  Record(double t, std::string_view src, std::string_view metric, double v)
      : timeSeconds(t),
        source(names::intern(src)),
        name(names::intern(metric)),
        value(v) {}

  [[nodiscard]] std::string_view sourceView() const {
    return names::lookup(source);
  }
  [[nodiscard]] std::string_view nameView() const {
    return names::lookup(name);
  }
};

using Batch = std::vector<Record>;
using SubscriberFn = std::function<void(const Batch&)>;

class MetricStream {
 public:
  /// Registers a subscriber; returns a handle for unsubscribe().
  int subscribe(SubscriberFn subscriber);

  /// Deregisters.  Blocks until any in-flight delivery to this
  /// subscriber on another thread has finished; calling it from inside
  /// the subscriber's own callback (self-unsubscribe) is allowed and
  /// does not deadlock.
  void unsubscribe(int handle);

  /// Delivers a batch to every subscriber (synchronously, in registration
  /// order).  A subscriber that throws is dropped and the error logged —
  /// an export failure must never take down the monitored application.
  void publish(const Batch& batch);

  [[nodiscard]] std::size_t subscriberCount() const;
  [[nodiscard]] std::uint64_t batchesPublished() const;
  [[nodiscard]] std::uint64_t recordsPublished() const;

 private:
  /// Shared between the registry and any publish() currently delivering:
  /// `callMutex` serializes invocations and gates `active`, so a
  /// subscriber that unsubscribes mid-delivery waits for the delivery
  /// rather than racing it.  `callingThread` identifies the thread
  /// currently inside fn, which lets that thread self-unsubscribe
  /// without re-locking its own callMutex.
  struct Subscriber {
    int handle = 0;
    SubscriberFn fn;
    std::mutex callMutex;
    bool active = true;  ///< guarded by callMutex
    std::atomic<std::thread::id> callingThread{};
  };

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Subscriber>> subscribers_;
  int nextHandle_ = 1;
  std::uint64_t batches_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace zerosum::exporter
