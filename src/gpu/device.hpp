// GpuDevice: the vendor-management-library boundary.
//
// ZeroSum talks to ROCm SMI, NVML, or the SYCL device API depending on
// platform (paper §3.4); all three reduce to "enumerate devices, query a
// metric snapshot, query memory".  This interface is that reduction; the
// simulated implementation stands in for the vendor libraries in this
// environment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/metrics.hpp"

namespace zerosum::gpu {

struct MemoryInfo {
  std::uint64_t totalBytes = 0;
  std::uint64_t usedBytes = 0;

  [[nodiscard]] std::uint64_t freeBytes() const {
    return usedBytes >= totalBytes ? 0 : totalBytes - usedBytes;
  }
};

class GpuDevice {
 public:
  virtual ~GpuDevice() = default;

  /// Index as the application runtime sees it (HIP/CUDA visible order).
  [[nodiscard]] virtual int visibleIndex() const = 0;
  /// True device index in the management library's enumeration.
  [[nodiscard]] virtual int physicalIndex() const = 0;
  [[nodiscard]] virtual std::string model() const = 0;

  /// Instantaneous metric snapshot.
  [[nodiscard]] virtual Sample query() = 0;
  [[nodiscard]] virtual MemoryInfo memoryInfo() const = 0;
};

using DeviceList = std::vector<std::shared_ptr<GpuDevice>>;

}  // namespace zerosum::gpu
