// GPU metric enumeration.
//
// The set matches what the paper's tool samples through ROCm SMI on
// Frontier (Listing 2), which is a superset of what it reads from NVML and
// the SYCL API on the other platforms.  Every metric is a double; the
// monitor accumulates min/avg/max per metric over the run.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zerosum::gpu {

enum class Metric : std::uint8_t {
  kClockGfxMhz = 0,      ///< "Clock Frequency, GLX (MHz)"
  kClockSocMhz,          ///< "Clock Frequency, SOC (MHz)"
  kDeviceBusyPct,        ///< "Device Busy %"
  kEnergyAverageJ,       ///< "Energy Average (J)" per sampling interval
  kGfxActivity,          ///< "GFX Activity" (raw activity counter delta)
  kGfxActivityPct,       ///< "GFX Activity %"
  kMemoryActivity,       ///< "Memory Activity"
  kMemoryBusyPct,        ///< "Memory Busy %"
  kMemoryControllerActivity,  ///< "Memory Controller Activity"
  kPowerAverageW,        ///< "Power Average (W)"
  kTemperatureC,         ///< "Temperature (C)"
  kVcnActivity,          ///< "UVD|VCN Activity"
  kUsedGttBytes,         ///< "Used GTT Bytes"
  kUsedVramBytes,        ///< "Used VRAM Bytes"
  kUsedVisibleVramBytes, ///< "Used Visible VRAM Bytes"
  kVoltageMv,            ///< "Voltage (mV)"
};

inline constexpr std::array<Metric, 16> kAllMetrics = {
    Metric::kClockGfxMhz,
    Metric::kClockSocMhz,
    Metric::kDeviceBusyPct,
    Metric::kEnergyAverageJ,
    Metric::kGfxActivity,
    Metric::kGfxActivityPct,
    Metric::kMemoryActivity,
    Metric::kMemoryBusyPct,
    Metric::kMemoryControllerActivity,
    Metric::kPowerAverageW,
    Metric::kTemperatureC,
    Metric::kVcnActivity,
    Metric::kUsedGttBytes,
    Metric::kUsedVramBytes,
    Metric::kUsedVisibleVramBytes,
    Metric::kVoltageMv,
};

/// Report label, exactly as Listing 2 prints it.
std::string metricLabel(Metric metric);

/// One sample: metric -> instantaneous value.
using Sample = std::map<Metric, double>;

/// The management libraries the paper integrates with (§3.4): ROCm SMI on
/// Frontier, NVML on Summit/Perlmutter, the Intel SYCL device API on the
/// Xe test system.  Each exposes a different subset of the metric space;
/// the monitor's pipeline is identical regardless.
enum class Vendor { kRocmSmi, kNvml, kSycl };

std::string vendorName(Vendor vendor);

/// Metrics a vendor's library reports.  ROCm SMI is the full Listing-2
/// set; NVML lacks the raw activity counters and GTT; the SYCL API only
/// reports memory and clocks.
std::vector<Metric> vendorMetrics(Vendor vendor);

}  // namespace zerosum::gpu
