#include "gpu/simulated.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace zerosum::gpu {

std::string metricLabel(Metric metric) {
  switch (metric) {
    case Metric::kClockGfxMhz: return "Clock Frequency, GLX (MHz)";
    case Metric::kClockSocMhz: return "Clock Frequency, SOC (MHz)";
    case Metric::kDeviceBusyPct: return "Device Busy %";
    case Metric::kEnergyAverageJ: return "Energy Average (J)";
    case Metric::kGfxActivity: return "GFX Activity";
    case Metric::kGfxActivityPct: return "GFX Activity %";
    case Metric::kMemoryActivity: return "Memory Activity";
    case Metric::kMemoryBusyPct: return "Memory Busy %";
    case Metric::kMemoryControllerActivity:
      return "Memory Controller Activity";
    case Metric::kPowerAverageW: return "Power Average (W)";
    case Metric::kTemperatureC: return "Temperature (C)";
    case Metric::kVcnActivity: return "UVD|VCN Activity";
    case Metric::kUsedGttBytes: return "Used GTT Bytes";
    case Metric::kUsedVramBytes: return "Used VRAM Bytes";
    case Metric::kUsedVisibleVramBytes: return "Used Visible VRAM Bytes";
    case Metric::kVoltageMv: return "Voltage (mV)";
  }
  return "Unknown";
}

std::string vendorName(Vendor vendor) {
  switch (vendor) {
    case Vendor::kRocmSmi: return "ROCm SMI";
    case Vendor::kNvml: return "NVML";
    case Vendor::kSycl: return "SYCL";
  }
  return "Unknown";
}

std::vector<Metric> vendorMetrics(Vendor vendor) {
  switch (vendor) {
    case Vendor::kRocmSmi:
      return {kAllMetrics.begin(), kAllMetrics.end()};
    case Vendor::kNvml:
      // NVML: utilization, clocks, power/energy, temperature, memory —
      // but no raw activity counters, GTT, or voltage rail.
      return {Metric::kClockGfxMhz,     Metric::kClockSocMhz,
              Metric::kDeviceBusyPct,   Metric::kEnergyAverageJ,
              Metric::kMemoryBusyPct,   Metric::kPowerAverageW,
              Metric::kTemperatureC,    Metric::kUsedVramBytes};
    case Vendor::kSycl:
      // The SYCL device API: memory info and frequency only.
      return {Metric::kClockGfxMhz, Metric::kUsedVramBytes};
  }
  return {};
}

std::shared_ptr<SimulatedGpu> makeVendorGpu(Vendor vendor, int visibleIndex,
                                            int physicalIndex,
                                            std::uint64_t seed) {
  SimulatedGpuParams params;
  params.exposedMetrics = vendorMetrics(vendor);
  std::string model;
  switch (vendor) {
    case Vendor::kRocmSmi: model = "AMD MI250X GCD"; break;
    case Vendor::kNvml: model = "NVIDIA A100"; break;
    case Vendor::kSycl: model = "Intel Data Center GPU Max"; break;
  }
  return std::make_shared<SimulatedGpu>(visibleIndex, physicalIndex,
                                        std::move(model), params, seed);
}

SimulatedGpu::SimulatedGpu(int visibleIndex, int physicalIndex,
                           std::string model, SimulatedGpuParams params,
                           std::uint64_t seed)
    : visibleIndex_(visibleIndex),
      physicalIndex_(physicalIndex),
      model_(std::move(model)),
      params_(params),
      rng_(seed),
      temperatureC_(params.ambientTempC),
      vramUsed_(params.vramBaseBytes) {}

void SimulatedGpu::setActivity(double level) {
  activity_ = std::clamp(level, 0.0, 1.0);
}

void SimulatedGpu::allocate(std::uint64_t bytes) {
  if (vramUsed_ + bytes > params_.vramTotalBytes) {
    throw StateError("SimulatedGpu: VRAM exhausted (used " +
                     std::to_string(vramUsed_) + " + " +
                     std::to_string(bytes) + " > " +
                     std::to_string(params_.vramTotalBytes) + ")");
  }
  vramUsed_ += bytes;
}

void SimulatedGpu::free(std::uint64_t bytes) {
  const std::uint64_t releasable =
      vramUsed_ > params_.vramBaseBytes ? vramUsed_ - params_.vramBaseBytes : 0;
  vramUsed_ -= std::min(bytes, releasable);
}

double SimulatedGpu::powerW() const {
  // Power rises superlinearly with activity (clock *and* voltage scale).
  const double span = params_.maxPowerW - params_.idlePowerW;
  return params_.idlePowerW + span * 0.12 * activity_ +
         span * 0.08 * activity_ * activity_;
}

void SimulatedGpu::advance(double seconds) {
  if (seconds < 0.0) {
    throw StateError("SimulatedGpu::advance: negative time");
  }
  const double p = powerW();
  energySinceQueryJ_ += p * seconds;
  gfxCounterSinceQuery_ += params_.gfxCounterRate * activity_ * seconds;
  memCounterSinceQuery_ += params_.memCounterRate * activity_ * seconds;

  // First-order temperature approach toward the steady state for this power.
  const double target =
      params_.ambientTempC + params_.tempPerWatt * (p - params_.idlePowerW);
  const double alpha =
      1.0 - std::exp(-params_.tempLagPerSecond * seconds);
  temperatureC_ += (target - temperatureC_) * alpha;
}

Sample SimulatedGpu::query() {
  Sample s;
  const double jitter = (rng_.nextDouble() - 0.5) * 0.04;  // ±2% sensor noise
  const double act = std::clamp(activity_ * (1.0 + jitter), 0.0, 1.0);

  const double clockSpan = params_.maxClockMhz - params_.idleClockMhz;
  double gfxClock =
      act <= 0.0 ? params_.idleClockMhz
                 : std::min(params_.maxClockMhz,
                            params_.idleClockMhz + clockSpan * (0.6 + 0.4 * act));
  // Thermal throttling: over the junction limit the firmware sheds clocks
  // toward the floor (visible in the report as a clock dip at temp max).
  throttling_ = temperatureC_ > params_.throttleTempC;
  if (throttling_) {
    const double over = temperatureC_ - params_.throttleTempC;
    gfxClock = std::max(params_.idleClockMhz,
                        gfxClock - over * params_.throttleMhzPerDegree);
  }
  s[Metric::kClockGfxMhz] = gfxClock;
  s[Metric::kClockSocMhz] = params_.socClockMhz;
  s[Metric::kDeviceBusyPct] = std::round(act * 100.0);
  s[Metric::kEnergyAverageJ] = energySinceQueryJ_;
  s[Metric::kGfxActivity] = std::round(gfxCounterSinceQuery_);
  s[Metric::kGfxActivityPct] = std::round(act * 100.0 * 0.95);
  s[Metric::kMemoryActivity] = std::round(memCounterSinceQuery_);
  s[Metric::kMemoryBusyPct] = std::round(act * 6.0);
  s[Metric::kMemoryControllerActivity] = std::round(act * 4.0);
  s[Metric::kPowerAverageW] = std::round(powerW());
  s[Metric::kTemperatureC] = std::round(temperatureC_);
  s[Metric::kVcnActivity] = 0.0;  // no video decode in HPC workloads
  s[Metric::kUsedGttBytes] = static_cast<double>(params_.gttUsedBytes);
  s[Metric::kUsedVramBytes] = static_cast<double>(vramUsed_);
  // A fraction of VRAM is host-visible; the runtime maps everything the
  // application touches, so the two track each other (as in Listing 2).
  s[Metric::kUsedVisibleVramBytes] = static_cast<double>(vramUsed_);
  const double vSpan = params_.maxVoltageMv - params_.idleVoltageMv;
  s[Metric::kVoltageMv] =
      std::round(params_.idleVoltageMv + vSpan * (0.2 + 0.8 * act) *
                                             (act > 0.0 ? 1.0 : 0.0));

  // Interval counters reset on read (ROCm SMI accumulator semantics).
  energySinceQueryJ_ = 0.0;
  gfxCounterSinceQuery_ = 0.0;
  memCounterSinceQuery_ = 0.0;

  if (!params_.exposedMetrics.empty()) {
    Sample filtered;
    for (Metric metric : params_.exposedMetrics) {
      const auto it = s.find(metric);
      if (it != s.end()) {
        filtered.insert(*it);
      }
    }
    return filtered;
  }
  return s;
}

MemoryInfo SimulatedGpu::memoryInfo() const {
  MemoryInfo info;
  info.totalBytes = params_.vramTotalBytes;
  info.usedBytes = vramUsed_;
  return info;
}

}  // namespace zerosum::gpu
