// SimulatedGpu: a deterministic MI250X-GCD-like device model.
//
// The model is driven by the workload: the harness sets an offload activity
// level in [0,1] per phase and advances device time.  Clocks, busy
// percentages, power, voltage, and activity counters derive from the
// activity level; temperature follows power with first-order lag; energy
// integrates power over each advance; VRAM tracks explicit allocations.
// The derivations are tuned so an offloading miniQMC run reproduces the
// ranges in Listing 2 (GFX clock 800-1700 MHz, power 90-138 W, temperature
// 35-39 C, VRAM ramping from ~15 MB to ~4.8 GB).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.hpp"
#include "gpu/device.hpp"

namespace zerosum::gpu {

struct SimulatedGpuParams {
  double idleClockMhz = 800.0;
  double maxClockMhz = 1700.0;
  double socClockMhz = 1090.0;
  double idlePowerW = 90.0;
  double maxPowerW = 560.0;   ///< board limit; miniQMC load stays well below
  double idleVoltageMv = 806.0;
  double maxVoltageMv = 1100.0;
  double ambientTempC = 35.0;
  double tempPerWatt = 0.055;       ///< steady-state °C above ambient per W over idle
  double tempLagPerSecond = 0.25;   ///< first-order approach rate
  /// Junction limit: above this the device sheds clocks (thermal
  /// throttling, as the real MI250X does at ~110 C edge temperature).
  double throttleTempC = 95.0;
  /// Clock reduction per degree over the limit.
  double throttleMhzPerDegree = 40.0;
  std::uint64_t vramTotalBytes = 64ULL << 30;
  std::uint64_t gttUsedBytes = 11624448;  ///< pinned host staging, constant
  std::uint64_t vramBaseBytes = 15044608; ///< runtime context footprint
  double gfxCounterRate = 94000.0;  ///< GFX activity counts per busy-second
  double memCounterRate = 3800.0;
  /// Metrics the device's management library exposes; empty = all (ROCm
  /// SMI).  query() returns only these.
  std::vector<Metric> exposedMetrics;
};

class SimulatedGpu final : public GpuDevice {
 public:
  SimulatedGpu(int visibleIndex, int physicalIndex, std::string model,
               SimulatedGpuParams params = {}, std::uint64_t seed = 0x6d0);

  // --- Workload drive -----------------------------------------------------
  /// Sets the offload activity level for subsequent time, in [0,1]
  /// (fraction of device engines busy).  Values are clamped.
  void setActivity(double level);
  /// Allocates/frees device memory (walker buffers, spline tables).
  void allocate(std::uint64_t bytes);
  void free(std::uint64_t bytes);
  /// Advances device time; integrates energy, settles temperature, and
  /// accumulates activity counters.
  void advance(double seconds);

  // --- GpuDevice ----------------------------------------------------------
  [[nodiscard]] int visibleIndex() const override { return visibleIndex_; }
  [[nodiscard]] int physicalIndex() const override { return physicalIndex_; }
  [[nodiscard]] std::string model() const override { return model_; }
  [[nodiscard]] Sample query() override;
  [[nodiscard]] MemoryInfo memoryInfo() const override;

  /// True when the last query saw the junction temperature above the
  /// throttle limit (clocks were reduced).
  [[nodiscard]] bool throttling() const { return throttling_; }

 private:
  [[nodiscard]] double powerW() const;

  int visibleIndex_;
  int physicalIndex_;
  std::string model_;
  SimulatedGpuParams params_;
  stats::SplitMix64 rng_;

  double activity_ = 0.0;
  double temperatureC_;
  std::uint64_t vramUsed_;
  double energySinceQueryJ_ = 0.0;
  double gfxCounterSinceQuery_ = 0.0;
  double memCounterSinceQuery_ = 0.0;
  bool throttling_ = false;
};

/// A simulated device constrained to one vendor's metric surface, with a
/// vendor-appropriate model name.
std::shared_ptr<SimulatedGpu> makeVendorGpu(Vendor vendor, int visibleIndex,
                                            int physicalIndex,
                                            std::uint64_t seed = 0x6d0);

}  // namespace zerosum::gpu
