#include "mpisim/comm.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace zerosum::mpisim {

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, std::span<const std::byte> data, int tag) {
  world_->deliver(rank_, dest, data, tag);
}

void Comm::recv(int source, std::span<std::byte> data, int tag) {
  world_->receive(source, rank_, data, tag);
}

void Comm::barrier() { world_->barrierWait(); }

double Comm::allreduceSum(double value) {
  {
    std::lock_guard<std::mutex> lock(world_->reduceMutex_);
    world_->reduceValue_ += value;
  }
  barrier();
  const double result = world_->reduceValue_;
  barrier();
  // Rank 0 resets for the next reduction after everyone has read.
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lock(world_->reduceMutex_);
    world_->reduceValue_ = 0.0;
  }
  barrier();
  return result;
}

World::World(int size) : size_(size) {
  if (size < 1) {
    throw ConfigError("World needs at least one rank");
  }
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::attachRecorders(std::vector<Recorder>* recorders) {
  if (recorders != nullptr &&
      recorders->size() != static_cast<std::size_t>(size_)) {
    throw ConfigError("recorder list size must equal world size");
  }
  recorders_ = recorders;
}

void World::deliver(int source, int dest, std::span<const std::byte> data,
                    int tag) {
  if (dest < 0 || dest >= size_) {
    throw NotFoundError("rank " + std::to_string(dest));
  }
  if (recorders_ != nullptr) {
    (*recorders_)[static_cast<std::size_t>(source)].recordSend(dest,
                                                               data.size());
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    Message msg;
    msg.source = source;
    msg.tag = tag;
    msg.payload.assign(data.begin(), data.end());
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void World::receive(int source, int dest, std::span<std::byte> data, int tag) {
  if (source < 0 || source >= size_) {
    throw NotFoundError("rank " + std::to_string(source));
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  Message msg;
  {
    std::unique_lock<std::mutex> lock(box.mutex);
    auto matching = box.messages.end();
    box.cv.wait(lock, [&] {
      matching = std::find_if(box.messages.begin(), box.messages.end(),
                              [&](const Message& m) {
                                return m.source == source && m.tag == tag;
                              });
      return matching != box.messages.end();
    });
    msg = std::move(*matching);
    box.messages.erase(matching);
  }
  if (msg.payload.size() != data.size()) {
    throw StateError("recv size mismatch: posted " +
                     std::to_string(data.size()) + " bytes, got " +
                     std::to_string(msg.payload.size()));
  }
  std::memcpy(data.data(), msg.payload.data(), msg.payload.size());
  if (recorders_ != nullptr) {
    (*recorders_)[static_cast<std::size_t>(dest)].recordRecv(
        source, msg.payload.size());
  }
}

void World::barrierWait() {
  std::unique_lock<std::mutex> lock(barrierMutex_);
  const std::uint64_t generation = barrierGeneration_;
  if (++barrierArrived_ == size_) {
    barrierArrived_ = 0;
    ++barrierGeneration_;
    barrierCv_.notify_all();
    return;
  }
  barrierCv_.wait(lock, [&] { return barrierGeneration_ != generation; });
}

void World::run(const std::function<void(Comm&)>& rankMain) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex errorMutex;
  std::exception_ptr firstError;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(*this, r);
        rankMain(comm);
      } catch (...) {
        log::debug() << "rank " << r
                     << " main threw: " << currentExceptionMessage();
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) {
          firstError = std::current_exception();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

}  // namespace zerosum::mpisim
