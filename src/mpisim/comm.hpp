// In-process MPI-like substrate.
//
// The paper wraps the MPI point-to-point API to capture bytes transferred
// between ranks (§3.1.3).  This module provides the substrate being
// wrapped: a World of N ranks (one thread each) with blocking tagged
// point-to-point messaging, barrier, and reduction — enough to host the
// proxy applications — plus the Recorder hook ZeroSum's interposition layer
// attaches to every send/recv.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "mpisim/recorder.hpp"

namespace zerosum::mpisim {

class World;

/// Per-rank communicator handle.  Only the owning rank's thread may use it.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Blocking tagged send/recv.  recv() matches on (source, tag) and
  /// requires the byte count to agree (a deliberate simplification: the
  /// proxies always post matched sizes).
  void send(int dest, std::span<const std::byte> data, int tag);
  void recv(int source, std::span<std::byte> data, int tag);

  /// Typed convenience overloads for trivially-copyable payloads.
  template <typename T>
  void send(int dest, const std::vector<T>& data, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest,
         std::as_bytes(std::span<const T>(data.data(), data.size())), tag);
  }
  template <typename T>
  void recv(int source, std::vector<T>& data, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv(source,
         std::as_writable_bytes(std::span<T>(data.data(), data.size())), tag);
  }

  void barrier();
  /// Sum-allreduce of one double (tree-free, O(N) via rank 0).
  [[nodiscard]] double allreduceSum(double value);

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}

  World* world_;
  int rank_;
};

/// An N-rank world.  run() executes `rankMain` once per rank on its own
/// thread and joins them all; any exception in a rank propagates after all
/// ranks complete or abort.
class World {
 public:
  explicit World(int size);

  [[nodiscard]] int size() const { return size_; }

  /// Attaches a per-rank recorder list (ZeroSum's interposition).  Must be
  /// called before run(); `recorders` must outlive the run and have one
  /// entry per rank.
  void attachRecorders(std::vector<Recorder>* recorders);

  void run(const std::function<void(Comm&)>& rankMain);

 private:
  friend class Comm;

  struct Message {
    int source = 0;
    int tag = 0;
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void deliver(int source, int dest, std::span<const std::byte> data, int tag);
  void receive(int source, int dest, std::span<std::byte> data, int tag);
  void barrierWait();

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<Recorder>* recorders_ = nullptr;

  std::mutex barrierMutex_;
  std::condition_variable barrierCv_;
  int barrierArrived_ = 0;
  std::uint64_t barrierGeneration_ = 0;

  std::mutex reduceMutex_;
  double reduceValue_ = 0.0;
};

}  // namespace zerosum::mpisim
