#include "mpisim/patterns.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace zerosum::mpisim::patterns {

namespace {

int wrap(int rank, int ranks) {
  return ((rank % ranks) + ranks) % ranks;
}

}  // namespace

void nearestNeighbor(int ranks, const HaloParams& params, const SendFn& send) {
  if (ranks < 2 || params.width < 1) {
    throw ConfigError("nearestNeighbor: need >= 2 ranks and width >= 1");
  }
  for (int step = 0; step < params.steps; ++step) {
    for (int r = 0; r < ranks; ++r) {
      for (int w = 1; w <= params.width; ++w) {
        for (int dir : {-w, w}) {
          const int peer = r + dir;
          if (params.periodic) {
            send(r, wrap(peer, ranks), params.bytesPerExchange);
          } else if (peer >= 0 && peer < ranks) {
            send(r, peer, params.bytesPerExchange);
          }
        }
      }
    }
  }
}

void ring(int ranks, std::uint64_t bytesPerStep, int steps,
          const SendFn& send) {
  if (ranks < 2) {
    throw ConfigError("ring: need >= 2 ranks");
  }
  for (int step = 0; step < steps; ++step) {
    for (int r = 0; r < ranks; ++r) {
      send(r, wrap(r + 1, ranks), bytesPerStep);
    }
  }
}

void randomPairs(int ranks, int messages, std::uint64_t bytesPerMessage,
                 std::uint64_t seed, const SendFn& send) {
  if (ranks < 2) {
    throw ConfigError("randomPairs: need >= 2 ranks");
  }
  stats::SplitMix64 rng(seed);
  for (int m = 0; m < messages; ++m) {
    const int src =
        static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(ranks)));
    int dst =
        static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(ranks - 1)));
    if (dst >= src) {
      ++dst;  // never self
    }
    send(src, dst, bytesPerMessage);
  }
}

void allToAll(int ranks, std::uint64_t bytesPerPair, const SendFn& send) {
  for (int s = 0; s < ranks; ++s) {
    for (int d = 0; d < ranks; ++d) {
      if (s != d) {
        send(s, d, bytesPerPair);
      }
    }
  }
}

void transpose(int ranks, std::uint64_t bytesPerPair, const SendFn& send) {
  const int side = static_cast<int>(std::lround(std::sqrt(ranks)));
  if (side * side != ranks) {
    throw ConfigError("transpose: ranks must be a perfect square");
  }
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      const int src = i * side + j;
      const int dst = j * side + i;
      if (src != dst) {
        send(src, dst, bytesPerPair);
      }
    }
  }
}

void gyrokineticPic(int ranks, const GyrokineticParams& params,
                    const SendFn& send) {
  if (ranks < 2 || params.ranksPerPlane < 1) {
    throw ConfigError("gyrokineticPic: bad configuration");
  }
  stats::SplitMix64 rng(0xF16U);  // deterministic background scatter
  for (int step = 0; step < params.steps; ++step) {
    for (int r = 0; r < ranks; ++r) {
      // Particle shift: heavy ±1 exchanges within the torus.
      send(r, wrap(r + 1, ranks), params.particleBytes);
      send(r, wrap(r - 1, ranks), params.particleBytes);
      // Field solve: matching rank of the adjacent poloidal planes.
      if (params.ranksPerPlane < ranks) {
        send(r, wrap(r + params.ranksPerPlane, ranks), params.fieldBytes);
        send(r, wrap(r - params.ranksPerPlane, ranks), params.fieldBytes);
      }
      // Collision operator: occasional low-volume long-range exchange.
      if (rng.nextDouble() < 0.10) {
        const int peer = static_cast<int>(
            rng.nextBelow(static_cast<std::uint64_t>(ranks)));
        if (peer != r) {
          send(r, peer, params.collisionBytes);
        }
      }
    }
  }
}

CommMatrix toMatrix(int ranks,
                    const std::function<void(const SendFn&)>& generator) {
  CommMatrix matrix(ranks);
  generator([&matrix](int src, int dst, std::uint64_t bytes) {
    matrix.addSend(src, dst, bytes);
  });
  return matrix;
}

}  // namespace zerosum::mpisim::patterns
