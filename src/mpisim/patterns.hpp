// Synthetic communication patterns.
//
// Figure 5 shows the P2P heatmap of a 512-rank gyrokinetic particle-in-cell
// code with a strong nearest-neighbour diagonal.  These generators produce
// that and other canonical HPC traffic shapes through an abstract send
// callback, so they can drive either a live World (exercising the real
// recorder path) or a CommMatrix directly at 512-rank scale.
#pragma once

#include <cstdint>
#include <functional>

#include "mpisim/recorder.hpp"

namespace zerosum::mpisim::patterns {

/// send(source, dest, bytes) — invoked once per message.
using SendFn = std::function<void(int, int, std::uint64_t)>;

struct HaloParams {
  int width = 1;                     ///< neighbour distance exchanged
  std::uint64_t bytesPerExchange = 1 << 20;
  int steps = 10;
  bool periodic = true;              ///< wrap at the ends (torus)
};

/// 1-D halo exchange: every rank sends to ranks ±1..±width each step.
void nearestNeighbor(int ranks, const HaloParams& params, const SendFn& send);

/// Ring: rank r -> r+1 (mod N).
void ring(int ranks, std::uint64_t bytesPerStep, int steps,
          const SendFn& send);

/// Uniform random pairs, deterministic in `seed`.
void randomPairs(int ranks, int messages, std::uint64_t bytesPerMessage,
                 std::uint64_t seed, const SendFn& send);

/// All-to-all personalized exchange (one shot).
void allToAll(int ranks, std::uint64_t bytesPerPair, const SendFn& send);

/// 2-D transpose on a sqrt(N)×sqrt(N) process grid: rank (i,j) -> (j,i).
/// Requires ranks to be a perfect square.
void transpose(int ranks, std::uint64_t bytesPerPair, const SendFn& send);

struct GyrokineticParams {
  /// Ranks per poloidal plane; particle exchange couples ranks ±1 within a
  /// plane and field solves couple matching ranks of adjacent planes.
  int ranksPerPlane = 32;
  std::uint64_t particleBytes = 32ULL << 20;  ///< dominant near-diagonal load
  std::uint64_t fieldBytes = 2ULL << 20;      ///< fainter ±plane bands
  std::uint64_t collisionBytes = 64ULL << 10; ///< sparse background
  int steps = 20;
};

/// Gyrokinetic-PIC-like traffic (the Figure 5 workload): heavy ±1
/// nearest-neighbour diagonal, lighter bands at ±ranksPerPlane, sparse
/// low-volume background.
void gyrokineticPic(int ranks, const GyrokineticParams& params,
                    const SendFn& send);

/// Convenience: runs a generator straight into a CommMatrix.
CommMatrix toMatrix(int ranks,
                    const std::function<void(const SendFn&)>& generator);

}  // namespace zerosum::mpisim::patterns
