#include "mpisim/recorder.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace zerosum::mpisim {

void Recorder::recordSend(int dest, std::uint64_t bytes) {
  sendBytes_[dest] += bytes;
  sendCount_[dest] += 1;
}

void Recorder::recordRecv(int source, std::uint64_t bytes) {
  recvBytes_[source] += bytes;
  recvCount_[source] += 1;
}

std::uint64_t Recorder::bytesSentTo(int dest) const {
  const auto it = sendBytes_.find(dest);
  return it == sendBytes_.end() ? 0 : it->second;
}

std::uint64_t Recorder::bytesReceivedFrom(int source) const {
  const auto it = recvBytes_.find(source);
  return it == recvBytes_.end() ? 0 : it->second;
}

std::uint64_t Recorder::totalBytesSent() const {
  std::uint64_t total = 0;
  for (const auto& [peer, bytes] : sendBytes_) {
    total += bytes;
  }
  return total;
}

std::uint64_t Recorder::totalMessagesSent() const {
  std::uint64_t total = 0;
  for (const auto& [peer, count] : sendCount_) {
    total += count;
  }
  return total;
}

std::string Recorder::toCsv() const {
  std::ostringstream out;
  out << "direction,peer,bytes,count\n";
  for (const auto& [peer, bytes] : sendBytes_) {
    out << "send," << peer << ',' << bytes << ','
        << sendCount_.at(peer) << '\n';
  }
  for (const auto& [peer, bytes] : recvBytes_) {
    out << "recv," << peer << ',' << bytes << ','
        << recvCount_.at(peer) << '\n';
  }
  return out.str();
}

CommMatrix::CommMatrix(int ranks) : ranks_(ranks) {
  if (ranks < 1) {
    throw ConfigError("CommMatrix needs at least one rank");
  }
  cells_.assign(static_cast<std::size_t>(ranks) *
                    static_cast<std::size_t>(ranks),
                0);
}

std::size_t CommMatrix::idx(int source, int dest) const {
  if (source < 0 || source >= ranks_ || dest < 0 || dest >= ranks_) {
    throw NotFoundError("CommMatrix cell (" + std::to_string(source) + "," +
                        std::to_string(dest) + ")");
  }
  return static_cast<std::size_t>(source) * static_cast<std::size_t>(ranks_) +
         static_cast<std::size_t>(dest);
}

void CommMatrix::addSend(int source, int dest, std::uint64_t bytes) {
  cells_[idx(source, dest)] += bytes;
}

void CommMatrix::merge(const Recorder& recorder) {
  for (const auto& [peer, bytes] : recorder.sendBytesByPeer()) {
    addSend(recorder.rank(), peer, bytes);
  }
}

std::uint64_t CommMatrix::bytes(int source, int dest) const {
  return cells_[idx(source, dest)];
}

std::uint64_t CommMatrix::totalBytes() const {
  std::uint64_t total = 0;
  for (std::uint64_t cell : cells_) {
    total += cell;
  }
  return total;
}

std::uint64_t CommMatrix::maxCell() const {
  return cells_.empty() ? 0 : *std::max_element(cells_.begin(), cells_.end());
}

std::vector<std::vector<std::uint64_t>> CommMatrix::binned(int bins) const {
  if (bins < 1 || bins > ranks_) {
    throw ConfigError("CommMatrix::binned: bins must be in [1, ranks]");
  }
  std::vector<std::vector<std::uint64_t>> out(
      static_cast<std::size_t>(bins),
      std::vector<std::uint64_t>(static_cast<std::size_t>(bins), 0));
  for (int s = 0; s < ranks_; ++s) {
    const auto bs = static_cast<std::size_t>(
        static_cast<long>(s) * bins / ranks_);
    for (int d = 0; d < ranks_; ++d) {
      const auto bd = static_cast<std::size_t>(
          static_cast<long>(d) * bins / ranks_);
      out[bs][bd] += cells_[idx(s, d)];
    }
  }
  return out;
}

bool CommMatrix::diagonalDominance(int band, double fraction) const {
  const std::uint64_t total = totalBytes();
  if (total == 0) {
    return false;
  }
  std::uint64_t near = 0;
  for (int s = 0; s < ranks_; ++s) {
    for (int d = 0; d < ranks_; ++d) {
      const int dist = std::min(std::abs(s - d), ranks_ - std::abs(s - d));
      if (dist <= band) {
        near += cells_[idx(s, d)];
      }
    }
  }
  return static_cast<double>(near) >=
         fraction * static_cast<double>(total);
}

}  // namespace zerosum::mpisim
