// ZeroSum's MPI point-to-point interposition layer (paper §3.1.3).
//
// A Recorder accumulates, per peer rank, the bytes and message counts this
// rank sent and received; a CommMatrix merges all ranks' recorders into the
// N×N byte matrix that post-processing renders as the Figure 5 heatmap.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zerosum::mpisim {

/// Per-rank point-to-point accounting.  Thread-compatible: each rank owns
/// one Recorder and is the only writer.
class Recorder {
 public:
  Recorder() = default;
  explicit Recorder(int rank) : rank_(rank) {}

  void recordSend(int dest, std::uint64_t bytes);
  void recordRecv(int source, std::uint64_t bytes);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::uint64_t bytesSentTo(int dest) const;
  [[nodiscard]] std::uint64_t bytesReceivedFrom(int source) const;
  [[nodiscard]] std::uint64_t totalBytesSent() const;
  [[nodiscard]] std::uint64_t totalMessagesSent() const;
  [[nodiscard]] const std::map<int, std::uint64_t>& sendBytesByPeer() const {
    return sendBytes_;
  }
  [[nodiscard]] const std::map<int, std::uint64_t>& recvBytesByPeer() const {
    return recvBytes_;
  }

  /// CSV rows "direction,peer,bytes,count" for the per-process log.
  [[nodiscard]] std::string toCsv() const;

 private:
  int rank_ = 0;
  std::map<int, std::uint64_t> sendBytes_;
  std::map<int, std::uint64_t> sendCount_;
  std::map<int, std::uint64_t> recvBytes_;
  std::map<int, std::uint64_t> recvCount_;
};

/// Dense N×N matrix of bytes sent from row-rank to column-rank.
class CommMatrix {
 public:
  explicit CommMatrix(int ranks);

  void addSend(int source, int dest, std::uint64_t bytes);
  /// Folds one rank's recorder (its send side) into the matrix.
  void merge(const Recorder& recorder);

  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] std::uint64_t bytes(int source, int dest) const;
  [[nodiscard]] std::uint64_t totalBytes() const;
  [[nodiscard]] std::uint64_t maxCell() const;

  /// Downsamples to `bins`×`bins` by summing cells (bins <= ranks); used to
  /// render large worlds (512 ranks in Figure 5) at terminal resolution.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> binned(int bins) const;

  /// True when at least `fraction` of all bytes lie within `band` of the
  /// diagonal — the "strong nearest-neighbour pattern along the central
  /// diagonal" observation of Figure 5, as a testable predicate.
  [[nodiscard]] bool diagonalDominance(int band, double fraction) const;

 private:
  [[nodiscard]] std::size_t idx(int source, int dest) const;

  int ranks_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace zerosum::mpisim
