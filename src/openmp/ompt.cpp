#include "openmp/ompt.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>

namespace zerosum::openmp {

ToolRegistry& ToolRegistry::instance() {
  static ToolRegistry registry;
  return registry;
}

int ToolRegistry::registerTool(ThreadBeginFn onBegin, ThreadEndFn onEnd) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tool tool;
  tool.handle = nextHandle_++;
  tool.onBegin = std::move(onBegin);
  tool.onEnd = std::move(onEnd);
  tools_.push_back(std::move(tool));
  return tools_.back().handle;
}

void ToolRegistry::deregisterTool(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  tools_.erase(std::remove_if(tools_.begin(), tools_.end(),
                              [handle](const Tool& t) {
                                return t.handle == handle;
                              }),
               tools_.end());
}

void ToolRegistry::threadBegin(const ThreadEvent& event) {
  std::vector<ThreadBeginFn> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    knownTids_.insert(event.tid);
    for (const auto& tool : tools_) {
      if (tool.onBegin) {
        callbacks.push_back(tool.onBegin);
      }
    }
  }
  for (const auto& cb : callbacks) {
    cb(event);
  }
}

void ToolRegistry::threadEnd(const ThreadEvent& event) {
  std::vector<ThreadEndFn> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& tool : tools_) {
      if (tool.onEnd) {
        callbacks.push_back(tool.onEnd);
      }
    }
  }
  for (const auto& cb : callbacks) {
    cb(event);
  }
}

std::set<int> ToolRegistry::knownOmpTids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return knownTids_;
}

void ToolRegistry::resetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  tools_.clear();
  knownTids_.clear();
}

int currentTid() {
  return static_cast<int>(::syscall(SYS_gettid));
}

}  // namespace zerosum::openmp
