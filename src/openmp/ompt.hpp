// OMPT-style tool callbacks (paper §3.1.2).
//
// OpenMP 5.1 runtimes notify a registered tool when OpenMP threads begin
// and end; ZeroSum uses the callback to classify the underlying POSIX
// thread as an OpenMP thread.  This registry is the reproduction of that
// interface: our team runtime invokes it, and ZeroSum's LwpTracker
// subscribes to it.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <vector>

namespace zerosum::openmp {

enum class ThreadKind { kInitial, kWorker };

struct ThreadEvent {
  ThreadKind kind = ThreadKind::kWorker;
  /// Kernel LWP id (gettid) of the thread.
  int tid = 0;
};

using ThreadBeginFn = std::function<void(const ThreadEvent&)>;
using ThreadEndFn = std::function<void(const ThreadEvent&)>;

/// Process-wide callback registry.  Thread-safe.  Also remembers every tid
/// ever announced, so a tool attaching late can classify existing threads
/// (the paper's "pre-5.1 probe" path feeds the same set).
class ToolRegistry {
 public:
  static ToolRegistry& instance();

  /// Registers callbacks; returns a handle for deregistration.
  int registerTool(ThreadBeginFn onBegin, ThreadEndFn onEnd);
  void deregisterTool(int handle);

  /// Called by the runtime.
  void threadBegin(const ThreadEvent& event);
  void threadEnd(const ThreadEvent& event);

  /// All tids ever reported as OpenMP threads in this process.
  [[nodiscard]] std::set<int> knownOmpTids() const;

  /// Test hook: forget all callbacks and tids.
  void resetForTesting();

 private:
  ToolRegistry() = default;

  struct Tool {
    int handle = 0;
    ThreadBeginFn onBegin;
    ThreadEndFn onEnd;
  };

  mutable std::mutex mutex_;
  std::vector<Tool> tools_;
  std::set<int> knownTids_;
  int nextHandle_ = 1;
};

/// Current thread's kernel LWP id.
int currentTid();

}  // namespace zerosum::openmp
