#include "openmp/team.hpp"

#include <pthread.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "openmp/ompt.hpp"

namespace zerosum::openmp {

ThreadTeam::ThreadTeam(int numThreads) : numThreads_(numThreads) {
  if (numThreads < 1) {
    throw ConfigError("ThreadTeam needs at least one thread");
  }
  tids_.assign(static_cast<std::size_t>(numThreads), 0);
  tids_[0] = currentTid();
  ToolRegistry::instance().threadBegin(
      {ThreadKind::kInitial, tids_[0]});

  workers_.reserve(static_cast<std::size_t>(numThreads - 1));
  for (int t = 1; t < numThreads; ++t) {
    workers_.emplace_back([this, t] { workerLoop(t); });
  }
  // Wait for every worker to have announced itself, so memberTids() is
  // complete as soon as construction finishes (the property the probe
  // discovery method depends on).
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] {
    return std::count(tids_.begin(), tids_.end(), 0) == 0;
  });
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
  ToolRegistry::instance().threadEnd({ThreadKind::kInitial, tids_[0]});
}

void ThreadTeam::workerLoop(int threadNum) {
  // Linux limits comm to 15 chars; "omp-worker-NN" identifies the thread
  // in /proc scans the same way vendor runtimes name their pools.
  const std::string name = "omp-worker-" + std::to_string(threadNum);
  ::pthread_setname_np(::pthread_self(), name.substr(0, 15).c_str());
  const int tid = currentTid();
  ToolRegistry::instance().threadBegin({ThreadKind::kWorker, tid});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tids_[static_cast<std::size_t>(threadNum)] = tid;
  }
  cv_.notify_all();

  std::uint64_t seenGeneration = 0;
  while (true) {
    const RegionBody* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return shutdown_ || regionGeneration_ != seenGeneration;
      });
      if (shutdown_) {
        break;
      }
      seenGeneration = regionGeneration_;
      body = activeBody_;
    }
    try {
      (*body)(threadNum, numThreads_);
    } catch (...) {
      log::debug() << "team thread " << threadNum
                   << " threw in parallel region: "
                   << currentExceptionMessage();
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) {
        firstError_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --remaining_;
    }
    cv_.notify_all();
  }
  ToolRegistry::instance().threadEnd({ThreadKind::kWorker, tid});
}

void ThreadTeam::parallel(const RegionBody& body) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (activeBody_ != nullptr) {
      throw StateError("nested/concurrent parallel regions are unsupported");
    }
    activeBody_ = &body;
    remaining_ = numThreads_;
    ++regionGeneration_;
  }
  cv_.notify_all();

  // The caller is thread 0 of the team.
  try {
    body(0, numThreads_);
  } catch (...) {
    log::debug() << "team thread 0 threw in parallel region: "
                 << currentExceptionMessage();
    std::lock_guard<std::mutex> lock(mutex_);
    if (!firstError_) {
      firstError_ = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --remaining_;
  }
  cv_.notify_all();

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
    activeBody_ = nullptr;
    error = firstError_;
    firstError_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadTeam::parallelFor(long begin, long end,
                             const std::function<void(long)>& body) {
  if (end <= begin) {
    return;
  }
  const long n = numThreads_;
  const long total = end - begin;
  const long chunk = (total + n - 1) / n;
  parallel([&](int threadNum, int) {
    const long lo = begin + static_cast<long>(threadNum) * chunk;
    const long hi = std::min(end, lo + chunk);
    for (long i = lo; i < hi; ++i) {
      body(i);
    }
  });
}

std::vector<int> ThreadTeam::memberTids() const { return tids_; }

std::vector<int> probeTeamTids(ThreadTeam& team) {
  std::vector<int> observed(static_cast<std::size_t>(team.numThreads()), 0);
  team.parallel([&observed](int threadNum, int) {
    observed[static_cast<std::size_t>(threadNum)] = currentTid();
  });
  return observed;
}

}  // namespace zerosum::openmp
