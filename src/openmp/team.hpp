// Thread-team runtime substrate.
//
// A minimal OpenMP-like runtime: a persistent team of worker threads
// executing fork/join parallel regions, announcing thread begin/end through
// the OMPT-style ToolRegistry.  The team persists between regions (like
// real OpenMP runtimes keep their pool alive — the property ZeroSum's
// /proc task scan relies on), and probeTeamTids() reproduces the paper's
// pre-5.1 discovery trick of launching a trivial region to learn the
// workers' LWP ids.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zerosum::openmp {

/// Body of a parallel region: fn(threadNum, numThreads).  threadNum 0 runs
/// on the calling thread (the "master"), like #pragma omp parallel.
using RegionBody = std::function<void(int, int)>;

class ThreadTeam {
 public:
  /// Spawns `numThreads - 1` workers (thread 0 is the caller).  Workers are
  /// announced via ToolRegistry::threadBegin as they start.
  explicit ThreadTeam(int numThreads);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  [[nodiscard]] int numThreads() const { return numThreads_; }

  /// Runs one fork/join parallel region.  Blocks until every member has
  /// finished the body.  Exceptions from any member propagate (first wins).
  void parallel(const RegionBody& body);

  /// Static loop scheduling over [begin, end): each member handles a
  /// contiguous chunk, like #pragma omp parallel for schedule(static).
  void parallelFor(long begin, long end,
                   const std::function<void(long)>& body);

  /// Kernel LWP ids of all team members, master first.  Workers' ids are
  /// available once the constructor returns.
  [[nodiscard]] std::vector<int> memberTids() const;

 private:
  void workerLoop(int threadNum);

  int numThreads_;
  std::vector<std::thread> workers_;
  std::vector<int> tids_;  // index = threadNum; [0] set lazily per region

  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t regionGeneration_ = 0;
  const RegionBody* activeBody_ = nullptr;
  int remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr firstError_;
};

/// The pre-OMPT discovery method (paper §3.1.2): run a trivial parallel
/// region on `team` and return the member tids it observes.
std::vector<int> probeTeamTids(ThreadTeam& team);

}  // namespace zerosum::openmp
