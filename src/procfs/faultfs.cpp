#include "procfs/faultfs.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::procfs {

namespace {

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<FaultSite> siteFromName(const std::string& name) {
  for (const FaultSite site : kAllFaultSites) {
    if (name == faultSiteName(site)) {
      return site;
    }
  }
  return std::nullopt;
}

std::optional<FaultKind> kindFromName(const std::string& name) {
  if (name == "enoent" || name == "notfound") {
    return FaultKind::kNotFound;
  }
  if (name == "truncate") {
    return FaultKind::kTruncate;
  }
  if (name == "garbage") {
    return FaultKind::kGarbage;
  }
  if (name == "empty") {
    return FaultKind::kEmpty;
  }
  return std::nullopt;
}

std::size_t siteIndex(FaultSite site) {
  return static_cast<std::size_t>(site);
}

}  // namespace

std::string faultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kListTasks:
      return "listtasks";
    case FaultSite::kProcessStatus:
      return "status";
    case FaultSite::kTaskStat:
      return "taskstat";
    case FaultSite::kTaskStatus:
      return "taskstatus";
    case FaultSite::kMeminfo:
      return "meminfo";
    case FaultSite::kStat:
      return "stat";
    case FaultSite::kLoadavg:
      return "loadavg";
  }
  return "unknown";
}

std::string faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNotFound:
      return "enoent";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kGarbage:
      return "garbage";
    case FaultKind::kEmpty:
      return "empty";
  }
  return "unknown";
}

std::vector<FaultRule> parseFaultSpec(const std::string& spec) {
  std::vector<FaultRule> rules;
  for (const auto& rawElement : strings::split(spec, ',')) {
    const std::string element = strings::trim(rawElement);
    if (element.empty()) {
      continue;
    }
    const auto colon = element.find(':');
    const auto at = element.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      throw ConfigError("fault spec element '" + element +
                        "' is not site:kind@schedule");
    }
    FaultRule rule;
    const std::string siteName = toLower(element.substr(0, colon));
    const auto site = siteFromName(siteName);
    if (!site) {
      throw ConfigError("unknown fault site '" + siteName + "' in '" +
                        element + "'");
    }
    rule.site = *site;
    const std::string kindName =
        toLower(element.substr(colon + 1, at - colon - 1));
    const auto kind = kindFromName(kindName);
    if (!kind) {
      throw ConfigError("unknown fault kind '" + kindName + "' in '" +
                        element + "'");
    }
    rule.kind = *kind;

    const std::string schedule = element.substr(at + 1);
    const auto dots = schedule.find("..");
    if (dots == std::string::npos) {
      const auto call = strings::toU64(schedule);
      if (!call || *call == 0) {
        throw ConfigError("bad fault call index '" + schedule + "' in '" +
                          element + "'");
      }
      rule.firstCall = *call;
      rule.lastCall = *call;
    } else {
      const auto first = strings::toU64(schedule.substr(0, dots));
      if (!first || *first == 0) {
        throw ConfigError("bad fault window start in '" + element + "'");
      }
      rule.firstCall = *first;
      const std::string rest = schedule.substr(dots + 2);
      if (rest.empty()) {
        rule.lastCall = std::nullopt;  // sticky
      } else {
        const auto last = strings::toU64(rest);
        if (!last || *last < rule.firstCall) {
          throw ConfigError("bad fault window end in '" + element + "'");
        }
        rule.lastCall = *last;
      }
    }
    rules.push_back(rule);
  }
  return rules;
}

FaultInjectingProcFs::FaultInjectingProcFs(std::unique_ptr<ProcFs> inner,
                                           std::vector<FaultRule> rules,
                                           std::uint64_t seed)
    : inner_(std::move(inner)), rules_(std::move(rules)), seed_(seed) {
  if (!inner_) {
    throw ConfigError("FaultInjectingProcFs requires an inner provider");
  }
}

void FaultInjectingProcFs::addRule(FaultRule rule) {
  rules_.push_back(rule);
}

std::uint64_t FaultInjectingProcFs::callCount(FaultSite site) const {
  return calls_[siteIndex(site)];
}

std::uint64_t FaultInjectingProcFs::injectedCount(FaultSite site) const {
  return injected_[siteIndex(site)];
}

std::uint64_t FaultInjectingProcFs::totalInjected() const {
  std::uint64_t total = 0;
  for (const FaultSite site : kAllFaultSites) {
    total += injected_[siteIndex(site)];
  }
  return total;
}

std::optional<FaultKind> FaultInjectingProcFs::nextFault(
    FaultSite site) const {
  const std::uint64_t call = ++calls_[siteIndex(site)];
  for (const FaultRule& rule : rules_) {
    if (rule.site == site && rule.covers(call)) {
      ++injected_[siteIndex(site)];
      if (rule.kind == FaultKind::kNotFound) {
        throw NotFoundError("injected fault: " + faultSiteName(site) +
                            " call " + std::to_string(call));
      }
      return rule.kind;
    }
  }
  return std::nullopt;
}

std::string FaultInjectingProcFs::garbageBody(FaultSite site,
                                              std::uint64_t call) const {
  // Deterministic junk: an xorshift stream keyed by (seed, site, call).
  std::uint64_t state =
      seed_ ^ (static_cast<std::uint64_t>(siteIndex(site)) * 0x9E3779B97F4A7C15ULL) ^
      (call * 0xBF58476D1CE4E5B9ULL);
  if (state == 0) {
    state = 0x2545F4914F6CDD1DULL;
  }
  std::ostringstream out;
  for (int line = 0; line < 3; ++line) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    out << "#corrupt " << std::hex << state << std::dec << " ###\n";
  }
  return out.str();
}

std::string FaultInjectingProcFs::corrupt(FaultKind kind, FaultSite site,
                                          std::string body,
                                          std::uint64_t call) const {
  switch (kind) {
    case FaultKind::kTruncate:
      return body.substr(0, body.size() / 2);
    case FaultKind::kGarbage:
      return garbageBody(site, call);
    case FaultKind::kEmpty:
      return {};
    case FaultKind::kNotFound:
      break;  // handled in nextFault
  }
  return body;
}

int FaultInjectingProcFs::selfPid() const { return inner_->selfPid(); }

std::vector<int> FaultInjectingProcFs::listPids() const {
  return inner_->listPids();
}

std::vector<int> FaultInjectingProcFs::listTasks(int pid) const {
  const auto fault = nextFault(FaultSite::kListTasks);
  if (!fault) {
    return inner_->listTasks(pid);
  }
  if (*fault == FaultKind::kTruncate) {
    auto tasks = inner_->listTasks(pid);
    tasks.resize(tasks.size() / 2);
    return tasks;
  }
  // Garbage and empty both degrade to "no tasks visible this period":
  // a task directory has no text body to corrupt.
  return {};
}

std::string FaultInjectingProcFs::readProcessStatus(int pid) const {
  const auto site = FaultSite::kProcessStatus;
  const auto fault = nextFault(site);
  std::string body = inner_->readProcessStatus(pid);
  return fault ? corrupt(*fault, site, std::move(body), callCount(site))
               : body;
}

std::string FaultInjectingProcFs::readTaskStat(int pid, int tid) const {
  const auto site = FaultSite::kTaskStat;
  const auto fault = nextFault(site);
  std::string body = inner_->readTaskStat(pid, tid);
  return fault ? corrupt(*fault, site, std::move(body), callCount(site))
               : body;
}

std::string FaultInjectingProcFs::readTaskStatus(int pid, int tid) const {
  const auto site = FaultSite::kTaskStatus;
  const auto fault = nextFault(site);
  std::string body = inner_->readTaskStatus(pid, tid);
  return fault ? corrupt(*fault, site, std::move(body), callCount(site))
               : body;
}

std::string FaultInjectingProcFs::readMeminfo() const {
  const auto site = FaultSite::kMeminfo;
  const auto fault = nextFault(site);
  std::string body = inner_->readMeminfo();
  return fault ? corrupt(*fault, site, std::move(body), callCount(site))
               : body;
}

std::string FaultInjectingProcFs::readStat() const {
  const auto site = FaultSite::kStat;
  const auto fault = nextFault(site);
  std::string body = inner_->readStat();
  return fault ? corrupt(*fault, site, std::move(body), callCount(site))
               : body;
}

std::string FaultInjectingProcFs::readLoadavg() const {
  const auto site = FaultSite::kLoadavg;
  const auto fault = nextFault(site);
  std::string body = inner_->readLoadavg();
  return fault ? corrupt(*fault, site, std::move(body), callCount(site))
               : body;
}

std::unique_ptr<ProcFs> wrapFaultsFromEnv(std::unique_ptr<ProcFs> inner) {
  const auto spec = env::get("ZS_FAULT_SPEC");
  if (!spec || strings::trim(*spec).empty()) {
    return inner;
  }
  auto rules = parseFaultSpec(*spec);
  const auto seed = static_cast<std::uint64_t>(env::getInt("ZS_FAULT_SEED", 1));
  return std::make_unique<FaultInjectingProcFs>(std::move(inner),
                                                std::move(rules), seed);
}

}  // namespace zerosum::procfs
