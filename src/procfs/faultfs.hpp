// FaultInjectingProcFs: a ProcFs decorator that injects deterministic,
// seeded faults at chosen call sites.
//
// ZeroSum's first rule is "do no harm": the async monitor thread reads
// /proc every period for the life of the job, so it must survive every
// failure /proc can produce — a tid directory vanishing mid-scan, a stat
// read racing a thread exit, a truncated or garbled file body.  This
// decorator manufactures exactly those failures on a reproducible
// schedule, so the degradation machinery in core::MonitorSession can be
// exercised end-to-end in tests (and in live runs via ZS_FAULT_SPEC).
//
// A fault schedule is a list of rules.  Each rule names a call site, a
// fault kind, and a window of 1-based call indices at that site:
//   taskstat:enoent@3       one-shot: only the 3rd readTaskStat call fails
//   meminfo:truncate@5..    sticky: every readMeminfo call from the 5th on
//   stat:garbage@2..4       windowed: calls 2, 3 and 4
// The same grammar is accepted from the ZS_FAULT_SPEC environment
// variable as a comma-separated list (see parseFaultSpec / ZS_FAULT_SEED).
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "procfs/procfs.hpp"

namespace zerosum::procfs {

/// The observable read paths of a ProcFs provider.
enum class FaultSite {
  kListTasks,       // listTasks          "listtasks"
  kProcessStatus,   // readProcessStatus  "status"
  kTaskStat,        // readTaskStat       "taskstat"
  kTaskStatus,      // readTaskStatus     "taskstatus"
  kMeminfo,         // readMeminfo        "meminfo"
  kStat,            // readStat           "stat"
  kLoadavg,         // readLoadavg        "loadavg"
};

inline constexpr FaultSite kAllFaultSites[] = {
    FaultSite::kListTasks, FaultSite::kProcessStatus, FaultSite::kTaskStat,
    FaultSite::kTaskStatus, FaultSite::kMeminfo,      FaultSite::kStat,
    FaultSite::kLoadavg,
};

enum class FaultKind {
  kNotFound,  // "enoent": throw NotFoundError (pid/tid vanished)
  kTruncate,  // "truncate": return the first half of the real body
  kGarbage,   // "garbage": return deterministic junk derived from the seed
  kEmpty,     // "empty": return an empty body / task list
};

[[nodiscard]] std::string faultSiteName(FaultSite site);
[[nodiscard]] std::string faultKindName(FaultKind kind);

struct FaultRule {
  FaultSite site = FaultSite::kTaskStat;
  FaultKind kind = FaultKind::kNotFound;
  /// 1-based call index at `site` where the fault first fires.
  std::uint64_t firstCall = 1;
  /// Last call index the fault covers; nullopt = sticky (never stops).
  /// Defaults to firstCall, i.e. a one-shot fault.
  std::optional<std::uint64_t> lastCall = 1;

  [[nodiscard]] bool covers(std::uint64_t call) const {
    return call >= firstCall && (!lastCall || call <= *lastCall);
  }
};

/// Parses a ZS_FAULT_SPEC-style string ("site:kind@N", "site:kind@N..M",
/// "site:kind@N.." joined by commas).  Site and kind names are
/// case-insensitive; "enoent" and "notfound" are synonyms.  Throws
/// ConfigError on any malformed element — a typo in a fault schedule must
/// not silently disable the schedule.
[[nodiscard]] std::vector<FaultRule> parseFaultSpec(const std::string& spec);

class FaultInjectingProcFs final : public ProcFs {
 public:
  /// Wraps `inner`; `seed` makes the garbage bodies reproducible.
  explicit FaultInjectingProcFs(std::unique_ptr<ProcFs> inner,
                                std::vector<FaultRule> rules = {},
                                std::uint64_t seed = 1);

  void addRule(FaultRule rule);

  /// Calls observed at `site` so far (faulted or not).
  [[nodiscard]] std::uint64_t callCount(FaultSite site) const;
  /// Faults actually injected at `site` so far.
  [[nodiscard]] std::uint64_t injectedCount(FaultSite site) const;
  /// Faults injected across all sites.
  [[nodiscard]] std::uint64_t totalInjected() const;

  // --- ProcFs ------------------------------------------------------------
  [[nodiscard]] int selfPid() const override;
  [[nodiscard]] std::vector<int> listPids() const override;
  [[nodiscard]] std::vector<int> listTasks(int pid) const override;
  [[nodiscard]] std::string readProcessStatus(int pid) const override;
  [[nodiscard]] std::string readTaskStat(int pid, int tid) const override;
  [[nodiscard]] std::string readTaskStatus(int pid, int tid) const override;
  [[nodiscard]] std::string readMeminfo() const override;
  [[nodiscard]] std::string readStat() const override;
  [[nodiscard]] std::string readLoadavg() const override;

 private:
  /// Advances the site's call counter and returns the fault to apply to
  /// this call, if any.  Throws NotFoundError itself for kNotFound.
  [[nodiscard]] std::optional<FaultKind> nextFault(FaultSite site) const;
  [[nodiscard]] std::string corrupt(FaultKind kind, FaultSite site,
                                    std::string body,
                                    std::uint64_t call) const;
  [[nodiscard]] std::string garbageBody(FaultSite site,
                                        std::uint64_t call) const;

  std::unique_ptr<ProcFs> inner_;
  std::vector<FaultRule> rules_;
  std::uint64_t seed_;
  // ProcFs reads are const; the schedule bookkeeping is observer state.
  mutable std::uint64_t calls_[std::size(kAllFaultSites)] = {};
  mutable std::uint64_t injected_[std::size(kAllFaultSites)] = {};
};

/// Wraps `inner` with faults from ZS_FAULT_SPEC / ZS_FAULT_SEED; returns
/// `inner` unchanged when ZS_FAULT_SPEC is unset or empty.  Throws
/// ConfigError on a malformed spec.
[[nodiscard]] std::unique_ptr<ProcFs> wrapFaultsFromEnv(
    std::unique_ptr<ProcFs> inner);

}  // namespace zerosum::procfs
