#include "procfs/parse.hpp"

#include <bitset>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::procfs {

namespace {

std::uint64_t requireU64(std::string_view raw, const char* what) {
  const auto v = strings::toU64(raw);
  if (!v) {
    throw ParseError(std::string(what) + ": '" + std::string(raw) + "'");
  }
  return *v;
}

/// "1234 kB" -> 1234.
std::uint64_t parseKb(std::string_view value, const char* what) {
  strings::TokenCursor cur(value);
  std::string_view first;
  if (!cur.next(first)) {
    throw ParseError(std::string(what) + ": empty value");
  }
  return requireU64(first, what);
}

}  // namespace

void parseStatusInto(std::string_view text, ProcStatus& out) {
  out.pid = 0;
  out.tgid = 0;
  out.name.clear();
  out.state = '?';
  out.cpusAllowed = CpuSet{};
  out.vmRssKb = 0;
  out.vmHwmKb = 0;
  out.threads = 0;
  out.voluntaryCtxSwitches = 0;
  out.nonvoluntaryCtxSwitches = 0;

  bool sawList = false;
  std::string_view hexMask;
  std::string_view rest = text;
  std::string_view line;
  while (strings::nextLine(rest, line)) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    const std::string_view key = strings::trimView(line.substr(0, colon));
    const std::string_view value = strings::trimView(line.substr(colon + 1));
    if (key == "Name") {
      out.name.assign(value);
    } else if (key == "State") {
      if (value.empty()) {
        throw ParseError("State: empty");
      }
      out.state = value[0];
    } else if (key == "Tgid") {
      out.tgid = static_cast<int>(requireU64(value, "Tgid"));
    } else if (key == "Pid") {
      out.pid = static_cast<int>(requireU64(value, "Pid"));
    } else if (key == "VmRSS") {
      out.vmRssKb = parseKb(value, "VmRSS");
    } else if (key == "VmHWM") {
      out.vmHwmKb = parseKb(value, "VmHWM");
    } else if (key == "Threads") {
      out.threads = static_cast<int>(requireU64(value, "Threads"));
    } else if (key == "Cpus_allowed_list") {
      out.cpusAllowed = CpuSet::fromList(value);
      sawList = true;
    } else if (key == "Cpus_allowed") {
      hexMask = value;
    } else if (key == "voluntary_ctxt_switches") {
      out.voluntaryCtxSwitches = requireU64(value, "voluntary_ctxt_switches");
    } else if (key == "nonvoluntary_ctxt_switches") {
      out.nonvoluntaryCtxSwitches =
          requireU64(value, "nonvoluntary_ctxt_switches");
    }
  }
  // Older kernels only expose the hex mask; the list takes precedence.
  if (!sawList && !hexMask.empty()) {
    out.cpusAllowed = CpuSet::fromHexMask(hexMask);
  }
}

ProcStatus parseStatus(const std::string& text) {
  ProcStatus out;
  parseStatusInto(text, out);
  return out;
}

void parseTaskStatInto(std::string_view text, TaskStat& out) {
  const auto open = text.find('(');
  const auto close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    throw ParseError("task stat: missing comm parentheses");
  }
  out.tid = static_cast<int>(
      requireU64(strings::trimView(text.substr(0, open)), "stat tid"));
  out.comm.assign(text.substr(open + 1, close - open - 1));
  out.state = '?';
  out.minorFaults = 0;
  out.majorFaults = 0;
  out.utimeJiffies = 0;
  out.stimeJiffies = 0;
  out.numThreads = 0;
  out.processor = -1;

  // Fields after the comm, 1-indexed from field 3 ("state").
  // state ppid pgrp session tty_nr tpgid flags minflt cminflt majflt
  //  (0)   (1)  (2)   (3)    (4)    (5)   (6)   (7)    (8)     (9)
  // cmajflt utime stime cutime cstime priority nice num_threads ...
  //  (10)    (11)  (12)   (13)   (14)    (15)  (16)    (17)
  // processor is stat field 39, i.e. rest index 36.
  strings::TokenCursor cur(text.substr(close + 1));
  std::string_view tok;
  std::size_t idx = 0;
  for (; cur.next(tok); ++idx) {
    switch (idx) {
      case 0:
        out.state = tok[0];
        break;
      case 7:
        out.minorFaults = requireU64(tok, "minflt");
        break;
      case 9:
        out.majorFaults = requireU64(tok, "majflt");
        break;
      case 11:
        out.utimeJiffies = requireU64(tok, "utime");
        break;
      case 12:
        out.stimeJiffies = requireU64(tok, "stime");
        break;
      case 17:
        out.numThreads = static_cast<long>(requireU64(tok, "num_threads"));
        break;
      case 36:
        out.processor = static_cast<int>(requireU64(tok, "processor"));
        break;
      default:
        break;
    }
  }
  if (idx < 18) {
    throw ParseError("task stat: too few fields (" + std::to_string(idx) +
                     ")");
  }
}

TaskStat parseTaskStat(const std::string& text) {
  TaskStat out;
  parseTaskStatInto(text, out);
  return out;
}

void parseMeminfoInto(std::string_view text, MemInfo& out) {
  out = MemInfo{};
  std::string_view rest = text;
  std::string_view line;
  while (strings::nextLine(rest, line)) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    const std::string_view key = strings::trimView(line.substr(0, colon));
    const std::string_view value = strings::trimView(line.substr(colon + 1));
    if (key == "MemTotal") {
      out.totalKb = parseKb(value, "MemTotal");
    } else if (key == "MemFree") {
      out.freeKb = parseKb(value, "MemFree");
    } else if (key == "MemAvailable") {
      out.availableKb = parseKb(value, "MemAvailable");
    }
  }
  if (out.totalKb == 0) {
    throw ParseError("meminfo: missing MemTotal");
  }
}

MemInfo parseMeminfo(const std::string& text) {
  MemInfo out;
  parseMeminfoInto(text, out);
  return out;
}

void parseLoadavgInto(std::string_view text, LoadAvg& out) {
  out = LoadAvg{};
  strings::TokenCursor cur(text);
  std::string_view fields[4];
  std::size_t n = 0;
  std::string_view tok;
  while (n < 4 && cur.next(tok)) {
    fields[n++] = tok;
  }
  if (n < 4) {
    throw ParseError("loadavg: too few fields in '" + std::string(text) +
                     "'");
  }
  const auto l1 = strings::toDouble(fields[0]);
  const auto l5 = strings::toDouble(fields[1]);
  const auto l15 = strings::toDouble(fields[2]);
  if (!l1 || !l5 || !l15) {
    throw ParseError("loadavg: bad load value in '" + std::string(text) +
                     "'");
  }
  out.load1 = *l1;
  out.load5 = *l5;
  out.load15 = *l15;
  const auto slash = fields[3].find('/');
  if (slash == std::string_view::npos) {
    throw ParseError("loadavg: bad task counts '" + std::string(fields[3]) +
                     "'");
  }
  const auto runnable = strings::toU64(fields[3].substr(0, slash));
  const auto total = strings::toU64(fields[3].substr(slash + 1));
  if (!runnable || !total) {
    throw ParseError("loadavg: bad task counts '" + std::string(fields[3]) +
                     "'");
  }
  out.runnable = static_cast<int>(*runnable);
  out.total = static_cast<int>(*total);
}

LoadAvg parseLoadavg(const std::string& text) {
  LoadAvg out;
  parseLoadavgInto(text, out);
  return out;
}

void parseStatInto(std::string_view text, StatSnapshot& out) {
  out.aggregate = CpuTimes{};
  bool sawAggregate = false;
  // Which CPU indexes this text mentions; entries of `out.perCpu` not
  // seen are erased afterwards, so reuse matches a fresh parse while the
  // steady state (an unchanged topology) touches no map nodes.
  std::bitset<CpuSet::kMaxCpus> seen;
  bool seenOverflow = false;
  std::size_t seenCount = 0;

  std::string_view rest = text;
  std::string_view line;
  while (strings::nextLine(rest, line)) {
    if (!strings::startsWith(line, "cpu")) {
      continue;
    }
    strings::TokenCursor cur(line);
    std::string_view fields[9];
    std::size_t n = 0;
    std::string_view tok;
    while (n < 9 && cur.next(tok)) {
      fields[n++] = tok;
    }
    if (n < 5) {
      throw ParseError("/proc/stat cpu line too short: '" +
                       std::string(line) + "'");
    }
    CpuTimes t;
    auto field = [&](std::size_t i) -> std::uint64_t {
      return i < n ? requireU64(fields[i], "cpu jiffies") : 0;
    };
    t.user = field(1);
    t.nice = field(2);
    t.system = field(3);
    t.idle = field(4);
    t.iowait = field(5);
    t.irq = field(6);
    t.softirq = field(7);
    t.steal = field(8);
    if (fields[0] == "cpu") {
      out.aggregate = t;
      sawAggregate = true;
    } else {
      const auto idx = strings::toU64(fields[0].substr(3));
      if (!idx) {
        throw ParseError("bad cpu label '" + std::string(fields[0]) + "'");
      }
      const auto cpu = static_cast<int>(*idx);
      out.perCpu[cpu] = t;
      ++seenCount;
      if (*idx < seen.size()) {
        seen.set(*idx);
      } else {
        seenOverflow = true;
      }
    }
  }
  if (!sawAggregate && seenCount == 0) {
    throw ParseError("/proc/stat: no cpu lines");
  }
  if (seenCount != out.perCpu.size() && !seenOverflow) {
    for (auto it = out.perCpu.begin(); it != out.perCpu.end();) {
      if (it->first < 0 ||
          !seen.test(static_cast<std::size_t>(it->first))) {
        it = out.perCpu.erase(it);
      } else {
        ++it;
      }
    }
  }
}

StatSnapshot parseStat(const std::string& text) {
  StatSnapshot out;
  parseStatInto(text, out);
  return out;
}

}  // namespace zerosum::procfs
