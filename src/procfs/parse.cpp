#include "procfs/parse.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace zerosum::procfs {

namespace {

std::uint64_t requireU64(std::string_view raw, const std::string& what) {
  const auto v = strings::toU64(raw);
  if (!v) {
    throw ParseError(what + ": '" + std::string(raw) + "'");
  }
  return *v;
}

/// "1234 kB" -> 1234.
std::uint64_t parseKb(const std::string& value, const std::string& what) {
  const auto parts = strings::splitWs(value);
  if (parts.empty()) {
    throw ParseError(what + ": empty value");
  }
  return requireU64(parts[0], what);
}

}  // namespace

ProcStatus parseStatus(const std::string& text) {
  ProcStatus out;
  bool sawList = false;
  std::string hexMask;
  for (const auto& line : strings::split(text, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string key = strings::trim(line.substr(0, colon));
    const std::string value = strings::trim(line.substr(colon + 1));
    if (key == "Name") {
      out.name = value;
    } else if (key == "State") {
      if (value.empty()) {
        throw ParseError("State: empty");
      }
      out.state = value[0];
    } else if (key == "Tgid") {
      out.tgid = static_cast<int>(requireU64(value, "Tgid"));
    } else if (key == "Pid") {
      out.pid = static_cast<int>(requireU64(value, "Pid"));
    } else if (key == "VmRSS") {
      out.vmRssKb = parseKb(value, "VmRSS");
    } else if (key == "VmHWM") {
      out.vmHwmKb = parseKb(value, "VmHWM");
    } else if (key == "Threads") {
      out.threads = static_cast<int>(requireU64(value, "Threads"));
    } else if (key == "Cpus_allowed_list") {
      out.cpusAllowed = CpuSet::fromList(value);
      sawList = true;
    } else if (key == "Cpus_allowed") {
      hexMask = value;
    } else if (key == "voluntary_ctxt_switches") {
      out.voluntaryCtxSwitches = requireU64(value, "voluntary_ctxt_switches");
    } else if (key == "nonvoluntary_ctxt_switches") {
      out.nonvoluntaryCtxSwitches =
          requireU64(value, "nonvoluntary_ctxt_switches");
    }
  }
  // Older kernels only expose the hex mask; the list takes precedence.
  if (!sawList && !hexMask.empty()) {
    out.cpusAllowed = CpuSet::fromHexMask(hexMask);
  }
  return out;
}

TaskStat parseTaskStat(const std::string& text) {
  TaskStat out;
  const auto open = text.find('(');
  const auto close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    throw ParseError("task stat: missing comm parentheses");
  }
  out.tid = static_cast<int>(
      requireU64(strings::trim(text.substr(0, open)), "stat tid"));
  out.comm = text.substr(open + 1, close - open - 1);

  // Fields after the comm, 1-indexed from field 3 ("state").
  const auto rest = strings::splitWs(text.substr(close + 1));
  // state ppid pgrp session tty_nr tpgid flags minflt cminflt majflt
  //  (0)   (1)  (2)   (3)    (4)    (5)   (6)   (7)    (8)     (9)
  // cmajflt utime stime cutime cstime priority nice num_threads ...
  //  (10)    (11)  (12)   (13)   (14)    (15)  (16)    (17)
  // processor is stat field 39, i.e. rest index 36.
  if (rest.size() < 18) {
    throw ParseError("task stat: too few fields (" +
                     std::to_string(rest.size()) + ")");
  }
  if (rest[0].empty()) {
    throw ParseError("task stat: empty state");
  }
  out.state = rest[0][0];
  out.minorFaults = requireU64(rest[7], "minflt");
  out.majorFaults = requireU64(rest[9], "majflt");
  out.utimeJiffies = requireU64(rest[11], "utime");
  out.stimeJiffies = requireU64(rest[12], "stime");
  out.numThreads = static_cast<long>(requireU64(rest[17], "num_threads"));
  if (rest.size() > 36) {
    out.processor = static_cast<int>(requireU64(rest[36], "processor"));
  }
  return out;
}

MemInfo parseMeminfo(const std::string& text) {
  MemInfo out;
  for (const auto& line : strings::split(text, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string key = strings::trim(line.substr(0, colon));
    const std::string value = strings::trim(line.substr(colon + 1));
    if (key == "MemTotal") {
      out.totalKb = parseKb(value, "MemTotal");
    } else if (key == "MemFree") {
      out.freeKb = parseKb(value, "MemFree");
    } else if (key == "MemAvailable") {
      out.availableKb = parseKb(value, "MemAvailable");
    }
  }
  if (out.totalKb == 0) {
    throw ParseError("meminfo: missing MemTotal");
  }
  return out;
}

LoadAvg parseLoadavg(const std::string& text) {
  const auto fields = strings::splitWs(text);
  if (fields.size() < 4) {
    throw ParseError("loadavg: too few fields in '" + text + "'");
  }
  LoadAvg out;
  const auto l1 = strings::toDouble(fields[0]);
  const auto l5 = strings::toDouble(fields[1]);
  const auto l15 = strings::toDouble(fields[2]);
  if (!l1 || !l5 || !l15) {
    throw ParseError("loadavg: bad load value in '" + text + "'");
  }
  out.load1 = *l1;
  out.load5 = *l5;
  out.load15 = *l15;
  const auto slash = fields[3].find('/');
  if (slash == std::string::npos) {
    throw ParseError("loadavg: bad task counts '" + fields[3] + "'");
  }
  const auto runnable =
      strings::toU64(std::string_view(fields[3]).substr(0, slash));
  const auto total =
      strings::toU64(std::string_view(fields[3]).substr(slash + 1));
  if (!runnable || !total) {
    throw ParseError("loadavg: bad task counts '" + fields[3] + "'");
  }
  out.runnable = static_cast<int>(*runnable);
  out.total = static_cast<int>(*total);
  return out;
}

StatSnapshot parseStat(const std::string& text) {
  StatSnapshot out;
  bool sawAggregate = false;
  for (const auto& line : strings::split(text, '\n')) {
    if (!strings::startsWith(line, "cpu")) {
      continue;
    }
    const auto fields = strings::splitWs(line);
    if (fields.size() < 5) {
      throw ParseError("/proc/stat cpu line too short: '" + line + "'");
    }
    CpuTimes t;
    auto field = [&](std::size_t i) -> std::uint64_t {
      return i < fields.size() ? requireU64(fields[i], "cpu jiffies") : 0;
    };
    t.user = field(1);
    t.nice = field(2);
    t.system = field(3);
    t.idle = field(4);
    t.iowait = field(5);
    t.irq = field(6);
    t.softirq = field(7);
    t.steal = field(8);
    if (fields[0] == "cpu") {
      out.aggregate = t;
      sawAggregate = true;
    } else {
      const auto idx = strings::toU64(std::string_view(fields[0]).substr(3));
      if (!idx) {
        throw ParseError("bad cpu label '" + fields[0] + "'");
      }
      out.perCpu[static_cast<int>(*idx)] = t;
    }
  }
  if (!sawAggregate && out.perCpu.empty()) {
    throw ParseError("/proc/stat: no cpu lines");
  }
  return out;
}

}  // namespace zerosum::procfs
