// Parsers for the kernel text formats.  Both providers (the live /proc and
// the simulator's rendered files) funnel through these functions, so the
// parsing logic is exercised by every simulated experiment as well as by
// real-process monitoring.
//
// Each format has two entry points: the classic value-returning parser,
// and a zero-allocation `*Into` variant that tokenizes the text as
// string_views and reuses the capacity of the caller's output struct.
// The monitor's steady-state sampling loop uses the `*Into` family
// exclusively (see DESIGN.md, "Zero-allocation sampling hot path").
#pragma once

#include <string>
#include <string_view>

#include "procfs/types.hpp"

namespace zerosum::procfs {

/// Parses /proc/<pid>/status-format text.  Unknown keys are ignored (the
/// real file has dozens of fields we do not use).  Throws ParseError when a
/// known key has a malformed value.
ProcStatus parseStatus(const std::string& text);
/// Zero-allocation variant: resets and fills `out`, reusing its string
/// capacity.  Allocates only on first growth or on the error path.
void parseStatusInto(std::string_view text, ProcStatus& out);

/// Parses a /proc/<pid>/task/<tid>/stat line.  The comm field is delimited
/// by parentheses and may itself contain spaces and ')' — parsing anchors
/// on the *last* closing parenthesis, as the kernel documentation requires.
TaskStat parseTaskStat(const std::string& text);
void parseTaskStatInto(std::string_view text, TaskStat& out);

MemInfo parseMeminfo(const std::string& text);
void parseMeminfoInto(std::string_view text, MemInfo& out);

/// Parses "/proc/loadavg" ("0.52 0.58 0.59 2/1345 12345").
LoadAvg parseLoadavg(const std::string& text);
void parseLoadavgInto(std::string_view text, LoadAvg& out);

StatSnapshot parseStat(const std::string& text);
/// Reuses `out.perCpu` nodes: on an unchanged CPU topology (the steady
/// state) no map node is allocated or freed; CPUs that disappear from the
/// text are erased.
void parseStatInto(std::string_view text, StatSnapshot& out);

}  // namespace zerosum::procfs
