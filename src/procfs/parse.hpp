// Parsers for the kernel text formats.  Both providers (the live /proc and
// the simulator's rendered files) funnel through these functions, so the
// parsing logic is exercised by every simulated experiment as well as by
// real-process monitoring.
#pragma once

#include <string>

#include "procfs/types.hpp"

namespace zerosum::procfs {

/// Parses /proc/<pid>/status-format text.  Unknown keys are ignored (the
/// real file has dozens of fields we do not use).  Throws ParseError when a
/// known key has a malformed value.
ProcStatus parseStatus(const std::string& text);

/// Parses a /proc/<pid>/task/<tid>/stat line.  The comm field is delimited
/// by parentheses and may itself contain spaces and ')' — parsing anchors
/// on the *last* closing parenthesis, as the kernel documentation requires.
TaskStat parseTaskStat(const std::string& text);

MemInfo parseMeminfo(const std::string& text);

/// Parses "/proc/loadavg" ("0.52 0.58 0.59 2/1345 12345").
LoadAvg parseLoadavg(const std::string& text);

StatSnapshot parseStat(const std::string& text);

}  // namespace zerosum::procfs
