// The provider interface between ZeroSum's trackers and the operating
// system: everything the monitor reads comes through here, so the same
// tracker code observes either the live kernel (RealProcFs) or the node
// simulator (SimProcFs).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "procfs/parse.hpp"
#include "procfs/types.hpp"

namespace zerosum::procfs {

class ProcFs {
 public:
  virtual ~ProcFs() = default;

  /// Pid of the process being monitored ("self").
  [[nodiscard]] virtual int selfPid() const = 0;

  /// All pids visible to the provider.  The real provider only exposes
  /// self (a user-space tool monitors its own process); the simulator
  /// exposes every rank on the node.
  [[nodiscard]] virtual std::vector<int> listPids() const = 0;

  /// LWP ids of a process — the /proc/<pid>/task directory listing the
  /// paper uses instead of intercepting pthread_create (§3.1.1).
  [[nodiscard]] virtual std::vector<int> listTasks(int pid) const = 0;

  // Raw file bodies in kernel text format.
  [[nodiscard]] virtual std::string readProcessStatus(int pid) const = 0;
  [[nodiscard]] virtual std::string readTaskStat(int pid, int tid) const = 0;
  [[nodiscard]] virtual std::string readTaskStatus(int pid, int tid) const = 0;
  [[nodiscard]] virtual std::string readMeminfo() const = 0;
  [[nodiscard]] virtual std::string readStat() const = 0;
  [[nodiscard]] virtual std::string readLoadavg() const = 0;

  // Zero-allocation variants used by the sampling hot path: fill the
  // caller's buffers, reusing their capacity.  The defaults delegate to
  // the string-returning readers (correct for the simulator and fault
  // decorators); RealProcFs overrides them with open-once/pread file
  // handles so a steady-state sample performs no heap allocation.
  virtual void readProcessStatusInto(int pid, std::string& buf) const;
  virtual void readTaskStatInto(int pid, int tid, std::string& buf) const;
  virtual void readTaskStatusInto(int pid, int tid, std::string& buf) const;
  virtual void readMeminfoInto(std::string& buf) const;
  virtual void readStatInto(std::string& buf) const;
  virtual void readLoadavgInto(std::string& buf) const;
  /// Clears and refills `out` with the sorted LWP ids of `pid`.
  virtual void listTasksInto(int pid, std::vector<int>& out) const;

  // Typed conveniences (parse the raw bodies).
  [[nodiscard]] ProcStatus processStatus(int pid) const;
  [[nodiscard]] TaskStat taskStat(int pid, int tid) const;
  [[nodiscard]] ProcStatus taskStatus(int pid, int tid) const;
  [[nodiscard]] MemInfo memInfo() const;
  [[nodiscard]] StatSnapshot stat() const;
  [[nodiscard]] LoadAvg loadAvg() const;
};

/// Provider over the live kernel /proc (optionally under an alternate root
/// for tests).  listPids() returns {selfPid}.
std::unique_ptr<ProcFs> makeRealProcFs(std::string procRoot = "/proc");

}  // namespace zerosum::procfs
