#include <unistd.h>
#include <algorithm>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "procfs/procfs.hpp"

namespace zerosum::procfs {

ProcStatus ProcFs::processStatus(int pid) const {
  return parseStatus(readProcessStatus(pid));
}

TaskStat ProcFs::taskStat(int pid, int tid) const {
  return parseTaskStat(readTaskStat(pid, tid));
}

ProcStatus ProcFs::taskStatus(int pid, int tid) const {
  return parseStatus(readTaskStatus(pid, tid));
}

MemInfo ProcFs::memInfo() const { return parseMeminfo(readMeminfo()); }

StatSnapshot ProcFs::stat() const { return parseStat(readStat()); }

LoadAvg ProcFs::loadAvg() const { return parseLoadavg(readLoadavg()); }

namespace {

class RealProcFs final : public ProcFs {
 public:
  explicit RealProcFs(std::string procRoot) : root_(std::move(procRoot)) {}

  [[nodiscard]] int selfPid() const override {
    return static_cast<int>(::getpid());
  }

  [[nodiscard]] std::vector<int> listPids() const override {
    return {selfPid()};
  }

  [[nodiscard]] std::vector<int> listTasks(int pid) const override {
    namespace fs = std::filesystem;
    std::vector<int> out;
    const fs::path dir = fs::path(root_) / std::to_string(pid) / "task";
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      throw NotFoundError(dir.string() + " (" + ec.message() + ")");
    }
    // Iterate manually: a tid directory vanishing mid-listing (thread
    // exit race) must not discard the tasks already collected.  Only a
    // missing process directory is fatal.
    for (const fs::directory_iterator end; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      const auto tid = strings::toU64(it->path().filename().string());
      if (tid) {
        out.push_back(static_cast<int>(*tid));
      }
    }
    std::error_code existsEc;
    if (ec && !fs::exists(dir, existsEc)) {
      throw NotFoundError(dir.string() + " (" + ec.message() + ")");
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::string readProcessStatus(int pid) const override {
    return readFile(root_ + "/" + std::to_string(pid) + "/status");
  }

  [[nodiscard]] std::string readTaskStat(int pid, int tid) const override {
    return readFile(root_ + "/" + std::to_string(pid) + "/task/" +
                    std::to_string(tid) + "/stat");
  }

  [[nodiscard]] std::string readTaskStatus(int pid, int tid) const override {
    return readFile(root_ + "/" + std::to_string(pid) + "/task/" +
                    std::to_string(tid) + "/status");
  }

  [[nodiscard]] std::string readMeminfo() const override {
    return readFile(root_ + "/meminfo");
  }

  [[nodiscard]] std::string readStat() const override {
    return readFile(root_ + "/stat");
  }

  [[nodiscard]] std::string readLoadavg() const override {
    return readFile(root_ + "/loadavg");
  }

 private:
  static std::string readFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      throw NotFoundError(path);
    }
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
  }

  std::string root_;
};

}  // namespace

std::unique_ptr<ProcFs> makeRealProcFs(std::string procRoot) {
  return std::make_unique<RealProcFs>(std::move(procRoot));
}

}  // namespace zerosum::procfs
