#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "procfs/procfs.hpp"

namespace zerosum::procfs {

ProcStatus ProcFs::processStatus(int pid) const {
  return parseStatus(readProcessStatus(pid));
}

TaskStat ProcFs::taskStat(int pid, int tid) const {
  return parseTaskStat(readTaskStat(pid, tid));
}

ProcStatus ProcFs::taskStatus(int pid, int tid) const {
  return parseStatus(readTaskStatus(pid, tid));
}

MemInfo ProcFs::memInfo() const { return parseMeminfo(readMeminfo()); }

StatSnapshot ProcFs::stat() const { return parseStat(readStat()); }

LoadAvg ProcFs::loadAvg() const { return parseLoadavg(readLoadavg()); }

// Default zero-alloc shims: providers without a faster path (the
// simulator, the fault decorator) pay one string move per read, which
// keeps them correct without touching their code.
void ProcFs::readProcessStatusInto(int pid, std::string& buf) const {
  buf = readProcessStatus(pid);
}
void ProcFs::readTaskStatInto(int pid, int tid, std::string& buf) const {
  buf = readTaskStat(pid, tid);
}
void ProcFs::readTaskStatusInto(int pid, int tid, std::string& buf) const {
  buf = readTaskStatus(pid, tid);
}
void ProcFs::readMeminfoInto(std::string& buf) const { buf = readMeminfo(); }
void ProcFs::readStatInto(std::string& buf) const { buf = readStat(); }
void ProcFs::readLoadavgInto(std::string& buf) const { buf = readLoadavg(); }
void ProcFs::listTasksInto(int pid, std::vector<int>& out) const {
  out = listTasks(pid);
}

namespace {

/// Live-kernel provider.  Hot-path reads go through a cache of
/// open-once file descriptors (pread at offset 0 re-reads a /proc file
/// without a fresh open), and the task-directory scan reuses one DIR
/// stream per pid via rewinddir().  All cached state is guarded by one
/// mutex — in practice only the monitor thread touches it, so the lock
/// is uncontended; it exists so incidental concurrent reads (tests,
/// reports racing a live monitor) stay safe.
class RealProcFs final : public ProcFs {
 public:
  explicit RealProcFs(std::string procRoot) : root_(std::move(procRoot)) {}

  ~RealProcFs() override {
    for (auto& [key, fd] : fds_) {
      ::close(fd);
    }
    for (auto& [pid, dir] : taskDirs_) {
      ::closedir(dir);
    }
  }

  [[nodiscard]] int selfPid() const override {
    return static_cast<int>(::getpid());
  }

  [[nodiscard]] std::vector<int> listPids() const override {
    return {selfPid()};
  }

  [[nodiscard]] std::vector<int> listTasks(int pid) const override {
    std::vector<int> out;
    listTasksInto(pid, out);
    return out;
  }

  void listTasksInto(int pid, std::vector<int>& out) const override {
    out.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    DIR* dir = taskDir(pid);
    ::rewinddir(dir);
    // readdir() into the reused DIR buffer: a tid vanishing mid-listing
    // (thread exit race) must not discard the tasks already collected.
    errno = 0;
    while (const dirent* entry = ::readdir(dir)) {
      int tid = 0;
      const char* name = entry->d_name;
      const char* end = name + std::strlen(name);
      const auto [ptr, ec] = std::from_chars(name, end, tid);
      if (ec == std::errc{} && ptr == end) {
        out.push_back(tid);
      }
      errno = 0;
    }
    std::sort(out.begin(), out.end());
  }

  [[nodiscard]] std::string readProcessStatus(int pid) const override {
    std::string buf;
    readProcessStatusInto(pid, buf);
    return buf;
  }

  [[nodiscard]] std::string readTaskStat(int pid, int tid) const override {
    std::string buf;
    readTaskStatInto(pid, tid, buf);
    return buf;
  }

  [[nodiscard]] std::string readTaskStatus(int pid, int tid) const override {
    std::string buf;
    readTaskStatusInto(pid, tid, buf);
    return buf;
  }

  [[nodiscard]] std::string readMeminfo() const override {
    std::string buf;
    readMeminfoInto(buf);
    return buf;
  }

  [[nodiscard]] std::string readStat() const override {
    std::string buf;
    readStatInto(buf);
    return buf;
  }

  [[nodiscard]] std::string readLoadavg() const override {
    std::string buf;
    readLoadavgInto(buf);
    return buf;
  }

  void readProcessStatusInto(int pid, std::string& buf) const override {
    readCached({kProcessStatus, pid, 0}, buf);
  }
  void readTaskStatInto(int pid, int tid, std::string& buf) const override {
    readCached({kTaskStat, pid, tid}, buf);
  }
  void readTaskStatusInto(int pid, int tid, std::string& buf) const override {
    readCached({kTaskStatus, pid, tid}, buf);
  }
  void readMeminfoInto(std::string& buf) const override {
    readCached({kMeminfo, 0, 0}, buf);
  }
  void readStatInto(std::string& buf) const override {
    readCached({kStat, 0, 0}, buf);
  }
  void readLoadavgInto(std::string& buf) const override {
    readCached({kLoadavg, 0, 0}, buf);
  }

 private:
  enum FileKind : int {
    kProcessStatus,
    kTaskStat,
    kTaskStatus,
    kMeminfo,
    kStat,
    kLoadavg,
  };

  /// (kind, pid, tid) — an ordered map keeps hot-path lookups
  /// allocation- and hash-free.
  using FileKey = std::tuple<int, int, int>;

  /// More cached descriptors than this and the task-file entries are
  /// dropped wholesale (a run that churns through many short-lived
  /// threads must not grow the cache without bound; live files reopen
  /// on the next period).
  static constexpr std::size_t kMaxCachedFds = 4096;

  [[nodiscard]] std::string pathOf(const FileKey& key) const {
    const auto [kind, pid, tid] = key;
    switch (kind) {
      case kProcessStatus:
        return root_ + "/" + std::to_string(pid) + "/status";
      case kTaskStat:
        return root_ + "/" + std::to_string(pid) + "/task/" +
               std::to_string(tid) + "/stat";
      case kTaskStatus:
        return root_ + "/" + std::to_string(pid) + "/task/" +
               std::to_string(tid) + "/status";
      case kMeminfo:
        return root_ + "/meminfo";
      case kStat:
        return root_ + "/stat";
      default:
        return root_ + "/loadavg";
    }
  }

  /// Opens (or reuses) the descriptor for `key` and reads the whole file
  /// into `buf` via pread.  On any read failure the descriptor is
  /// evicted — a dead thread's recycled fd must not serve stale bytes —
  /// and the read is retried once on a fresh open before reporting
  /// NotFoundError.
  void readCached(const FileKey& key, std::string& buf) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(key);
    if (it == fds_.end()) {
      const int fd = openFile(key);
      it = fds_.emplace(key, fd).first;
    }
    if (!readWhole(it->second, buf)) {
      ::close(it->second);
      fds_.erase(it);
      const int fd = openFile(key);  // throws NotFoundError when gone
      it = fds_.emplace(key, fd).first;
      if (!readWhole(it->second, buf)) {
        ::close(it->second);
        fds_.erase(it);
        throw NotFoundError(pathOf(key));
      }
    }
  }

  [[nodiscard]] int openFile(const FileKey& key) const {
    if (fds_.size() >= kMaxCachedFds) {
      evictTaskFds();
    }
    const std::string path = pathOf(key);
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      throw NotFoundError(path);
    }
    return fd;
  }

  /// pread-from-zero whole-file read into the reused buffer.  Returns
  /// false on a read error (vanished task, stale descriptor).
  [[nodiscard]] bool readWhole(int fd, std::string& buf) const {
    if (buf.capacity() < 4096) {
      buf.reserve(4096);
    }
    buf.resize(buf.capacity());
    std::size_t off = 0;
    while (true) {
      if (buf.size() - off < 1024) {
        buf.resize(buf.size() * 2);
      }
      const ssize_t n = ::pread(fd, buf.data() + off, buf.size() - off,
                                static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      if (n == 0) {
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    buf.resize(off);
    return true;
  }

  void evictTaskFds() const {
    for (auto it = fds_.begin(); it != fds_.end();) {
      const auto kind = std::get<0>(it->first);
      if (kind == kTaskStat || kind == kTaskStatus) {
        ::close(it->second);
        it = fds_.erase(it);
      } else {
        ++it;
      }
    }
  }

  [[nodiscard]] DIR* taskDir(int pid) const {
    if (const auto it = taskDirs_.find(pid); it != taskDirs_.end()) {
      return it->second;
    }
    const std::string path = root_ + "/" + std::to_string(pid) + "/task";
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      throw NotFoundError(path + " (" + std::strerror(errno) + ")");
    }
    return taskDirs_.emplace(pid, dir).first->second;
  }

  std::string root_;
  mutable std::mutex mutex_;
  mutable std::map<FileKey, int> fds_;
  mutable std::map<int, DIR*> taskDirs_;
};

}  // namespace

std::unique_ptr<ProcFs> makeRealProcFs(std::string procRoot) {
  return std::make_unique<RealProcFs>(std::move(procRoot));
}

}  // namespace zerosum::procfs
