#include "procfs/simfs.hpp"

#include <tuple>
#include <sstream>

#include "common/error.hpp"

namespace zerosum::procfs {

namespace {

class SimProcFs final : public ProcFs {
 public:
  SimProcFs(const sim::SimNode& node, int selfPid)
      : node_(node), selfPid_(selfPid) {
    if (selfPid_ == 0) {
      const auto pids = node_.processIds();
      if (pids.empty()) {
        throw StateError("SimProcFs: node has no processes");
      }
      selfPid_ = pids.front();
    } else {
      std::ignore = node_.process(selfPid_);  // validates existence
    }
  }

  [[nodiscard]] int selfPid() const override { return selfPid_; }

  [[nodiscard]] std::vector<int> listPids() const override {
    return node_.processIds();
  }

  [[nodiscard]] std::vector<int> listTasks(int pid) const override {
    std::vector<int> out;
    for (sim::Tid tid : node_.taskIds(pid)) {
      if (!node_.task(tid).finished()) {
        out.push_back(tid);
      }
    }
    return out;
  }

  [[nodiscard]] std::string readProcessStatus(int pid) const override {
    const auto& proc = node_.process(pid);
    const auto& main = node_.task(proc.tasks.front());
    std::ostringstream out;
    out << "Name:\t" << proc.name << '\n';
    out << "State:\t" << sim::stateCode(main.state) << " (simulated)\n";
    out << "Tgid:\t" << pid << '\n';
    out << "Pid:\t" << pid << '\n';
    out << "VmHWM:\t" << proc.rssBytes(node_.now()) / 1024 << " kB\n";
    out << "VmRSS:\t" << proc.rssBytes(node_.now()) / 1024 << " kB\n";
    out << "Threads:\t" << listTasks(pid).size() << '\n';
    out << "Cpus_allowed_list:\t" << proc.affinity.toList() << '\n';
    out << "voluntary_ctxt_switches:\t" << main.voluntaryCtx << '\n';
    out << "nonvoluntary_ctxt_switches:\t" << main.nonvoluntaryCtx << '\n';
    return out.str();
  }

  [[nodiscard]] std::string readTaskStat(int pid, int tid) const override {
    requireTaskOf(pid, tid);
    const auto& t = node_.task(tid);
    std::ostringstream out;
    // Fields per proc(5); unsampled fields are rendered as zeros to keep
    // positional parsing honest.  processor is field 39.
    out << tid << " (" << t.name << ") " << sim::stateCode(t.state);
    out << " " << pid        // ppid (4)
        << " " << pid        // pgrp (5)
        << " 0 0 0 0";       // session tty tpgid flags (6-9)
    out << " " << t.minorFaults << " 0 " << t.majorFaults << " 0";  // 10-13
    out << " " << t.utime << " " << t.stime << " 0 0";              // 14-17
    out << " 20 0";                                                 // 18-19
    out << " " << node_.taskIds(pid).size();                        // 20
    out << " 0 0";                                                  // 21-22
    out << " 0 0";  // vsize rss (23-24)
    for (int f = 25; f <= 38; ++f) {
      out << " 0";
    }
    out << " " << (t.lastCpu >= 0 ? t.lastCpu : 0);  // processor (39)
    out << " 0 0 0 0 0\n";
    return out.str();
  }

  [[nodiscard]] std::string readTaskStatus(int pid, int tid) const override {
    requireTaskOf(pid, tid);
    const auto& t = node_.task(tid);
    std::ostringstream out;
    out << "Name:\t" << t.name << '\n';
    out << "State:\t" << sim::stateCode(t.state) << " (simulated)\n";
    out << "Tgid:\t" << pid << '\n';
    out << "Pid:\t" << tid << '\n';
    out << "Threads:\t" << node_.taskIds(pid).size() << '\n';
    out << "Cpus_allowed_list:\t" << t.affinity.toList() << '\n';
    out << "voluntary_ctxt_switches:\t" << t.voluntaryCtx << '\n';
    out << "nonvoluntary_ctxt_switches:\t" << t.nonvoluntaryCtx << '\n';
    return out.str();
  }

  [[nodiscard]] std::string readMeminfo() const override {
    const std::uint64_t totalKb = node_.memTotalBytes() / 1024;
    const std::uint64_t freeKb = node_.memFreeBytes() / 1024;
    std::ostringstream out;
    out << "MemTotal:       " << totalKb << " kB\n";
    out << "MemFree:        " << freeKb << " kB\n";
    // The kernel's MemAvailable adds reclaimable caches; the simulator has
    // none, so available == free.
    out << "MemAvailable:   " << freeKb << " kB\n";
    return out.str();
  }

  [[nodiscard]] std::string readLoadavg() const override {
    const auto load = node_.loadAverages();
    std::ostringstream out;
    out << std::fixed;
    out.precision(2);
    out << load.load1 << ' ' << load.load5 << ' ' << load.load15 << ' '
        << load.runnable << '/' << load.total << " 0\n";
    return out.str();
  }

  [[nodiscard]] std::string readStat() const override {
    std::ostringstream out;
    sim::HwtCounters agg;
    for (std::size_t hwt : node_.hwts().toVector()) {
      const auto& c = node_.hwtCounters(hwt);
      agg.user += c.user;
      agg.system += c.system;
      agg.idle += c.idle;
    }
    out << "cpu  " << agg.user << " 0 " << agg.system << " " << agg.idle
        << " 0 0 0 0 0 0\n";
    for (std::size_t hwt : node_.hwts().toVector()) {
      const auto& c = node_.hwtCounters(hwt);
      out << "cpu" << hwt << " " << c.user << " 0 " << c.system << " "
          << c.idle << " 0 0 0 0 0 0\n";
    }
    return out.str();
  }

 private:
  void requireTaskOf(int pid, int tid) const {
    for (sim::Tid t : node_.taskIds(pid)) {
      if (t == tid) {
        return;
      }
    }
    throw NotFoundError("tid " + std::to_string(tid) + " in pid " +
                        std::to_string(pid));
  }

  const sim::SimNode& node_;
  int selfPid_;
};

}  // namespace

std::unique_ptr<ProcFs> makeSimProcFs(const sim::SimNode& node, int selfPid) {
  return std::make_unique<SimProcFs>(node, selfPid);
}

}  // namespace zerosum::procfs
