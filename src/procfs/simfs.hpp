// SimProcFs: a /proc provider backed by the node simulator.
//
// It renders the simulator's state in the kernel's own text formats, so the
// shared parsers (and therefore every tracker above them) execute the same
// code path for simulated Frontier runs as for live monitoring.
#pragma once

#include <memory>

#include "procfs/procfs.hpp"
#include "sim/node.hpp"

namespace zerosum::procfs {

/// Creates a provider viewing `node`.  `selfPid` selects which simulated
/// process plays the role of "self"; pass 0 to use the first process
/// spawned.  The node must outlive the provider.
std::unique_ptr<ProcFs> makeSimProcFs(const sim::SimNode& node,
                                      int selfPid = 0);

}  // namespace zerosum::procfs
