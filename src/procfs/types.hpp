// Parsed representations of the /proc records ZeroSum samples (paper §3.1,
// §3.4, §3.5): /proc/<pid>/status, /proc/<pid>/task/<tid>/stat and status,
// /proc/meminfo and /proc/stat.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/cpuset.hpp"

namespace zerosum::procfs {

/// Key fields of /proc/<pid>/status (and task-level status, which shares
/// the format).
struct ProcStatus {
  int pid = 0;
  int tgid = 0;
  std::string name;
  char state = '?';
  CpuSet cpusAllowed;
  std::uint64_t vmRssKb = 0;
  std::uint64_t vmHwmKb = 0;
  int threads = 0;
  std::uint64_t voluntaryCtxSwitches = 0;
  std::uint64_t nonvoluntaryCtxSwitches = 0;
};

/// Fields of /proc/<pid>/task/<tid>/stat used by the LWP tracker.
struct TaskStat {
  int tid = 0;
  std::string comm;
  char state = '?';
  std::uint64_t minorFaults = 0;
  std::uint64_t majorFaults = 0;
  std::uint64_t utimeJiffies = 0;
  std::uint64_t stimeJiffies = 0;
  long numThreads = 0;
  /// CPU the task last executed on (stat field 39).
  int processor = -1;
};

/// /proc/meminfo subset (kB, as the kernel reports).
struct MemInfo {
  std::uint64_t totalKb = 0;
  std::uint64_t freeKb = 0;
  std::uint64_t availableKb = 0;
};

/// /proc/loadavg: run-queue averages plus the runnable/total task counts.
struct LoadAvg {
  double load1 = 0.0;
  double load5 = 0.0;
  double load15 = 0.0;
  int runnable = 0;
  int total = 0;
};

/// One "cpuN" (or aggregate "cpu") line of /proc/stat, in jiffies.
struct CpuTimes {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;
  std::uint64_t irq = 0;
  std::uint64_t softirq = 0;
  std::uint64_t steal = 0;

  [[nodiscard]] std::uint64_t busy() const {
    return user + nice + system + irq + softirq + steal;
  }
  [[nodiscard]] std::uint64_t total() const { return busy() + idle + iowait; }
};

/// Parsed /proc/stat: aggregate plus per-CPU rows keyed by CPU index.
struct StatSnapshot {
  CpuTimes aggregate;
  std::map<int, CpuTimes> perCpu;
};

}  // namespace zerosum::procfs
