#include "proxyapps/miniqmc.hpp"

#include <chrono>
#include <cmath>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "openmp/team.hpp"

namespace zerosum::proxyapps {

namespace {

/// One walker: electron positions plus its RNG stream.
struct Walker {
  std::vector<double> positions;  // 3 coordinates per electron
  stats::SplitMix64 rng;
  double energy = 0.0;
  std::uint64_t accepted = 0;
  std::uint64_t proposed = 0;

  Walker(int electrons, std::uint64_t seed)
      : rng(seed) {
    positions.resize(static_cast<std::size_t>(electrons) * 3);
    for (double& x : positions) {
      x = rng.nextDouble();
    }
  }
};

/// Cubic-B-spline-like basis evaluation: the FLOP core of miniQMC's
/// einspline.  `table` is the coefficient grid; evaluation mixes 64
/// neighbouring coefficients with cubic weights.
double evaluateSpline(const std::vector<double>& table, int gridSide,
                      double x, double y, double z) {
  auto weight = [](double t, int k) {
    // Uniform cubic B-spline pieces.
    switch (k) {
      case 0: return (1 - t) * (1 - t) * (1 - t) / 6.0;
      case 1: return (3 * t * t * t - 6 * t * t + 4) / 6.0;
      case 2: return (-3 * t * t * t + 3 * t * t + 3 * t + 1) / 6.0;
      default: return t * t * t / 6.0;
    }
  };
  const double gx = x * static_cast<double>(gridSide - 3);
  const double gy = y * static_cast<double>(gridSide - 3);
  const double gz = z * static_cast<double>(gridSide - 3);
  const int ix = static_cast<int>(gx);
  const int iy = static_cast<int>(gy);
  const int iz = static_cast<int>(gz);
  const double tx = gx - ix;
  const double ty = gy - iy;
  const double tz = gz - iz;
  double value = 0.0;
  for (int a = 0; a < 4; ++a) {
    const double wa = weight(tx, a);
    for (int b = 0; b < 4; ++b) {
      const double wb = weight(ty, b);
      for (int c = 0; c < 4; ++c) {
        const std::size_t idx =
            (static_cast<std::size_t>(ix + a) * static_cast<std::size_t>(gridSide) +
             static_cast<std::size_t>(iy + b)) *
                static_cast<std::size_t>(gridSide) +
            static_cast<std::size_t>(iz + c);
        value += wa * wb * weight(tz, c) * table[idx];
      }
    }
  }
  return value;
}

}  // namespace

MiniQmcResult runMiniQmc(const MiniQmcParams& params, mpisim::Comm* comm) {
  if (params.threads < 1 || params.steps < 1 || params.walkersPerThread < 1 ||
      params.tiling < 1 || params.electrons < 1) {
    throw ConfigError("miniQMC: all parameters must be >= 1");
  }

  // Spline coefficient grid: side grows with the tiling (4 points per
  // tile + padding), table size ~ side^3.
  const int gridSide = 4 * params.tiling + 4;
  std::vector<double> spline(static_cast<std::size_t>(gridSide) *
                             static_cast<std::size_t>(gridSide) *
                             static_cast<std::size_t>(gridSide));
  stats::SplitMix64 seedRng(params.seed);
  for (double& c : spline) {
    c = seedRng.nextDouble() - 0.5;
  }

  // Per-thread walker populations.
  std::vector<std::vector<Walker>> populations(
      static_cast<std::size_t>(params.threads));
  for (int t = 0; t < params.threads; ++t) {
    for (int w = 0; w < params.walkersPerThread; ++w) {
      populations[static_cast<std::size_t>(t)].emplace_back(
          params.electrons,
          params.seed ^ (static_cast<std::uint64_t>(t) << 32) ^
              static_cast<std::uint64_t>(w));
    }
  }

  openmp::ThreadTeam team(params.threads);
  const auto start = std::chrono::steady_clock::now();

  for (int step = 0; step < params.steps; ++step) {
    // Each parallel region is one MC step; the implicit join is the team
    // barrier the monitor observes.
    team.parallel([&](int threadNum, int) {
      for (Walker& walker : populations[static_cast<std::size_t>(threadNum)]) {
        for (int e = 0; e < params.electrons; ++e) {
          const auto base = static_cast<std::size_t>(e) * 3;
          const double ox = walker.positions[base];
          const double oy = walker.positions[base + 1];
          const double oz = walker.positions[base + 2];
          const double before = evaluateSpline(spline, gridSide, ox, oy, oz);

          auto jitter = [&](double v) {
            v += (walker.rng.nextDouble() - 0.5) * 0.1;
            if (v < 0.0) v += 1.0;
            if (v >= 1.0) v -= 1.0;
            return v;
          };
          const double nx = jitter(ox);
          const double ny = jitter(oy);
          const double nz = jitter(oz);
          const double after = evaluateSpline(spline, gridSide, nx, ny, nz);

          ++walker.proposed;
          // Metropolis on |psi|^2 proxy.
          const double ratio = (after * after + 1e-12) /
                               (before * before + 1e-12);
          if (ratio >= 1.0 || walker.rng.nextDouble() < ratio) {
            walker.positions[base] = nx;
            walker.positions[base + 1] = ny;
            walker.positions[base + 2] = nz;
            walker.energy += after;
            ++walker.accepted;
          } else {
            walker.energy += before;
          }
        }
      }
    });

    if (params.haloExchange && comm != nullptr && comm->size() > 1) {
      // Exchange per-rank walker energy summaries with both neighbours —
      // the nearest-neighbour traffic the Figure 5 heatmap shows.
      std::vector<double> summary(populations.size());
      for (std::size_t t = 0; t < populations.size(); ++t) {
        for (const Walker& w : populations[t]) {
          summary[t] += w.energy;
        }
      }
      const int next = (comm->rank() + 1) % comm->size();
      const int prev = (comm->rank() + comm->size() - 1) % comm->size();
      std::vector<double> fromPrev(summary.size());
      std::vector<double> fromNext(summary.size());
      comm->send(next, summary, /*tag=*/step * 2);
      comm->send(prev, summary, /*tag=*/step * 2 + 1);
      comm->recv(prev, fromPrev, /*tag=*/step * 2);
      comm->recv(next, fromNext, /*tag=*/step * 2 + 1);
    }
  }

  MiniQmcResult result;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  std::uint64_t accepted = 0;
  std::uint64_t proposed = 0;
  for (const auto& population : populations) {
    for (const Walker& w : population) {
      accepted += w.accepted;
      proposed += w.proposed;
      result.localEnergy += w.energy;
    }
  }
  result.moves = proposed;
  result.acceptanceRatio =
      proposed > 0 ? static_cast<double>(accepted) /
                         static_cast<double>(proposed)
                   : 0.0;
  if (comm != nullptr && comm->size() > 1) {
    result.localEnergy = comm->allreduceSum(result.localEnergy);
  }
  return result;
}

}  // namespace zerosum::proxyapps
