// miniQMC proxy: a real-compute stand-in for the ECP miniQMC application
// the paper evaluates with (§4).
//
// The kernel reproduces the *shape* of real-space quantum Monte Carlo that
// matters to a monitor: a team of OpenMP threads (our openmp substrate),
// each advancing a set of walkers; every step evaluates a B-spline-like
// basis (genuine floating-point work), applies a Metropolis accept/reject,
// and ends in a team barrier; optionally ranks exchange walker summaries
// point-to-point through the mpisim substrate.  Problem size follows
// miniQMC's [nx,ny,nz] tiling convention.
#pragma once

#include <cstdint>

#include "mpisim/comm.hpp"

namespace zerosum::proxyapps {

struct MiniQmcParams {
  /// OpenMP team size, including the master thread ("walkers are
  /// controlled by the number of threads" — paper §3.4).
  int threads = 4;
  /// Outer Monte-Carlo steps.
  int steps = 50;
  int walkersPerThread = 2;
  /// Tiling [n,n,n]: spline table scales with n^3 (paper uses [2,2,2]).
  int tiling = 2;
  /// Electrons per walker.
  int electrons = 32;
  /// Exchange walker summaries with neighbour ranks each step (requires a
  /// Comm).
  bool haloExchange = false;
  std::uint64_t seed = 20230912;
};

struct MiniQmcResult {
  double seconds = 0.0;        ///< wall-clock (self-reported runtime)
  double acceptanceRatio = 0.0;
  double localEnergy = 0.0;    ///< accumulated pseudo-energy (checksum)
  std::uint64_t moves = 0;
};

/// Runs the proxy on the calling process.  When `comm` is non-null the
/// rank participates in per-step halo exchanges and a final energy
/// all-reduce; otherwise it runs standalone.
MiniQmcResult runMiniQmc(const MiniQmcParams& params,
                         mpisim::Comm* comm = nullptr);

}  // namespace zerosum::proxyapps
