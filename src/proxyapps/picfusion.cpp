#include "proxyapps/picfusion.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace zerosum::proxyapps {

namespace {

struct Particle {
  double position = 0.0;  // within [0, cellsPerRank)
  double velocity = 0.0;
  double weight = 1.0;
};

int wrap(int rank, int size) { return ((rank % size) + size) % size; }

}  // namespace

PicResult runPicFusion(const PicParams& params, mpisim::Comm& comm) {
  if (comm.size() < 2) {
    throw ConfigError("picfusion needs at least 2 ranks");
  }
  if (params.steps < 1 || params.particlesPerRank < 1 ||
      params.cellsPerRank < 4 || params.ranksPerPlane < 1) {
    throw ConfigError("picfusion: bad parameters");
  }

  const int rank = comm.rank();
  const int size = comm.size();
  const int prev = wrap(rank - 1, size);
  const int next = wrap(rank + 1, size);
  const double cells = static_cast<double>(params.cellsPerRank);

  stats::SplitMix64 rng(params.seed ^
                        (static_cast<std::uint64_t>(rank) << 24));
  std::vector<Particle> particles(
      static_cast<std::size_t>(params.particlesPerRank));
  for (Particle& p : particles) {
    p.position = rng.nextDouble() * cells;
    p.velocity = (rng.nextDouble() - 0.5) * 4.0;
  }
  std::vector<double> field(static_cast<std::size_t>(params.cellsPerRank));
  for (double& f : field) {
    f = rng.nextDouble() - 0.5;
  }

  PicResult result;
  const auto start = std::chrono::steady_clock::now();

  for (int step = 0; step < params.steps; ++step) {
    // --- push: real FLOPs in the local field -------------------------------
    std::vector<Particle> toPrev;
    std::vector<Particle> toNext;
    std::vector<Particle> staying;
    staying.reserve(particles.size());
    for (Particle& p : particles) {
      const auto cell = static_cast<std::size_t>(p.position);
      const double e = field[cell % field.size()];
      p.velocity += 0.1 * e - 0.001 * p.velocity;  // accel + drag
      p.position += p.velocity * 0.1;
      if (p.position < 0.0) {
        p.position += cells;
        toPrev.push_back(p);
      } else if (p.position >= cells) {
        p.position -= cells;
        toNext.push_back(p);
      } else {
        staying.push_back(p);
      }
    }

    // --- shift: ±1 neighbour exchange (the Figure 5 diagonal) --------------
    // Tags encode the *travel direction* so a message sent rightward is
    // received with the same tag by the right-hand neighbour: rightward
    // uses tags {0 count, 2 payload}, leftward {1, 3}.
    auto exchange = [&](int dest, int source, int countTag, int payloadTag,
                        std::vector<Particle>& outgoing) {
      std::vector<double> outBuf;
      outBuf.reserve(outgoing.size() * 3 + 1);
      outBuf.push_back(static_cast<double>(outgoing.size()));
      for (const Particle& p : outgoing) {
        outBuf.push_back(p.position);
        outBuf.push_back(p.velocity);
        outBuf.push_back(p.weight);
      }
      // Counts first (fixed-size), then payload sized by the peer's count.
      std::vector<double> countMsg{outBuf[0]};
      comm.send(dest, countMsg, step * 8 + countTag);
      std::vector<double> peerCount(1);
      comm.recv(source, peerCount, step * 8 + countTag);
      comm.send(dest, outBuf, step * 8 + payloadTag);
      std::vector<double> inBuf(
          static_cast<std::size_t>(peerCount[0]) * 3 + 1);
      comm.recv(source, inBuf, step * 8 + payloadTag);
      for (std::size_t i = 1; i + 2 < inBuf.size(); i += 3) {
        Particle p;
        p.position = inBuf[i];
        p.velocity = inBuf[i + 1];
        p.weight = inBuf[i + 2];
        staying.push_back(p);
      }
      result.particlesShifted += outgoing.size();
    };
    exchange(next, prev, /*countTag=*/0, /*payloadTag=*/2, toNext);
    exchange(prev, next, /*countTag=*/1, /*payloadTag=*/3, toPrev);
    particles = std::move(staying);

    // --- deposit + field solve with plane coupling -------------------------
    std::vector<double> density(field.size(), 0.0);
    for (const Particle& p : particles) {
      density[static_cast<std::size_t>(p.position) % density.size()] +=
          p.weight;
    }
    if (params.ranksPerPlane < size) {
      const int up = wrap(rank + params.ranksPerPlane, size);
      const int down = wrap(rank - params.ranksPerPlane, size);
      std::vector<double> fromDown(field.size());
      std::vector<double> fromUp(field.size());
      comm.send(up, field, step * 8 + 4);
      comm.send(down, field, step * 8 + 5);
      comm.recv(down, fromDown, step * 8 + 4);
      comm.recv(up, fromUp, step * 8 + 5);
      result.fieldResidual = 0.0;
      for (std::size_t c = 0; c < field.size(); ++c) {
        const double smoothed = 0.5 * field[c] +
                                0.2 * (fromDown[c] + fromUp[c]) +
                                0.002 * density[c];
        result.fieldResidual += std::fabs(smoothed - field[c]);
        field[c] = smoothed;
      }
    }

    // --- collisions: sparse long-range moment exchange ---------------------
    if (rng.nextDouble() < params.collisionProbability) {
      const int peer = static_cast<int>(
          rng.nextBelow(static_cast<std::uint64_t>(size)));
      if (peer != rank) {
        std::vector<double> moments{static_cast<double>(particles.size()),
                                    result.fieldResidual};
        comm.send(peer, moments, 1000000 + step);
      }
    }
    // Collision messages are one-sided fire-and-forget in this proxy;
    // drain anything sent to us before the step barrier so mailboxes
    // stay bounded.
    comm.barrier();
  }

  double energy = 0.0;
  for (const Particle& p : particles) {
    energy += 0.5 * p.velocity * p.velocity * p.weight;
  }
  result.energy = comm.allreduceSum(energy);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace zerosum::proxyapps
