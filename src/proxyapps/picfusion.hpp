// picfusion: a gyrokinetic particle-in-cell proxy — the second workload of
// the paper's evaluation (Figure 5 shows "MPI point-to-point heatmap data
// of a gyrokinetic particle-in-cell code [XGC] launched with 512 ranks").
//
// Each rank owns a poloidal segment of a 1-D torus: a particle population
// and a field mesh.  A step is
//   push      — real floating-point particle advance in the local field,
//   shift     — particles leaving the segment are sent to the ±1
//               neighbours (the heavy near-diagonal traffic),
//   fieldSolve— a Jacobi smoothing exchange with the matching rank of the
//               adjacent planes (±ranksPerPlane, the faint bands),
//   collisions— occasional long-range moment exchange (sparse background).
// Run under mpisim with the interposition recorders attached, the traffic
// reproduces the Figure 5 structure with real message payloads.
#pragma once

#include <cstdint>

#include "mpisim/comm.hpp"

namespace zerosum::proxyapps {

struct PicParams {
  int steps = 10;
  int particlesPerRank = 2000;
  int cellsPerRank = 64;
  /// Ranks per poloidal plane (plane-coupling distance for field solves).
  int ranksPerPlane = 8;
  /// Fraction of the collision-moment exchange steps (sparse background).
  double collisionProbability = 0.10;
  std::uint64_t seed = 20231112;
};

struct PicResult {
  double seconds = 0.0;
  /// Total particles this rank sent to neighbours over the run.
  std::uint64_t particlesShifted = 0;
  /// Field residual after the final solve (checksum-grade).
  double fieldResidual = 0.0;
  /// Sum of particle kinetic-energy proxy (global after the allreduce).
  double energy = 0.0;
};

/// Runs the proxy as one rank of `comm`'s world.  Requires >= 2 ranks.
PicResult runPicFusion(const PicParams& params, mpisim::Comm& comm);

}  // namespace zerosum::proxyapps
