#include "sim/node.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace zerosum::sim {

char stateCode(TaskState state) {
  switch (state) {
    case TaskState::kRunning:
    case TaskState::kRunnable:
      return 'R';
    case TaskState::kSleeping:
      return 'S';
    case TaskState::kDone:
      return 'Z';
  }
  return '?';
}

std::uint64_t SimProcess::rssBytes(Jiffies now) const {
  if (now <= spawnTick || rssRampJiffies == 0) {
    return rssStartBytes;
  }
  const Jiffies age = now - spawnTick;
  if (age >= rssRampJiffies) {
    return rssTargetBytes;
  }
  const double frac =
      static_cast<double>(age) / static_cast<double>(rssRampJiffies);
  const double lo = static_cast<double>(rssStartBytes);
  const double hi = static_cast<double>(rssTargetBytes);
  return static_cast<std::uint64_t>(lo + frac * (hi - lo));
}

SimNode::SimNode(CpuSet hwts, std::uint64_t memTotalBytes,
                 SchedulerParams params, std::uint64_t seed)
    : hwts_(hwts),
      hwtList_(hwts.toVector()),
      memTotal_(memTotalBytes),
      systemMemUsed_(memTotalBytes / 64),  // kernel + services baseline
      params_(params),
      rng_(seed) {
  if (hwtList_.empty()) {
    throw ConfigError("SimNode requires at least one hardware thread");
  }
  for (std::size_t hwt : hwtList_) {
    hwtCounters_[hwt] = HwtCounters{};
  }
}

Pid SimNode::spawnProcess(const std::string& name, const CpuSet& affinity) {
  if (!affinity.empty() && !hwts_.containsAll(affinity)) {
    throw ConfigError("process affinity includes HWTs absent from the node");
  }
  const Pid pid = nextPid_++;
  SimProcess proc;
  proc.pid = pid;
  proc.name = name;
  proc.affinity = affinity.empty() ? hwts_ : affinity;
  proc.spawnTick = now_;
  processes_[pid] = std::move(proc);
  return pid;
}

Tid SimNode::spawnTask(Pid pid, const std::string& name, LwpType type,
                       const Behavior& behavior, const CpuSet& affinity) {
  auto procIt = processes_.find(pid);
  if (procIt == processes_.end()) {
    throw NotFoundError("pid " + std::to_string(pid));
  }
  if (behavior.teamId >= 0 &&
      static_cast<std::size_t>(behavior.teamId) >= teams_.size()) {
    throw ConfigError("behavior references unknown team " +
                      std::to_string(behavior.teamId));
  }
  SimProcess& proc = procIt->second;
  const Tid tid = proc.tasks.empty() ? pid : nextPid_++;

  auto task = std::make_unique<SimTask>();
  task->tid = tid;
  task->pid = pid;
  task->name = name;
  task->type = type;
  task->affinity = affinity.empty() ? proc.affinity : affinity;
  if (!hwts_.containsAll(task->affinity)) {
    throw ConfigError("task affinity includes HWTs absent from the node");
  }
  task->behavior = behavior;
  task->state = TaskState::kSleeping;
  task->wakeTick = now_ + behavior.startDelayJiffies;
  proc.tasks.push_back(tid);
  tasks_[tid] = std::move(task);
  return tid;
}

void SimNode::setTaskAffinity(Tid tid, const CpuSet& affinity) {
  if (affinity.empty()) {
    throw ConfigError("cannot set an empty task affinity");
  }
  if (!hwts_.containsAll(affinity)) {
    throw ConfigError("task affinity includes HWTs absent from the node");
  }
  SimTask& task = taskRef(tid);
  task.affinity = affinity;
  // A running task whose current HWT is no longer allowed is pulled off at
  // once (the kernel migrates on sched_setaffinity the same way).
  if (task.state == TaskState::kRunning && task.lastCpu >= 0 &&
      !affinity.test(static_cast<std::size_t>(task.lastCpu))) {
    task.state = TaskState::kRunnable;
  }
}

void SimNode::setProcessRssModel(Pid pid, std::uint64_t startBytes,
                                 std::uint64_t targetBytes,
                                 Jiffies rampJiffies) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    throw NotFoundError("pid " + std::to_string(pid));
  }
  it->second.rssStartBytes = startBytes;
  it->second.rssTargetBytes = targetBytes;
  it->second.rssRampJiffies = rampJiffies;
}

TeamId SimNode::createTeam(int members) {
  if (members < 1) {
    throw ConfigError("team needs at least one member");
  }
  Team team;
  team.expected = members;
  teams_.push_back(team);
  return static_cast<TeamId>(teams_.size() - 1);
}

Jiffies SimNode::jitteredBurst(const Behavior& behavior) {
  if (behavior.workJitter <= 0.0 || behavior.iterWorkJiffies == 0) {
    return behavior.iterWorkJiffies;
  }
  const double u = rng_.nextDouble() * 2.0 - 1.0;
  const double scaled =
      static_cast<double>(behavior.iterWorkJiffies) *
      (1.0 + behavior.workJitter * u);
  return std::max<Jiffies>(1, static_cast<Jiffies>(scaled + 0.5));
}

void SimNode::terminateProcess(Pid pid) {
  for (Tid tid : process(pid).tasks) {
    SimTask& t = taskRef(tid);
    if (!t.finished()) {
      t.state = TaskState::kDone;
      t.inBarrier = false;
    }
  }
}

SimTask& SimNode::taskRef(Tid tid) {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) {
    throw NotFoundError("tid " + std::to_string(tid));
  }
  return *it->second;
}

const SimTask& SimNode::task(Tid tid) const {
  auto it = tasks_.find(tid);
  if (it == tasks_.end()) {
    throw NotFoundError("tid " + std::to_string(tid));
  }
  return *it->second;
}

const SimProcess& SimNode::process(Pid pid) const {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    throw NotFoundError("pid " + std::to_string(pid));
  }
  return it->second;
}

std::vector<Pid> SimNode::processIds() const {
  std::vector<Pid> out;
  out.reserve(processes_.size());
  for (const auto& [pid, proc] : processes_) {
    out.push_back(pid);
  }
  return out;
}

std::vector<Tid> SimNode::taskIds(Pid pid) const { return process(pid).tasks; }

const HwtCounters& SimNode::hwtCounters(std::size_t puOsIndex) const {
  auto it = hwtCounters_.find(puOsIndex);
  if (it == hwtCounters_.end()) {
    throw NotFoundError("HWT " + std::to_string(puOsIndex));
  }
  return it->second;
}

std::uint64_t SimNode::memFreeBytes() const {
  std::uint64_t used = systemMemUsed_;
  for (const auto& [pid, proc] : processes_) {
    used += proc.rssBytes(now_);
  }
  if (used >= memTotal_) {
    return 0;
  }
  return memTotal_ - used;
}

void SimNode::setSystemMemoryUsage(std::uint64_t bytes) {
  systemMemUsed_ = bytes;
}

SimNode::LoadAverages SimNode::loadAverages() const {
  LoadAverages out;
  out.load1 = load1_;
  out.load5 = load5_;
  out.load15 = load15_;
  for (const auto& [tid, taskPtr] : tasks_) {
    if (taskPtr->finished()) {
      continue;
    }
    ++out.total;
    if (taskPtr->state == TaskState::kRunning ||
        taskPtr->state == TaskState::kRunnable) {
      ++out.runnable;
    }
  }
  return out;
}

bool SimNode::processFinished(Pid pid) const {
  for (Tid tid : process(pid).tasks) {
    const SimTask& t = task(tid);
    if (!t.behavior.isDaemon() && !t.finished()) {
      return false;
    }
  }
  return true;
}

bool SimNode::allWorkFinished() const {
  for (const auto& [tid, task] : tasks_) {
    if (!task->behavior.isDaemon() && !task->finished()) {
      return false;
    }
  }
  return true;
}

void SimNode::advance(Jiffies jiffies) {
  for (Jiffies i = 0; i < jiffies; ++i) {
    tick();
    ++now_;
  }
}

void SimNode::wakeSleepers() {
  for (auto& [tid, taskPtr] : tasks_) {
    SimTask& t = *taskPtr;
    if (t.state != TaskState::kSleeping || t.wakeTick > now_ || t.inBarrier) {
      continue;
    }
    if (t.behavior.iterWorkJiffies == 0) {
      // Pure sleeper (e.g. an idle helper thread): wakes, finds nothing to
      // do, and immediately blocks again — one voluntary switch per cycle.
      ++t.voluntaryCtx;
      const Jiffies napLen =
          t.behavior.blockJiffies > 0 ? t.behavior.blockJiffies : kHz;
      t.wakeTick = now_ + napLen;
      continue;
    }
    t.state = TaskState::kRunnable;
    t.burstRemaining = jitteredBurst(t.behavior);
    t.sliceUsed = 0;
  }
}

void SimNode::accountFaults(SimTask& task) {
  task.minfltAcc += task.behavior.minorFaultsPerJiffy;
  while (task.minfltAcc >= 1.0) {
    ++task.minorFaults;
    task.minfltAcc -= 1.0;
  }
  task.majfltAcc += task.behavior.majorFaultsPerKJiffy / 1000.0;
  while (task.majfltAcc >= 1.0) {
    ++task.majorFaults;
    task.majfltAcc -= 1.0;
  }
}

void SimNode::blockTask(SimTask& task) {
  ++task.voluntaryCtx;
  task.state = TaskState::kSleeping;
  task.wakeTick = now_ + std::max<Jiffies>(1, task.behavior.blockJiffies);
}

void SimNode::arriveBarrier(SimTask& task) {
  Team& team = teams_[static_cast<std::size_t>(task.behavior.teamId)];
  if (static_cast<int>(team.waiting.size()) + 1 >= team.expected) {
    // Last arriver releases everyone.  When the behaviour also carries a
    // blockJiffies (modelling a GPU-offload synchronization after the team
    // step), released members sleep it out before their next burst.
    for (Tid waiterTid : team.waiting) {
      SimTask& waiter = taskRef(waiterTid);
      waiter.inBarrier = false;
      waiter.burstRemaining = jitteredBurst(waiter.behavior);
      waiter.sliceUsed = 0;
      if (waiter.behavior.blockJiffies > 0) {
        waiter.state = TaskState::kSleeping;
        waiter.wakeTick = now_ + waiter.behavior.blockJiffies;
      } else {
        waiter.state = TaskState::kRunnable;
      }
    }
    team.waiting.clear();
    if (task.behavior.blockJiffies > 0) {
      blockTask(task);
    } else {
      task.burstRemaining = jitteredBurst(task.behavior);
    }
  } else {
    team.waiting.push_back(task.tid);
    task.inBarrier = true;
    ++task.voluntaryCtx;
    task.state = TaskState::kSleeping;
    task.wakeTick = std::numeric_limits<Jiffies>::max();
  }
}

SimTask* SimNode::pickNext(std::size_t hwt, const std::vector<Tid>& runnable) {
  SimTask* best = nullptr;
  for (Tid tid : runnable) {
    SimTask& t = taskRef(tid);
    if (t.state != TaskState::kRunnable || !t.affinity.test(hwt)) {
      continue;
    }
    if (best == nullptr || t.vruntime < best->vruntime ||
        (t.vruntime == best->vruntime &&
         t.lastCpu == static_cast<int>(hwt) &&
         best->lastCpu != static_cast<int>(hwt))) {
      best = &t;
    }
  }
  return best;
}

void SimNode::tick() {
  wakeSleepers();

  // Kernel-style load accounting: EMA of the run-queue length (running +
  // runnable tasks) over 1/5/15 minutes of virtual time.
  {
    int demand = 0;
    for (const auto& [tid, taskPtr] : tasks_) {
      if (taskPtr->state == TaskState::kRunning ||
          taskPtr->state == TaskState::kRunnable) {
        ++demand;
      }
    }
    const double n = static_cast<double>(demand);
    const double hz = static_cast<double>(kHz);
    load1_ += (n - load1_) / (60.0 * hz);
    load5_ += (n - load5_) / (300.0 * hz);
    load15_ += (n - load15_) / (900.0 * hz);
  }

  // Remove tasks that blocked or finished from their HWTs.
  for (auto it = running_.begin(); it != running_.end();) {
    if (taskRef(it->second).state != TaskState::kRunning) {
      it = running_.erase(it);
    } else {
      ++it;
    }
  }

  // Runnable pool (not currently placed).
  std::vector<Tid> runnable;
  for (auto& [tid, taskPtr] : tasks_) {
    if (taskPtr->state == TaskState::kRunnable) {
      runnable.push_back(tid);
    }
  }

  for (std::size_t hwt : hwtList_) {
    SimTask* current = nullptr;
    if (auto it = running_.find(hwt); it != running_.end()) {
      current = &taskRef(it->second);
    }

    // Is anyone waiting who may run here?
    SimTask* waiter = pickNext(hwt, runnable);

    bool preempt = false;
    if (current != nullptr && waiter != nullptr) {
      const bool sliceExpired = current->sliceUsed >= params_.timesliceJiffies;
      const bool wakeupPreempt =
          waiter->vruntime + params_.wakeupPreemptMargin < current->vruntime;
      preempt = sliceExpired || wakeupPreempt;
    }

    if (preempt) {
      ++current->nonvoluntaryCtx;
      current->state = TaskState::kRunnable;
      current->sliceUsed = 0;
      runnable.push_back(current->tid);
      running_.erase(hwt);
      current = nullptr;
    }

    if (current == nullptr && waiter != nullptr) {
      waiter->state = TaskState::kRunning;
      if (waiter->lastCpu >= 0 && waiter->lastCpu != static_cast<int>(hwt)) {
        ++waiter->migrations;
      }
      waiter->lastCpu = static_cast<int>(hwt);
      waiter->sliceUsed = 0;
      running_[hwt] = waiter->tid;
      current = waiter;
    }

    HwtCounters& counters = hwtCounters_[hwt];
    if (current == nullptr) {
      ++counters.idle;
      continue;
    }

    // Execute one jiffy.
    SimTask& t = *current;
    t.vruntime += 1.0;
    ++t.sliceUsed;
    t.stimeAcc += t.behavior.systemFraction;
    if (t.stimeAcc >= 1.0) {
      ++t.stime;
      ++counters.system;
      t.stimeAcc -= 1.0;
    } else {
      ++t.utime;
      ++counters.user;
    }
    accountFaults(t);

    if (t.burstRemaining > 0) {
      --t.burstRemaining;
    }
    if (t.burstRemaining == 0) {
      ++t.iterationsDone;
      const bool workDone = !t.behavior.isDaemon() &&
                            t.iterationsDone >= t.behavior.iterations;
      if (workDone) {
        ++t.voluntaryCtx;  // exit is a voluntary switch
        t.state = TaskState::kDone;
      } else if (t.behavior.teamId >= 0) {
        arriveBarrier(t);
      } else if (t.behavior.blockJiffies > 0 || t.behavior.isDaemon()) {
        blockTask(t);
      } else {
        t.burstRemaining = jitteredBurst(t.behavior);  // back-to-back bursts
      }
    }
  }
}

}  // namespace zerosum::sim
